package radionet

// Cross-family integration suite: every broadcasting algorithm times every
// topology family times several seeds, verifying completion and value
// agreement through the public API. This is the release gate for the
// whole stack (graph generators -> simulator -> protocols -> facade).

import (
	"fmt"
	"testing"
)

func integrationFamilies(t testing.TB) map[string]*Graph {
	t.Helper()
	fams := map[string]*Graph{
		"path":        Path(64),
		"cycle":       Cycle(60),
		"grid":        Grid(8, 12),
		"tree":        BalancedTree(2, 6),
		"cliquepath":  PathOfCliques(10, 6),
		"caterpillar": Caterpillar(20, 3),
		"dumbbell":    Dumbbell(8, 10),
		"hypercube":   Hypercube(6),
		"geometric":   RandomGeometric(150, 0.12, 5),
		"gnp":         Gnp(120, 0.05, 6),
	}
	return fams
}

func TestIntegrationBroadcastMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix")
	}
	algos := []Algorithm{CD17, BGI, TruncatedDecay}
	for name, g := range integrationFamilies(t) {
		net := NewNetwork(g)
		for _, algo := range algos {
			for seed := uint64(1); seed <= 2; seed++ {
				algo, seed, name, net := algo, seed, name, net
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, algo, seed), func(t *testing.T) {
					res, err := net.Broadcast(0, 77, BroadcastOptions{Algorithm: algo, Seed: seed})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Done {
						t.Fatalf("incomplete after %d rounds", res.Rounds)
					}
				})
			}
		}
	}
}

func TestIntegrationLeaderMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix")
	}
	algos := []LeaderAlgorithm{CD17Leader, MaxBroadcastLeader}
	for name, g := range integrationFamilies(t) {
		net := NewNetwork(g)
		for _, algo := range algos {
			name, algo, net := name, algo, net
			t.Run(fmt.Sprintf("%s/%s", name, algo), func(t *testing.T) {
				res, err := net.LeaderElection(LeaderOptions{Algorithm: algo, Seed: 11})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Done || res.Leader < 0 {
					t.Fatalf("election failed: %+v", res.Result)
				}
				if res.Candidates[res.Leader] != res.LeaderID {
					t.Fatal("leader does not own the winning ID")
				}
			})
		}
	}
}

func TestIntegrationCDMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix")
	}
	for name, g := range integrationFamilies(t) {
		name, g := name, g
		t.Run(name, func(t *testing.T) {
			net := NewNetwork(g)
			res, err := net.BroadcastCD(0, 54321)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done {
				t.Fatalf("CD broadcast incomplete after %d rounds", res.Rounds)
			}
		})
	}
}
