// Quickstart: broadcast a message through a 16x64 grid radio network with
// the paper's algorithm and print how many synchronous radio rounds it
// took for every node to learn it.
package main

import (
	"fmt"
	"log"

	"radionet"
)

func main() {
	g := radionet.Grid(16, 64)
	net := radionet.NewNetwork(g)
	fmt.Printf("network: %v, diameter D=%d\n", g, net.Diameter)

	res, err := net.Broadcast(0, 42, radionet.BroadcastOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CD17 broadcast: done=%v in %d radio rounds (precompute charged: %d)\n",
		res.Done, res.Rounds, res.PrecomputeRounds)
	fmt.Printf("that is %.1f rounds per hop of diameter\n", float64(res.Rounds)/float64(net.Diameter))
}
