// Clustering: a tour of the Miller–Peng–Xu Partition(β) decomposition
// that underlies the paper (Lemma 2.1 and Theorem 2.2). Shows how β
// trades cluster radius against cut edges, the two quantities the
// broadcast analysis balances.
package main

import (
	"fmt"
	"math"

	"radionet"
)

func main() {
	g := radionet.Grid(40, 40)
	n := float64(g.N())
	fmt.Printf("graph: %v\n\n", g)
	fmt.Printf("%-8s %-10s %-12s %-12s %-10s\n", "beta", "clusters", "maxRadius", "ln(n)/beta", "cutFrac")
	for _, beta := range []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.8} {
		p := radionet.PartitionGraph(g, beta, 7)
		if err := p.Validate(); err != nil {
			panic(err)
		}
		fmt.Printf("%-8.2f %-10d %-12d %-12.1f %-10.3f\n",
			beta, p.NumClusters(), p.MaxStrongRadius(), math.Log(n)/beta, p.CutFraction())
	}
	fmt.Println("\nLemma 2.1: radius stays within O(log n/beta) while the cut")
	fmt.Println("fraction scales linearly with beta — the knob the paper turns")
	fmt.Println("randomly (beta = 2^-j, j uniform) to exploit Theorem 2.2.")
}
