// Election: leader election in a multi-hop mesh of dense device clusters
// (a path of cliques — e.g. buildings of densely packed devices joined by
// sparse backbone links). Runs the paper's Algorithm 6 and the two
// classical reductions, and verifies the postcondition: all nodes agree
// on one ID and exactly one node owns it.
package main

import (
	"fmt"
	"log"

	"radionet"
)

func main() {
	g := radionet.PathOfCliques(24, 8) // 24 buildings x 8 devices
	net := radionet.NewNetwork(g)
	fmt.Printf("mesh: %v, diameter D=%d\n", g, net.Diameter)

	for _, algo := range []radionet.LeaderAlgorithm{
		radionet.CD17Leader, radionet.MaxBroadcastLeader, radionet.BinarySearchLeader,
	} {
		res, err := net.LeaderElection(radionet.LeaderOptions{Algorithm: algo, Seed: 99})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s done=%v rounds=%-9d leader=node%-4d id=%d candidates=%d\n",
			algo, res.Done, res.Rounds, res.Leader, res.LeaderID, len(res.Candidates))
		if !res.Done {
			log.Fatalf("%s did not complete", algo)
		}
		if _, ok := res.Candidates[res.Leader]; !ok {
			log.Fatalf("%s elected a non-candidate", algo)
		}
	}
	fmt.Println("\nNote the paper's headline: its election runs in broadcast time,")
	fmt.Println("while the classical binary-search reduction pays ~40 broadcasts.")
}
