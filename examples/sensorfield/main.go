// Sensorfield: the motivating scenario of the radio network model — an
// ad-hoc field of wireless sensors (a random geometric / unit-disk graph)
// in which a gateway node must disseminate a firmware epoch to every
// sensor. Compares the paper's spontaneous-transmission algorithm with
// the classical Decay broadcast on the same deployment.
package main

import (
	"fmt"
	"log"

	"radionet"
)

func main() {
	const (
		sensors = 600
		radius  = 0.06
		seed    = 2024
	)
	g := radionet.RandomGeometric(sensors, radius, seed)
	net := radionet.NewNetwork(g)
	fmt.Printf("sensor field: %v, diameter D=%d, max degree %d\n",
		g, net.Diameter, g.MaxDegree())

	gateway := 0
	for _, algo := range []radionet.Algorithm{radionet.CD17, radionet.BGI, radionet.TruncatedDecay} {
		res, err := net.Broadcast(gateway, 7, radionet.BroadcastOptions{Algorithm: algo, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s done=%v rounds=%-8d rounds/D=%.1f precompute=%d\n",
			algo, res.Done, res.Rounds, float64(res.Rounds)/float64(net.Diameter), res.PrecomputeRounds)
	}
	fmt.Println("\nCD17 pays a one-time precompute charge to learn local contention;")
	fmt.Println("the oblivious baselines pay log n on every hop instead.")
}
