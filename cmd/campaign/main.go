// Command campaign runs a parallel simulation campaign: a declarative
// matrix of (topology × algorithm × seed) trials fanned out across a
// worker pool, with per-configuration aggregates streamed to a sink.
//
// The same master seed yields byte-identical text/CSV/JSONL output for
// every -workers value; add -timings for (non-deterministic) wall-time
// columns.
//
// Examples:
//
//	campaign -topos grid:16x16,cliquepath:16x8,gnp:256:0.03 \
//	         -algos cd17,bgi -seeds 20
//	campaign -task leader -algos cd17,max-broadcast -topos grid:8x32 -seeds 10
//	campaign -algos broadcast:cd17,leader:cd17 -topos path:256 -seeds 5 -format jsonl
//	campaign -config matrix.json -workers 4 -format csv
//	campaign -preset large-n-broadcast -seeds 5
//	campaign -preset large-n-broadcast -cpuprofile cpu.prof -memprofile mem.prof
//	campaign -preset faults -format jsonl
//	campaign -topos grid:16x16 -algos cd17,bgi \
//	         -faults none,crash:0.3@50,jam:0.05:p0.2,loss:0.1 -seeds 10
//	campaign -preset large-n-broadcast -progress -manifest run.json
//	campaign -preset huge-n-broadcast -debug-addr :6060 -progress
//	campaign -topos grid:64x64 -algos bgi -seeds 20 -bench-out bench.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"radionet/internal/bench"
	"radionet/internal/campaign"
	"radionet/internal/obs"
	"radionet/internal/precompute"
	"radionet/internal/protocol"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topos    = flag.String("topos", "", "comma-separated topology specs, e.g. grid:16x16,path:256,gnp:400:0.01")
		task     = flag.String("task", "broadcast", "default task for unqualified -algos entries: any registered task (see -list)")
		algos    = flag.String("algos", "", "comma-separated algorithms, optionally task-qualified, e.g. cd17,bgi or leader:cd17")
		faults   = flag.String("faults", "", "comma-separated fault specs crossed with every cell, e.g. none,crash:0.3@50,jam:0.05:p0.2,loss:0.1 ('+'-join terms to compose)")
		trans    = flag.String("transport", "", "comma-separated transport backends crossed with every cell, e.g. sim,lockstep (see -list; default sim)")
		seeds    = flag.Int("seeds", 10, "independent trials per configuration")
		seed     = flag.Uint64("seed", 1, "master seed")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "intra-round engine shards per trial (0 = auto-split spare cores on large graphs, 1 = off; output is byte-identical at any value)")
		cacheDir = flag.String("cache-dir", "", "precompute disk-cache directory (empty = off; output is byte-identical with the cache off, cold or warm)")
		maxR     = flag.Int64("maxrounds", 0, "per-trial round budget (0 = algorithm default)")
		format   = flag.String("format", "text", "output format: text|csv|jsonl")
		timings  = flag.Bool("timings", false, "include wall-time aggregates (non-deterministic)")
		config   = flag.String("config", "", "JSON matrix file (flags override its seeds/master_seed/max_rounds when set)")
		preset   = flag.String("preset", "", "built-in matrix preset: "+strings.Join(campaign.PresetNames(), "|")+" (flags override as with -config)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile (post-GC, at exit) to this file")
		progress = flag.Bool("progress", false, "stream a live progress line (trials done/total, ETA, current config) to stderr")
		manifest = flag.String("manifest", "", "write a machine-readable run manifest (JSON: config hash, protocols, per-config wall times, metrics) to this file")
		debug    = flag.String("debug-addr", "", "serve /debug/vars (live metrics) and /debug/pprof on this address for the run, e.g. :6060")
		benchOut = flag.String("bench-out", "", "write a bench-schema performance record of this run (grid \"custom\") to this file")
		list     = flag.Bool("list", false, "print the registered algorithm and transport tables (task, name, aliases, capabilities; backend, description) and exit")
	)
	flag.Parse()

	if *list {
		fmt.Print(protocol.MarkdownTable())
		return nil
	}
	if *preset != "" && *config != "" {
		return fmt.Errorf("-preset and -config are mutually exclusive")
	}
	m := campaign.Matrix{Seeds: *seeds, MasterSeed: *seed, MaxRounds: *maxR}
	if *preset != "" {
		loaded, err := campaign.Preset(*preset)
		if err != nil {
			return err
		}
		m = loaded
	}
	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			return err
		}
		loaded, err := campaign.LoadMatrix(f)
		f.Close()
		if err != nil {
			return err
		}
		m = loaded
	}
	if *preset != "" || *config != "" {
		// Flags given explicitly on the command line win over the
		// preset's or the file's values.
		flag.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "seeds":
				m.Seeds = *seeds
			case "seed":
				m.MasterSeed = *seed
			case "maxrounds":
				m.MaxRounds = *maxR
			}
		})
	}
	if *topos != "" {
		m.Topologies = splitList(*topos)
	}
	if *faults != "" {
		m.Faults = splitList(*faults)
	}
	if *trans != "" {
		m.Transports = splitList(*trans)
	}
	if *algos != "" {
		specs, err := parseAlgos(*algos, campaign.Task(*task))
		if err != nil {
			return err
		}
		m.Algorithms = specs
	}
	if len(m.Topologies) == 0 || len(m.Algorithms) == 0 {
		return fmt.Errorf("no matrix: provide -topos and -algos, or -config (see -h)")
	}

	sink, err := campaign.NewSink(*format, os.Stdout, m.SinkSchema(*timings))
	if err != nil {
		return err
	}
	// Profiling starts only after every usage error has had its chance, so
	// a bad invocation never truncates an existing profile file.
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "campaign: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: memprofile:", err)
			}
		}()
	}
	c := campaign.Campaign{Matrix: m, Workers: *workers, Timings: *timings, EngineShards: *shards}
	if *cacheDir != "" {
		c.Cache = precompute.NewStore(*cacheDir)
	}
	// The telemetry surface: all of it observes the run without touching
	// the sink stream, so stdout stays byte-identical with or without it.
	var st campaign.RunStats
	if *manifest != "" || *debug != "" || *benchOut != "" {
		c.Obs = obs.NewRegistry()
		c.Stats = &st
	}
	if *progress {
		c.Progress = os.Stderr
	}
	if *debug != "" {
		srv, err := obs.StartDebugServer(*debug, c.Obs)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "campaign: debug server on http://%s/debug/vars\n", srv.Addr)
	}
	if _, err = c.Run(sink); err != nil {
		return err
	}
	now := time.Now().UTC().Format(time.RFC3339)
	if *manifest != "" {
		man := c.Manifest("campaign", &st)
		man.Generated = now
		if err := man.WriteFile(*manifest); err != nil {
			return err
		}
	}
	if *benchOut != "" {
		f := bench.FromStats("custom", m, &st, c.Obs)
		f.Generated = now
		if err := f.WriteFile(*benchOut); err != nil {
			return err
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// parseAlgos parses "cd17,bgi" (using the default task) or task-qualified
// entries like "leader:cd17" / "multicast:pipelined". Tasks are whatever
// the protocol registry knows (see -list), not a hardcoded pair.
func parseAlgos(s string, def campaign.Task) ([]campaign.AlgoSpec, error) {
	var specs []campaign.AlgoSpec
	for _, entry := range splitList(s) {
		spec := campaign.AlgoSpec{Task: def, Algo: entry}
		if t, a, ok := strings.Cut(entry, ":"); ok {
			if !protocol.KnownTask(protocol.Task(t)) {
				return nil, fmt.Errorf("algorithm %q: unknown task %q", entry, t)
			}
			spec = campaign.AlgoSpec{Task: campaign.Task(t), Algo: a}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
