// Command radiosim runs a protocol from the algorithm registry on a
// generated radio network topology and prints the outcome. The task and
// algorithm catalogue is whatever internal/protocol knows — print it with
// -list. With -trials N it fans N independently seeded runs of the same
// scenario out across the campaign worker pool and prints aggregate round
// statistics.
//
// Examples:
//
//	radiosim -list
//	radiosim -topology grid -rows 16 -cols 64 -algo cd17
//	radiosim -topology cliquepath -k 32 -s 8 -algo bgi -seed 7
//	radiosim -topology geometric -n 500 -radius 0.08 -task leader
//	radiosim -topology grid -task leader -algo gh13
//	radiosim -topology grid -task multicast -algo pipelined
//	radiosim -topology grid -algo cd17 -trials 100 -workers 8
//	radiosim -topology grid -task leader -algo cd17 -faults crash:0.2@50
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"time"

	"radionet"
	"radionet/internal/campaign"
	"radionet/internal/obs"
	"radionet/internal/protocol"
	"radionet/internal/radio"
	"radionet/internal/rng"
	"radionet/internal/stats"
	"radionet/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiosim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topology = flag.String("topology", "grid", "topology: path|cycle|grid|cliquepath|caterpillar|tree|geometric|gnp|hypercube")
		n        = flag.Int("n", 256, "node count (path, cycle, geometric, gnp)")
		rows     = flag.Int("rows", 16, "grid rows")
		cols     = flag.Int("cols", 16, "grid cols")
		k        = flag.Int("k", 16, "cliquepath clique count / caterpillar spine / tree depth")
		s        = flag.Int("s", 8, "cliquepath clique size / caterpillar legs / tree arity")
		radius   = flag.Float64("radius", 0.1, "geometric radius")
		p        = flag.Float64("p", 0.02, "gnp edge probability")
		dim      = flag.Int("dim", 8, "hypercube dimension")
		task     = flag.String("task", "broadcast", "task: any registered task (see -list)")
		algo     = flag.String("algo", "cd17", "algorithm name or alias for the task (see -list)")
		seed     = flag.Uint64("seed", 1, "master seed")
		value    = flag.Int64("value", 42, "broadcast message value")
		source   = flag.Int("source", 0, "broadcast source node")
		max      = flag.Int64("maxrounds", 0, "round budget (0 = algorithm default)")
		doTrace  = flag.Bool("trace", false, "print a channel activity report after the run")
		faults   = flag.String("faults", "", "fault scenario spec, e.g. crash:0.3@50+jam:0.05:p0.2 (fault-capable algorithms only; campaign grammar)")
		trials   = flag.Int("trials", 1, "independent runs of the scenario (each with a seed derived from -seed)")
		workers  = flag.Int("workers", 0, "worker goroutines for -trials fan-out (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 1, "intra-round engine shards (>1 splits delivery work across goroutines; output is byte-identical at any value)")
		trans    = flag.String("transport", "", "transport backend for the run, e.g. lockstep (see -list; default sim — results are identical across backends)")
		manifest = flag.String("manifest", "", "write a machine-readable run manifest (JSON: scenario, outcome, metric snapshot) to this file")
		debug    = flag.String("debug-addr", "", "serve /debug/vars (live metrics) and /debug/pprof on this address for the run, e.g. :6060")
		list     = flag.Bool("list", false, "print the registered algorithm and transport tables (task, name, aliases, capabilities; backend, description) and exit")
	)
	flag.Parse()

	if *list {
		fmt.Print(protocol.MarkdownTable())
		return nil
	}

	desc, ok := protocol.Lookup(protocol.Task(*task), *algo)
	if !ok {
		if !protocol.KnownTask(protocol.Task(*task)) {
			return fmt.Errorf("unknown task %q (see -list)", *task)
		}
		return fmt.Errorf("unknown %s algorithm %q (known: %s)", *task, *algo, protocol.KnownList(protocol.Task(*task)))
	}

	if *trans != "" && *trans != campaign.SimTransport {
		if !radio.KnownTransport(*trans) {
			return fmt.Errorf("unknown transport %q (known: %s)", *trans, radio.KnownTransports())
		}
		if !desc.Caps.Transport {
			return fmt.Errorf("algorithm %s:%s does not support -transport", *task, desc.Name)
		}
	}

	var faultSpec campaign.FaultSpec
	if *faults != "" {
		fs, err := campaign.ParseFaultSpec(*faults)
		if err != nil {
			return err
		}
		if !desc.Caps.Faults && !fs.None() {
			return fmt.Errorf("algorithm %s:%s does not support -faults", *task, desc.Name)
		}
		faultSpec = fs
	}

	var g *radionet.Graph
	switch *topology {
	case "path":
		g = radionet.Path(*n)
	case "cycle":
		g = radionet.Cycle(*n)
	case "grid":
		g = radionet.Grid(*rows, *cols)
	case "cliquepath":
		g = radionet.PathOfCliques(*k, *s)
	case "caterpillar":
		g = radionet.Caterpillar(*k, *s)
	case "tree":
		g = radionet.BalancedTree(*s, *k)
	case "geometric":
		g = radionet.RandomGeometric(*n, *radius, *seed)
	case "gnp":
		g = radionet.Gnp(*n, *p, *seed)
	case "hypercube":
		g = radionet.Hypercube(*dim)
	default:
		return fmt.Errorf("unknown topology %q", *topology)
	}
	net := radionet.NewNetwork(g)
	fmt.Printf("network: %v, diameter=%d\n", g, net.Diameter)

	// Telemetry: one registry for the whole invocation (single run or the
	// -trials fan-out), scrapeable live via -debug-addr and written out as
	// a manifest. Strictly observational — stdout is unchanged by it.
	var reg *obs.Registry
	if *manifest != "" || *debug != "" {
		reg = obs.NewRegistry()
	}
	if *debug != "" {
		srv, err := obs.StartDebugServer(*debug, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "radiosim: debug server on http://%s/debug/vars\n", srv.Addr)
	}
	scenario := fmt.Sprintf("%v/%s:%s", g, *task, desc.Name)
	start := time.Now()
	tc := obs.NewTrialCollector(reg)

	runErr := func() error {
		if *trials > 1 {
			if *doTrace {
				return fmt.Errorf("-trace requires a single run (drop -trials)")
			}
			return runTrials(net, desc, *task, *algo, faultSpec, *trans, *seed, *value, *source, *max, *trials, *workers, *shards, reg, tc)
		}
		switch *task {
		case "broadcast":
			var rec *trace.Recorder
			opts := radionet.BroadcastOptions{
				Algorithm:    radionet.Algorithm(*algo),
				Seed:         *seed,
				MaxRounds:    *max,
				Metrics:      reg,
				Faults:       faultPlan(net, desc, faultSpec, *seed, *source, *value),
				EngineShards: *shards,
				Transport:    *trans,
			}
			if *doTrace {
				rec = &trace.Recorder{}
				opts.Hook = rec.HookFunc()
			}
			res, err := net.Broadcast(*source, *value, opts)
			if err != nil {
				return err
			}
			tc.Record(res.Rounds, time.Since(start), res.Done, 0)
			fmt.Printf("broadcast(%s): done=%v rounds=%d precompute=%d\n",
				*algo, res.Done, res.Rounds, res.PrecomputeRounds)
			if opts.Faults != nil {
				fmt.Printf("faults(%s): survivors=%d reach=%d/%d\n",
					faultSpec.Spec, opts.Faults.Survivors(), res.Reached, res.ReachTarget)
			}
			if rec != nil {
				if err := rec.Report(os.Stdout); err != nil {
					return err
				}
			}
			if !res.Done {
				return fmt.Errorf("broadcast did not complete within budget")
			}
		case "leader":
			opts := radionet.LeaderOptions{
				Algorithm:    radionet.LeaderAlgorithm(*algo),
				Seed:         *seed,
				MaxRounds:    *max,
				Metrics:      reg,
				Faults:       faultPlan(net, desc, faultSpec, *seed, *source, *value),
				EngineShards: *shards,
				Transport:    *trans,
			}
			res, err := net.LeaderElection(opts)
			if err != nil {
				return err
			}
			tc.Record(res.Rounds, time.Since(start), res.Done, 0)
			fmt.Printf("leader(%s): done=%v rounds=%d leader=node%d id=%d candidates=%d\n",
				*algo, res.Done, res.Rounds, res.Leader, res.LeaderID, len(res.Candidates))
			if opts.Faults != nil {
				fmt.Printf("faults(%s): survivors=%d reach=%d/%d\n",
					faultSpec.Spec, opts.Faults.Survivors(), res.Reached, res.ReachTarget)
			}
			if !res.Done {
				return fmt.Errorf("election did not complete within budget")
			}
		default:
			// Any other registered task runs straight off its descriptor.
			res, err := registryRun(net, desc, faultSpec, *trans, *seed, *value, *source, *max, *shards, reg)
			if err != nil {
				return err
			}
			tc.Record(res.Rounds, time.Since(start), res.Done, 0)
			fmt.Printf("%s(%s): done=%v rounds=%d tx=%d\n", *task, *algo, res.Done, res.Rounds, res.Tx)
			if !res.Done {
				return fmt.Errorf("%s did not complete within budget", *task)
			}
		}
		return nil
	}()
	// The manifest is written even for incomplete runs — a budget-exhausted
	// run is telemetry too.
	if *manifest != "" {
		man := buildManifest(scenario, net.G.N(), net.Diameter, *workers, time.Since(start), reg)
		if err := man.WriteFile(*manifest); err != nil && runErr == nil {
			runErr = err
		}
	}
	return runErr
}

// buildManifest assembles the radiosim run manifest: the one-scenario
// analogue of the campaign manifest, derived from the registry's trial
// metrics so both tools report the same schema.
func buildManifest(scenario string, n, d, workers int, wall time.Duration, reg *obs.Registry) *obs.Manifest {
	man := obs.NewManifest("radiosim")
	sum := sha256.Sum256([]byte(scenario))
	man.ConfigHash = hex.EncodeToString(sum[:])
	man.Generated = time.Now().UTC().Format(time.RFC3339)
	man.Workers = workers
	man.WallMS = float64(wall.Nanoseconds()) / 1e6
	man.Protocols = campaign.RegisteredProtocols()
	man.Transports = campaign.RegisteredTransports()
	snap := reg.Snapshot()
	rec := obs.ConfigRecord{
		Name:     scenario,
		N:        n,
		D:        d,
		Trials:   int(snap.Counters[obs.TrialsCompleted]),
		Failures: int(snap.Counters[obs.TrialsFailed]),
	}
	if h, ok := snap.Histograms[obs.TrialRounds]; ok {
		rec.RoundsMean = h.Mean()
	}
	if h, ok := snap.Histograms[obs.TrialWall]; ok {
		rec.WallMSTotal = float64(h.Sum) / 1000
		if rec.Trials > 0 {
			rec.WallMSMean = rec.WallMSTotal / float64(rec.Trials)
		}
	}
	man.Configs = []obs.ConfigRecord{rec}
	man.Metrics = snap
	return man
}

// faultPlan realizes fs on the network for one run seeded by seed,
// protecting the descriptor's protected nodes — the broadcast source, a
// leader election's would-be winner — exactly as the campaign does.
// Returns nil for the unfaulted spec; each run needs its own plan (plans
// are single-use).
func faultPlan(net *radionet.Network, desc *protocol.Descriptor, fs campaign.FaultSpec, seed uint64, source int, value int64) *radionet.FaultPlan {
	if fs.None() {
		return nil // skip ProtectedNodes: it may resample a candidate set
	}
	sources := trialSources(desc, source, value)
	return fs.TrialPlan(net.G, seed, desc.ProtectedNodes(net.G, net.Diameter, seed, sources, nil)...)
}

// trialSources maps the -source/-value flags onto the descriptor's
// source-set convention (nil for self-seeding descriptors like the
// leader elections).
func trialSources(desc *protocol.Descriptor, source int, value int64) map[int]int64 {
	if desc.DefaultSources() == nil {
		return nil
	}
	return map[int]int64{source: value}
}

// registryRun executes one run of a registry task that has no facade
// sugar (multicast, partition, and whatever gets registered next). Done
// is gated on the descriptor's postcondition check exactly as the
// campaign and the facade gate it — the CLIs must agree on one seed.
func registryRun(net *radionet.Network, desc *protocol.Descriptor, fs campaign.FaultSpec, transport string, seed uint64, value int64, source int, max int64, shards int, reg *obs.Registry) (protocol.Result, error) {
	var tr radio.Transport
	if transport != "" && transport != campaign.SimTransport {
		t, err := radio.NewTransport(transport)
		if err != nil {
			return protocol.Result{}, err
		}
		tr = t
		defer tr.Close()
	}
	// Sharded engines park resident workers; close them when the run ends
	// rather than leaving the teardown to GC.
	var engines radio.EngineSet
	defer engines.Close()
	r, err := desc.Build(protocol.BuildParams{
		G:         net.G,
		D:         net.Diameter,
		Seed:      seed,
		Sources:   trialSources(desc, source, value),
		Faults:    faultPlan(net, desc, fs, seed, source, value),
		Hook:      obs.NewEngineCollector(reg).Hook(),
		Shards:    shards,
		Transport: tr,
		Engines:   &engines,
	})
	if err != nil {
		return protocol.Result{}, err
	}
	res := r.Run(max)
	if res.Done && res.Verify != nil && res.Verify() != nil {
		res.Done = false
	}
	return res, nil
}

// runTrials is the -trials fan-out mode: n independent runs of the same
// scenario across the campaign worker pool, each with its own RNG stream
// derived from the master seed, reduced to aggregate round statistics.
// Output is identical for every -workers value.
func runTrials(net *radionet.Network, desc *protocol.Descriptor, task, algo string, fs campaign.FaultSpec, transport string, seed uint64, value int64, source int, max int64, trials, workers, shards int, reg *obs.Registry, tc *obs.TrialCollector) error {
	seeds := rng.New(seed).Fork(0x7215)
	rounds := make([]float64, trials)
	failed := make([]bool, trials)
	errs := make([]error, trials)
	campaign.ForEach(workers, trials, func(i int) {
		trialSeed := seeds.Fork(uint64(i)).Uint64()
		trialStart := time.Now()
		var (
			res radionet.Result
			err error
		)
		switch task {
		case "broadcast":
			res, err = net.Broadcast(source, value, radionet.BroadcastOptions{
				Algorithm:    radionet.Algorithm(algo),
				Seed:         trialSeed,
				MaxRounds:    max,
				Metrics:      reg,
				Faults:       faultPlan(net, desc, fs, trialSeed, source, value),
				EngineShards: shards,
				Transport:    transport,
			})
		case "leader":
			var lr radionet.LeaderResult
			lr, err = net.LeaderElection(radionet.LeaderOptions{
				Algorithm:    radionet.LeaderAlgorithm(algo),
				Seed:         trialSeed,
				MaxRounds:    max,
				Metrics:      reg,
				Faults:       faultPlan(net, desc, fs, trialSeed, source, value),
				EngineShards: shards,
				Transport:    transport,
			})
			res = lr.Result
		default:
			var pres protocol.Result
			pres, err = registryRun(net, desc, fs, transport, trialSeed, value, source, max, shards, reg)
			res = radionet.Result{Rounds: pres.Rounds, Done: pres.Done}
		}
		if err != nil {
			errs[i] = err // a config error; identical for every trial
			failed[i] = true
			return
		}
		tc.Record(res.Rounds, time.Since(trialStart), res.Done, 0)
		rounds[i] = float64(res.Rounds)
		failed[i] = !res.Done
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var agg stats.Running
	failures := 0
	for i := range rounds {
		agg.Add(rounds[i])
		if failed[i] {
			failures++
		}
	}
	s := agg.Summary()
	fmt.Printf("%s(%s): trials=%d failures=%d\n", task, algo, trials, failures)
	fmt.Printf("rounds: mean=%.1f std=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.0f\n",
		s.Mean, s.Std, s.P50, s.P90, s.P99, s.Max)
	if failures > 0 {
		return fmt.Errorf("%d/%d trials did not complete within budget", failures, trials)
	}
	return nil
}
