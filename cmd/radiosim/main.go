// Command radiosim runs a broadcasting or leader election protocol on a
// generated radio network topology and prints the outcome. With -trials N
// it fans N independently seeded runs of the same scenario out across the
// campaign worker pool and prints aggregate round statistics.
//
// Examples:
//
//	radiosim -topology grid -rows 16 -cols 64 -algo cd17
//	radiosim -topology cliquepath -k 32 -s 8 -algo bgi -seed 7
//	radiosim -topology geometric -n 500 -radius 0.08 -task leader
//	radiosim -topology grid -algo cd17 -trials 100 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"

	"radionet"
	"radionet/internal/campaign"
	"radionet/internal/rng"
	"radionet/internal/stats"
	"radionet/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiosim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topology = flag.String("topology", "grid", "topology: path|cycle|grid|cliquepath|caterpillar|tree|geometric|gnp|hypercube")
		n        = flag.Int("n", 256, "node count (path, cycle, geometric, gnp)")
		rows     = flag.Int("rows", 16, "grid rows")
		cols     = flag.Int("cols", 16, "grid cols")
		k        = flag.Int("k", 16, "cliquepath clique count / caterpillar spine / tree depth")
		s        = flag.Int("s", 8, "cliquepath clique size / caterpillar legs / tree arity")
		radius   = flag.Float64("radius", 0.1, "geometric radius")
		p        = flag.Float64("p", 0.02, "gnp edge probability")
		dim      = flag.Int("dim", 8, "hypercube dimension")
		task     = flag.String("task", "broadcast", "task: broadcast|leader")
		algo     = flag.String("algo", "cd17", "broadcast algo: cd17|hw16|bgi|truncated-decay; leader algo: cd17|binary-search|max-broadcast")
		seed     = flag.Uint64("seed", 1, "master seed")
		value    = flag.Int64("value", 42, "broadcast message value")
		source   = flag.Int("source", 0, "broadcast source node")
		max      = flag.Int64("maxrounds", 0, "round budget (0 = algorithm default)")
		doTrace  = flag.Bool("trace", false, "print a channel activity report after the run")
		faults   = flag.String("faults", "", "fault scenario spec for broadcast runs, e.g. crash:0.3@50+jam:0.05:p0.2 (campaign grammar)")
		trials   = flag.Int("trials", 1, "independent runs of the scenario (each with a seed derived from -seed)")
		workers  = flag.Int("workers", 0, "worker goroutines for -trials fan-out (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var faultSpec campaign.FaultSpec
	if *faults != "" {
		fs, err := campaign.ParseFaultSpec(*faults)
		if err != nil {
			return err
		}
		if *task != "broadcast" {
			return fmt.Errorf("-faults supports -task broadcast only")
		}
		faultSpec = fs
	}

	var g *radionet.Graph
	switch *topology {
	case "path":
		g = radionet.Path(*n)
	case "cycle":
		g = radionet.Cycle(*n)
	case "grid":
		g = radionet.Grid(*rows, *cols)
	case "cliquepath":
		g = radionet.PathOfCliques(*k, *s)
	case "caterpillar":
		g = radionet.Caterpillar(*k, *s)
	case "tree":
		g = radionet.BalancedTree(*s, *k)
	case "geometric":
		g = radionet.RandomGeometric(*n, *radius, *seed)
	case "gnp":
		g = radionet.Gnp(*n, *p, *seed)
	case "hypercube":
		g = radionet.Hypercube(*dim)
	default:
		return fmt.Errorf("unknown topology %q", *topology)
	}
	net := radionet.NewNetwork(g)
	fmt.Printf("network: %v, diameter=%d\n", g, net.Diameter)

	if *trials > 1 {
		if *doTrace {
			return fmt.Errorf("-trace requires a single run (drop -trials)")
		}
		return runTrials(net, *task, *algo, faultSpec, *seed, *value, *source, *max, *trials, *workers)
	}

	switch *task {
	case "broadcast":
		var rec *trace.Recorder
		opts := radionet.BroadcastOptions{
			Algorithm: radionet.Algorithm(*algo),
			Seed:      *seed,
			MaxRounds: *max,
			Faults:    faultPlan(net, faultSpec, *seed, *source),
		}
		if *doTrace {
			rec = &trace.Recorder{}
			opts.Hook = rec.HookFunc()
		}
		res, err := net.Broadcast(*source, *value, opts)
		if err != nil {
			return err
		}
		fmt.Printf("broadcast(%s): done=%v rounds=%d precompute=%d\n",
			*algo, res.Done, res.Rounds, res.PrecomputeRounds)
		if opts.Faults != nil {
			fmt.Printf("faults(%s): survivors=%d reach=%d/%d\n",
				faultSpec.Spec, opts.Faults.Survivors(), res.Reached, res.ReachTarget)
		}
		if rec != nil {
			if err := rec.Report(os.Stdout); err != nil {
				return err
			}
		}
		if !res.Done {
			return fmt.Errorf("broadcast did not complete within budget")
		}
	case "leader":
		res, err := net.LeaderElection(radionet.LeaderOptions{
			Algorithm: radionet.LeaderAlgorithm(*algo),
			Seed:      *seed,
			MaxRounds: *max,
		})
		if err != nil {
			return err
		}
		fmt.Printf("leader(%s): done=%v rounds=%d leader=node%d id=%d candidates=%d\n",
			*algo, res.Done, res.Rounds, res.Leader, res.LeaderID, len(res.Candidates))
		if !res.Done {
			return fmt.Errorf("election did not complete within budget")
		}
	default:
		return fmt.Errorf("unknown task %q", *task)
	}
	return nil
}

// faultPlan realizes fs on the network for one run seeded by seed,
// protecting the broadcast source (the campaign convention). Returns nil
// for the unfaulted spec; each run needs its own plan (plans are
// single-use).
func faultPlan(net *radionet.Network, fs campaign.FaultSpec, seed uint64, source int) *radionet.FaultPlan {
	return fs.TrialPlan(net.G, seed, source)
}

// runTrials is the -trials fan-out mode: n independent runs of the same
// scenario across the campaign worker pool, each with its own RNG stream
// derived from the master seed, reduced to aggregate round statistics.
// Output is identical for every -workers value.
func runTrials(net *radionet.Network, task, algo string, fs campaign.FaultSpec, seed uint64, value int64, source int, max int64, trials, workers int) error {
	seeds := rng.New(seed).Fork(0x7215)
	rounds := make([]float64, trials)
	failed := make([]bool, trials)
	errs := make([]error, trials)
	campaign.ForEach(workers, trials, func(i int) {
		trialSeed := seeds.Fork(uint64(i)).Uint64()
		var (
			res radionet.Result
			err error
		)
		switch task {
		case "broadcast":
			res, err = net.Broadcast(source, value, radionet.BroadcastOptions{
				Algorithm: radionet.Algorithm(algo),
				Seed:      trialSeed,
				MaxRounds: max,
				Faults:    faultPlan(net, fs, trialSeed, source),
			})
		case "leader":
			var lr radionet.LeaderResult
			lr, err = net.LeaderElection(radionet.LeaderOptions{
				Algorithm: radionet.LeaderAlgorithm(algo),
				Seed:      trialSeed,
				MaxRounds: max,
			})
			res = lr.Result
		default:
			err = fmt.Errorf("unknown task %q", task)
		}
		if err != nil {
			errs[i] = err // a config error; identical for every trial
			failed[i] = true
			return
		}
		rounds[i] = float64(res.Rounds)
		failed[i] = !res.Done
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var agg stats.Running
	failures := 0
	for i := range rounds {
		agg.Add(rounds[i])
		if failed[i] {
			failures++
		}
	}
	s := agg.Summary()
	fmt.Printf("%s(%s): trials=%d failures=%d\n", task, algo, trials, failures)
	fmt.Printf("rounds: mean=%.1f std=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.0f\n",
		s.Mean, s.Std, s.P50, s.P90, s.P99, s.Max)
	if failures > 0 {
		return fmt.Errorf("%d/%d trials did not complete within budget", failures, trials)
	}
	return nil
}
