// Command bench runs the pinned performance-trajectory grids and emits
// schema-versioned BENCH_<grid>.json files (see internal/bench). The
// committed files at the repo root form the simulator's throughput
// history; regenerate them when hot-path work lands.
//
// Examples:
//
//	bench                          # run every grid, write BENCH_*.json in .
//	bench -grid decay -workers 4
//	bench -grid huge -shards 4 -append   # keep the old measurement as history
//	bench -quick -out /tmp/bench   # seconds-scale CI smoke variant
//	bench -validate BENCH_decay.json BENCH_compete.json
//	bench -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"radionet/internal/bench"
	"radionet/internal/precompute"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		grid     = flag.String("grid", "all", "comma-separated grid names, or all")
		quick    = flag.Bool("quick", false, "run the seconds-scale CI variant instead of the pinned full scale")
		out      = flag.String("out", ".", "output directory for BENCH_<grid>.json files")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "intra-round engine shards per trial (0 = auto-split spare cores on large graphs, 1 = off)")
		cacheDir = flag.String("cache-dir", "", "precompute disk-cache directory, shared across grids (empty = off; never changes measured output, only setup wall time)")
		appendH  = flag.Bool("append", false, "append to the trajectory: fold an existing BENCH_<grid>.json's measurement into the new file's history instead of discarding it")
		validate = flag.Bool("validate", false, "validate the bench files given as arguments and exit")
		list     = flag.Bool("list", false, "list the pinned grids and exit")
	)
	flag.Parse()

	if *list {
		for _, g := range bench.Grids() {
			tag := ""
			if g.OptIn {
				tag = " (opt-in: excluded from -grid all)"
			}
			fmt.Printf("%-10s %s%s\n", g.Name, g.Summary, tag)
		}
		return nil
	}
	if *validate {
		if flag.NArg() == 0 {
			return fmt.Errorf("-validate needs file arguments")
		}
		for _, path := range flag.Args() {
			f, err := bench.ParseFile(path)
			if err != nil {
				return err
			}
			fmt.Printf("%s: ok (grid %s, schema %d, %d entries)\n", path, f.Grid, f.SchemaVersion, len(f.Entries))
		}
		return nil
	}

	var grids []bench.Grid
	if *grid == "all" {
		// Opt-in grids (the minutes-scale "huge" stress grid) only run
		// when named explicitly.
		for _, g := range bench.Grids() {
			if !g.OptIn {
				grids = append(grids, g)
			}
		}
	} else {
		for _, name := range strings.Split(*grid, ",") {
			name = strings.TrimSpace(name)
			g, ok := bench.LookupGrid(name)
			if !ok {
				known := make([]string, 0, len(bench.Grids()))
				for _, k := range bench.Grids() {
					known = append(known, k.Name)
				}
				return fmt.Errorf("unknown grid %q (known: %s)", name, strings.Join(known, " "))
			}
			grids = append(grids, g)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	// One store across every grid in this invocation, so grids sharing a
	// topology (decay and compete both pin randtree:1e4/1e5 under the same
	// master seed) build each product once per run; with -cache-dir the
	// products additionally persist across reruns. Sharing is output-
	// neutral: equal keys mean identical graphs.
	store := precompute.NewStore(*cacheDir)
	for _, g := range grids {
		start := time.Now()
		f, err := bench.Run(g, *quick, *workers, *shards, store)
		if err != nil {
			return err
		}
		f.Generated = time.Now().UTC().Format(time.RFC3339)
		path := filepath.Join(*out, "BENCH_"+g.Name+".json")
		if *appendH {
			prev, err := bench.ParseFile(path)
			switch {
			case err == nil:
				f.AppendHistory(prev)
			case !errors.Is(err, fs.ErrNotExist):
				// A malformed existing file must not be silently overwritten:
				// its trajectory would be lost. A missing file starts one.
				return err
			}
		}
		if err := f.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("%s: %d entries, %.1fs wall, %.0f rounds/s\n",
			path, len(f.Entries), time.Since(start).Seconds(), f.RoundsPerSec)
	}
	return nil
}
