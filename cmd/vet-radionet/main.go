// Command vet-radionet runs the repository's invariant analyzers
// (internal/lint) over Go packages. It works in two modes:
//
// Standalone (the usual one):
//
//	go run ./cmd/vet-radionet ./...
//
// loads, type-checks and analyzes the matched packages plus the
// whole-module registration-reachability check, printing findings as
// file:line:col: message [analyzer] and exiting 1 if there are any.
//
// Vettool: the binary also speaks the go vet unitchecker protocol
// (-V=full version handshake, then one *.cfg JSON per package), so
//
//	go build -o /tmp/vet-radionet ./cmd/vet-radionet
//	go vet -vettool=/tmp/vet-radionet ./...
//
// runs the same analyzers under the go command's build cache, including
// over _test.go files (analyzers marked SkipTests still skip them). The
// whole-module reachability check needs the full package graph and runs
// only in standalone mode.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"radionet/internal/lint"
)

func main() {
	// The go vet handshake: `-V=full` must print a stable identity line
	// before any flag parsing of our own.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V=") {
		printVersion()
		return
	}
	// go vet probes the tool's flag surface with `-flags`, expecting a
	// JSON array of flag descriptions; this tool passes none through.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}
	os.Exit(standalone())
}

func standalone() int {
	var (
		listFlag = flag.Bool("list", false, "list analyzers and exit")
		jsonFlag = flag.Bool("json", false, "emit findings as JSON")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: vet-radionet [-list] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags := lint.RunAnalyzers(res, lint.All())
	diags = append(diags, lint.CheckRegistryReachability(res)...)
	lint.SortDiagnostics(diags)

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vet-radionet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// printVersion implements the go vet -V=full handshake: name, a version
// marker, and a content hash of the executable so the go command can
// cache vet results per tool build.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), h.Sum(nil))
}

// vetConfig is the per-package JSON configuration the go command hands a
// vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredGoFiles            []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package under the go vet protocol and returns
// the process exit code: 0 clean, 2 findings, 1 operational failure.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vet-radionet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command asks dependencies for "facts" (vetx) before the
	// target; this suite keeps no cross-package facts, so an empty file
	// satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(importPath string) (io.ReadCloser, error) {
		mapped, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		file, ok := cfg.PackageFile[mapped]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", mapped)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := lint.NewTypesInfo()
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Test variants carry an annotated import path, e.g.
	// "p [p.test]" or "p.test"; Scope decisions use the base path.
	scopePath := cfg.ImportPath
	if i := strings.Index(scopePath, " ["); i >= 0 {
		scopePath = scopePath[:i]
	}
	pkg := &lint.Package{
		ImportPath: scopePath,
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	res := &lint.Result{Fset: fset, Pkgs: []*lint.Package{pkg}}
	diags := lint.RunAnalyzers(res, lint.All())
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	return 2
}
