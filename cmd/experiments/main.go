// Command experiments regenerates the evaluation artifacts of the
// reproduction (DESIGN.md §6): one table per theorem/lemma/comparison
// claim of the paper, printed as aligned text or CSV.
//
// Examples:
//
//	experiments                 # run everything at full scale
//	experiments -run F1,F5      # selected experiments
//	experiments -quick          # CI-scale instances
//	experiments -csv -run T2    # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"radionet/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runIDs  = flag.String("run", "all", "comma-separated experiment IDs (T1..T7, F1..F6) or 'all'")
		quick   = flag.Bool("quick", false, "small instances (CI scale)")
		seeds   = flag.Int("seeds", 0, "repetitions per configuration (0 = experiment default)")
		seed    = flag.Uint64("seed", 1, "master seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		workers = flag.Int("workers", 0, "worker goroutines for repetition loops (0 = GOMAXPROCS); tables are identical for every value")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Printf("%-4s %s\n", id, exp.Title(id))
		}
		return nil
	}

	var ids []string
	if *runIDs == "all" {
		ids = exp.IDs()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	opts := exp.Options{Seed: *seed, Seeds: *seeds, Quick: *quick, Workers: *workers}
	for _, id := range ids {
		start := time.Now()
		tbl, err := exp.Run(id, opts)
		if err != nil {
			return err
		}
		if *csv {
			if err := tbl.CSV(os.Stdout); err != nil {
				return err
			}
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
