module radionet

go 1.24
