// Package cluster implements the exponential-shift graph clustering of
// Miller, Peng and Xu (SPAA'13) that the paper calls Partition(β)
// (Lemma 2.1), in two forms:
//
//   - a centralized reference implementation used as the precomputation
//     oracle of the Compete pipeline and by all clustering experiments, and
//   - a distributed radio-network protocol (Decay-layered wave expansion)
//     that realizes Lemma 2.1's "can be implemented in the radio network
//     setting in O(log³n/β) rounds".
//
// Partition(β) has every node v draw an exponential variate δ_v with rate
// β and assign v to the center u maximizing δ_u − dist(u, v). Guarantees
// (Lemma 2.1): strong cluster diameter O(log n/β) whp, and every edge is
// cut with probability O(β). Theorem 2.2 (the paper's key analytic
// contribution) concerns the expected distance to the cluster center when
// β = 2^-j for a random j ∈ [0.01·log D, 0.1·log D].
package cluster

import (
	"fmt"
	"math"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// Result is a clustering of a graph: an assignment of every node to a
// cluster center such that centers are their own centers and every cluster
// induces a connected subgraph containing a shortest path from each member
// to the center.
type Result struct {
	Beta   float64
	Center []int32   // Center[v] = v's cluster center
	Parent []int32   // forest edges toward the center; Parent[center] = -1
	Dist   []int32   // hop distance from v to Center[v]
	Delta  []float64 // the exponential shifts used

	g *graph.Graph
}

// item is a priority-queue entry for the multi-source Dijkstra.
type item struct {
	key    float64 // dist(u, v) - δ_v, to be minimized
	node   int32
	center int32
	parent int32
	dist   int32
}

// The priority queue is a hand-rolled binary min-heap over the concrete
// item type. The sift routines replicate container/heap's up/down moves
// (same comparisons, same swaps), so the pop order — including the order
// of equal keys — is exactly what heap.Init/Push/Pop produced before the
// rewrite; what changed is that pushes no longer box every item through
// an interface allocation, which dominated Partition's cost.

func heapUp(q []item, j int) {
	for j > 0 {
		i := (j - 1) / 2 // parent
		if q[j].key >= q[i].key {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func heapDown(q []item, i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && q[j2].key < q[j1].key {
			j = j2 // = 2*i + 2  // right child
		}
		if q[j].key >= q[i].key {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

// Scratch holds reusable Partition buffers (the priority-queue backing
// array and the settled bitmap), letting callers that build many
// partitions of one graph — the Compete precomputation, trial campaigns —
// skip the per-call allocations. The zero value is ready to use; a Scratch
// is not safe for concurrent use.
type Scratch struct {
	pq      []item
	settled []bool
}

// Partition runs the centralized Partition(β) on g using randomness from
// r. It panics if beta <= 0.
func Partition(g *graph.Graph, beta float64, r *rng.Rand) *Result {
	return PartitionScratch(g, beta, r, nil)
}

// PartitionScratch is Partition with reusable build buffers; scr may be
// nil. The result is bit-identical for every scr — the scratch only
// recycles memory.
func PartitionScratch(g *graph.Graph, beta float64, r *rng.Rand, scr *Scratch) *Result {
	if beta <= 0 {
		panic("cluster: Partition requires beta > 0")
	}
	n := g.N()
	res := &Result{
		Beta:   beta,
		Center: make([]int32, n),
		Parent: make([]int32, n),
		Dist:   make([]int32, n),
		Delta:  make([]float64, n),
		g:      g,
	}
	var q []item
	var settled []bool
	if scr != nil {
		q = scr.pq[:0]
		if cap(scr.settled) >= n {
			settled = scr.settled[:n]
			clear(settled)
		}
	}
	if settled == nil {
		settled = make([]bool, n)
	}
	if cap(q) < n {
		q = make([]item, 0, n)
	}
	for v := 0; v < n; v++ {
		res.Center[v] = -1
		res.Parent[v] = -1
		res.Delta[v] = r.Exp(beta)
	}
	// Multi-source Dijkstra: node v is a virtual source with offset -δ_v;
	// the first settlement of u determines its center. Unit edge weights
	// mean the settled path is a shortest path to the center, and by the
	// MPX argument every node on it belongs to the same cluster, so Dist
	// is the strong (intra-cluster) distance to the center.
	for v := 0; v < n; v++ {
		q = append(q, item{key: -res.Delta[v], node: int32(v), center: int32(v), parent: -1})
	}
	for i := n/2 - 1; i >= 0; i-- { // heap.Init
		heapDown(q, i, n)
	}
	remaining := n
	for remaining > 0 && len(q) > 0 {
		last := len(q) - 1 // heap.Pop
		q[0], q[last] = q[last], q[0]
		heapDown(q, 0, last)
		it := q[last]
		q = q[:last]
		v := it.node
		if settled[v] {
			continue
		}
		settled[v] = true
		remaining--
		res.Center[v] = it.center
		res.Parent[v] = it.parent
		res.Dist[v] = it.dist
		for _, w := range g.Neighbors(int(v)) {
			if !settled[w] {
				q = append(q, item{ // heap.Push
					key:    it.key + 1,
					node:   w,
					center: it.center,
					parent: v,
					dist:   it.dist + 1,
				})
				heapUp(q, len(q)-1)
			}
		}
	}
	if scr != nil {
		scr.pq = q[:0]
		scr.settled = settled
	}
	return res
}

// NumClusters returns the number of distinct cluster centers.
func (r *Result) NumClusters() int {
	seen := make(map[int32]bool)
	for _, c := range r.Center {
		seen[c] = true
	}
	return len(seen)
}

// Clusters returns the members of every cluster keyed by center.
func (r *Result) Clusters() map[int32][]int32 {
	m := make(map[int32][]int32)
	for v, c := range r.Center {
		m[c] = append(m[c], int32(v))
	}
	return m
}

// IsCut reports whether edge {u, v} has endpoints in distinct clusters.
func (r *Result) IsCut(u, v int) bool { return r.Center[u] != r.Center[v] }

// CutFraction returns the fraction of edges cut by the partition.
func (r *Result) CutFraction() float64 {
	if r.g.M() == 0 {
		return 0
	}
	cut := 0
	r.g.Edges(func(u, v int) bool {
		if r.IsCut(u, v) {
			cut++
		}
		return true
	})
	return float64(cut) / float64(r.g.M())
}

// StrongRadius returns, for each center, the maximum intra-cluster hop
// distance from the center to a member (the strong radius; the strong
// diameter is at most twice this).
func (r *Result) StrongRadius() map[int32]int32 {
	out := make(map[int32]int32)
	for v, c := range r.Center {
		if r.Dist[v] > out[c] {
			out[c] = r.Dist[v]
		}
		_ = v
	}
	return out
}

// MaxStrongRadius returns the largest strong radius over all clusters.
func (r *Result) MaxStrongRadius() int {
	max := int32(0)
	for _, d := range r.Dist {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// BordersOtherCluster reports whether v has a neighbor assigned to a
// different cluster (the paper's "risky" nodes of Lemma 4.2).
func (r *Result) BordersOtherCluster(v int) bool {
	for _, w := range r.g.Neighbors(v) {
		if r.Center[w] != r.Center[v] {
			return true
		}
	}
	return false
}

// ClustersWithin returns the number of distinct clusters having a node at
// distance <= d from v (Lemma 4.3's quantity).
func (r *Result) ClustersWithin(v, d int) int {
	dist := r.g.BFS(v)
	seen := make(map[int32]bool)
	for u, du := range dist {
		if du != graph.Unreached && int(du) <= d {
			seen[r.Center[u]] = true
		}
	}
	return len(seen)
}

// Validate checks the structural invariants of a partition and returns an
// error describing the first violation found.
func (r *Result) Validate() error {
	n := r.g.N()
	for v := 0; v < n; v++ {
		c := r.Center[v]
		if c < 0 || int(c) >= n {
			return fmt.Errorf("node %d has invalid center %d", v, c)
		}
		if r.Center[c] != c {
			return fmt.Errorf("center %d of node %d is not its own center", c, v)
		}
		if int(c) == v {
			if r.Dist[v] != 0 || r.Parent[v] != -1 {
				return fmt.Errorf("center %d has dist %d parent %d", v, r.Dist[v], r.Parent[v])
			}
			continue
		}
		p := r.Parent[v]
		if p < 0 {
			return fmt.Errorf("non-center node %d has no parent", v)
		}
		if !r.g.HasEdge(v, int(p)) {
			return fmt.Errorf("parent edge %d-%d not in graph", v, p)
		}
		if r.Center[p] != c {
			return fmt.Errorf("node %d (cluster %d) has parent %d in cluster %d",
				v, c, p, r.Center[p])
		}
		if r.Dist[v] != r.Dist[p]+1 {
			return fmt.Errorf("node %d dist %d but parent dist %d", v, r.Dist[v], r.Dist[p])
		}
	}
	return nil
}

// JRange returns the paper's range of the random exponent j for fine
// clusterings: j uniform in [loFrac·log2 D, hiFrac·log2 D] (Theorem 2.2
// uses 0.01 and 0.1). The range is clamped so that at least one valid j
// exists (j >= 1) even at laptop-scale diameters where 0.01·log D < 1.
func JRange(d int, loFrac, hiFrac float64) (jmin, jmax int) {
	if d < 2 {
		return 1, 1
	}
	logD := math.Log2(float64(d))
	jmin = int(math.Floor(loFrac * logD))
	jmax = int(math.Ceil(hiFrac * logD))
	if jmin < 1 {
		jmin = 1
	}
	if jmax < jmin {
		jmax = jmin
	}
	return jmin, jmax
}
