package cluster

import (
	"math"

	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// KindCluster tags distributed-partition wave messages.
const KindCluster radio.Kind = 2

// DistConfig parameterizes the distributed Partition(β) protocol.
type DistConfig struct {
	// Beta is the clustering parameter (required, > 0).
	Beta float64
	// Repeat is the number of Decay phases run per unit-distance expansion
	// phase; each Decay phase is Levels(n) rounds. Zero means Levels(n),
	// which makes per-neighbor delivery succeed whp within a phase and
	// yields the O(log³n/β) total of Lemma 2.1.
	Repeat int
	// EchoPhases is how many expansion phases a newly joined node keeps
	// announcing its cluster (>= 1). More echoes paper over unlucky Decay
	// phases at the cost of extra contention. Zero means 2.
	EchoPhases int
}

func (c DistConfig) repeat(n int) int {
	if c.Repeat > 0 {
		return c.Repeat
	}
	return decay.Levels(n)
}

func (c DistConfig) echo() int {
	if c.EchoPhases > 0 {
		return c.EchoPhases
	}
	return 2
}

// distNode is the per-node state of the distributed protocol.
type distNode struct {
	id        int32
	levels    int // decay phase length
	phaseLen  int64
	wakePhase int64
	echo      int64
	rnd       *rng.Rand
	prog      *radio.Progress // assigned-node counter (shared)

	center      int32
	dist        int32
	parent      int32
	joinedPhase int64
}

func (d *distNode) assigned() bool { return d.center >= 0 }

// IgnoresSilence implements radio.SilenceOblivious: Recv without a
// message is always a no-op. (distNode is not a radio.Sleeper: unassigned
// nodes wake on a time trigger, not a reception.)
func (d *distNode) IgnoresSilence() bool { return true }

func (d *distNode) Act(t int64) radio.Action {
	phase := t / d.phaseLen
	if !d.assigned() && phase >= d.wakePhase {
		// Own candidacy: become a center. (If a wave had reached this node
		// in an earlier phase it would already be assigned.)
		d.center = d.id
		d.dist = 0
		d.parent = -1
		d.joinedPhase = phase
		d.prog.Add(1)
	}
	if !d.assigned() {
		return radio.Listen
	}
	// Announce during the echo window after joining.
	if phase > d.joinedPhase && phase <= d.joinedPhase+d.echo {
		step := int(t % int64(d.levels))
		if d.rnd.Bernoulli(decay.Prob(step)) {
			return radio.Transmit(radio.Message{
				Kind: KindCluster,
				A:    int64(d.center),
				B:    int64(d.dist),
			})
		}
	}
	return radio.Listen
}

func (d *distNode) Recv(t int64, msg *radio.Message, _ bool) {
	if msg == nil || msg.Kind != KindCluster || d.assigned() {
		return
	}
	phase := t / d.phaseLen
	d.center = int32(msg.A)
	d.dist = int32(msg.B) + 1
	d.parent = msg.Src
	d.joinedPhase = phase
	d.prog.Add(1) // guarded by !assigned above: counted exactly once
}

// Distributed is a running distributed Partition(β) instance.
type Distributed struct {
	Engine *radio.Engine
	// MaxPhases bounds the number of expansion phases needed: every node
	// is assigned by its wake phase, so MaxPhases*PhaseLen rounds always
	// suffice.
	MaxPhases int64
	PhaseLen  int64

	g     *graph.Graph
	beta  float64
	nodes []*distNode
	delta []float64
	prog  radio.Progress // assigned-node counter shared with the nodes
}

// NewDistributed builds the distributed Partition(β) protocol on g. Shifts
// are drawn from seed; they are quantized to integers and capped at
// ~2·ln(n)/β (an event of probability n^-2 per node), which bounds the
// protocol's running time without affecting the clustering guarantees.
func NewDistributed(g *graph.Graph, cfg DistConfig, seed uint64) *Distributed {
	if cfg.Beta <= 0 {
		panic("cluster: NewDistributed requires Beta > 0")
	}
	n := g.N()
	levels := decay.Levels(n)
	phaseLen := int64(cfg.repeat(n) * levels)
	cap64 := int64(math.Ceil(2*math.Log(float64(n)+2)/cfg.Beta)) + 1
	master := rng.New(seed)
	dist := &Distributed{
		MaxPhases: cap64 + 2,
		PhaseLen:  phaseLen,
		g:         g,
		beta:      cfg.Beta,
		nodes:     make([]*distNode, n),
		delta:     make([]float64, n),
	}
	dist.prog = *radio.NewProgress(int64(n))
	rn := make([]radio.Node, n)
	for v := 0; v < n; v++ {
		r := master.Fork(uint64(v))
		dv := int64(math.Floor(r.Exp(cfg.Beta)))
		if dv > cap64 {
			dv = cap64
		}
		dist.delta[v] = float64(dv)
		dist.nodes[v] = &distNode{
			id:        int32(v),
			levels:    levels,
			phaseLen:  phaseLen,
			wakePhase: cap64 - dv,
			echo:      int64(cfg.echo()),
			rnd:       r.Fork(1),
			prog:      &dist.prog,
			center:    -1,
			parent:    -1,
		}
		rn[v] = dist.nodes[v]
	}
	dist.Engine = radio.NewEngine(g, rn)
	return dist
}

// Done reports whether every node has been assigned to a cluster. O(1):
// nodes report their assignment (wave adoption or self-candidacy) to the
// shared radio.Progress as it happens.
func (d *Distributed) Done() bool { return d.prog.Done() }

// doneFullScan is the O(n) reference implementation of Done, kept for the
// equivalence tests.
func (d *Distributed) doneFullScan() bool {
	for _, nd := range d.nodes {
		if !nd.assigned() {
			return false
		}
	}
	return true
}

// Run executes the protocol to completion (or the phase bound) and returns
// the number of rounds used and whether all nodes were assigned.
func (d *Distributed) Run() (int64, bool) {
	budget := d.MaxPhases * d.PhaseLen
	return d.Engine.RunUntil(budget, &d.prog)
}

// Result converts the protocol outcome into a Result. Call after Run.
func (d *Distributed) Result() *Result {
	n := d.g.N()
	res := &Result{
		Beta:   d.beta,
		Center: make([]int32, n),
		Parent: make([]int32, n),
		Dist:   make([]int32, n),
		Delta:  d.delta,
		g:      d.g,
	}
	for v, nd := range d.nodes {
		res.Center[v] = nd.center
		res.Parent[v] = nd.parent
		res.Dist[v] = nd.dist
	}
	return res
}
