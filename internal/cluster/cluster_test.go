package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

func testGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	r := rng.New(1000)
	return []*graph.Graph{
		graph.Path(64),
		graph.Cycle(50),
		graph.Grid(8, 12),
		graph.PathOfCliques(8, 6),
		graph.BalancedTree(3, 4),
		graph.Gnp(120, 0.04, r.Fork(1)),
		graph.RandomGeometric(150, 0.12, r.Fork(2)),
	}
}

func TestPartitionValidates(t *testing.T) {
	for _, g := range testGraphs(t) {
		for _, beta := range []float64{0.05, 0.2, 0.5, 1.5} {
			for seed := uint64(0); seed < 3; seed++ {
				p := Partition(g, beta, rng.New(seed))
				if err := p.Validate(); err != nil {
					t.Fatalf("%v beta=%v seed=%d: %v", g, beta, seed, err)
				}
			}
		}
	}
}

func TestPartitionPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Partition(graph.Path(4), 0, rng.New(1))
}

func TestPartitionDeterministic(t *testing.T) {
	g := graph.Grid(10, 10)
	p1 := Partition(g, 0.3, rng.New(7))
	p2 := Partition(g, 0.3, rng.New(7))
	for v := range p1.Center {
		if p1.Center[v] != p2.Center[v] {
			t.Fatalf("center of %d differs across identical runs", v)
		}
	}
}

func TestClusterCountMonotoneInBeta(t *testing.T) {
	// Larger beta => smaller shifts => more clusters (on average). Compare
	// extremes, which are far enough apart to be deterministic in practice.
	g := graph.Grid(15, 15)
	lo := Partition(g, 0.02, rng.New(3)).NumClusters()
	hi := Partition(g, 2.0, rng.New(3)).NumClusters()
	if lo >= hi {
		t.Fatalf("NumClusters: beta=0.02 gives %d, beta=2.0 gives %d; want increase", lo, hi)
	}
}

func TestHugeBetaSingletons(t *testing.T) {
	// With beta so large that all shifts are ~0, every node should be
	// (nearly) its own cluster and almost every edge cut.
	g := graph.Grid(6, 6)
	p := Partition(g, 50, rng.New(5))
	if p.NumClusters() < g.N()/2 {
		t.Fatalf("beta=50 produced only %d clusters on %d nodes", p.NumClusters(), g.N())
	}
}

// TestStrongRadiusBound is the Lemma 2.1a check: strong diameter is
// O(log n / beta) whp. We verify radius <= c * ln(n)/beta with c = 4
// across seeds (failure probability is tiny, and runs are deterministic).
func TestStrongRadiusBound(t *testing.T) {
	for _, g := range testGraphs(t) {
		n := float64(g.N())
		for _, beta := range []float64{0.1, 0.3} {
			for seed := uint64(0); seed < 5; seed++ {
				p := Partition(g, beta, rng.New(100+seed))
				bound := 4 * math.Log(n) / beta
				if r := float64(p.MaxStrongRadius()); r > bound {
					t.Errorf("%v beta=%v seed=%d: radius %v > bound %v", g, beta, seed, r, bound)
				}
			}
		}
	}
}

// TestCutFractionBound is the Lemma 2.1b check: each edge is cut with
// probability O(beta).
func TestCutFractionBound(t *testing.T) {
	g := graph.Grid(20, 20)
	for _, beta := range []float64{0.02, 0.05, 0.1, 0.2} {
		total := 0.0
		const trials = 10
		for seed := uint64(0); seed < trials; seed++ {
			total += Partition(g, beta, rng.New(200+seed)).CutFraction()
		}
		avg := total / trials
		// MPX gives P[cut] <= beta per unit-length edge (up to small
		// constants); allow 3x slack.
		if avg > 3*beta {
			t.Errorf("beta=%v: avg cut fraction %v > %v", beta, avg, 3*beta)
		}
	}
}

func TestBordersOtherCluster(t *testing.T) {
	g := graph.Path(30)
	p := Partition(g, 0.5, rng.New(9))
	// Consistency with IsCut: v borders another cluster iff one of its
	// incident edges is cut.
	for v := 0; v < g.N(); v++ {
		want := false
		for _, w := range g.Neighbors(v) {
			if p.IsCut(v, int(w)) {
				want = true
			}
		}
		if got := p.BordersOtherCluster(v); got != want {
			t.Fatalf("BordersOtherCluster(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestClustersWithin(t *testing.T) {
	g := graph.Path(20)
	p := Partition(g, 0.3, rng.New(11))
	// Distance 0 sees exactly 1 cluster; the whole graph sees them all.
	if got := p.ClustersWithin(10, 0); got != 1 {
		t.Fatalf("ClustersWithin(10,0) = %d", got)
	}
	if got := p.ClustersWithin(0, 19); got != p.NumClusters() {
		t.Fatalf("ClustersWithin(whole graph) = %d, want %d", got, p.NumClusters())
	}
}

func TestClustersPartitionNodes(t *testing.T) {
	g := graph.Grid(9, 9)
	p := Partition(g, 0.2, rng.New(13))
	seen := make(map[int32]bool)
	for c, members := range p.Clusters() {
		for _, v := range members {
			if seen[v] {
				t.Fatalf("node %d in two clusters", v)
			}
			seen[v] = true
			if p.Center[v] != c {
				t.Fatalf("cluster map inconsistent for %d", v)
			}
		}
	}
	if len(seen) != g.N() {
		t.Fatalf("clusters cover %d of %d nodes", len(seen), g.N())
	}
}

func TestJRange(t *testing.T) {
	tests := []struct {
		d          int
		lo, hi     float64
		wantMin    int
		wantMaxGte int
	}{
		{1, 0.01, 0.1, 1, 1},
		{1024, 0.01, 0.1, 1, 1},
		{1024, 0.25, 0.75, 2, 7},
		{1 << 20, 0.01, 0.1, 1, 2},
	}
	for _, tc := range tests {
		jmin, jmax := JRange(tc.d, tc.lo, tc.hi)
		if jmin != tc.wantMin || jmax < tc.wantMaxGte || jmax < jmin {
			t.Errorf("JRange(%d,%v,%v) = (%d,%d)", tc.d, tc.lo, tc.hi, jmin, jmax)
		}
	}
}

func TestQuickPartitionInvariants(t *testing.T) {
	r := rng.New(31337)
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(func(seed uint64, nn, bb uint8) bool {
		n := int(nn%60) + 5
		beta := float64(bb%40)/40 + 0.05
		g := graph.Gnp(n, 0.1, r.Fork(seed))
		p := Partition(g, beta, r.Fork(seed+1))
		return p.Validate() == nil
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem22Empirical checks the paper's central clustering claim: with
// beta = 2^-j and j random in the fine range, for a fixed node the expected
// distance to its cluster center is O(log n/(beta·log D)) for most j.
func TestTheorem22Empirical(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g := graph.Path(512) // D = 511
	d := 511
	n := float64(g.N())
	logD := math.Log2(float64(d))
	v := 256
	jmin, jmax := JRange(d, 0.25, 0.75)
	goodJ := 0
	for j := jmin; j <= jmax; j++ {
		beta := math.Pow(2, -float64(j))
		const trials = 40
		sum := 0.0
		for s := 0; s < trials; s++ {
			p := Partition(g, beta, rng.New(uint64(7000+100*j+s)))
			sum += float64(p.Dist[v])
		}
		mean := sum / trials
		bound := 5 * math.Log2(n) / (beta * logD)
		if mean <= bound {
			goodJ++
		}
	}
	frac := float64(goodJ) / float64(jmax-jmin+1)
	if frac < 0.55 {
		t.Errorf("only %.2f of j values satisfied the Theorem 2.2 bound, want >= 0.55", frac)
	}
}

func TestDistributedPartition(t *testing.T) {
	r := rng.New(555)
	graphs := []*graph.Graph{
		graph.Path(40),
		graph.Grid(7, 7),
		graph.PathOfCliques(5, 5),
		graph.Gnp(60, 0.08, r),
	}
	for _, g := range graphs {
		d := NewDistributed(g, DistConfig{Beta: 0.25}, 42)
		rounds, done := d.Run()
		if !done {
			t.Fatalf("%v: distributed partition incomplete after %d rounds", g, rounds)
		}
		if rounds > d.MaxPhases*d.PhaseLen {
			t.Fatalf("%v: exceeded phase budget", g)
		}
		res := d.Result()
		if err := res.Validate(); err != nil {
			t.Fatalf("%v: invalid distributed partition: %v", g, err)
		}
	}
}

func TestDistributedMatchesCentralizedScale(t *testing.T) {
	// The distributed protocol should produce clusters of the same scale
	// as the centralized one: strong radius within the same O(log n/beta)
	// envelope.
	g := graph.Grid(10, 10)
	beta := 0.3
	c := Partition(g, beta, rng.New(1))
	d := NewDistributed(g, DistConfig{Beta: beta}, 1)
	if _, done := d.Run(); !done {
		t.Fatal("distributed run incomplete")
	}
	res := d.Result()
	bound := 4 * math.Log(float64(g.N())) / beta
	if float64(res.MaxStrongRadius()) > bound {
		t.Fatalf("distributed radius %d above bound %v (centralized %d)",
			res.MaxStrongRadius(), bound, c.MaxStrongRadius())
	}
}

func TestDistributedPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDistributed(graph.Path(4), DistConfig{}, 1)
}
