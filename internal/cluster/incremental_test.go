package cluster

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// Incremental Done (assignments reported to the shared radio.Progress from
// both the Recv wave-adoption and the Act self-candidacy transitions) must
// agree with the O(n) reference scan after every round.
func TestDistributedDoneMatchesFullScanEveryRound(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		r := rng.New(seed)
		graphs := []*graph.Graph{
			graph.RandomTree(40, r.Fork(1)),
			graph.Grid(6, 6),
			graph.PathOfCliques(5, 4),
		}
		for _, g := range graphs {
			d := NewDistributed(g, DistConfig{Beta: 0.3}, seed)
			budget := d.MaxPhases * d.PhaseLen
			for round := int64(0); round <= budget; round++ {
				inc, ref := d.Done(), d.doneFullScan()
				if inc != ref {
					t.Fatalf("%s seed=%d round %d: incremental Done=%v, full scan=%v",
						g, seed, round, inc, ref)
				}
				if ref {
					break
				}
				d.Engine.Step()
			}
			if !d.doneFullScan() {
				t.Fatalf("%s seed=%d: partition did not complete within the phase bound", g, seed)
			}
			// The Result must be fully assigned, matching Done.
			for v, c := range d.Result().Center {
				if c < 0 {
					t.Fatalf("%s seed=%d: node %d unassigned after Done", g, seed, v)
				}
			}
		}
	}
}
