package cluster

import (
	"fmt"
	"math"

	"radionet/internal/protocol"
)

// This file registers the distributed Miller–Peng–Xu Partition(β)
// protocol under the "partition" task: completion means every node has
// adopted a cluster (wave adoption or self-candidacy). The centralized
// Partition stays a library subroutine — it has no rounds to run.

func init() {
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Partition,
		Name:      "mpx",
		Aliases:   []string{"partition", "miller-peng-xu"},
		Label:     "MPX-Partition",
		Summary:   "distributed Partition(β) of Lemma 2.1 (β defaults to D^-0.5, the pipeline's coarse clustering); completion = every node cluster-assigned",
		BudgetDoc: "MaxPhases·PhaseLen (capped exponential shifts)",
		Order:     10,
		Caps:      protocol.Caps{Transport: true},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			cfg := DistConfig{}
			switch t := p.Tuning.(type) {
			case nil:
			case DistConfig:
				cfg = t
			default:
				return nil, fmt.Errorf("cluster: tuning must be cluster.DistConfig, got %T", p.Tuning)
			}
			if p.Faults != nil {
				return nil, fmt.Errorf("cluster: distributed partition does not support fault plans")
			}
			if cfg.Beta <= 0 {
				d := p.D
				if d < 1 {
					d = 1
				}
				cfg.Beta = math.Pow(float64(d), -0.5)
			}
			dp := NewDistributed(p.G, cfg, p.Seed)
			p.ApplyEngine(dp.Engine)
			return partitionRunner{d: dp}, nil
		},
	})
}

type partitionRunner struct {
	d *Distributed
}

// DefaultBudget implements protocol.Budgeted.
func (r partitionRunner) DefaultBudget() int64 { return r.d.MaxPhases * r.d.PhaseLen }

func (r partitionRunner) Run(budget int64) protocol.Result {
	def := r.d.MaxPhases * r.d.PhaseLen
	if budget <= 0 || budget > def {
		budget = def
	}
	rounds, done := r.d.Engine.RunUntil(budget, &r.d.prog)
	return protocol.Result{
		Rounds:      rounds,
		Tx:          r.d.Engine.Metrics.Transmissions,
		Done:        done,
		Reached:     int(r.d.prog.Count()),
		ReachTarget: int(r.d.prog.Target()),
	}
}
