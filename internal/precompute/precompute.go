// Package precompute is the keyed, shared, cache-backed store for the
// expensive topology products the campaign and bench setup phases need
// before the first simulated round: the built graph, its diameter
// estimate, and the warmed dense-adjacency layer. Products are identified
// by a content key (canonical topology spec + topology seed); each key is
// built at most once per process, concurrently deduplicated, and shared by
// every config/trial that references it. A store may additionally be
// backed by an on-disk cache directory, in which case products persist
// across processes under a stable content hash — a warm rerun of a pinned
// grid skips graph construction entirely (see DESIGN.md §13).
//
// Determinism contract: a product loaded from disk is byte-equivalent to
// one built from source (the codec round-trips the exact CSR arrays, and
// the diameter estimate is stored rather than recomputed), so sink output
// is identical with the cache off, cold, or warm. Corrupt or stale cache
// files are never trusted: any decode failure falls back silently to a
// rebuild, which overwrites the bad file.
package precompute

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"radionet/internal/graph"
)

// Key identifies a topology product by content: the canonical topology
// spec string (as printed by campaign.Topology.Spec) and the seed fed to
// its generator. Two configs with equal keys build identical graphs.
type Key struct {
	Spec string
	Seed uint64
}

// hashDomain separates the cache-file namespace from any other sha256 use
// and pins the codec schema: bumping codecVersion changes every hash, so
// old cache files are simply never found rather than misdecoded.
const hashDomain = "radionet-precompute\x00v1\x00"

// Hash returns the stable content hash used as the on-disk file stem.
func (k Key) Hash() string {
	h := sha256.New()
	h.Write([]byte(hashDomain))
	h.Write([]byte(k.Spec))
	h.Write([]byte{0})
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], k.Seed)
	h.Write(seed[:])
	return hex.EncodeToString(h.Sum(nil))
}

// Product is the bundle of setup-phase artifacts for one key. The graph's
// dense-adjacency layer is warmed eagerly at build/load time so no trial
// pays for it on first use.
type Product struct {
	G *graph.Graph
	D int // graph.DiameterEstimate, computed once and cached on disk
}

// Source reports where a GetOrBuild result came from.
type Source int

const (
	// SourceBuilt: constructed from the generator in this call.
	SourceBuilt Source = iota
	// SourceMemory: another GetOrBuild on this store already produced it.
	SourceMemory
	// SourceDisk: decoded from the store's cache directory.
	SourceDisk
)

// String returns the manifest-facing name of the source.
func (s Source) String() string {
	switch s {
	case SourceBuilt:
		return "built"
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	}
	return "unknown"
}

// Outcome describes how one GetOrBuild call was satisfied.
type Outcome struct {
	Source Source
	Bytes  int64 // cache file bytes read (disk hit) or written (cold save)
}

// Store deduplicates product construction by key, optionally backed by an
// on-disk cache directory. The zero value and the nil pointer are both
// usable: a nil store deduplicates nothing and always builds. A Store is
// safe for concurrent use; concurrent GetOrBuild calls for distinct keys
// build in parallel, calls for the same key build once.
type Store struct {
	dir string // "" = memory-only

	mu      sync.Mutex
	entries map[Key]*entry
}

type entry struct {
	once  sync.Once
	p     Product
	src   Source
	bytes int64
}

// NewStore returns a store backed by the given cache directory; an empty
// dir yields a memory-only store (in-process dedup, no persistence).
func NewStore(dir string) *Store {
	return &Store{dir: dir, entries: make(map[Key]*entry)}
}

// Dir returns the cache directory, or "" for a memory-only (or nil) store.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// GetOrBuild returns the product for k, building it with build only if no
// prior call on this store produced it and (for disk-backed stores) no
// valid cache file exists. The outcome reports the source as seen by this
// call: the caller that actually populates the entry sees Built or Disk;
// every later caller sees Memory.
func (s *Store) GetOrBuild(k Key, build func() *graph.Graph) (Product, Outcome) {
	if s == nil {
		return buildProduct(build), Outcome{Source: SourceBuilt}
	}
	s.mu.Lock()
	if s.entries == nil {
		s.entries = make(map[Key]*entry)
	}
	e, ok := s.entries[k]
	if !ok {
		e = &entry{}
		s.entries[k] = e
	}
	s.mu.Unlock()

	ran := false
	e.once.Do(func() {
		ran = true
		if s.dir != "" {
			if p, n, err := s.loadDisk(k); err == nil {
				// Disk hits warm the bitset layer exactly like source
				// builds, so the cache never moves that cost silently
				// into the first trial.
				p.G.DenseAdj()
				e.p, e.src, e.bytes = p, SourceDisk, n
				return
			}
			// Missing, corrupt, or stale: rebuild from source and refresh
			// the cache file (best effort — a read-only cache dir only
			// costs the persistence, never the run).
			e.p = buildProduct(build)
			e.src = SourceBuilt
			e.bytes = s.saveDisk(k, e.p)
			return
		}
		e.p = buildProduct(build)
		e.src = SourceBuilt
	})
	if !ran {
		return e.p, Outcome{Source: SourceMemory}
	}
	return e.p, Outcome{Source: e.src, Bytes: e.bytes}
}

func buildProduct(build func() *graph.Graph) Product {
	g := build()
	d := g.DiameterEstimate()
	g.DenseAdj() // warm the bitset layer off the trial path
	return Product{G: g, D: d}
}
