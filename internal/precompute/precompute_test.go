package precompute

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

func buildRandTree(n int, seed uint64) func() *graph.Graph {
	return func() *graph.Graph { return graph.RandomTree(n, rng.New(seed)) }
}

func sameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() || a.Name() != b.Name() {
		t.Fatalf("graph mismatch: %s vs %s", a, b)
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("node %d degree mismatch", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d neighbor mismatch", v)
			}
		}
	}
}

// TestMemoryDedup: concurrent GetOrBuild calls for one key build exactly
// once; distinct keys build separately.
func TestMemoryDedup(t *testing.T) {
	s := NewStore("")
	var builds atomic.Int32
	build := func() *graph.Graph {
		builds.Add(1)
		return graph.RandomTree(200, rng.New(7))
	}
	k := Key{Spec: "randtree:200", Seed: 7}
	var wg sync.WaitGroup
	outs := make([]Outcome, 16)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outs[i] = s.GetOrBuild(k, build)
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	nBuilt := 0
	for _, o := range outs {
		switch o.Source {
		case SourceBuilt:
			nBuilt++
		case SourceMemory:
		default:
			t.Fatalf("unexpected source %v", o.Source)
		}
	}
	if nBuilt != 1 {
		t.Fatalf("%d callers saw SourceBuilt, want 1", nBuilt)
	}
	if _, out := s.GetOrBuild(Key{Spec: "randtree:200", Seed: 8}, buildRandTree(200, 8)); out.Source != SourceBuilt {
		t.Fatalf("distinct key source = %v, want built", out.Source)
	}
	if builds.Load() != 1 {
		t.Fatal("distinct key reused the wrong entry")
	}
}

// TestNilStore: a nil store always builds and never panics.
func TestNilStore(t *testing.T) {
	var s *Store
	p, out := s.GetOrBuild(Key{Spec: "randtree:50", Seed: 3}, buildRandTree(50, 3))
	if out.Source != SourceBuilt || p.G.N() != 50 || p.D <= 0 {
		t.Fatalf("nil store: product %v outcome %v", p, out)
	}
	if s.Dir() != "" {
		t.Fatal("nil store Dir")
	}
}

// TestDiskRoundTrip: a cold store writes a cache file; a fresh store over
// the same directory loads it byte-equivalently (same CSR, same diameter)
// without invoking the builder.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	k := Key{Spec: "randtree:300", Seed: 11}

	cold := NewStore(dir)
	p1, out1 := cold.GetOrBuild(k, buildRandTree(300, 11))
	if out1.Source != SourceBuilt || out1.Bytes <= 0 {
		t.Fatalf("cold outcome %+v, want built with bytes written", out1)
	}

	warm := NewStore(dir)
	p2, out2 := warm.GetOrBuild(k, func() *graph.Graph {
		t.Fatal("warm load invoked the builder")
		return nil
	})
	if out2.Source != SourceDisk || out2.Bytes != out1.Bytes {
		t.Fatalf("warm outcome %+v, want disk with %d bytes", out2, out1.Bytes)
	}
	sameGraph(t, p1.G, p2.G)
	if p1.D != p2.D {
		t.Fatalf("diameter mismatch: %d vs %d", p1.D, p2.D)
	}
}

// TestCorruptFileRebuilds flips bytes at several offsets in a valid cache
// file; every corruption must be detected and silently repaired by a
// rebuild that rewrites the file.
func TestCorruptFileRebuilds(t *testing.T) {
	dir := t.TempDir()
	k := Key{Spec: "randtree:150", Seed: 5}
	NewStore(dir).GetOrBuild(k, buildRandTree(150, 5))
	path := filepath.Join(dir, k.Hash()+".rnp")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Offsets spanning magic, header, CSR payload, and checksum, plus a
	// truncation and an empty file.
	mutations := []func([]byte) []byte{
		func(b []byte) []byte { b[0] ^= 0xff; return b },        // magic
		func(b []byte) []byte { b[5] ^= 0x01; return b },        // version
		func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }, // payload
		func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }, // checksum
		func(b []byte) []byte { return b[:len(b)-7] },           // truncated
		func(b []byte) []byte { return nil },                    // empty
	}
	for i, mutate := range mutations {
		if err := os.WriteFile(path, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
			t.Fatal(err)
		}
		built := false
		p, out := NewStore(dir).GetOrBuild(k, func() *graph.Graph {
			built = true
			return graph.RandomTree(150, rng.New(5))
		})
		if !built || out.Source != SourceBuilt {
			t.Fatalf("mutation %d: corrupt file was trusted (source %v)", i, out.Source)
		}
		if p.G.N() != 150 {
			t.Fatalf("mutation %d: bad rebuild", i)
		}
		repaired, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("mutation %d: cache file not rewritten: %v", i, err)
		}
		if string(repaired) != string(orig) {
			t.Fatalf("mutation %d: rewritten file differs from original encode", i)
		}
	}
}

// TestKeyMismatchRebuilds: a cache file renamed onto another key's hash
// (or a key whose spec changed under the same filename) is rejected by the
// embedded spec/seed echo.
func TestKeyMismatchRebuilds(t *testing.T) {
	dir := t.TempDir()
	k1 := Key{Spec: "randtree:120", Seed: 1}
	k2 := Key{Spec: "randtree:120", Seed: 2}
	NewStore(dir).GetOrBuild(k1, buildRandTree(120, 1))
	// Masquerade k1's file as k2's.
	data, err := os.ReadFile(filepath.Join(dir, k1.Hash()+".rnp"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, k2.Hash()+".rnp"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	built := false
	_, out := NewStore(dir).GetOrBuild(k2, func() *graph.Graph {
		built = true
		return graph.RandomTree(120, rng.New(2))
	})
	if !built || out.Source != SourceBuilt {
		t.Fatalf("renamed cache file satisfied the wrong key (source %v)", out.Source)
	}
}

// TestReadOnlyDirBuilds: an unwritable cache directory degrades to
// build-only (no persistence, no error).
func TestReadOnlyDirBuilds(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	p, out := NewStore(dir).GetOrBuild(Key{Spec: "randtree:60", Seed: 4}, buildRandTree(60, 4))
	if out.Source != SourceBuilt || out.Bytes != 0 || p.G.N() != 60 {
		t.Fatalf("read-only dir: outcome %+v", out)
	}
}

// TestHashStability pins the content hash so the cache file namespace
// cannot silently drift (a drift would orphan every existing cache).
func TestHashStability(t *testing.T) {
	h := Key{Spec: "randtree:100000", Seed: 42}.Hash()
	const want = 64
	if len(h) != want {
		t.Fatalf("hash length %d, want %d", len(h), want)
	}
	if h2 := (Key{Spec: "randtree:100000", Seed: 43}).Hash(); h2 == h {
		t.Fatal("seed change did not change hash")
	}
	if h2 := (Key{Spec: "randtree:100001", Seed: 42}).Hash(); h2 == h {
		t.Fatal("spec change did not change hash")
	}
}
