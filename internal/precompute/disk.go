package precompute

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"radionet/internal/graph"
)

// Cache file format (<hash>.rnp, little-endian throughout):
//
//	magic   "RNPC"                    4 bytes
//	version u32 = codecVersion
//	spec    u32 length + bytes        (must equal the key's Spec)
//	seed    u64                       (must equal the key's Seed)
//	name    u32 length + bytes        (graph family name)
//	n       u32                       node count
//	d       u32                       diameter estimate
//	off     (n+1) × i32               CSR offsets
//	adj     off[n] × i32              CSR adjacency
//	sum     32 bytes                  sha256 of everything above
//
// Spec and seed are stored redundantly with the filename hash so a renamed
// or hash-colliding file can never satisfy the wrong key. Decode is strict:
// any mismatch — magic, version, key echo, checksum, or a CSR invariant
// (graph.FromCSR revalidates everything) — reports an error and the caller
// rebuilds from source. The file is written via a temp file + rename so
// concurrent processes never observe a torn write.

const (
	magic        = "RNPC"
	codecVersion = 1
	checksumLen  = sha256.Size
	maxStrLen    = 1 << 16 // spec/name sanity bound for strict decode
)

var errCorrupt = errors.New("precompute: corrupt cache file")

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.Hash()+".rnp")
}

// loadDisk decodes the cache file for k, returning the product and the
// file size. Every failure mode (missing file, truncation, bit rot, key
// mismatch, invalid CSR) surfaces as an error; nothing is partially
// adopted.
func (s *Store) loadDisk(k Key) (Product, int64, error) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return Product{}, 0, err
	}
	p, err := decode(data, k)
	if err != nil {
		return Product{}, 0, err
	}
	return p, int64(len(data)), nil
}

// saveDisk encodes p for k, best effort: a failure (unwritable directory,
// full disk) returns 0 and the run proceeds uncached.
func (s *Store) saveDisk(k Key, p Product) int64 {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return 0
	}
	data := encode(k, p)
	tmp, err := os.CreateTemp(s.dir, ".rnp-*")
	if err != nil {
		return 0
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return 0
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return 0
	}
	if err := os.Rename(name, s.path(k)); err != nil {
		os.Remove(name)
		return 0
	}
	return int64(len(data))
}

func encode(k Key, p Product) []byte {
	off, adj := p.G.CSR()
	n := p.G.N()
	size := len(magic) + 4 + // version
		4 + len(k.Spec) + 8 + // spec, seed
		4 + len(p.G.Name()) + // name
		4 + 4 + // n, d
		4*len(off) + 4*len(adj) +
		checksumLen
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k.Spec)))
	buf = append(buf, k.Spec...)
	buf = binary.LittleEndian.AppendUint64(buf, k.Seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.G.Name())))
	buf = append(buf, p.G.Name()...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.D))
	for _, v := range off {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range adj {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

func decode(data []byte, k Key) (Product, error) {
	if len(data) < len(magic)+4+checksumLen {
		return Product{}, errCorrupt
	}
	payload, sum := data[:len(data)-checksumLen], data[len(data)-checksumLen:]
	if sha256.Sum256(payload) != [checksumLen]byte(sum) {
		return Product{}, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	d := decoder{buf: payload}
	if string(d.bytes(len(magic))) != magic {
		return Product{}, fmt.Errorf("%w: bad magic", errCorrupt)
	}
	if v := d.u32(); v != codecVersion {
		return Product{}, fmt.Errorf("%w: version %d, want %d", errCorrupt, v, codecVersion)
	}
	spec := string(d.str())
	seed := d.u64()
	if spec != k.Spec || seed != k.Seed {
		return Product{}, fmt.Errorf("%w: key mismatch (file %q/%d, want %q/%d)",
			errCorrupt, spec, seed, k.Spec, k.Seed)
	}
	name := string(d.str())
	n := d.u32()
	diam := d.u32()
	if n > math.MaxInt32 || diam > math.MaxInt32 {
		return Product{}, errCorrupt
	}
	off := d.i32s(int(n) + 1)
	if d.err != nil || len(off) == 0 || off[int(n)] < 0 {
		return Product{}, errCorrupt
	}
	adj := d.i32s(int(off[int(n)]))
	if d.err != nil || len(d.buf) != d.pos {
		return Product{}, errCorrupt
	}
	g, err := graph.FromCSR(name, int(n), off, adj)
	if err != nil {
		return Product{}, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	return Product{G: g, D: int(diam)}, nil
}

// decoder is a tiny strict cursor over the payload; any overrun sets err
// and poisons every later read.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.pos+n > len(d.buf) {
		d.err = errCorrupt
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() []byte {
	n := d.u32()
	if n > maxStrLen {
		d.err = errCorrupt
		return nil
	}
	return d.bytes(int(n))
}

func (d *decoder) i32s(n int) []int32 {
	if d.err != nil || n < 0 || d.pos+4*n > len(d.buf) {
		d.err = errCorrupt
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.buf[d.pos+4*i:]))
	}
	d.pos += 4 * n
	return out
}
