// Conformance suite: every descriptor in the registry — present and
// future — is held to the same contracts (see the package comment of
// internal/protocol). A new algorithm gets all of this for free by
// registering itself; a registration that breaks a contract fails here,
// not in a campaign three layers up.
package protocol_test

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/protocol"
	"radionet/internal/radio"
	"radionet/internal/rng"

	_ "radionet/internal/protocol/all"
)

// conformanceGraph is small enough for every algorithm's whp budget to be
// cheap and large enough for crash faults to leave a non-trivial survivor
// set.
func conformanceGraph() *graph.Graph { return graph.Grid(6, 6) }

const conformanceSeed = 5

func buildRunner(t *testing.T, d *protocol.Descriptor, plan *radio.FaultPlan, scratch any) protocol.Runner {
	t.Helper()
	return buildRunnerT(t, d, plan, scratch, nil)
}

// buildRunnerT is buildRunner with an explicit transport backend; the
// caller owns the transport's lifecycle (Close after the run).
func buildRunnerT(t *testing.T, d *protocol.Descriptor, plan *radio.FaultPlan, scratch any, tr radio.Transport) protocol.Runner {
	t.Helper()
	g := conformanceGraph()
	r, err := d.Build(protocol.BuildParams{
		G:         g,
		D:         g.DiameterEstimate(),
		Seed:      conformanceSeed,
		Sources:   d.DefaultSources(),
		Faults:    plan,
		Scratch:   scratch,
		Transport: tr,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return r
}

// fields strips the non-comparable Verify closure off a Result.
func fields(r protocol.Result) [6]int64 {
	done := int64(0)
	if r.Done {
		done = 1
	}
	return [6]int64{r.Rounds, r.Tx, done, int64(r.Reached), int64(r.ReachTarget), r.Precompute}
}

func forEveryDescriptor(t *testing.T, fn func(t *testing.T, d *protocol.Descriptor)) {
	for _, task := range protocol.Tasks() {
		for _, d := range protocol.ByTask(task) {
			t.Run(string(task)+"/"+d.Name, func(t *testing.T) { fn(t, d) })
		}
	}
}

// TestConformanceDeterministicAndComplete: same seed ⇒ identical Result;
// the default (whp-sufficient) budget completes on the small graph; every
// runner reports transmissions; Done implies Verify() == nil where a
// postcondition check is registered; leader runners expose the election
// outcome.
func TestConformanceDeterministicAndComplete(t *testing.T) {
	forEveryDescriptor(t, func(t *testing.T, d *protocol.Descriptor) {
		res1 := buildRunner(t, d, nil, nil).Run(0)
		res2 := buildRunner(t, d, nil, nil).Run(0)
		if fields(res1) != fields(res2) {
			t.Fatalf("same seed, different results: %v vs %v", fields(res1), fields(res2))
		}
		if !res1.Done {
			t.Fatalf("default budget did not complete: %+v", res1)
		}
		if res1.Rounds <= 0 || res1.Tx <= 0 {
			t.Fatalf("empty metrics: rounds=%d tx=%d", res1.Rounds, res1.Tx)
		}
		if res1.Verify != nil {
			if err := res1.Verify(); err != nil {
				t.Fatalf("Done but Verify failed: %v", err)
			}
		}
		if d.Task == protocol.Leader {
			r := buildRunner(t, d, nil, nil)
			res := r.Run(0)
			lr, ok := r.(protocol.LeaderRunner)
			if !ok {
				t.Fatal("leader descriptor's runner does not implement protocol.LeaderRunner")
			}
			if res.Verify == nil {
				t.Fatal("leader descriptor without a Verify postcondition")
			}
			if res.Done && lr.Leader() < 0 {
				t.Fatalf("Done but Leader() = %d", lr.Leader())
			}
			if len(lr.Candidates()) == 0 {
				t.Fatal("no candidates exposed")
			}
		}
	})
}

// TestConformanceBudgetCap: Run(budget) executes at most budget rounds.
// 520 is above every runner's per-unit floor (binary-search's 40-bit and
// multicast's per-message splits round down), so the cap is exact.
func TestConformanceBudgetCap(t *testing.T) {
	const budget = 520
	forEveryDescriptor(t, func(t *testing.T, d *protocol.Descriptor) {
		res := buildRunner(t, d, nil, nil).Run(budget)
		if res.Rounds > budget {
			t.Fatalf("ran %d rounds over the %d budget", res.Rounds, budget)
		}
	})
}

// TestConformanceFaultCapability: descriptors advertising Caps.Faults
// terminate faulted runs within the default budget — survivor-scoped
// completion, with the descriptor's protected nodes spared — and
// descriptors without the capability reject a plan loudly instead of
// silently running unfaulted.
func TestConformanceFaultCapability(t *testing.T) {
	forEveryDescriptor(t, func(t *testing.T, d *protocol.Descriptor) {
		g := conformanceGraph()
		diam := g.DiameterEstimate()
		sources := d.DefaultSources()
		plan := crashPlan(g, d, sources)
		if !d.Caps.Faults {
			_, err := d.Build(protocol.BuildParams{
				G: g, D: diam, Seed: conformanceSeed, Sources: sources, Faults: plan,
			})
			if err == nil {
				t.Fatal("fault-incapable descriptor accepted a fault plan")
			}
			return
		}
		res := buildRunner(t, d, plan, nil).Run(0)
		if !res.Done {
			t.Fatalf("faulted run did not terminate within the default budget: %+v", res)
		}
		if res.Reached != res.ReachTarget || res.ReachTarget <= 0 {
			t.Fatalf("faulted run reach %d/%d", res.Reached, res.ReachTarget)
		}
		if res.Verify != nil {
			if err := res.Verify(); err != nil {
				t.Fatalf("faulted Done but Verify failed: %v", err)
			}
		}
	})
}

// crashPlan crashes ~30%% of the nodes at round 20, sparing the
// descriptor's protected set — the same site-selection the campaign's
// FaultSpec performs, inlined to keep this package free of a campaign
// dependency.
func crashPlan(g *graph.Graph, d *protocol.Descriptor, sources map[int]int64) *radio.FaultPlan {
	n := g.N()
	prot := map[int]bool{}
	for _, v := range d.ProtectedNodes(g, g.DiameterEstimate(), conformanceSeed, sources, nil) {
		prot[v] = true
	}
	plan := radio.NewFaultPlan(n, conformanceSeed)
	k := (3 * n) / 10
	for _, v := range rng.New(conformanceSeed).Fork(0x517e5).Perm(n) {
		if k == 0 {
			break
		}
		if prot[v] {
			continue
		}
		plan.Crash(v, 20)
		k--
	}
	return plan
}

// TestConformanceTransportParity: every transport-capable descriptor
// produces the identical Result over every registered backend, plain and
// crash-faulted, with zero edits to the algorithm packages — the backends
// may only change where node code executes, never what it observes. This
// is the whole conformance suite's determinism contract re-run per
// backend: transports that reorder randomness, drop observations, or leak
// scheduling into delivery order fail here.
func TestConformanceTransportParity(t *testing.T) {
	forEveryDescriptor(t, func(t *testing.T, d *protocol.Descriptor) {
		if !d.Caps.Transport {
			t.Skip("descriptor does not advertise the transport capability")
		}
		variants := []string{"plain"}
		if d.Caps.Faults {
			variants = append(variants, "faulted")
		}
		for _, variant := range variants {
			t.Run(variant, func(t *testing.T) {
				// Fault plans carry run state (the crash cursor), so every
				// build gets a fresh one.
				mkPlan := func() *radio.FaultPlan {
					if variant != "faulted" {
						return nil
					}
					return crashPlan(conformanceGraph(), d, d.DefaultSources())
				}
				want := fields(buildRunnerT(t, d, mkPlan(), nil, nil).Run(0))
				for _, info := range radio.Transports() {
					tr, err := radio.NewTransport(info.Name)
					if err != nil {
						t.Fatalf("NewTransport(%s): %v", info.Name, err)
					}
					got := fields(buildRunnerT(t, d, mkPlan(), nil, tr).Run(0))
					if err := tr.Close(); err != nil {
						t.Errorf("%s: Close: %v", info.Name, err)
					}
					if got != want {
						t.Errorf("%s: result diverges from the in-process run: %v vs %v", info.Name, got, want)
					}
				}
			})
		}
	})
}

// TestConformanceScratchNeutral: sharing a descriptor-built scratch across
// runs changes no output bit relative to scratch-free construction.
func TestConformanceScratchNeutral(t *testing.T) {
	forEveryDescriptor(t, func(t *testing.T, d *protocol.Descriptor) {
		if !d.Caps.Scratch {
			return
		}
		g := conformanceGraph()
		scratch := d.NewScratch(g, g.DiameterEstimate(), nil)
		if scratch == nil {
			t.Fatal("NewScratch returned nil")
		}
		bare := buildRunner(t, d, nil, nil).Run(0)
		with1 := buildRunner(t, d, nil, scratch).Run(0)
		with2 := buildRunner(t, d, nil, scratch).Run(0)
		if fields(bare) != fields(with1) || fields(with1) != fields(with2) {
			t.Fatalf("scratch changed output: bare=%v with=%v reuse=%v", fields(bare), fields(with1), fields(with2))
		}
	})
}
