// Package protocol is the pluggable-algorithm seam between the algorithm
// library and everything that runs algorithms: the campaign engine
// (internal/campaign), the radionet facade, the CLIs (cmd/radiosim,
// cmd/campaign) and the experiment harness (internal/exp).
//
// Before this package existed, each of those layers carried its own
// hardcoded switch over algorithm names, budget defaults and metric
// extraction, and the switches disagreed (the campaign applied the fault
// axis only to broadcast trials, the facade used a different default
// budget than the campaign, the leader baselines dropped their
// transmission counts). Now an algorithm is a Descriptor — name, aliases,
// task, capabilities, a default budget policy and a Build function
// producing a uniform Runner — registered once by its own package in an
// init-time Register call, and every layer resolves algorithms through
// Lookup/ByTask. Adding an algorithm end-to-end (campaign matrices, the
// facade, both CLIs, the conformance suite) is one new package with a
// register.go plus one blank import in internal/protocol/all; no dispatch
// code changes anywhere (internal/ghle is the proof).
//
// Contracts every registered descriptor must honor (pinned by the
// conformance suite in conformance_test.go):
//
//   - Determinism: equal BuildParams produce runs with identical Results.
//   - Budget: Run(budget) with budget > 0 executes at most budget rounds;
//     budget <= 0 selects the descriptor's documented whp-sufficient
//     default.
//   - Verification: when Result.Verify is non-nil and Done is true,
//     Verify() returns nil.
//   - Faults: a descriptor advertising Caps.Faults accepts a
//     *radio.FaultPlan and scopes completion to the survivor-reachable
//     set, so faulted runs still terminate within the default budget
//     (provided the plan protects the descriptor's Protect nodes).
package protocol

import (
	"sort"

	"radionet/internal/graph"
	"radionet/internal/radio"
)

// Task names the protocol problem a runner solves. Tasks are open-ended:
// registering a descriptor under a new Task makes that task runnable by
// the campaign engine and CLIs without any dispatch changes.
type Task string

// Registered tasks.
const (
	// Broadcast delivers the highest source message to every node.
	Broadcast Task = "broadcast"
	// Leader elects a single leader known to all nodes.
	Leader Task = "leader"
	// Multicast delivers k messages from one source to every node.
	Multicast Task = "multicast"
	// Partition computes a Miller–Peng–Xu cluster assignment distributedly.
	Partition Task = "partition"
)

// TrialSources is the built-in campaign trial convention for seeding a
// task's source set: source-driven tasks inject message value 9 at node
// 0 (the historical campaign convention, which byte-identical output
// depends on); self-seeding tasks (leader election samples its own
// candidates, the partition protocol involves every node) get nil.
// Descriptors under tasks this switch doesn't know override it with
// their own TrialSources hook — see Descriptor.DefaultSources.
func (t Task) TrialSources() map[int]int64 {
	switch t {
	case Broadcast, Multicast:
		return map[int]int64{0: 9}
	default:
		return nil
	}
}

// Caps declares what a descriptor's runners support. Capabilities gate
// configuration validation (e.g. the campaign rejects fault axes on
// descriptors without Faults) and documentation — they never change run
// semantics by themselves.
type Caps struct {
	// Faults: Build accepts a *radio.FaultPlan and completion is
	// survivor-scoped under it.
	Faults bool
	// CollisionDetection: the runner requires the stronger model variant
	// with collision detection (excluded from same-model comparisons).
	CollisionDetection bool
	// Scratch: NewScratch returns reusable seed-independent precomputation
	// (the campaign builds one per configuration and shares it across the
	// seed axis).
	Scratch bool
	// Bulk: the runner drives the engine's BulkActor/BulkReceiver fast
	// paths (informational; see DESIGN.md §5).
	Bulk bool
	// Transport: the runner drives a single engine through ApplyEngine and
	// therefore runs unchanged on any registered transport backend (see
	// radio.Transport and DESIGN.md §12). Composite multi-engine runners
	// and descriptors that bypass ApplyEngine leave it false; the campaign
	// rejects non-simulator transports on them rather than silently
	// running in-process.
	Transport bool
}

// Result is the uniform outcome of one protocol run.
type Result struct {
	// Rounds is the number of rounds executed (budget-capped on failure).
	Rounds int64
	// Tx is the total engine transmission count, summed over every engine
	// the run drove (composite runners like binary-search LE run several).
	Tx int64
	// Done reports completion within budget. Done is the raw protocol
	// completion signal; callers that want a verified postcondition also
	// check Verify.
	Done bool
	// Reached and ReachTarget are the completion-accounting pair: the
	// number of nodes that reached the completion condition among the
	// completion target, and the target itself (survivor-scoped under a
	// fault plan). Both are 0 for runners without reach accounting.
	Reached, ReachTarget int
	// Precompute is the charged precomputation round cost (0 for the
	// oblivious baselines; see DESIGN.md §3).
	Precompute int64
	// Verify, when non-nil, checks the task postcondition after a Done
	// run (e.g. leader election: unique winner, network-wide agreement).
	// It reports an error for incomplete or incorrect runs.
	Verify func() error
}

// Runner is one prepared protocol run. Run executes until completion or
// the budget elapses; budget <= 0 selects the descriptor's default
// whp-sufficient budget policy. A Runner is single-use.
//
// Budget exception: composite runners that split an explicit budget over
// fixed units (binary-search LE's one broadcast per ID bit, sequential
// multicast's one broadcast per message) floor each unit's share to one
// round, so a budget smaller than the unit count may be overshot by up
// to that count; descriptors document their floors in BudgetDoc. Above
// the floor, Run(budget) executes at most budget rounds.
type Runner interface {
	Run(budget int64) Result
}

// Budgeted is an optional Runner extension for telemetry: DefaultBudget
// reports the round budget Run applies when the caller passes budget <= 0
// (the descriptor's documented whp-sufficient policy, resolved for this
// run's topology). The trial runner uses it to compute budget-fraction-
// used metrics; runners without it simply skip that histogram. Call it
// before Run — composite runners may fold an explicit budget into the
// same state.
type Budgeted interface {
	Runner
	DefaultBudget() int64
}

// LeaderRunner is the extra surface leader-task runners expose for callers
// that need the election outcome (the radionet facade, cmd/radiosim).
type LeaderRunner interface {
	Runner
	// Leader returns the elected node, -1 before/without completion.
	Leader() int
	// LeaderID returns the agreed-upon winning ID (valid once Done).
	LeaderID() int64
	// Candidates returns the sampled candidate set (node -> ID).
	Candidates() map[int]int64
}

// BuildParams carries everything a Build function may consume. Unused
// fields are ignored by descriptors that don't support them (but a
// non-nil Faults on a descriptor without Caps.Faults is a Build error —
// silent fault-dropping is exactly the bug this package exists to kill).
type BuildParams struct {
	// G and D are the topology and its (estimated) hop diameter, the two
	// parameters the model assumes known.
	G *graph.Graph
	D int
	// Seed determines every random choice of the run.
	Seed uint64
	// Sources is the task's source set (see Task.TrialSources for the
	// campaign convention); nil for self-seeding tasks.
	Sources map[int]int64
	// Faults, if non-nil, is the trial's realized fault scenario. Only
	// valid on descriptors with Caps.Faults. A plan is single-use: build
	// one per trial.
	Faults *radio.FaultPlan
	// Scratch is the value returned by the descriptor's NewScratch (nil
	// to build fresh). Sharing a scratch never changes output bits.
	Scratch any
	// Tuning is optional algorithm-specific configuration (e.g.
	// compete.Config for the clustering pipeline); nil selects defaults.
	// Descriptors reject tuning values of the wrong type.
	Tuning any
	// Hook, if set, observes every engine round where the runner drives a
	// single engine (composite multi-engine runners may ignore it).
	Hook radio.RoundHook
	// Shards, if > 1, enables intra-round sharding on the runner's engine
	// (see radio.Engine.SetShards); output is bit-exact at any value.
	// 0 and 1 both mean unsharded.
	Shards int
	// ShardHook, if set alongside Shards > 1, receives per-shard busy-time
	// telemetry (see radio.ShardHook).
	ShardHook radio.ShardHook
	// Transport, if non-nil, is the round-executor backend the runner's
	// engine binds to (see radio.Transport). ApplyEngine attaches it last,
	// after the protocol has installed nodes, bulk paths, faults and
	// shards. Only valid on descriptors with Caps.Transport; the caller
	// owns the transport's lifecycle (one engine per transport, Close when
	// the run ends). nil runs in-process, exactly as before the seam.
	Transport radio.Transport
	// Engines, if non-nil, collects every engine the runner constructs
	// (ApplyEngine registers automatically) so the caller can release
	// their resident shard workers deterministically when the trial ends
	// (radio.EngineSet.Close). nil defers teardown to the GC cleanup.
	Engines *radio.EngineSet
}

// ApplyEngine wires the params' engine-level knobs (round hook, shard
// count, shard telemetry, transport backend) into e — the one call every
// single-engine descriptor's Build makes after constructing its
// protocol, so new knobs reach all algorithms without touching each
// register.go. The transport attaches last: by then the protocol has
// finished configuring the engine, so a message-passing backend sees the
// final node set and bulk-actor capabilities.
func (p BuildParams) ApplyEngine(e *radio.Engine) {
	e.Hook = p.Hook
	if p.Shards > 1 {
		e.SetShards(p.Shards)
		e.ShardHook = p.ShardHook
	}
	if p.Transport != nil {
		p.Transport.Attach(e)
	}
	p.Engines.Add(e)
}

// Descriptor registers one algorithm for one task.
type Descriptor struct {
	// Task and Name identify the descriptor; (Task, Name) is unique.
	Task Task
	Name string
	// Aliases resolve to this descriptor in Lookup.
	Aliases []string
	// Label is the short display name experiment tables use ("BGI92").
	Label string
	// Summary is the one-line description shown by -list and the README
	// algorithm table.
	Summary string
	// BudgetDoc documents the default budget policy Run applies when the
	// caller passes budget <= 0 (L = ceil(log2 n) Decay levels).
	BudgetDoc string
	// Order sorts ByTask listings (ascending, ties by Name): baselines
	// before the paper's algorithms, matching the experiment-table
	// convention.
	Order int
	Caps  Caps
	// NewScratch builds the reusable seed-independent part of a trial's
	// precomputation for a (graph, diameter, tuning) cell; nil when the
	// algorithm has none. Scratches must be safe for concurrent use.
	NewScratch func(g *graph.Graph, d int, tuning any) any
	// ScratchKey, when non-empty, declares that NewScratch's default-
	// tuning result is interchangeable across every descriptor carrying
	// the same key: for a fixed (graph, diameter) the constructors
	// produce equivalent values, so executors (the campaign setup phase,
	// the facade's per-network memo) may build one scratch per
	// (topology, key) and share it. Descriptors whose scratch embeds
	// algorithm-specific tuning must use distinct keys. Only valid
	// alongside NewScratch; "" opts out of cross-descriptor sharing.
	ScratchKey string
	// TrialSources overrides the task-level trial source convention
	// (Task.TrialSources) for this descriptor — the seam that keeps the
	// task set genuinely open: a source-driven descriptor under a task
	// the built-in switch doesn't know supplies its own convention here
	// instead of editing this package. nil defers to the task default.
	TrialSources func() map[int]int64
	// Protect lists the nodes a trial's fault plan must never select —
	// nodes whose failure would make the completion target vacuous. nil
	// defaults to the source set for source-driven tasks (the campaign's
	// protect-the-broadcast-source convention) and to nothing otherwise.
	// Leader descriptors protect the would-be winner, derived
	// deterministically from the same (seed, tuning) the Build call will
	// use — tuning is threaded because it can change the candidate draw,
	// and protecting the wrong node makes a faulted election unwinnable.
	Protect func(g *graph.Graph, d int, seed uint64, sources map[int]int64, tuning any) []int
	// Build prepares one run.
	Build func(p BuildParams) (Runner, error)
}

// DefaultSources resolves the descriptor's trial source convention: its
// TrialSources hook when set, else the task-level default.
func (d *Descriptor) DefaultSources() map[int]int64 {
	if d.TrialSources != nil {
		return d.TrialSources()
	}
	return d.Task.TrialSources()
}

// ProtectedNodes resolves the descriptor's fault-protection set for one
// trial: Protect when set, else the source nodes in ascending order.
func (d *Descriptor) ProtectedNodes(g *graph.Graph, diam int, seed uint64, sources map[int]int64, tuning any) []int {
	if d.Protect != nil {
		return d.Protect(g, diam, seed, sources, tuning)
	}
	if len(sources) == 0 {
		return nil
	}
	out := make([]int, 0, len(sources))
	for v := range sources {
		out = append(out, v)
	}
	// Deterministic order: protection sets feed fault-site selection.
	sort.Ints(out)
	return out
}

// MaxIDNode returns the entry of a candidate map holding the highest ID
// (-1, -1 for an empty map) — the would-be winner every candidate-
// sampling election elects, shared by Protect hooks and Verify
// implementations so the winner derivation cannot drift between them.
// Candidate IDs are unique by construction (samplers redraw duplicate
// sets), which is what makes the result order-independent.
func MaxIDNode(cands map[int]int64) (node int, id int64) {
	node, id = -1, -1
	//lint:ordered max reduction over unique candidate IDs; ties are impossible
	for v, cid := range cands {
		if cid > id {
			node, id = v, cid
		}
	}
	return node, id
}
