package protocol

import (
	"fmt"
	"strings"
)

// capString renders a descriptor's capability flags for the table.
func capString(c Caps) string {
	var parts []string
	if c.Faults {
		parts = append(parts, "faults")
	}
	if c.CollisionDetection {
		parts = append(parts, "collision-detection")
	}
	if c.Scratch {
		parts = append(parts, "scratch")
	}
	if c.Bulk {
		parts = append(parts, "bulk")
	}
	if len(parts) == 0 {
		return "—"
	}
	return strings.Join(parts, ", ")
}

// MarkdownTable renders the full registry as the markdown algorithm table
// shared by `cmd/radiosim -list`, `cmd/campaign -list` and the README
// (CI pins all three to byte equality; regenerate the README block from
// either CLI when the registry changes).
func MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| task | algorithm | aliases | capabilities | default budget | description |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, task := range Tasks() {
		for _, d := range ByTask(task) {
			aliases := "—"
			if len(d.Aliases) > 0 {
				aliases = strings.Join(d.Aliases, ", ")
			}
			fmt.Fprintf(&b, "| %s | `%s` | %s | %s | %s | %s |\n",
				task, d.Name, aliases, capString(d.Caps), d.BudgetDoc, d.Summary)
		}
	}
	return b.String()
}
