package protocol

import (
	"fmt"
	"strings"

	"radionet/internal/radio"
)

// capString renders a descriptor's capability flags for the table.
func capString(c Caps) string {
	var parts []string
	if c.Faults {
		parts = append(parts, "faults")
	}
	if c.CollisionDetection {
		parts = append(parts, "collision-detection")
	}
	if c.Scratch {
		parts = append(parts, "scratch")
	}
	if c.Bulk {
		parts = append(parts, "bulk")
	}
	if c.Transport {
		parts = append(parts, "transport")
	}
	if len(parts) == 0 {
		return "—"
	}
	return strings.Join(parts, ", ")
}

// MarkdownTable renders the full registry — the algorithm table plus the
// transport-backend table — as the markdown shared by
// `cmd/radiosim -list`, `cmd/campaign -list` and the README (CI pins all
// three to byte equality; regenerate the README block from either CLI
// when either registry changes).
func MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| task | algorithm | aliases | capabilities | default budget | description |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, task := range Tasks() {
		for _, d := range ByTask(task) {
			aliases := "—"
			if len(d.Aliases) > 0 {
				aliases = strings.Join(d.Aliases, ", ")
			}
			fmt.Fprintf(&b, "| %s | `%s` | %s | %s | %s | %s |\n",
				task, d.Name, aliases, capString(d.Caps), d.BudgetDoc, d.Summary)
		}
	}
	if ts := radio.Transports(); len(ts) > 0 {
		b.WriteString("\n| transport | description |\n")
		b.WriteString("|---|---|\n")
		for _, t := range ts {
			fmt.Fprintf(&b, "| `%s` | %s |\n", t.Name, t.Summary)
		}
	}
	return b.String()
}
