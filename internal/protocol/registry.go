package protocol

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registry is populated by package init functions (each algorithm
// package registers its descriptors in a register.go) and read-only
// afterwards; the mutex exists for the registration phase and for tests.
var (
	regMu   sync.RWMutex
	byName  = map[Task]map[string]*Descriptor{} // canonical name -> descriptor
	byAlias = map[Task]map[string]string{}      // alias -> canonical name
)

// Register adds a descriptor to the registry. It panics on invalid or
// duplicate registrations — registration happens at init time, and a
// broken registry is a programming error, not a runtime condition.
func Register(d Descriptor) {
	if d.Task == "" || d.Name == "" {
		panic("protocol: Register needs Task and Name")
	}
	if d.Build == nil {
		panic(fmt.Sprintf("protocol: %s:%s registered without Build", d.Task, d.Name))
	}
	if d.Caps.Scratch != (d.NewScratch != nil) {
		panic(fmt.Sprintf("protocol: %s:%s Caps.Scratch disagrees with NewScratch", d.Task, d.Name))
	}
	if d.ScratchKey != "" && d.NewScratch == nil {
		panic(fmt.Sprintf("protocol: %s:%s declares a ScratchKey without NewScratch", d.Task, d.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if byName[d.Task] == nil {
		byName[d.Task] = map[string]*Descriptor{}
		byAlias[d.Task] = map[string]string{}
	}
	names := append([]string{d.Name}, d.Aliases...)
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if _, dup := byName[d.Task][n]; dup {
			panic(fmt.Sprintf("protocol: duplicate registration %s:%s", d.Task, n))
		}
		if _, dup := byAlias[d.Task][n]; dup {
			panic(fmt.Sprintf("protocol: duplicate registration %s:%s", d.Task, n))
		}
		// Also catch duplicates within this one descriptor (an alias
		// repeating another alias or shadowing its own name).
		if seen[n] {
			panic(fmt.Sprintf("protocol: duplicate registration %s:%s", d.Task, n))
		}
		seen[n] = true
	}
	cp := d
	byName[d.Task][d.Name] = &cp
	for _, a := range d.Aliases {
		byAlias[d.Task][a] = d.Name
	}
}

// Lookup resolves (task, name) — name may be a canonical name or an alias
// — to its descriptor.
func Lookup(task Task, name string) (*Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m := byName[task]
	if m == nil {
		return nil, false
	}
	if d, ok := m[name]; ok {
		return d, true
	}
	if canon, ok := byAlias[task][name]; ok {
		return m[canon], true
	}
	return nil, false
}

// KnownTask reports whether any descriptor is registered under task.
func KnownTask(task Task) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	return len(byName[task]) > 0
}

// Tasks returns every task with at least one registered descriptor, in
// stable order: the built-in tasks first (broadcast, leader, multicast,
// partition), then any others alphabetically.
func Tasks() []Task {
	regMu.RLock()
	defer regMu.RUnlock()
	builtin := []Task{Broadcast, Leader, Multicast, Partition}
	seen := map[Task]bool{}
	var out []Task
	for _, t := range builtin {
		if len(byName[t]) > 0 {
			out = append(out, t)
			seen[t] = true
		}
	}
	var rest []Task
	for t := range byName {
		if !seen[t] && len(byName[t]) > 0 {
			rest = append(rest, t)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return append(out, rest...)
}

// ByTask returns the task's descriptors sorted by (Order, Name).
func ByTask(task Task) []*Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Descriptor, 0, len(byName[task]))
	for _, d := range byName[task] {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the task's canonical descriptor names sorted as ByTask.
func Names(task Task) []string {
	ds := ByTask(task)
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// KnownList renders the task's names for error messages ("cd17 hw16 ...").
func KnownList(task Task) string { return strings.Join(Names(task), " ") }
