// Package all links every algorithm package into the protocol registry
// and every backend package into the transport registry. Importing it
// (blank) is how an executable or library layer opts into the full
// algorithm and backend catalogue; adding a new algorithm or backend
// package means adding exactly one import line here or in
// radionet/internal/radio/backends — no dispatch code changes.
package all

import (
	_ "radionet/internal/baseline"
	_ "radionet/internal/cd"
	_ "radionet/internal/cluster"
	_ "radionet/internal/compete"
	_ "radionet/internal/decay"
	_ "radionet/internal/ghle"
	_ "radionet/internal/multicast"
	_ "radionet/internal/radio/backends"
)
