package protocol

import (
	"strings"
	"testing"
)

// snapshotRegistry saves the live registry and restores it on cleanup, so
// tests can register scratch descriptors without polluting the process.
func snapshotRegistry(t *testing.T) {
	t.Helper()
	regMu.Lock()
	savedNames := byName
	savedAliases := byAlias
	byName = map[Task]map[string]*Descriptor{}
	byAlias = map[Task]map[string]string{}
	for task, m := range savedNames {
		byName[task] = map[string]*Descriptor{}
		for n, d := range m {
			byName[task][n] = d
		}
	}
	for task, m := range savedAliases {
		byAlias[task] = map[string]string{}
		for a, n := range m {
			byAlias[task][a] = n
		}
	}
	regMu.Unlock()
	t.Cleanup(func() {
		regMu.Lock()
		byName = savedNames
		byAlias = savedAliases
		regMu.Unlock()
	})
}

func dummy(task Task, name string, aliases ...string) Descriptor {
	return Descriptor{
		Task:    task,
		Name:    name,
		Aliases: aliases,
		Build:   func(BuildParams) (Runner, error) { return nil, nil },
	}
}

func TestRegisterLookupAliases(t *testing.T) {
	snapshotRegistry(t)
	const task = Task("test-task")
	Register(dummy(task, "alpha", "a", "al"))
	Register(dummy(task, "beta"))

	for _, name := range []string{"alpha", "a", "al"} {
		d, ok := Lookup(task, name)
		if !ok || d.Name != "alpha" {
			t.Fatalf("Lookup(%q) = %v, %v", name, d, ok)
		}
	}
	if _, ok := Lookup(task, "gamma"); ok {
		t.Fatal("unknown name resolved")
	}
	if _, ok := Lookup(Task("no-such-task"), "alpha"); ok {
		t.Fatal("unknown task resolved")
	}
	if !KnownTask(task) || KnownTask(Task("no-such-task")) {
		t.Fatal("KnownTask wrong")
	}
	if got := KnownList(task); got != "alpha beta" {
		t.Fatalf("KnownList = %q", got)
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	snapshotRegistry(t)
	const task = Task("test-task")
	Register(dummy(task, "alpha", "a"))

	mustPanic := func(name string, d Descriptor) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	mustPanic("dup name", dummy(task, "alpha"))
	mustPanic("dup alias", dummy(task, "a"))
	mustPanic("self-shadowing alias", dummy(task, "gamma", "gamma"))
	mustPanic("repeated alias", dummy(task, "delta", "dd", "dd"))
	mustPanic("alias collides with name", dummy(task, "beta", "alpha"))
	mustPanic("no build", Descriptor{Task: task, Name: "nobuild"})
	mustPanic("no name", Descriptor{Task: task, Build: func(BuildParams) (Runner, error) { return nil, nil }})
	mustPanic("scratch cap without NewScratch", Descriptor{
		Task: task, Name: "badscratch", Caps: Caps{Scratch: true},
		Build: func(BuildParams) (Runner, error) { return nil, nil },
	})
}

func TestByTaskOrdering(t *testing.T) {
	snapshotRegistry(t)
	const task = Task("test-task")
	d1 := dummy(task, "zeta")
	d1.Order = 10
	d2 := dummy(task, "eta")
	d2.Order = 20
	d3 := dummy(task, "theta")
	d3.Order = 10
	Register(d1)
	Register(d2)
	Register(d3)
	got := Names(task)
	want := "theta zeta eta" // order 10 ties break by name, then order 20
	if strings.Join(got, " ") != want {
		t.Fatalf("Names = %v, want %s", got, want)
	}
}

func TestProtectedNodesDefaultsToSortedSources(t *testing.T) {
	d := dummy(Broadcast, "x")
	got := d.ProtectedNodes(nil, 0, 1, map[int]int64{5: 9, 1: 9, 3: 9}, nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("ProtectedNodes = %v, want [1 3 5]", got)
	}
	if d.ProtectedNodes(nil, 0, 1, nil, nil) != nil {
		t.Fatal("ProtectedNodes(nil sources) != nil")
	}
}

func TestMarkdownTableShape(t *testing.T) {
	snapshotRegistry(t)
	const task = Task("test-task")
	Register(dummy(task, "alpha", "a"))
	out := MarkdownTable()
	if !strings.HasPrefix(out, "| task | algorithm |") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "| test-task | `alpha` | a |") {
		t.Fatalf("missing row:\n%s", out)
	}
}
