package bench

import (
	"encoding/json"
	"path/filepath"
	"radionet/internal/obs"
	"strings"
	"testing"
)

func TestGridsListedAndResolvable(t *testing.T) {
	gs := Grids()
	if len(gs) < 2 {
		t.Fatalf("want >= 2 pinned grids, got %d", len(gs))
	}
	for _, g := range gs {
		if _, ok := LookupGrid(g.Name); !ok {
			t.Fatalf("grid %s not resolvable", g.Name)
		}
		// Both variants must expand cleanly.
		for _, quick := range []bool{false, true} {
			if _, err := g.Matrix(quick).Expand(); err != nil {
				t.Fatalf("grid %s (quick=%v): %v", g.Name, quick, err)
			}
		}
	}
	if _, ok := LookupGrid("no-such-grid"); ok {
		t.Fatal("bogus grid resolved")
	}
}

// TestRunQuickRoundTrip runs the decay grid at quick scale and round-trips
// the emitted file through Parse — the same check CI applies to the
// committed BENCH_*.json files.
func TestRunQuickRoundTrip(t *testing.T) {
	g, _ := LookupGrid("decay")
	f, err := Run(g, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Quick || f.Grid != "decay" || f.SchemaVersion != SchemaVersion {
		t.Fatalf("file header wrong: %+v", f)
	}
	if len(f.Entries) != 2 { // one topology x two algorithms
		t.Fatalf("entries = %d, want 2", len(f.Entries))
	}
	for _, e := range f.Entries {
		if e.Trials != 2 || e.RoundsMean <= 0 || e.WallMSTotal <= 0 {
			t.Fatalf("implausible entry: %+v", e)
		}
	}
	if f.RoundsPerSec <= 0 {
		t.Fatalf("rounds_per_sec = %v", f.RoundsPerSec)
	}
	path := filepath.Join(t.TempDir(), "BENCH_decay.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.ConfigHash != f.ConfigHash || len(back.Entries) != len(f.Entries) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, f)
	}
}

func TestParseRejectsBadFiles(t *testing.T) {
	good := &File{
		SchemaVersion: SchemaVersion,
		Grid:          "decay",
		Entries:       []obs.ConfigRecord{{Name: "randtree:2000/broadcast:bgi", N: 2000, D: 20, Trials: 2, RoundsMean: 100, WallMSTotal: 1, WallMSMean: 0.5}},
	}
	b, _ := json.Marshal(good)
	if _, err := Parse(b); err != nil {
		t.Fatalf("good file rejected: %v", err)
	}
	cases := map[string]func(f *File){
		"schema":   func(f *File) { f.SchemaVersion = SchemaVersion + 1 },
		"grid":     func(f *File) { f.Grid = "" },
		"entries":  func(f *File) { f.Entries = nil },
		"trials":   func(f *File) { f.Entries[0].Trials = 0 },
		"failures": func(f *File) { f.Entries[0].Failures = 3 },
		"negative": func(f *File) { f.Entries[0].WallMSTotal = -1 },
	}
	for name, mutate := range cases {
		f := *good
		f.Entries = append([]obs.ConfigRecord(nil), good.Entries...)
		mutate(&f)
		b, _ := json.Marshal(&f)
		if _, err := Parse(b); err == nil {
			t.Errorf("%s: bad file accepted", name)
		}
	}
	// Unknown fields are schema drift, not data.
	if _, err := Parse([]byte(`{"schema_version":1,"grid":"g","bogus":true,"entries":[]}`)); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown field accepted: %v", err)
	}
}
