package bench

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"radionet/internal/obs"
	"radionet/internal/precompute"
)

func TestGridsListedAndResolvable(t *testing.T) {
	gs := Grids()
	if len(gs) < 2 {
		t.Fatalf("want >= 2 pinned grids, got %d", len(gs))
	}
	for _, g := range gs {
		if _, ok := LookupGrid(g.Name); !ok {
			t.Fatalf("grid %s not resolvable", g.Name)
		}
		// Both variants must expand cleanly.
		for _, quick := range []bool{false, true} {
			if _, err := g.Matrix(quick).Expand(); err != nil {
				t.Fatalf("grid %s (quick=%v): %v", g.Name, quick, err)
			}
		}
	}
	if _, ok := LookupGrid("no-such-grid"); ok {
		t.Fatal("bogus grid resolved")
	}
}

// TestRunQuickRoundTrip runs the decay grid at quick scale and round-trips
// the emitted file through Parse — the same check CI applies to the
// committed BENCH_*.json files.
func TestRunQuickRoundTrip(t *testing.T) {
	g, _ := LookupGrid("decay")
	f, err := Run(g, true, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Quick || f.Grid != "decay" || f.SchemaVersion != SchemaVersion {
		t.Fatalf("file header wrong: %+v", f)
	}
	if f.Cache != "off" {
		t.Fatalf("cache = %q without a store, want off", f.Cache)
	}
	if len(f.Entries) != 2 { // one topology x two algorithms
		t.Fatalf("entries = %d, want 2", len(f.Entries))
	}
	for _, e := range f.Entries {
		if e.Trials != 2 || e.RoundsMean <= 0 || e.WallMSTotal <= 0 {
			t.Fatalf("implausible entry: %+v", e)
		}
	}
	if f.RoundsPerSec <= 0 {
		t.Fatalf("rounds_per_sec = %v", f.RoundsPerSec)
	}
	path := filepath.Join(t.TempDir(), "BENCH_decay.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.ConfigHash != f.ConfigHash || len(back.Entries) != len(f.Entries) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, f)
	}
}

func TestParseRejectsBadFiles(t *testing.T) {
	good := &File{
		SchemaVersion: SchemaVersion,
		Grid:          "decay",
		Entries:       []obs.ConfigRecord{{Name: "randtree:2000/broadcast:bgi", N: 2000, D: 20, Trials: 2, RoundsMean: 100, WallMSTotal: 1, WallMSMean: 0.5}},
	}
	b, _ := json.Marshal(good)
	if _, err := Parse(b); err != nil {
		t.Fatalf("good file rejected: %v", err)
	}
	cases := map[string]func(f *File){
		"schema":   func(f *File) { f.SchemaVersion = SchemaVersion + 1 },
		"grid":     func(f *File) { f.Grid = "" },
		"entries":  func(f *File) { f.Entries = nil },
		"trials":   func(f *File) { f.Entries[0].Trials = 0 },
		"failures": func(f *File) { f.Entries[0].Failures = 3 },
		"negative": func(f *File) { f.Entries[0].WallMSTotal = -1 },
	}
	for name, mutate := range cases {
		f := *good
		f.Entries = append([]obs.ConfigRecord(nil), good.Entries...)
		mutate(&f)
		b, _ := json.Marshal(&f)
		if _, err := Parse(b); err == nil {
			t.Errorf("%s: bad file accepted", name)
		}
	}
	// Unknown fields are schema drift, not data.
	if _, err := Parse([]byte(`{"schema_version":1,"grid":"g","bogus":true,"entries":[]}`)); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown field accepted: %v", err)
	}
}

// TestParseSchemaVersions pins the two supported wire shapes: version-1
// files (no shards field) parse with Shards 0, version-2 files carry it,
// and a version-1 file smuggling the version-2 field fails strict parsing.
func TestParseSchemaVersions(t *testing.T) {
	entry := `{"name":"randtree:2000/broadcast:bgi","n":2000,"d":20,"trials":2,"rounds_mean":100,"wall_ms_total":1,"wall_ms_mean":0.5}`
	v1 := `{"schema_version":1,"grid":"decay","go":"go1.x","gomaxprocs":1,"workers":1,"config_hash":"h","wall_ms":1,"rounds_per_sec":10,"entries":[` + entry + `]}`
	f, err := Parse([]byte(v1))
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if f.SchemaVersion != 1 || f.Shards != 0 {
		t.Fatalf("v1 parse: schema %d shards %d", f.SchemaVersion, f.Shards)
	}
	v2 := `{"schema_version":2,"grid":"decay","go":"go1.x","gomaxprocs":1,"workers":1,"shards":4,"config_hash":"h","wall_ms":1,"rounds_per_sec":10,"entries":[` + entry + `]}`
	f, err = Parse([]byte(v2))
	if err != nil {
		t.Fatalf("v2 file rejected: %v", err)
	}
	if f.SchemaVersion != 2 || f.Shards != 4 {
		t.Fatalf("v2 parse: schema %d shards %d", f.SchemaVersion, f.Shards)
	}
	v1drift := `{"schema_version":1,"grid":"decay","go":"go1.x","gomaxprocs":1,"workers":1,"shards":4,"config_hash":"h","wall_ms":1,"rounds_per_sec":10,"entries":[` + entry + `]}`
	if _, err := Parse([]byte(v1drift)); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("v1 file with v2 field accepted: %v", err)
	}
	hist := `{"go":"go1.x","gomaxprocs":1,"workers":1,"shards":1,"config_hash":"h","wall_ms":2,"rounds_per_sec":5}`
	v3 := `{"schema_version":3,"grid":"decay","go":"go1.x","gomaxprocs":4,"workers":4,"shards":4,"config_hash":"h","wall_ms":1,"rounds_per_sec":10,"entries":[` + entry + `],"history":[` + hist + `]}`
	f, err = Parse([]byte(v3))
	if err != nil {
		t.Fatalf("v3 file rejected: %v", err)
	}
	if f.SchemaVersion != 3 || len(f.History) != 1 || f.History[0].WallMS != 2 {
		t.Fatalf("v3 parse: %+v", f)
	}
	v2drift := `{"schema_version":2,"grid":"decay","go":"go1.x","gomaxprocs":1,"workers":1,"shards":4,"config_hash":"h","wall_ms":1,"rounds_per_sec":10,"entries":[` + entry + `],"history":[` + hist + `]}`
	if _, err := Parse([]byte(v2drift)); err == nil || !strings.Contains(err.Error(), "history") {
		t.Fatalf("v2 file with v3 field accepted: %v", err)
	}
	v4 := `{"schema_version":4,"grid":"decay","go":"go1.x","gomaxprocs":4,"workers":4,"shards":4,"config_hash":"h","wall_ms":1,"rounds_per_sec":10,"setup_ms":7,"cache":"warm","entries":[` + entry + `],"history":[` + hist + `]}`
	f, err = Parse([]byte(v4))
	if err != nil {
		t.Fatalf("v4 file rejected: %v", err)
	}
	if f.SetupMS != 7 || f.Cache != "warm" {
		t.Fatalf("v4 parse lost the setup split: %+v", f)
	}
	// The setup split is a version-4 field everywhere it can appear.
	v3drift := `{"schema_version":3,"grid":"decay","go":"go1.x","gomaxprocs":4,"workers":4,"config_hash":"h","wall_ms":1,"rounds_per_sec":10,"setup_ms":7,"entries":[` + entry + `]}`
	if _, err := Parse([]byte(v3drift)); err == nil || !strings.Contains(err.Error(), "setup_ms") {
		t.Fatalf("v3 file with top-level setup_ms accepted: %v", err)
	}
	smuggled := `{"name":"x","trials":2,"rounds_mean":1,"wall_ms_total":1,"wall_ms_mean":0.5,"setup_ms":3}`
	v3smuggle := `{"schema_version":3,"grid":"decay","go":"go1.x","gomaxprocs":4,"workers":4,"config_hash":"h","wall_ms":1,"rounds_per_sec":10,"entries":[` + smuggled + `]}`
	if _, err := Parse([]byte(v3smuggle)); err == nil || !strings.Contains(err.Error(), "setup_ms") {
		t.Fatalf("v3 file with per-entry setup_ms accepted: %v", err)
	}
	badCache := `{"schema_version":4,"grid":"decay","go":"go1.x","gomaxprocs":4,"workers":4,"config_hash":"h","wall_ms":1,"rounds_per_sec":10,"cache":"lukewarm","entries":[` + entry + `]}`
	if _, err := Parse([]byte(badCache)); err == nil || !strings.Contains(err.Error(), "cache") {
		t.Fatalf("unknown cache status accepted: %v", err)
	}
	if _, err := Parse([]byte(`{"schema_version":5,"grid":"g","entries":[` + entry + `]}`)); err == nil {
		t.Fatal("future schema version accepted")
	}
}

// TestRunCacheEquivalence pins the bench-level cache contract: one grid
// run with the cache off, cold and warm produces identical deterministic
// measurements (config hash, trials, rounds), while the file honestly
// reports which cache state it ran under.
func TestRunCacheEquivalence(t *testing.T) {
	g, _ := LookupGrid("decay")
	dir := t.TempDir()
	off, err := Run(g, true, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(g, true, 2, 1, precompute.NewStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(g, true, 2, 1, precompute.NewStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	if off.Cache != "off" || cold.Cache != "cold" || warm.Cache != "warm" {
		t.Fatalf("cache statuses: %q %q %q, want off cold warm", off.Cache, cold.Cache, warm.Cache)
	}
	for _, f := range []*File{cold, warm} {
		if f.ConfigHash != off.ConfigHash || len(f.Entries) != len(off.Entries) {
			t.Fatalf("cache changed the grid shape: %+v vs %+v", f, off)
		}
		for i, e := range f.Entries {
			o := off.Entries[i]
			if e.Name != o.Name || e.Trials != o.Trials || e.Failures != o.Failures || e.RoundsMean != o.RoundsMean {
				t.Fatalf("cache changed a measurement: %+v vs %+v", e, o)
			}
		}
	}
}

// TestAppendHistory pins the -append trajectory contract: the previous
// file's headline measurement becomes the newest history entry, its own
// history survives in order, and the grafted file still validates and
// round-trips.
func TestAppendHistory(t *testing.T) {
	entries := []obs.ConfigRecord{{Name: "randtree:2000/broadcast:bgi", N: 2000, D: 20, Trials: 2, RoundsMean: 100, WallMSTotal: 1, WallMSMean: 0.5}}
	prev := &File{
		SchemaVersion: SchemaVersion,
		Grid:          "decay",
		Generated:     "2026-01-01T00:00:00Z",
		Go:            "go1.x",
		GOMAXPROCS:    1,
		Workers:       1,
		Shards:        1,
		ConfigHash:    "h-old",
		WallMS:        200,
		RoundsPerSec:  5,
		Entries:       entries,
		History:       []HistoryEntry{{Go: "go1.w", GOMAXPROCS: 1, Workers: 1, ConfigHash: "h-older", WallMS: 300, RoundsPerSec: 3}},
	}
	fresh := &File{
		SchemaVersion: SchemaVersion,
		Grid:          "decay",
		Go:            "go1.x",
		GOMAXPROCS:    4,
		Workers:       4,
		Shards:        4,
		ConfigHash:    "h-old",
		WallMS:        100,
		RoundsPerSec:  10,
		Entries:       entries,
	}
	fresh.AppendHistory(prev)
	if len(fresh.History) != 2 {
		t.Fatalf("history length %d, want 2", len(fresh.History))
	}
	if fresh.History[0].ConfigHash != "h-older" || fresh.History[1].ConfigHash != "h-old" {
		t.Fatalf("history order wrong: %+v", fresh.History)
	}
	if fresh.History[1].WallMS != 200 || fresh.History[1].Generated != "2026-01-01T00:00:00Z" {
		t.Fatalf("snapshot lost the previous measurement: %+v", fresh.History[1])
	}
	if fresh.WallMS != 100 || fresh.Shards != 4 {
		t.Fatalf("append clobbered the fresh measurement: %+v", fresh)
	}
	path := filepath.Join(t.TempDir(), "BENCH_decay.json")
	if err := fresh.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.History) != 2 || back.History[1].WallMS != 200 {
		t.Fatalf("history did not round-trip: %+v", back.History)
	}
}

// TestHugeGridOptIn pins the opt-in contract the cmd/bench "all" sweep
// relies on: the huge grid exists, is marked OptIn, and targets n=1e6.
func TestHugeGridOptIn(t *testing.T) {
	g, ok := LookupGrid("huge")
	if !ok {
		t.Fatal("huge grid not registered")
	}
	if !g.OptIn {
		t.Fatal("huge grid must be opt-in")
	}
	plan, err := g.Matrix(false).Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Configs {
		c := &plan.Configs[i]
		if c.G.N() != 1000000 {
			t.Fatalf("huge grid config %s has n=%d, want 1e6", c.Name(), c.G.N())
		}
	}
	for _, other := range []string{"decay", "compete"} {
		g, _ := LookupGrid(other)
		if g.OptIn {
			t.Fatalf("grid %s must not be opt-in", other)
		}
	}
}
