// Package bench pins the repo's performance-trajectory benchmark grids:
// small, named campaign matrices whose measured wall times are committed
// as schema-versioned BENCH_<grid>.json files at the repo root. Each
// commit that touches the hot path regenerates them (cmd/bench), so the
// simulator's throughput history is diffable in git rather than folklore.
//
// The numbers are telemetry, not golden output: wall times vary by
// machine, so CI only checks that the files parse and validate — the
// trajectory itself is for humans (and ROADMAP item 3).
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"radionet/internal/campaign"
	"radionet/internal/obs"
	"radionet/internal/precompute"
)

// SchemaVersion is bumped on any incompatible File change. Version 2
// added the Shards field (intra-round engine shard count); version 3
// added the History trajectory (prior runs' headline measurements,
// appended by cmd/bench -append); version 4 split the setup phase out
// of the headline wall time (SetupMS, per-entry setup_ms) and recorded
// the precompute-cache status (Cache). Older files still parse (see
// Parse).
const SchemaVersion = 4

// The older versions Parse still accepts.
const (
	schemaV1 = 1
	schemaV2 = 2
	schemaV3 = 3
)

// File is one emitted BENCH_<grid>.json: the grid identity, the execution
// environment and one record per grid configuration. Entries reuse the
// manifest's per-config record type — one schema across every tool.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	Grid          string `json:"grid"`
	// Generated is an RFC3339 timestamp (optional).
	Generated string `json:"generated,omitempty"`
	// Go, GOMAXPROCS and Workers record the execution environment.
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	// Shards is the largest intra-round engine shard count any
	// configuration ran with (schema 2+; 0 on parsed version-1 files, 1
	// when sharding was off).
	Shards int `json:"shards,omitempty"`
	// ConfigHash fingerprints the expanded matrix (campaign.Matrix.Hash),
	// so two files are comparable only when their hashes agree.
	ConfigHash string `json:"config_hash"`
	// Quick marks a -quick run (CI smoke scale, not the pinned grid).
	Quick bool `json:"quick,omitempty"`
	// WallMS is the whole-run wall time; RoundsPerSec the aggregate
	// simulated-rounds throughput over it.
	WallMS       float64 `json:"wall_ms"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// SetupMS is the setup-phase wall time — topology materialization and
	// scratch construction — measured separately from WallMS, which has
	// always excluded setup (schema 4+).
	SetupMS float64 `json:"setup_ms,omitempty"`
	// Cache is the precompute disk-cache status the run executed with:
	// "off", "cold" or "warm" (schema 4+; see campaign.RunStats.Cache).
	Cache string `json:"cache,omitempty"`
	// Entries are the per-configuration records, in configuration order.
	Entries []obs.ConfigRecord `json:"entries"`
	// History is the grid's measurement trajectory: the headline numbers
	// of prior runs, oldest first (schema 3+; cmd/bench -append moves the
	// previous file's measurement here instead of discarding it).
	History []HistoryEntry `json:"history,omitempty"`
}

// HistoryEntry is one prior run's headline measurement: the execution
// environment plus the whole-run numbers, without the per-config
// entries. It is exactly what a throughput-trajectory diff needs —
// wall time and rounds/s against cores, workers and shard count.
type HistoryEntry struct {
	Generated    string  `json:"generated,omitempty"`
	Go           string  `json:"go"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Workers      int     `json:"workers"`
	Shards       int     `json:"shards,omitempty"`
	ConfigHash   string  `json:"config_hash"`
	Quick        bool    `json:"quick,omitempty"`
	WallMS       float64 `json:"wall_ms"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// SetupMS and Cache mirror the File fields (schema 4+; zero/empty on
	// entries snapshotted from older files).
	SetupMS float64 `json:"setup_ms,omitempty"`
	Cache   string  `json:"cache,omitempty"`
}

// Snapshot condenses the file's current measurement into the history
// form — what -append preserves before overwriting the measurement.
func (f *File) Snapshot() HistoryEntry {
	return HistoryEntry{
		Generated:    f.Generated,
		Go:           f.Go,
		GOMAXPROCS:   f.GOMAXPROCS,
		Workers:      f.Workers,
		Shards:       f.Shards,
		ConfigHash:   f.ConfigHash,
		Quick:        f.Quick,
		WallMS:       f.WallMS,
		RoundsPerSec: f.RoundsPerSec,
		SetupMS:      f.SetupMS,
		Cache:        f.Cache,
	}
}

// AppendHistory grafts prev's trajectory onto f: prev's own history,
// then prev's measurement as the newest prior entry. The fresh run in
// f's top-level fields stays the file's current measurement.
func (f *File) AppendHistory(prev *File) {
	f.History = append(append([]HistoryEntry(nil), prev.History...), prev.Snapshot())
}

// Grid is one named pinned benchmark matrix.
type Grid struct {
	Name    string
	Summary string
	// OptIn excludes the grid from "run everything" sweeps (cmd/bench
	// -grid all): it only runs when named explicitly. Minutes-scale grids
	// like "huge" use it so the default regeneration loop stays fast.
	OptIn bool
	// matrix builds the grid's campaign matrix; quick selects the
	// seconds-scale CI variant instead of the pinned full scale.
	matrix func(quick bool) campaign.Matrix
}

// Matrix returns the grid's campaign matrix (a fresh copy per call).
func (g Grid) Matrix(quick bool) campaign.Matrix { return g.matrix(quick) }

// The pinned grids. Full scale is n ∈ {1e4, 1e5} on sparse random trees —
// the topology family the ROADMAP's large-n items benchmark — with enough
// seeds that per-config means are stable but a full run stays in minutes.
var grids = map[string]Grid{
	"decay": {
		Name:    "decay",
		Summary: "oblivious Decay-family broadcast (bgi, truncated-decay) at n=1e4/1e5: the per-round engine hot path",
		matrix: func(quick bool) campaign.Matrix {
			m := campaign.Matrix{
				Topologies: []string{"randtree:10000", "randtree:100000"},
				Algorithms: []campaign.AlgoSpec{
					{Task: campaign.Broadcast, Algo: "bgi"},
					{Task: campaign.Broadcast, Algo: "truncated-decay"},
				},
				Seeds:      3,
				MasterSeed: 1,
			}
			if quick {
				m.Topologies = []string{"randtree:2000"}
				m.Seeds = 2
			}
			return m
		},
	},
	"compete": {
		Name:    "compete",
		Summary: "the paper's cd17 clustering pipeline at n=1e4/1e5: precomputation plus the bulk broadcast path",
		matrix: func(quick bool) campaign.Matrix {
			m := campaign.Matrix{
				Topologies: []string{"randtree:10000", "randtree:100000"},
				Algorithms: []campaign.AlgoSpec{
					{Task: campaign.Broadcast, Algo: "cd17"},
				},
				Seeds:      2,
				MasterSeed: 1,
			}
			if quick {
				m.Topologies = []string{"randtree:2000"}
			}
			return m
		},
	},
	"huge": {
		Name:    "huge",
		Summary: "opt-in n=1e6 Decay-family stress grid (bgi, truncated-decay): the sharded delivery-kernel scale target",
		OptIn:   true,
		matrix: func(quick bool) campaign.Matrix {
			m := campaign.Matrix{
				Topologies: []string{"randtree:1000000"},
				Algorithms: []campaign.AlgoSpec{
					{Task: campaign.Broadcast, Algo: "bgi"},
					{Task: campaign.Broadcast, Algo: "truncated-decay"},
				},
				Seeds:      1,
				MasterSeed: 1,
			}
			if quick {
				m.Topologies = []string{"randtree:200000"}
			}
			return m
		},
	},
}

// Grids lists the pinned grids in name order.
func Grids() []Grid {
	names := make([]string, 0, len(grids))
	for n := range grids {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Grid, len(names))
	for i, n := range names {
		out[i] = grids[n]
	}
	return out
}

// LookupGrid resolves a grid by name.
func LookupGrid(name string) (Grid, bool) {
	g, ok := grids[name]
	return g, ok
}

// Run executes one grid and assembles its File. workers 0 means
// GOMAXPROCS; shards is the campaign's EngineShards knob (0 = auto-split
// spare cores on large graphs, 1 = off — sharding never changes the
// measured output, only the wall times); store is the optional precompute
// disk cache (nil = off — caching never changes the measured output
// either, only the setup-phase wall time the file now reports). The run
// itself is silent (no sinks) — the measurements come from the campaign's
// telemetry surface.
func Run(g Grid, quick bool, workers, shards int, store *precompute.Store) (*File, error) {
	m := g.Matrix(quick)
	var st campaign.RunStats
	c := campaign.Campaign{Matrix: m, Workers: workers, EngineShards: shards, Cache: store, Obs: obs.NewRegistry(), Stats: &st}
	if _, err := c.Run(); err != nil {
		return nil, fmt.Errorf("bench: grid %s: %w", g.Name, err)
	}
	f := FromStats(g.Name, m, &st, c.Obs)
	f.Quick = quick
	return f, nil
}

// FromStats assembles a File from an already-executed campaign's matrix,
// RunStats and registry — the seam cmd/campaign -bench-out uses to emit
// bench records for ad-hoc matrices (grid name "custom").
func FromStats(grid string, m campaign.Matrix, st *campaign.RunStats, reg *obs.Registry) *File {
	man := obs.NewManifest("bench")
	f := &File{
		SchemaVersion: SchemaVersion,
		Grid:          grid,
		Go:            man.GoVersion,
		GOMAXPROCS:    man.GOMAXPROCS,
		ConfigHash:    m.Hash(),
	}
	if st != nil {
		f.Workers = st.Workers
		f.Shards = st.Shards
		f.WallMS = float64(st.Wall.Nanoseconds()) / 1e6
		f.SetupMS = float64(st.Setup.Nanoseconds()) / 1e6
		f.Cache = st.Cache
		for _, cs := range st.Configs {
			rec := obs.ConfigRecord{
				Name:        cs.Name,
				N:           cs.N,
				D:           cs.D,
				Trials:      cs.Trials,
				Failures:    cs.Failures,
				RoundsMean:  cs.RoundsMean,
				WallMSTotal: float64(cs.Wall.Nanoseconds()) / 1e6,
				SetupMS:     float64(cs.Setup.Nanoseconds()) / 1e6,
			}
			if cs.Trials > 0 {
				rec.WallMSMean = rec.WallMSTotal / float64(cs.Trials)
			}
			f.Entries = append(f.Entries, rec)
		}
	}
	if reg != nil {
		f.RoundsPerSec = float64(reg.Gauge(obs.EngineRoundsPerSec).Value())
	}
	return f
}

// fileV1 is the schema-1 wire shape: File without the Shards field. A
// version-1 file carrying "shards" is schema drift and fails strict
// parsing, exactly like any other unknown field.
type fileV1 struct {
	SchemaVersion int                `json:"schema_version"`
	Grid          string             `json:"grid"`
	Generated     string             `json:"generated,omitempty"`
	Go            string             `json:"go"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Workers       int                `json:"workers"`
	ConfigHash    string             `json:"config_hash"`
	Quick         bool               `json:"quick,omitempty"`
	WallMS        float64            `json:"wall_ms"`
	RoundsPerSec  float64            `json:"rounds_per_sec"`
	Entries       []obs.ConfigRecord `json:"entries"`
}

// fileV2 is the schema-2 wire shape: File with Shards but without the
// History trajectory. A version-2 file carrying "history" is schema
// drift and fails strict parsing.
type fileV2 struct {
	SchemaVersion int                `json:"schema_version"`
	Grid          string             `json:"grid"`
	Generated     string             `json:"generated,omitempty"`
	Go            string             `json:"go"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Workers       int                `json:"workers"`
	Shards        int                `json:"shards,omitempty"`
	ConfigHash    string             `json:"config_hash"`
	Quick         bool               `json:"quick,omitempty"`
	WallMS        float64            `json:"wall_ms"`
	RoundsPerSec  float64            `json:"rounds_per_sec"`
	Entries       []obs.ConfigRecord `json:"entries"`
}

// fileV3 is the schema-3 wire shape: File with the History trajectory
// but without the version-4 setup split (setup_ms, cache). A version-3
// file carrying either is schema drift and fails strict parsing; the
// per-entry setup_ms smuggling case — entries share the live
// obs.ConfigRecord shape — is caught by Validate instead.
type fileV3 struct {
	SchemaVersion int                `json:"schema_version"`
	Grid          string             `json:"grid"`
	Generated     string             `json:"generated,omitempty"`
	Go            string             `json:"go"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Workers       int                `json:"workers"`
	Shards        int                `json:"shards,omitempty"`
	ConfigHash    string             `json:"config_hash"`
	Quick         bool               `json:"quick,omitempty"`
	WallMS        float64            `json:"wall_ms"`
	RoundsPerSec  float64            `json:"rounds_per_sec"`
	Entries       []obs.ConfigRecord `json:"entries"`
	History       []historyV3        `json:"history,omitempty"`
}

// historyV3 is the schema-3 history-entry wire shape: HistoryEntry
// without setup_ms and cache.
type historyV3 struct {
	Generated    string  `json:"generated,omitempty"`
	Go           string  `json:"go"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Workers      int     `json:"workers"`
	Shards       int     `json:"shards,omitempty"`
	ConfigHash   string  `json:"config_hash"`
	Quick        bool    `json:"quick,omitempty"`
	WallMS       float64 `json:"wall_ms"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

// Parse decodes and validates a bench file, rejecting unknown fields so
// schema drift fails loudly in CI rather than silently dropping data.
// Every supported schema version parses strictly against its own wire
// shape: a version-1 file must not carry version-2 fields, a version-2
// file must not carry a history, a version-3 file must not carry the
// setup split, and nothing unknown anywhere; parsed version-1 files
// report Shards 0.
func Parse(b []byte) (*File, error) {
	var ver struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal(b, &ver); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var f File
	switch ver.SchemaVersion {
	case schemaV1:
		var v1 fileV1
		if err := strictUnmarshal(b, &v1); err != nil {
			return nil, fmt.Errorf("bench: schema %d: %w", schemaV1, err)
		}
		f = File{
			SchemaVersion: v1.SchemaVersion,
			Grid:          v1.Grid,
			Generated:     v1.Generated,
			Go:            v1.Go,
			GOMAXPROCS:    v1.GOMAXPROCS,
			Workers:       v1.Workers,
			ConfigHash:    v1.ConfigHash,
			Quick:         v1.Quick,
			WallMS:        v1.WallMS,
			RoundsPerSec:  v1.RoundsPerSec,
			Entries:       v1.Entries,
		}
	case schemaV2:
		var v2 fileV2
		if err := strictUnmarshal(b, &v2); err != nil {
			return nil, fmt.Errorf("bench: schema %d: %w", schemaV2, err)
		}
		f = File{
			SchemaVersion: v2.SchemaVersion,
			Grid:          v2.Grid,
			Generated:     v2.Generated,
			Go:            v2.Go,
			GOMAXPROCS:    v2.GOMAXPROCS,
			Workers:       v2.Workers,
			Shards:        v2.Shards,
			ConfigHash:    v2.ConfigHash,
			Quick:         v2.Quick,
			WallMS:        v2.WallMS,
			RoundsPerSec:  v2.RoundsPerSec,
			Entries:       v2.Entries,
		}
	case schemaV3:
		var v3 fileV3
		if err := strictUnmarshal(b, &v3); err != nil {
			return nil, fmt.Errorf("bench: schema %d: %w", schemaV3, err)
		}
		f = File{
			SchemaVersion: v3.SchemaVersion,
			Grid:          v3.Grid,
			Generated:     v3.Generated,
			Go:            v3.Go,
			GOMAXPROCS:    v3.GOMAXPROCS,
			Workers:       v3.Workers,
			Shards:        v3.Shards,
			ConfigHash:    v3.ConfigHash,
			Quick:         v3.Quick,
			WallMS:        v3.WallMS,
			RoundsPerSec:  v3.RoundsPerSec,
			Entries:       v3.Entries,
		}
		for _, h := range v3.History {
			f.History = append(f.History, HistoryEntry{
				Generated:    h.Generated,
				Go:           h.Go,
				GOMAXPROCS:   h.GOMAXPROCS,
				Workers:      h.Workers,
				Shards:       h.Shards,
				ConfigHash:   h.ConfigHash,
				Quick:        h.Quick,
				WallMS:       h.WallMS,
				RoundsPerSec: h.RoundsPerSec,
			})
		}
	default:
		// Validate reports unsupported versions; current-version files
		// parse against the full shape.
		if err := strictUnmarshal(b, &f); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// ParseFile is Parse over a file path.
func ParseFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	f, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return f, nil
}

// Validate checks the file's internal consistency: the supported schema
// version and sane per-entry invariants.
func (f *File) Validate() error {
	if f.SchemaVersion < schemaV1 || f.SchemaVersion > SchemaVersion {
		return fmt.Errorf("bench: schema_version %d, supported %d-%d", f.SchemaVersion, schemaV1, SchemaVersion)
	}
	if f.SchemaVersion < schemaV2 && f.Shards != 0 {
		return fmt.Errorf("bench: schema_version %d carries shards %d (a version-%d field)", f.SchemaVersion, f.Shards, schemaV2)
	}
	if f.SchemaVersion < schemaV3 && len(f.History) != 0 {
		return fmt.Errorf("bench: schema_version %d carries a %d-entry history (a version-%d field)", f.SchemaVersion, len(f.History), schemaV3)
	}
	if f.SchemaVersion < SchemaVersion {
		// The setup split is a version-4 field everywhere it can appear —
		// the top level, history entries and per-config entries (whose wire
		// shape is the live obs.ConfigRecord, so strict parsing alone cannot
		// catch a smuggled setup_ms there).
		if f.SetupMS != 0 || f.Cache != "" {
			return fmt.Errorf("bench: schema_version %d carries the setup split (version-%d fields)", f.SchemaVersion, SchemaVersion)
		}
		for i, h := range f.History {
			if h.SetupMS != 0 || h.Cache != "" {
				return fmt.Errorf("bench: schema_version %d history entry %d carries the setup split (version-%d fields)", f.SchemaVersion, i, SchemaVersion)
			}
		}
		for i, e := range f.Entries {
			if e.SetupMS != 0 {
				return fmt.Errorf("bench: schema_version %d entry %d carries setup_ms (a version-%d field)", f.SchemaVersion, i, SchemaVersion)
			}
		}
	}
	if f.Shards < 0 {
		return fmt.Errorf("bench: negative shards %d", f.Shards)
	}
	if f.SetupMS < 0 {
		return fmt.Errorf("bench: negative setup_ms %v", f.SetupMS)
	}
	if err := validCache(f.Cache); err != nil {
		return err
	}
	for i, h := range f.History {
		if h.WallMS < 0 || h.RoundsPerSec < 0 || h.Shards < 0 || h.SetupMS < 0 {
			return fmt.Errorf("bench: grid %s history entry %d: negative measurement", f.Grid, i)
		}
		if err := validCache(h.Cache); err != nil {
			return fmt.Errorf("bench: grid %s history entry %d: %w", f.Grid, i, err)
		}
	}
	if f.Grid == "" {
		return fmt.Errorf("bench: missing grid name")
	}
	if len(f.Entries) == 0 {
		return fmt.Errorf("bench: grid %s has no entries", f.Grid)
	}
	for i, e := range f.Entries {
		switch {
		case e.Name == "":
			return fmt.Errorf("bench: grid %s entry %d: missing name", f.Grid, i)
		case e.Trials <= 0:
			return fmt.Errorf("bench: grid %s entry %s: trials %d", f.Grid, e.Name, e.Trials)
		case e.Failures < 0 || e.Failures > e.Trials:
			return fmt.Errorf("bench: grid %s entry %s: failures %d of %d trials", f.Grid, e.Name, e.Failures, e.Trials)
		case e.RoundsMean < 0 || e.WallMSTotal < 0 || e.WallMSMean < 0 || e.SetupMS < 0:
			return fmt.Errorf("bench: grid %s entry %s: negative measurement", f.Grid, e.Name)
		}
	}
	return nil
}

// validCache checks a cache-status value: empty (older schemas, or a run
// predating the field) or one of the three campaign statuses.
func validCache(c string) error {
	switch c {
	case "", "off", "cold", "warm":
		return nil
	}
	return fmt.Errorf("bench: unknown cache status %q", c)
}

// WriteFile writes the bench file as indented JSON to path.
func (f *File) WriteFile(path string) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
