// Package baseline implements the prior algorithms the paper compares
// against in Sections 1.3–1.4, so that every comparison claim can be
// regenerated:
//
//   - BGI broadcast [3], O((D+log n)·log n): decay.NewBroadcast.
//   - Czumaj–Rytter / Kowalski–Pelc flavored broadcast [9, 14],
//     O(D·log(n/D) + log²n): TruncatedDecay below. The real algorithms
//     use selective families; the surrogate keeps their key lever — Decay
//     phases truncated to the log(n/D) contention scale of a D-layer
//     network — and is labeled a surrogate wherever it is reported.
//   - Binary-search leader election [2], O(T_BC·log n): BinarySearchLE.
//   - Expected-O(T_BC) leader election in the style of Czumaj–Davies'19
//     [8]: MaxBroadcastLE (multi-source max-propagating Decay broadcast of
//     random candidate IDs). The Ghaffari–Haeupler'13 algorithm sits
//     between these two bounds; MaxBroadcastLE is the stand-in for the
//     "fast prior LE" series and is labeled as such (DESIGN.md §3).
//   - Haeupler–Wajc'16 broadcast: compete.Config{CurtailLogLog: true},
//     i.e. the same pipeline with their O(log log n)-weaker curtailment;
//     constructed here for convenience.
package baseline

import (
	"errors"
	"fmt"
	"math/bits"

	"radionet/internal/compete"
	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/protocol"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// TruncatedDecayLevels returns the phase length used by the CR/KP
// surrogate: ceil(log2(n/D)) + 2, at least 2.
func TruncatedDecayLevels(n, d int) int {
	if d < 1 {
		d = 1
	}
	ratio := n / d
	if ratio < 1 {
		ratio = 1
	}
	l := bits.Len(uint(ratio)) + 1
	if l < 2 {
		l = 2
	}
	return l
}

// NewTruncatedDecay builds the CR/KP-flavored broadcast: the BGI protocol
// with Decay phases truncated to the expected per-layer contention scale.
func NewTruncatedDecay(g *graph.Graph, d int, seed uint64, sources map[int]int64) *decay.Broadcast {
	return decay.NewBroadcast(g, decay.Config{Levels: TruncatedDecayLevels(g.N(), d)}, seed, sources)
}

// NewHW16Broadcast builds the Haeupler–Wajc'16 comparison mode of the
// clustering pipeline: identical to the paper's algorithm except the
// intra-cluster propagation runs for the O(log n·log log n/(β·log D))
// schedule length their weaker distance-to-center bound requires.
func NewHW16Broadcast(g *graph.Graph, d int, cfg compete.Config, seed uint64, src int, value int64) (*compete.Broadcast, error) {
	cfg.CurtailLogLog = true
	return compete.NewBroadcast(g, d, cfg, seed, src, value)
}

// LEResult reports a leader election run.
type LEResult struct {
	Rounds   int64
	Done     bool
	LeaderID int64 // the agreed ID (undefined if !Done)
	Leader   int   // the elected node (-1 if !Done)
	// Tx is the total engine transmission count, summed over every
	// broadcast the election ran (binary-search runs one per ID bit).
	Tx int64
}

// BinarySearchLE is the classical reduction [2]: a network-wide binary
// search for the highest candidate ID, one multi-source broadcast per ID
// bit. Each iteration asks "is there a candidate whose ID has the current
// prefix and a 1 in the next bit?" by having exactly those candidates run
// a Decay broadcast for a fixed T_BC budget; hearing anything sets the
// bit. Total time O(T_BC · IDBits).
type BinarySearchLE struct {
	g          *graph.Graph
	d          int
	seed       uint64
	candidates map[int]int64
	idBits     int
	tbc        int64
}

// NewBinarySearchLE samples candidates exactly like Algorithm 6 (with
// probability candC·ln n/n, random idBits-bit IDs, redrawn on the
// measure-zero empty/duplicate events) and prepares the binary search.
// tbc is the per-iteration broadcast budget; 0 selects
// 3·(D+log n)·log n, a whp-sufficient BGI budget.
func NewBinarySearchLE(g *graph.Graph, d int, seed uint64, candC float64, idBits int, tbc int64) (*BinarySearchLE, error) {
	if idBits <= 0 {
		idBits = 40
	}
	cands, err := SampleCandidates(g.N(), seed, candC, idBits)
	if err != nil {
		return nil, err
	}
	if tbc <= 0 {
		l := int64(decay.Levels(g.N()))
		tbc = 3 * (int64(d) + l) * l
	}
	return &BinarySearchLE{g: g, d: d, seed: seed, candidates: cands, idBits: idBits, tbc: tbc}, nil
}

// Candidates exposes the sampled candidate set.
func (b *BinarySearchLE) Candidates() map[int]int64 { return b.candidates }

// Run performs the binary search and returns the outcome. The reported
// round count is the sum over iterations of the fixed T_BC budget, as in
// the classical analysis (iterations are budget-bound, not adaptive).
func (b *BinarySearchLE) Run() LEResult {
	prefix := int64(0)
	var rounds, tx int64
	for bit := b.idBits - 1; bit >= 0; bit-- {
		probe := prefix | 1<<uint(bit)
		sources := make(map[int]int64)
		for v, id := range b.candidates {
			// Candidates whose ID matches the decided prefix and has a 1
			// at this bit announce themselves.
			if id>>uint(bit+1) == prefix>>uint(bit+1) && (id>>uint(bit))&1 == 1 {
				sources[v] = 1
			}
		}
		rounds += b.tbc
		if len(sources) == 0 {
			continue // silence everywhere; bit stays 0
		}
		bc := decay.NewBroadcast(b.g, decay.Config{}, b.seed+uint64(bit)+1, sources)
		bc.Run(b.tbc)
		tx += bc.Engine.Metrics.Transmissions
		// In the model every node that heard anything learns the bit is 1.
		// The oracle checks the source set was non-empty, which is what
		// reception signals; nodes that heard nothing within T_BC would
		// conclude 0 (a whp-correct conclusion given the budget).
		prefix = probe
	}
	winner := prefix
	leader := -1
	//lint:ordered candidate IDs are unique, so at most one node matches winner
	for v, id := range b.candidates {
		if id == winner {
			leader = v
		}
	}
	return LEResult{Rounds: rounds, Done: leader >= 0, LeaderID: winner, Leader: leader, Tx: tx}
}

// MaxBroadcastLE elects a leader with a single multi-source max-propagating
// Decay broadcast of candidate IDs, the expected-O(T_BC) approach of [8].
type MaxBroadcastLE struct {
	bc         *decay.Broadcast
	candidates map[int]int64
	budget     int64
}

// NewMaxBroadcastLE samples candidates as in Algorithm 6 and prepares the
// broadcast. budget 0 selects 6·(D+log n)·log n.
func NewMaxBroadcastLE(g *graph.Graph, d int, seed uint64, candC float64, idBits int, budget int64) (*MaxBroadcastLE, error) {
	return NewMaxBroadcastLEFaults(g, d, seed, candC, idBits, budget, nil)
}

// NewMaxBroadcastLEFaults is NewMaxBroadcastLE with a fault scenario
// installed on the underlying Decay broadcast; completion becomes
// survivor-scoped (see decay.Config.Faults). The election stays winnable
// only while the maximum-ID candidate survives — the campaign's fault
// planning protects that node (the protect-the-winner convention); with
// the winner crashed the run exhausts its budget with Done == false
// rather than elect a wrong leader.
func NewMaxBroadcastLEFaults(g *graph.Graph, d int, seed uint64, candC float64, idBits int, budget int64, plan *radio.FaultPlan) (*MaxBroadcastLE, error) {
	cands, err := SampleCandidates(g.N(), seed, candC, idBits)
	if err != nil {
		return nil, err
	}
	if budget <= 0 {
		l := int64(decay.Levels(g.N()))
		budget = 6 * (int64(d) + l) * l
	}
	return &MaxBroadcastLE{
		bc:         decay.NewBroadcast(g, decay.Config{Faults: plan}, seed, cands),
		candidates: cands,
		budget:     budget,
	}, nil
}

// Candidates exposes the sampled candidate set.
func (m *MaxBroadcastLE) Candidates() map[int]int64 { return m.candidates }

// Run executes the broadcast until all nodes agree on the maximum ID.
func (m *MaxBroadcastLE) Run() LEResult {
	rounds, done := m.bc.Run(m.budget)
	res := LEResult{Rounds: rounds, Done: done, Leader: -1, Tx: m.bc.Engine.Metrics.Transmissions}
	if !done {
		return res
	}
	res.Leader, res.LeaderID = protocol.MaxIDNode(m.candidates)
	return res
}

// Verify checks the election postcondition after a Done run: every node
// in the (survivor-scoped) completion target learned the maximum
// candidate ID. It is an independent full scan, not a read of the
// completion counter.
func (m *MaxBroadcastLE) Verify() error {
	_, max := protocol.MaxIDNode(m.candidates)
	counted := m.bc.Counted()
	for v, got := range m.bc.Values() {
		if counted != nil && !counted[v] {
			continue // outside the survivor-scoped completion target
		}
		if got != max {
			return fmt.Errorf("baseline: node %d outputs %d, want %d", v, got, max)
		}
	}
	return nil
}

// SampleCandidates draws the Algorithm-6 candidate set: each node becomes
// a candidate with probability candC·ln n/n and draws a random idBits-bit
// ID; empty or duplicate draws (probability O(n^-c)) are redrawn with a
// salted seed.
func SampleCandidates(n int, seed uint64, candC float64, idBits int) (map[int]int64, error) {
	if n <= 0 {
		return nil, errors.New("baseline: empty graph")
	}
	if candC <= 0 {
		candC = 2
	}
	if idBits <= 0 {
		idBits = 40
	}
	if idBits > 62 {
		return nil, fmt.Errorf("baseline: idBits %d > 62", idBits)
	}
	p := candC * logf(n) / float64(n)
	if p > 1 {
		p = 1
	}
	space := int64(1) << uint(idBits)
	for salt := uint64(0); salt <= 1000; salt++ {
		r := rng.New(seed).Fork(9000 + salt)
		out := make(map[int]int64)
		used := make(map[int64]bool)
		dup := false
		for v := 0; v < n; v++ {
			cr := r.Fork(uint64(v))
			if !cr.Bernoulli(p) {
				continue
			}
			id := cr.Int63n(space)
			if used[id] {
				dup = true
				break
			}
			used[id] = true
			out[v] = id
		}
		if !dup && len(out) > 0 {
			return out, nil
		}
	}
	return nil, fmt.Errorf("baseline: could not sample candidates for n=%d", n)
}

func logf(n int) float64 {
	l := 0.0
	for m := n; m > 1; m >>= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l * 0.6931471805599453 // ln 2: l counts binary orders of magnitude
}
