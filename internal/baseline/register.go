package baseline

import (
	"fmt"

	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/protocol"
)

// This file registers the prior-work baselines: the truncated-Decay
// broadcast surrogate and the two leader-election reductions. The runners
// reproduce the historical campaign semantics bit for bit, with one
// deliberate fix: both leader baselines now surface their engine
// transmission counts through protocol.Result.Tx (they used to report 0).

func init() {
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Broadcast,
		Name:      "truncated-decay",
		Aliases:   []string{"trunc"},
		Label:     "CR/KP-trunc",
		Summary:   "Czumaj–Rytter/Kowalski–Pelc-flavored surrogate: Decay phases truncated to the log(n/D) contention scale, O(D·log(n/D) + log²n)-style",
		BudgetDoc: "20·(D+L)·L",
		Order:     20,
		Caps:      protocol.Caps{Faults: true, Bulk: true, Transport: true},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			return decay.BuildRunner(p, decay.Config{Levels: TruncatedDecayLevels(p.G.N(), p.D)})
		},
	})
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Leader,
		Name:      "binary-search",
		Aliases:   []string{"bsearch"},
		Label:     "BinarySearch-LE",
		Summary:   "classical [2] reduction: network-wide binary search over the ID space, one budgeted broadcast per ID bit, O(T_BC·log n)",
		BudgetDoc: "per-bit T_BC = 3·(D+L)·L over 40 ID bits (explicit budgets split evenly per bit)",
		Order:     10,
		Caps:      protocol.Caps{},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			if p.Tuning != nil {
				return nil, fmt.Errorf("baseline: binary-search LE takes no tuning, got %T", p.Tuning)
			}
			if p.Faults != nil {
				return nil, fmt.Errorf("baseline: binary-search LE does not support fault plans (each of its per-bit broadcasts restarts the round clock)")
			}
			le, err := NewBinarySearchLE(p.G, p.D, p.Seed, 0, 0, 0)
			if err != nil {
				return nil, err
			}
			return &binarySearchRunner{le: le}, nil
		},
	})
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Leader,
		Name:      "max-broadcast",
		Aliases:   []string{"maxbcast"},
		Label:     "MaxBcast-LE[8]",
		Summary:   "expected-O(T_BC) election in the style of Czumaj–Davies'19 [8]: one multi-source max-propagating Decay broadcast of candidate IDs",
		BudgetDoc: "6·(D+L)·L",
		Order:     20,
		Caps:      protocol.Caps{Faults: true, Bulk: true, Transport: true},
		Protect:   protectMaxCandidate,
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			if p.Tuning != nil {
				return nil, fmt.Errorf("baseline: max-broadcast LE takes no tuning, got %T", p.Tuning)
			}
			m, err := NewMaxBroadcastLEFaults(p.G, p.D, p.Seed, 0, 0, 0, p.Faults)
			if err != nil {
				return nil, err
			}
			p.ApplyEngine(m.bc.Engine)
			return &maxBroadcastRunner{m: m}, nil
		},
	})
}

// protectMaxCandidate derives the would-be winner of a candidate-sampling
// election from the trial seed (SampleCandidates is a pure function of
// (n, seed) at the baselines' default parameters — they take no tuning),
// so fault plans never crash the one node whose death would make the
// election unwinnable.
func protectMaxCandidate(g *graph.Graph, d int, seed uint64, _ map[int]int64, _ any) []int {
	cands, err := SampleCandidates(g.N(), seed, 0, 0)
	if err != nil {
		return nil
	}
	w, _ := protocol.MaxIDNode(cands)
	return []int{w}
}

// binarySearchRunner adapts BinarySearchLE. The whole-run budget maps to
// the per-iteration broadcast budget tbc = budget/idBits (floored to 1:
// the constructor treats tbc <= 0 as "use the whp default", which would
// un-cap) — the exact mapping the campaign used to hardcode.
type binarySearchRunner struct {
	le  *BinarySearchLE
	res LEResult
}

// DefaultBudget implements protocol.Budgeted: the whp per-bit broadcast
// budget times the ID-bit count (what Run(0) executes at most).
func (r *binarySearchRunner) DefaultBudget() int64 {
	return r.le.tbc * int64(r.le.idBits)
}

func (r *binarySearchRunner) Run(budget int64) protocol.Result {
	if budget > 0 {
		tbc := budget / int64(r.le.idBits)
		if tbc < 1 {
			tbc = 1
		}
		r.le.tbc = tbc
	}
	r.res = r.le.Run()
	return protocol.Result{
		Rounds: r.res.Rounds,
		Tx:     r.res.Tx,
		Done:   r.res.Done,
		Verify: r.verify,
	}
}

// verify checks that the binary search converged on the true maximum
// candidate ID and that the elected node owns it.
func (r *binarySearchRunner) verify() error {
	if !r.res.Done {
		return fmt.Errorf("baseline: election not complete")
	}
	_, max := protocol.MaxIDNode(r.le.candidates)
	if r.res.LeaderID != max {
		return fmt.Errorf("baseline: binary search converged on %d, true max is %d", r.res.LeaderID, max)
	}
	if r.le.candidates[r.res.Leader] != max {
		return fmt.Errorf("baseline: elected node %d does not own the winning ID", r.res.Leader)
	}
	return nil
}

func (r *binarySearchRunner) Leader() int {
	if !r.res.Done {
		return -1
	}
	return r.res.Leader
}
func (r *binarySearchRunner) LeaderID() int64           { return r.res.LeaderID }
func (r *binarySearchRunner) Candidates() map[int]int64 { return r.le.Candidates() }

// maxBroadcastRunner adapts MaxBroadcastLE. An explicit Run budget
// overrides the constructor's default, matching the budget the campaign
// used to pass into the constructor directly.
type maxBroadcastRunner struct {
	m   *MaxBroadcastLE
	res LEResult
}

// DefaultBudget implements protocol.Budgeted.
func (r *maxBroadcastRunner) DefaultBudget() int64 { return r.m.budget }

func (r *maxBroadcastRunner) Run(budget int64) protocol.Result {
	if budget > 0 {
		r.m.budget = budget
	}
	r.res = r.m.Run()
	return protocol.Result{
		Rounds:      r.res.Rounds,
		Tx:          r.res.Tx,
		Done:        r.res.Done,
		Reached:     r.m.bc.Reached(),
		ReachTarget: r.m.bc.ReachTarget(),
		Verify:      r.verify,
	}
}

func (r *maxBroadcastRunner) verify() error {
	if !r.res.Done {
		return fmt.Errorf("baseline: election not complete")
	}
	return r.m.Verify()
}

func (r *maxBroadcastRunner) Leader() int {
	if !r.res.Done {
		return -1
	}
	return r.res.Leader
}
func (r *maxBroadcastRunner) LeaderID() int64           { return r.res.LeaderID }
func (r *maxBroadcastRunner) Candidates() map[int]int64 { return r.m.Candidates() }
