package baseline

import (
	"testing"

	"radionet/internal/compete"
	"radionet/internal/graph"
)

func TestTruncatedDecayLevels(t *testing.T) {
	tests := []struct{ n, d, want int }{
		{1024, 1024, 2}, // n == D: minimal phases
		{1024, 64, 6},   // n/D = 16 -> log2(16)+2 = 6
		{1024, 1, 12},   // star-like: full decay scale
		{16, 1000, 2},   // d > n clamps
	}
	for _, tc := range tests {
		if got := TruncatedDecayLevels(tc.n, tc.d); got != tc.want {
			t.Errorf("TruncatedDecayLevels(%d,%d) = %d, want %d", tc.n, tc.d, got, tc.want)
		}
	}
}

func TestTruncatedDecayCompletesOnLongDiameter(t *testing.T) {
	// The surrogate's home turf: layers with few competitors.
	g := graph.Path(200)
	bc := NewTruncatedDecay(g, 199, 3, map[int]int64{0: 5})
	if _, done := bc.Run(1 << 20); !done {
		t.Fatal("truncated decay broadcast did not finish on a path")
	}
}

func TestTruncatedDecayCompletesOnCliquePath(t *testing.T) {
	g := graph.PathOfCliques(16, 8)
	bc := NewTruncatedDecay(g, g.Diameter(), 3, map[int]int64{0: 5})
	if _, done := bc.Run(1 << 22); !done {
		t.Fatal("truncated decay broadcast did not finish on clique path")
	}
}

func TestSampleCandidates(t *testing.T) {
	for _, n := range []int{8, 100, 5000} {
		cands, err := SampleCandidates(n, 7, 2, 40)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Fatalf("n=%d: empty candidate set", n)
		}
		seen := make(map[int64]bool)
		for v, id := range cands {
			if v < 0 || v >= n {
				t.Fatalf("candidate %d out of range", v)
			}
			if id < 0 || seen[id] {
				t.Fatalf("bad or duplicate ID %d", id)
			}
			seen[id] = true
		}
	}
	if _, err := SampleCandidates(0, 1, 2, 40); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := SampleCandidates(10, 1, 2, 63); err == nil {
		t.Fatal("idBits=63 accepted")
	}
}

func TestSampleCandidatesDeterministic(t *testing.T) {
	a, _ := SampleCandidates(500, 42, 2, 40)
	b, _ := SampleCandidates(500, 42, 2, 40)
	if len(a) != len(b) {
		t.Fatal("non-deterministic candidate count")
	}
	for v, id := range a {
		if b[v] != id {
			t.Fatal("non-deterministic candidate IDs")
		}
	}
}

func TestBinarySearchLE(t *testing.T) {
	g := graph.Grid(7, 7)
	le, err := NewBinarySearchLE(g, g.Diameter(), 11, 2, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := le.Run()
	if !res.Done || res.Leader < 0 {
		t.Fatalf("binary search failed: %+v", res)
	}
	// The winner must be the true max candidate ID.
	var max int64 = -1
	for _, id := range le.Candidates() {
		if id > max {
			max = id
		}
	}
	if res.LeaderID != max {
		t.Fatalf("winner %d, true max %d", res.LeaderID, max)
	}
	if res.Rounds != int64(16)*leTBC(g.N(), g.Diameter()) {
		t.Fatalf("rounds %d not IDBits*T_BC", res.Rounds)
	}
}

func leTBC(n, d int) int64 {
	l := int64(levels(n))
	return 3 * (int64(d) + l) * l
}

func levels(n int) int {
	l := 1
	for m := 2; m < n; m <<= 1 {
		l++
	}
	return l
}

func TestMaxBroadcastLE(t *testing.T) {
	g := graph.PathOfCliques(6, 5)
	le, err := NewMaxBroadcastLE(g, g.Diameter(), 13, 2, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := le.Run()
	if !res.Done || res.Leader < 0 {
		t.Fatalf("max-broadcast LE failed: %+v", res)
	}
	if got := le.Candidates()[res.Leader]; got != res.LeaderID {
		t.Fatalf("leader's ID %d != winner %d", got, res.LeaderID)
	}
}

func TestHW16Mode(t *testing.T) {
	g := graph.Path(48)
	b, err := NewHW16Broadcast(g, 47, compete.Config{}, 5, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := b.Run(4 * b.Budget()); !done {
		t.Fatal("HW16-mode broadcast incomplete")
	}
}

func TestBinarySearchVsMaxBroadcastOrdering(t *testing.T) {
	// The headline LE comparison: binary search pays IDBits broadcasts,
	// the max-broadcast approach pays ~one.
	g := graph.Grid(8, 8)
	bs, err := NewBinarySearchLE(g, g.Diameter(), 21, 2, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMaxBroadcastLE(g, g.Diameter(), 21, 2, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb := bs.Run()
	rm := mb.Run()
	if !rb.Done || !rm.Done {
		t.Fatalf("runs incomplete: %+v %+v", rb, rm)
	}
	if rm.Rounds >= rb.Rounds {
		t.Fatalf("max-broadcast (%d) not faster than binary search (%d)", rm.Rounds, rb.Rounds)
	}
}
