package baseline

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// The baseline broadcasts ride on decay.Broadcast, whose Done is now the
// O(1) incremental tracker. Cross-check it against the exported state
// (Values) round by round at this layer too: Done must hold exactly when
// every node's value equals the propagated maximum.
func TestTruncatedDecayDoneMatchesValues(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := graph.RandomTree(50, rng.New(seed))
		d := 12
		bc := NewTruncatedDecay(g, d, seed, map[int]int64{0: 4, g.N() / 2: 9})
		scanDone := func() bool {
			for _, v := range bc.Values() {
				if v != 9 {
					return false
				}
			}
			return true
		}
		for round := 0; round < 1<<14; round++ {
			if bc.Done() != scanDone() {
				t.Fatalf("seed=%d round %d: Done=%v, value scan=%v", seed, round, bc.Done(), scanDone())
			}
			if bc.Done() {
				break
			}
			bc.Engine.Step()
		}
		if !bc.Done() {
			t.Fatalf("seed=%d: truncated decay did not complete", seed)
		}
	}
}
