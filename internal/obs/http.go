// The debug HTTP endpoint: expvar-format metric snapshots plus
// net/http/pprof, on an explicitly constructed mux so nothing leaks into
// http.DefaultServeMux and nothing is published into expvar's global
// namespace (tests and future multi-campaign servers can run any number
// of these side by side).

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux returns a mux serving:
//
//	/debug/vars   — expvar-format JSON: every globally published expvar
//	                (cmdline, memstats, ...) plus the registry's live
//	                snapshot under "radionet_metrics"
//	/debug/pprof/ — the standard pprof index, profile, heap, trace, ...
//
// The registry snapshot is taken per request, so a scrape during a
// running campaign sees live counters.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		snap, err := json.Marshal(reg.Snapshot())
		if err != nil {
			snap = []byte("{}")
		}
		fmt.Fprintf(w, "%q: %s", "radionet_metrics", snap)
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug endpoint.
type DebugServer struct {
	// Addr is the bound listen address (resolves ":0" to the real port).
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// StartDebugServer listens on addr and serves NewDebugMux(reg) in a
// background goroutine. It returns once the listener is bound, so the
// endpoint is scrapeable immediately; Close shuts it down.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg)}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the server and its listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
