// Engine and trial collection: the conventional metric names and the
// RoundHook-based collector every layer shares, so a campaign manifest and
// a single radiosim run report the same snapshot shape.

package obs

import (
	"fmt"
	"time"

	"radionet/internal/radio"
)

// Conventional metric names. Engine counters accumulate over every engine
// round the collector observes (across all trials of a campaign); trial
// metrics are per protocol run.
const (
	// Engine counters, fed by EngineCollector's round hook.
	EngineRounds     = "engine.rounds"
	EngineTx         = "engine.transmissions"
	EngineDeliveries = "engine.deliveries"
	EngineCollisions = "engine.collisions"
	// EngineRoundsPerSec is a gauge: observed simulation throughput,
	// updated by the campaign progress loop and at run end.
	EngineRoundsPerSec = "engine.rounds_per_sec"

	// Trial metrics.
	TrialsCompleted = "trials.completed"
	TrialsFailed    = "trials.failed"
	// TrialRounds is a histogram of per-trial executed round counts.
	TrialRounds = "trial.rounds"
	// TrialWall is a Timer (µs histogram) of per-trial wall times.
	TrialWall = "trial.wall_us"
	// TrialBudgetPermille is a histogram of round-budget fraction used,
	// in permille (rounds*1000/budget), recorded when the trial's
	// effective budget is known. >1000 means a composite runner's
	// documented per-unit floor overshot an explicit budget.
	TrialBudgetPermille = "trial.budget_used_permille"

	// Precompute cache counters, fed by the campaign/bench setup phase
	// when a disk-backed precompute store is attached (-cache-dir): cache
	// files loaded, products rebuilt from source, and cache bytes moved
	// (read on hits, written on misses). Like every metric they are
	// strictly output-neutral — the cache changes setup wall time, never
	// a sink byte.
	PrecomputeCacheHits   = "precompute.cache.hits"
	PrecomputeCacheMisses = "precompute.cache.misses"
	PrecomputeCacheBytes  = "precompute.cache.bytes"
)

// PrecomputeBuild returns the conventional timer name for one topology
// product's from-source build wall time:
// "precompute.build.<spec>@<seed>.wall_us". Recorded only when the product
// was actually built this run (never on cache or in-memory hits).
func PrecomputeBuild(spec string, seed uint64) string {
	return fmt.Sprintf("precompute.build.%s@%016x.wall_us", spec, seed)
}

// TrialRoundsBounds buckets per-trial round counts on a power-of-two
// ladder from 2^4 to 2^24.
var TrialRoundsBounds = func() []int64 {
	var b []int64
	for s := 4; s <= 24; s++ {
		b = append(b, 1<<s)
	}
	return b
}()

// BudgetPermilleBounds buckets budget fractions: 5% steps to 100%, then
// overshoot markers.
var BudgetPermilleBounds = func() []int64 {
	var b []int64
	for f := int64(50); f <= 1000; f += 50 {
		b = append(b, f)
	}
	return append(b, 1500, 2000)
}()

// EngineCollector accumulates engine-side counters from the round hook:
// rounds, transmissions, deliveries, collisions. One collector may be
// shared by any number of concurrently running engines (all updates are
// atomic adds). Install its Hook on an engine — composed with any other
// hook via radio.ChainHooks — or pass it through protocol.BuildParams.Hook.
type EngineCollector struct {
	rounds     *Counter
	tx         *Counter
	deliveries *Counter
	collisions *Counter
}

// NewEngineCollector resolves the engine counters in reg. A nil registry
// returns a nil collector, whose Hook is nil — safe to install.
func NewEngineCollector(reg *Registry) *EngineCollector {
	if reg == nil {
		return nil
	}
	return &EngineCollector{
		rounds:     reg.Counter(EngineRounds),
		tx:         reg.Counter(EngineTx),
		deliveries: reg.Counter(EngineDeliveries),
		collisions: reg.Counter(EngineCollisions),
	}
}

// Hook returns the collector's RoundHook (nil for a nil collector).
func (c *EngineCollector) Hook() radio.RoundHook {
	if c == nil {
		return nil
	}
	return func(_ int64, tx []int32, deliveries, collisions int) {
		c.rounds.Add(1)
		c.tx.Add(int64(len(tx)))
		c.deliveries.Add(int64(deliveries))
		c.collisions.Add(int64(collisions))
	}
}

// EngineShardBusy returns the conventional counter name for one shard's
// accumulated busy time: "engine.shard.NN.busy_us".
func EngineShardBusy(shard int) string {
	return fmt.Sprintf("engine.shard.%02d.busy_us", shard)
}

// ShardCollector accumulates per-shard busy time from the engine's
// ShardHook when intra-round sharding is enabled. Like EngineCollector it
// may be shared by any number of concurrently running engines (atomic
// adds); shards beyond the pre-resolved count fold into the last counter
// rather than dropping on the floor.
type ShardCollector struct {
	busy []*Counter
}

// NewShardCollector resolves busy-time counters for shards 0..shards-1 in
// reg. A nil registry (or shards < 1) returns a nil collector, whose Hook
// is nil — safe to install.
func NewShardCollector(reg *Registry, shards int) *ShardCollector {
	if reg == nil || shards < 1 {
		return nil
	}
	c := &ShardCollector{busy: make([]*Counter, shards)}
	for s := range c.busy {
		c.busy[s] = reg.Counter(EngineShardBusy(s))
	}
	return c
}

// Hook returns the collector's ShardHook (nil for a nil collector).
func (c *ShardCollector) Hook() radio.ShardHook {
	if c == nil {
		return nil
	}
	return func(shard int, busyNanos int64) {
		if shard >= len(c.busy) {
			shard = len(c.busy) - 1
		}
		c.busy[shard].Add(busyNanos / 1000)
	}
}

// TrialCollector records per-trial outcomes: completion counters, round
// and wall-time histograms, and the budget-fraction histogram. Safe for
// concurrent use by any number of workers.
type TrialCollector struct {
	completed *Counter
	failed    *Counter
	rounds    *Histogram
	wall      *Timer
	budget    *Histogram
}

// NewTrialCollector resolves the trial metrics in reg (nil reg -> nil
// collector, whose Record is a no-op).
func NewTrialCollector(reg *Registry) *TrialCollector {
	if reg == nil {
		return nil
	}
	return &TrialCollector{
		completed: reg.Counter(TrialsCompleted),
		failed:    reg.Counter(TrialsFailed),
		rounds:    reg.Histogram(TrialRounds, TrialRoundsBounds),
		wall:      reg.Timer(TrialWall),
		budget:    reg.Histogram(TrialBudgetPermille, BudgetPermilleBounds),
	}
}

// Record folds one trial outcome in. budget <= 0 means the effective
// round budget was unknown and skips the fraction histogram.
func (c *TrialCollector) Record(rounds int64, wall time.Duration, done bool, budget int64) {
	if c == nil {
		return
	}
	c.completed.Inc()
	if !done {
		c.failed.Inc()
	}
	c.rounds.Observe(rounds)
	c.wall.Observe(wall)
	if budget > 0 {
		c.budget.Observe(rounds * 1000 / budget)
	}
}
