package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Sum != 1+10+11+100+500+5000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if s.Min != 1 || s.Max != 5000 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	want := map[int64]int64{10: 2, 100: 2, 1000: 1}
	for _, b := range s.Buckets {
		if b.Count != want[b.Le] {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
		delete(want, b.Le)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
	if got := s.Mean(); got != float64(5622)/6 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {5, 5}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("t")
	tm.Observe(3 * time.Millisecond)
	tm.Time(func() {})
	s := r.Snapshot().Histograms["t"]
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Max < 3000 {
		t.Fatalf("max = %dµs, want >= 3000", s.Max)
	}
}

// TestConcurrentUpdates exercises every primitive from many goroutines;
// run under -race this is the concurrency contract test.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", []int64{100, 10000})
			g := r.Gauge("g")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(w*per + i))
				g.Set(int64(i))
				if i%100 == 0 {
					r.Snapshot() // snapshots race harmlessly with writers
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != workers*per {
		t.Fatalf("counter = %d, want %d", s.Counters["c"], workers*per)
	}
	h := s.Histograms["h"]
	if h.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*per)
	}
	if h.Min != 0 || h.Max != workers*per-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", h.Min, h.Max, workers*per-1)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b.Count
	}
	if bucketSum+h.Overflow != h.Count {
		t.Fatalf("bucket sum %d + overflow %d != count %d", bucketSum, h.Overflow, h.Count)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(9)
	b1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(r.Snapshot())
	if string(b1) != string(b2) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", b1, b2)
	}
	if !strings.Contains(string(b1), `"a":1,"b":2`) {
		t.Fatalf("keys not sorted: %s", b1)
	}
}

func TestNilRegistryCollectors(t *testing.T) {
	if NewEngineCollector(nil) != nil {
		t.Fatal("NewEngineCollector(nil) != nil")
	}
	if hook := NewEngineCollector(nil).Hook(); hook != nil {
		t.Fatal("nil collector Hook != nil")
	}
	NewTrialCollector(nil).Record(10, time.Millisecond, true, 100) // must not panic
	var nilReg *Registry
	if s := nilReg.Snapshot(); s.Counters != nil {
		t.Fatal("nil registry snapshot not zero")
	}
}

func TestEngineCollectorHook(t *testing.T) {
	r := NewRegistry()
	hook := NewEngineCollector(r).Hook()
	hook(0, []int32{1, 2, 3}, 2, 1)
	hook(1, nil, 0, 0)
	s := r.Snapshot()
	if s.Counters[EngineRounds] != 2 || s.Counters[EngineTx] != 3 ||
		s.Counters[EngineDeliveries] != 2 || s.Counters[EngineCollisions] != 1 {
		t.Fatalf("engine counters = %v", s.Counters)
	}
}

func TestTrialCollector(t *testing.T) {
	r := NewRegistry()
	c := NewTrialCollector(r)
	c.Record(500, 2*time.Millisecond, true, 1000)   // 50% of budget
	c.Record(1000, 5*time.Millisecond, false, 1000) // exhausted
	c.Record(10, time.Millisecond, true, 0)         // unknown budget
	s := r.Snapshot()
	if s.Counters[TrialsCompleted] != 3 || s.Counters[TrialsFailed] != 1 {
		t.Fatalf("trial counters = %v", s.Counters)
	}
	bh := s.Histograms[TrialBudgetPermille]
	if bh.Count != 2 {
		t.Fatalf("budget histogram count = %d, want 2 (unknown budget skipped)", bh.Count)
	}
	if bh.Min != 500 || bh.Max != 1000 {
		t.Fatalf("budget permille min/max = %d/%d", bh.Min, bh.Max)
	}
	if s.Histograms[TrialRounds].Count != 3 {
		t.Fatalf("rounds histogram count = %d", s.Histograms[TrialRounds].Count)
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter(EngineRounds).Add(123)
	srv, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["radionet_metrics"], &snap); err != nil {
		t.Fatalf("radionet_metrics: %v", err)
	}
	if snap.Counters[EngineRounds] != 123 {
		t.Fatalf("live snapshot counter = %d, want 123", snap.Counters[EngineRounds])
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("expvar defaults (memstats) missing from /debug/vars")
	}

	// The snapshot is live: a second scrape sees new counts.
	r.Counter(EngineRounds).Add(1)
	_, body = get("/debug/vars")
	json.Unmarshal([]byte(body), &vars) //nolint:errcheck
	json.Unmarshal(vars["radionet_metrics"], &snap)
	if snap.Counters[EngineRounds] != 124 {
		t.Fatalf("second scrape counter = %d, want 124", snap.Counters[EngineRounds])
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestManifestWriteFile(t *testing.T) {
	m := NewManifest("test")
	m.ConfigHash = "abc"
	m.Protocols = []string{"broadcast:cd17"}
	m.Configs = []ConfigRecord{{Name: "grid:4x4/broadcast:cd17", N: 16, D: 6, Trials: 3}}
	m.Metrics = func() Snapshot {
		r := NewRegistry()
		r.Counter(EngineRounds).Add(5)
		return r.Snapshot()
	}()
	path := t.TempDir() + "/man.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != ManifestSchemaVersion || back.Tool != "test" ||
		back.Metrics.Counters[EngineRounds] != 5 || len(back.Configs) != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back.GOMAXPROCS <= 0 || back.GoVersion == "" {
		t.Fatalf("environment fields not filled: %+v", back)
	}
}

func TestShardCollectorHook(t *testing.T) {
	if NewShardCollector(nil, 4) != nil {
		t.Fatal("NewShardCollector(nil, 4) != nil")
	}
	if NewShardCollector(NewRegistry(), 0) != nil {
		t.Fatal("NewShardCollector(reg, 0) != nil")
	}
	if hook := NewShardCollector(nil, 4).Hook(); hook != nil {
		t.Fatal("nil collector Hook != nil")
	}
	r := NewRegistry()
	hook := NewShardCollector(r, 2).Hook()
	hook(0, 3000) // 3µs
	hook(1, 1000)
	hook(1, 2000)
	hook(7, 5000) // beyond the resolved count: folds into the last counter
	s := r.Snapshot()
	if s.Counters[EngineShardBusy(0)] != 3 {
		t.Fatalf("shard 0 busy = %d, want 3", s.Counters[EngineShardBusy(0)])
	}
	if s.Counters[EngineShardBusy(1)] != 8 {
		t.Fatalf("shard 1 busy = %d, want 3 (own) + 5 (overflow fold)", s.Counters[EngineShardBusy(1)])
	}
}
