// Package obs is the repository's zero-dependency observability core: a
// small set of allocation-light metric primitives — atomic counters,
// gauges, fixed-bucket histograms and wall-time timers — collected in a
// snapshotable Registry.
//
// The package exists to let every layer of the simulator *watch* the
// numbers it produces (the engine's round/transmission/delivery/collision
// counts, the trial runner's wall times and budget fractions, the campaign
// executor's per-worker utilization) without perturbing any output: no
// metric primitive draws randomness, takes a lock on the hot path, or
// writes to a sink. Campaign text/CSV/JSONL output is byte-identical with
// metrics enabled or disabled, at any worker count — the neutrality
// contract pinned by internal/campaign's telemetry tests.
//
// Concurrency: all primitives are safe for concurrent use. Counters,
// gauges and histogram buckets are single atomic words; Registry
// get-or-create takes a mutex but returns stable pointers, so callers
// resolve metrics once and update lock-free afterwards. Snapshot is safe
// to call while writers are active (it reads each word atomically; the
// snapshot is per-word consistent, not globally atomic — fine for
// telemetry).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add adds d (negative d is a caller bug; counters are monotone).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (set, not accumulated).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution of int64 observations. Bucket
// i counts observations <= Bounds[i] (and > Bounds[i-1]); one implicit
// overflow bucket counts observations above the last bound. Count, Sum,
// Min and Max are exact. All updates are atomic; Observe performs one
// binary search plus a handful of atomic operations and never allocates.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid iff count > 0
	max    atomic.Int64 // valid iff count > 0
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// It panics on empty or non-ascending bounds (a construction-time bug).
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds must ascend, got %d after %d", bounds[i], bounds[i-1]))
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	// Binary search for the first bound >= v; the overflow bucket catches
	// the rest.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; racing observers fall through
		// to the CAS loops below, which handle any interleaving.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// with value <= Le (and above the previous bound). Observations above the
// last bound land in HistogramSnapshot.Overflow.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON-marshalable state of one histogram.
// Buckets are non-cumulative; Overflow counts observations above the last
// bound. Min/Max are meaningful only when Count > 0.
type HistogramSnapshot struct {
	Count    int64    `json:"count"`
	Sum      int64    `json:"sum"`
	Min      int64    `json:"min"`
	Max      int64    `json:"max"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow int64    `json:"overflow,omitempty"`
}

// Mean returns Sum/Count (0 for an empty histogram).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min, s.Max = h.min.Load(), h.max.Load()
	}
	for i, b := range h.bounds {
		if c := h.counts[i].Load(); c != 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: b, Count: c})
		}
	}
	s.Overflow = h.counts[len(h.bounds)].Load()
	return s
}

// Timer is a wall-time histogram. Observations are recorded in
// microseconds (sub-microsecond durations round to 0µs but still count),
// so the int64 sum holds ~292k years of accumulated time.
type Timer struct{ h *Histogram }

// DefaultTimerBoundsUS is the Timer bucket layout: a 1-2-5 ladder from
// 100µs to 100s, in microseconds.
var DefaultTimerBoundsUS = []int64{
	100, 200, 500,
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000, 20_000_000, 50_000_000, 100_000_000,
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Microseconds()) }

// Time runs fn and records its wall time.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// Registry is a named collection of metrics. Get-or-create methods are
// mutex-guarded and idempotent (same name, same metric); the returned
// pointers are stable, so hot paths resolve once and update lock-free.
// A nil *Registry is a valid no-op target for the helpers in this package
// that accept one (they check); the metric constructors themselves require
// a non-nil registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls ignore bounds (the first creation
// wins), so concurrent get-or-create is stable.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Timer returns the named wall-time histogram (DefaultTimerBoundsUS).
func (r *Registry) Timer(name string) *Timer {
	return &Timer{h: r.Histogram(name, DefaultTimerBoundsUS)}
}

// Snapshot is the JSON-marshalable state of a whole registry. Maps
// marshal with sorted keys, so equal registry states produce identical
// bytes — manifests and expvar output are diffable.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. Safe to call while
// writers are active; each metric is read atomically. A nil registry
// yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	return s
}

// Names returns every registered metric name, sorted, for listings and
// tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
