// Run manifests: a machine-readable record of what a run was (config
// hash, registered protocol set, parallelism) and what it measured
// (per-config wall times, the full metric snapshot). Campaigns and
// one-shot radiosim runs emit the same shape, which is the point: one
// schema for every tool, and the seam cmd/campaignd will inherit.

package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// ManifestSchemaVersion is bumped on any incompatible Manifest change.
const ManifestSchemaVersion = 1

// ConfigRecord is one configuration's execution record in a manifest.
type ConfigRecord struct {
	// Name identifies the configuration: "topology/task:algo" with an
	// optional "/faults" suffix; a one-shot run uses its scenario string.
	Name string `json:"name"`
	// N and D are the topology size and estimated diameter.
	N int `json:"n"`
	D int `json:"d"`
	// Trials and Failures count the configuration's runs.
	Trials   int `json:"trials"`
	Failures int `json:"failures"`
	// RoundsMean is the mean executed round count.
	RoundsMean float64 `json:"rounds_mean"`
	// WallMSTotal and WallMSMean are summed / per-trial mean wall time in
	// milliseconds (non-deterministic; manifests are telemetry, not
	// golden output).
	WallMSTotal float64 `json:"wall_ms_total"`
	WallMSMean  float64 `json:"wall_ms_mean"`
	// SetupMS is the setup wall time attributed to this configuration:
	// its share of topology materialization (graph build or cache load)
	// and scratch construction. Deduplicated products are charged to the
	// first configuration referencing them, so most records report 0
	// (omitted — also keeping manifests from producers predating the
	// setup split byte-stable).
	SetupMS float64 `json:"setup_ms,omitempty"`
}

// Manifest is the machine-readable record of one run.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"` // "campaign", "radiosim", "bench"
	// ConfigHash fingerprints the run's full configuration (for a
	// campaign: the canonical matrix JSON), so manifests from identical
	// setups are linkable across machines and commits.
	ConfigHash string `json:"config_hash"`
	// Generated is an RFC3339 timestamp (empty when the producer wants
	// byte-reproducible manifests).
	Generated string `json:"generated,omitempty"`
	// GoVersion, GOMAXPROCS and Workers record the execution environment.
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	// Protocols is the registered (task:name) set the binary carried.
	Protocols []string `json:"protocols"`
	// Transports is the registered transport-backend name set the binary
	// carried (omitted by producers predating the transport seam, keeping
	// their manifests byte-stable).
	Transports []string `json:"transports,omitempty"`
	// WallMS is the whole run's wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// SetupMS is the setup-phase wall time (topology materialization plus
	// scratch construction, before the first trial), excluded from WallMS.
	// Omitted by producers predating the setup split.
	SetupMS float64 `json:"setup_ms,omitempty"`
	// Cache reports the precompute disk-cache status for the run: "off"
	// (no cache directory), "cold" (at least one product rebuilt from
	// source), or "warm" (every product served from cache or memory).
	// Omitted by producers predating the cache.
	Cache string `json:"cache,omitempty"`
	// Configs are the per-configuration records, in run order.
	Configs []ConfigRecord `json:"configs"`
	// Metrics is the final registry snapshot.
	Metrics Snapshot `json:"metrics"`
}

// NewManifest returns a Manifest with the environment fields filled.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Tool:          tool,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
}

// WriteFile writes the manifest as indented JSON to path.
func (m *Manifest) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
