package campaign

import "testing"

func TestParseTopologyFamilies(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"path:16", 16},
		{"cycle:12", 12},
		{"star:9", 9},
		{"complete:6", 6},
		{"hypercube:4", 16},
		{"randtree:20", 20},
		{"grid:3x5", 15},
		{"cliquepath:4x3", 12},
		{"caterpillar:5x2", 15},
		{"tree:2x3", 15},
		{"regular:10x3", 10},
		{"geometric:40:0.4", 40},
		{"gnp:30:0.2", 30},
	}
	for _, c := range cases {
		topo, err := ParseTopology(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		g := topo.Build(1)
		if g.N() != c.n {
			t.Errorf("%s: n = %d, want %d", c.spec, g.N(), c.n)
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected", c.spec)
		}
	}
}

func TestParseTopologyDeterministicRandomFamilies(t *testing.T) {
	for _, spec := range []string{"geometric:50:0.35", "gnp:40:0.15", "randtree:25"} {
		topo, err := ParseTopology(spec)
		if err != nil {
			t.Fatal(err)
		}
		a, b := topo.Build(7), topo.Build(7)
		if a.N() != b.N() || a.M() != b.M() {
			t.Errorf("%s: same seed built different graphs (%v vs %v)", spec, a, b)
		}
	}
}

func TestParseTopologyErrors(t *testing.T) {
	for _, spec := range []string{"", "warp:9", "grid:4", "grid:4x", "path:axe", "geometric:40", "path", "path:1:2"} {
		if _, err := ParseTopology(spec); err == nil {
			t.Errorf("%q: accepted", spec)
		}
	}
}
