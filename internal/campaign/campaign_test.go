package campaign

import (
	"bytes"
	"strings"
	"testing"
)

func testMatrix(seeds int) Matrix {
	return Matrix{
		Topologies: []string{"grid:4x8", "path:24", "cliquepath:4x4"},
		Algorithms: []AlgoSpec{
			{Task: Broadcast, Algo: "bgi"},
			{Task: Broadcast, Algo: "cd17"},
		},
		Seeds:      seeds,
		MasterSeed: 42,
	}
}

func TestExpandDeterministicOrder(t *testing.T) {
	m := testMatrix(3)
	p, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Configs) != 6 {
		t.Fatalf("%d configs, want 6", len(p.Configs))
	}
	if len(p.Trials) != 18 {
		t.Fatalf("%d trials, want 18", len(p.Trials))
	}
	// Topology-major, then algorithm, then repetition.
	if p.Configs[0].Topology != "grid:4x8" || p.Configs[1].Spec.Algo != "cd17" ||
		p.Configs[2].Topology != "path:24" {
		t.Fatalf("config order: %+v", p.Configs)
	}
	for i, tr := range p.Trials {
		if tr.Index != i || tr.Cfg != i/3 || tr.Rep != i%3 {
			t.Fatalf("trial %d out of order: %+v", i, tr)
		}
		if tr.Seed == 0 {
			t.Fatalf("trial %d has zero seed", i)
		}
	}
	// Trial seeds are pure functions of (master, cfg, rep): re-expansion
	// reproduces them; distinct trials get distinct streams.
	p2, _ := m.Expand()
	seen := map[uint64]bool{}
	for i := range p.Trials {
		if p.Trials[i].Seed != p2.Trials[i].Seed {
			t.Fatalf("trial %d seed not reproducible", i)
		}
		if seen[p.Trials[i].Seed] {
			t.Fatalf("duplicate trial seed at %d", i)
		}
		seen[p.Trials[i].Seed] = true
	}
}

func TestExpandRejectsBadMatrices(t *testing.T) {
	bad := []Matrix{
		{Algorithms: []AlgoSpec{{Broadcast, "bgi"}}, Seeds: 1},
		{Topologies: []string{"path:8"}, Seeds: 1},
		{Topologies: []string{"path:8"}, Algorithms: []AlgoSpec{{Broadcast, "bgi"}}},
		{Topologies: []string{"path:8"}, Algorithms: []AlgoSpec{{Broadcast, "warp"}}, Seeds: 1},
		{Topologies: []string{"path:8"}, Algorithms: []AlgoSpec{{Leader, "bgi"}}, Seeds: 1},
		{Topologies: []string{"path:8"}, Algorithms: []AlgoSpec{{"route", "bgi"}}, Seeds: 1},
		{Topologies: []string{"warp:8"}, Algorithms: []AlgoSpec{{Broadcast, "bgi"}}, Seeds: 1},
	}
	for i, m := range bad {
		if _, err := m.Expand(); err == nil {
			t.Errorf("matrix %d accepted", i)
		}
	}
}

// runToBuffers executes the campaign with every sink format attached and
// returns the rendered outputs keyed by format.
func runToBuffers(t *testing.T, c Campaign) map[string]string {
	t.Helper()
	bufs := map[string]*bytes.Buffer{}
	var sinks []Sink
	for _, f := range []string{"text", "csv", "jsonl"} {
		buf := &bytes.Buffer{}
		bufs[f] = buf
		s, err := NewSink(f, buf, c.Matrix.SinkSchema(c.Timings))
		if err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, s)
	}
	if _, err := c.Run(sinks...); err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for f, b := range bufs {
		if b.Len() == 0 {
			t.Fatalf("%s sink produced no output", f)
		}
		out[f] = b.String()
	}
	return out
}

// TestCampaignDeterministicAcrossWorkerCounts is the acceptance-criterion
// test: the same master seed must yield byte-identical output from every
// sink at 1 worker and at 8 workers.
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	m := testMatrix(5)
	serial := runToBuffers(t, Campaign{Matrix: m, Workers: 1})
	parallel := runToBuffers(t, Campaign{Matrix: m, Workers: 8})
	for _, f := range []string{"text", "csv", "jsonl"} {
		if serial[f] != parallel[f] {
			t.Errorf("%s output differs between 1 and 8 workers:\n-- workers=1 --\n%s\n-- workers=8 --\n%s",
				f, serial[f], parallel[f])
		}
	}
	if !strings.Contains(serial["csv"], "rounds.p99") {
		t.Errorf("csv header missing rounds.p99:\n%s", serial["csv"])
	}
	if strings.Contains(serial["jsonl"], "wall_ms") {
		t.Errorf("untimed campaign leaked wall_ms:\n%s", serial["jsonl"])
	}
	if got := strings.Count(serial["jsonl"], "\n"); got != 6 {
		t.Errorf("jsonl rows = %d, want 6", got)
	}
}

func TestCampaignLeaderTaskAndTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	c := Campaign{
		Matrix: Matrix{
			Topologies: []string{"grid:4x6"},
			Algorithms: []AlgoSpec{
				{Task: Leader, Algo: "cd17"},
				{Task: Leader, Algo: "max-broadcast"},
				{Task: Leader, Algo: "binary-search"},
			},
			Seeds:      2,
			MasterSeed: 7,
		},
		Timings: true,
	}
	var buf bytes.Buffer
	s, _ := NewSink("jsonl", &buf, c.Matrix.SinkSchema(true))
	sums, err := c.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("%d summaries, want 3", len(sums))
	}
	for _, s := range sums {
		if s.Failures != 0 {
			t.Errorf("%s %s: %d failures", s.Task, s.Algo, s.Failures)
		}
		if s.Rounds.Mean <= 0 {
			t.Errorf("%s %s: non-positive mean rounds", s.Task, s.Algo)
		}
		if s.WallMS == nil {
			t.Errorf("%s %s: Timings set but no wall aggregate", s.Task, s.Algo)
		}
	}
	if !strings.Contains(buf.String(), "wall_ms") {
		t.Errorf("timed jsonl missing wall_ms:\n%s", buf.String())
	}
}

func TestRunTrialAllBroadcastAlgos(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	topo, _ := ParseTopology("grid:4x8")
	g := topo.Build(1)
	cfg := Config{Topology: "grid:4x8", G: g, D: g.DiameterEstimate()}
	for _, algo := range []string{"cd17", "hw16", "bgi", "truncated-decay", "cd-beep"} {
		cfg.Spec = AlgoSpec{Task: Broadcast, Algo: algo}
		res := RunTrial(&cfg, 3, 0)
		if !res.Done || res.Err != "" {
			t.Errorf("%s: %+v", algo, res)
		}
		if res.Rounds <= 0 || res.Tx <= 0 {
			t.Errorf("%s: empty metrics %+v", algo, res)
		}
	}
	// A tiny budget must report failure, not success.
	cfg.Spec = AlgoSpec{Task: Broadcast, Algo: "bgi"}
	if res := RunTrial(&cfg, 3, 1); res.Done {
		t.Error("1-round budget reported Done")
	}
}

// TestRunTrialMaxRoundsCapsEveryLeaderAlgo guards against any leader
// algorithm silently ignoring the per-trial budget.
func TestRunTrialMaxRoundsCapsEveryLeaderAlgo(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	topo, _ := ParseTopology("grid:4x8")
	g := topo.Build(1)
	cfg := Config{Topology: "grid:4x8", G: g, D: g.DiameterEstimate()}
	const cap = 400
	for _, algo := range []string{"cd17", "binary-search", "max-broadcast", "gh13"} {
		cfg.Spec = AlgoSpec{Task: Leader, Algo: algo}
		res := RunTrial(&cfg, 3, cap)
		if res.Err != "" {
			t.Errorf("%s: %s", algo, res.Err)
		}
		if res.Rounds > cap {
			t.Errorf("%s: ran %d rounds, cap %d", algo, res.Rounds, cap)
		}
	}
}

// TestRunTrialLeaderMetrics is the satellite-2 regression: every leader
// algorithm — including the composite baselines that used to report
// Tx: 0 — surfaces its engine transmission counts, and the new tasks
// registered through the protocol seam run as campaign trials with no
// campaign code knowing their names.
func TestRunTrialLeaderMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	topo, _ := ParseTopology("grid:4x8")
	g := topo.Build(1)
	cfg := Config{Topology: "grid:4x8", G: g, D: g.DiameterEstimate()}
	for _, algo := range []string{"cd17", "binary-search", "max-broadcast", "gh13"} {
		cfg.Spec = AlgoSpec{Task: Leader, Algo: algo}
		res := RunTrial(&cfg, 3, 0)
		if !res.Done || res.Err != "" {
			t.Errorf("%s: %+v", algo, res)
		}
		if res.Tx <= 0 {
			t.Errorf("%s: Tx = %d, want > 0", algo, res.Tx)
		}
	}
	for _, spec := range []AlgoSpec{
		{Task: "multicast", Algo: "pipelined"},
		{Task: "multicast", Algo: "sequential"},
		{Task: "partition", Algo: "mpx"},
	} {
		cfg.Spec = spec
		res := RunTrial(&cfg, 3, 0)
		if !res.Done || res.Err != "" {
			t.Errorf("%s: %+v", spec, res)
		}
		if res.Rounds <= 0 || res.Tx <= 0 {
			t.Errorf("%s: empty metrics %+v", spec, res)
		}
	}
}

func TestLoadMatrix(t *testing.T) {
	src := `{
		"topologies": ["grid:4x8", "path:16"],
		"algorithms": [{"task": "broadcast", "algo": "cd17"}],
		"seeds": 4,
		"master_seed": 99
	}`
	m, err := LoadMatrix(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Topologies) != 2 || m.Seeds != 4 || m.MasterSeed != 99 ||
		m.Algorithms[0].Algo != "cd17" {
		t.Fatalf("loaded %+v", m)
	}
	if _, err := LoadMatrix(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
