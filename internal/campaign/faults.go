package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// FaultSpec is one parsed value of the campaign's fault axis: a
// whole-network fault scenario realized per trial as a radio.FaultPlan.
// The zero value (and the explicit "none" spec) is the unfaulted baseline.
type FaultSpec struct {
	// Spec is the canonical spec string ("" only on unfaulted campaigns;
	// the explicit baseline keeps "none").
	Spec string
	// CrashFrac of the nodes crash at round CrashRound.
	CrashFrac  float64
	CrashRound int64
	// JamFrac of the nodes transmit noise with probability JamP per round.
	JamFrac float64
	JamP    float64
	// LossP is every node's per-reception drop probability.
	LossP float64
}

// None reports whether the spec carries no faults.
func (fs *FaultSpec) None() bool {
	return fs.CrashFrac == 0 && fs.JamFrac == 0 && fs.LossP == 0
}

// ParseFaultSpec parses a fault spec: '+'-joined terms of
//
//	crash:F@R — fraction F of the nodes crash at round R
//	jam:F:pP  — fraction F of the nodes jam with per-round probability P
//	loss:P    — every node drops each reception with probability P
//	none      — explicit unfaulted baseline (keeps the campaign's schema)
//
// e.g. "crash:0.3@50", "jam:0.05:p0.2", "crash:0.2@100+loss:0.1".
// Fractions must be in [0, 1), probabilities in (0, 1].
func ParseFaultSpec(s string) (FaultSpec, error) {
	spec := strings.TrimSpace(s)
	fs := FaultSpec{Spec: spec}
	fail := func(format string, args ...any) (FaultSpec, error) {
		return FaultSpec{}, fmt.Errorf("campaign: fault spec %q: %s", spec, fmt.Sprintf(format, args...))
	}
	if spec == "none" {
		return fs, nil
	}
	frac := func(v string) (float64, error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, err
		}
		// Zero is rejected too: a fraction-0 term would silently be a
		// no-op (and dodge duplicate-term detection) — "none" is the
		// explicit way to spell an unfaulted cell. Spelled as a positive
		// match so NaN (incomparable, so it dodges every exclusion test)
		// is rejected rather than accepted.
		if !(f > 0 && f < 1) {
			return 0, fmt.Errorf("fraction %v outside (0, 1)", f)
		}
		return f, nil
	}
	prob := func(v string) (float64, error) {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, err
		}
		// Positive match, so NaN is rejected (see frac).
		if !(p > 0 && p <= 1) {
			return 0, fmt.Errorf("probability %v outside (0, 1]", p)
		}
		return p, nil
	}
	for _, term := range strings.Split(spec, "+") {
		kind, rest, _ := strings.Cut(term, ":")
		var err error
		switch kind {
		case "crash":
			if fs.CrashFrac != 0 {
				return fail("duplicate crash term")
			}
			f, at, ok := strings.Cut(rest, "@")
			if !ok {
				return fail("crash term %q: want crash:F@R", term)
			}
			if fs.CrashFrac, err = frac(f); err != nil {
				return fail("crash term %q: %v", term, err)
			}
			if fs.CrashRound, err = strconv.ParseInt(at, 10, 64); err != nil || fs.CrashRound < 0 {
				return fail("crash term %q: bad round %q", term, at)
			}
		case "jam":
			if fs.JamFrac != 0 {
				return fail("duplicate jam term")
			}
			f, pPart, ok := strings.Cut(rest, ":")
			if !ok || !strings.HasPrefix(pPart, "p") {
				return fail("jam term %q: want jam:F:pP", term)
			}
			if fs.JamFrac, err = frac(f); err != nil {
				return fail("jam term %q: %v", term, err)
			}
			if fs.JamP, err = prob(strings.TrimPrefix(pPart, "p")); err != nil {
				return fail("jam term %q: %v", term, err)
			}
		case "loss":
			if fs.LossP != 0 {
				return fail("duplicate loss term")
			}
			if fs.LossP, err = prob(rest); err != nil {
				return fail("loss term %q: %v", term, err)
			}
		default:
			return fail("unknown term %q (known: crash jam loss none)", term)
		}
	}
	if fs.None() {
		return fail("no effective faults (use \"none\" for an explicit baseline)")
	}
	return fs, nil
}

// Plan realizes the spec on g: fault sites are chosen deterministically
// from seed (so the same trial seed always hits the same nodes, at any
// worker count), never selecting a protected node — the campaign protects
// the broadcast source, whose crash would make the completion target
// vacuous. Returns nil for an unfaulted spec.
func (fs *FaultSpec) Plan(g *graph.Graph, seed uint64, protect ...int) *radio.FaultPlan {
	if fs.None() {
		return nil
	}
	n := g.N()
	plan := radio.NewFaultPlan(n, seed)
	prot := make(map[int]bool, len(protect))
	for _, v := range protect {
		prot[v] = true
	}
	sites := rng.New(seed).Fork(0x517e5)
	pick := func(fraction float64, stream uint64) []int {
		if fraction == 0 {
			return nil // absent term: skip the O(n) permutation
		}
		k := int(fraction * float64(n))
		if max := n - len(prot); k > max {
			k = max
		}
		chosen := make([]int, 0, k)
		for _, v := range sites.Fork(stream).Perm(n) {
			if len(chosen) == k {
				break
			}
			if prot[v] {
				continue
			}
			chosen = append(chosen, v)
		}
		return chosen
	}
	for _, v := range pick(fs.CrashFrac, 1) {
		plan.Crash(v, fs.CrashRound)
	}
	for _, v := range pick(fs.JamFrac, 2) {
		plan.Jam(v, fs.JamP)
	}
	if fs.LossP > 0 {
		for v := 0; v < n; v++ {
			plan.Loss(v, fs.LossP)
		}
	}
	return plan
}

// TrialPlan is Plan with the site/coin seed derived from a trial seed the
// campaign convention's way. It is the single derivation point shared by
// the campaign executor and cmd/radiosim, so the same (spec, trial seed)
// realizes the same fault scenario in both tools.
func (fs *FaultSpec) TrialPlan(g *graph.Graph, trialSeed uint64, protect ...int) *radio.FaultPlan {
	return fs.Plan(g, rng.New(trialSeed).Fork(0xFA177).Uint64(), protect...)
}
