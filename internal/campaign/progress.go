package campaign

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// progress renders a single live status line: trials done/total, percent,
// elapsed time, an ETA extrapolated from the mean trial rate, and the
// configuration that just finished. It rewrites the line in place with
// \r, so it belongs on a terminal-ish writer (cmd/campaign -progress uses
// stderr) and never on a sink stream — telemetry must not perturb
// deterministic output.
type progress struct {
	w     io.Writer
	total int
	start time.Time

	done    int
	last    time.Time
	lastLen int
}

// newProgress returns nil for a nil writer; all methods are nil-safe, so
// the campaign calls them unconditionally.
func newProgress(w io.Writer, total int) *progress {
	if w == nil || total <= 0 {
		return nil
	}
	//lint:wallclock ETA display on the progress line; never reaches results
	return &progress{w: w, total: total, start: time.Now()}
}

// step records one finished trial of cfg and redraws the line, throttled
// to ~10 Hz (the final trial always draws). Callers serialize steps — the
// campaign calls it under its aggregation mutex.
func (p *progress) step(cfg *Config) {
	if p == nil {
		return
	}
	p.done++
	now := time.Now() //lint:wallclock redraw throttling and ETA; never reaches results
	if p.done < p.total && now.Sub(p.last) < 100*time.Millisecond {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start)
	eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
	line := fmt.Sprintf("campaign: %d/%d trials (%d%%)  elapsed %s  eta %s  [%s]",
		p.done, p.total, 100*p.done/p.total,
		elapsed.Round(time.Second), eta.Round(time.Second), cfg.Name())
	// Pad over any longer previous line so stale tail characters never
	// linger after the cursor returns.
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.lastLen = len(line)
}

// finish terminates the line with a newline (the final step already drew
// the 100% state).
func (p *progress) finish() {
	if p == nil {
		return
	}
	fmt.Fprintln(p.w)
}
