package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sink consumes per-configuration summaries as the campaign streams them
// (in deterministic configuration order). Close flushes any buffered
// output; a sink is single-use.
type Sink interface {
	Emit(s ConfigSummary) error
	Close() error
}

// Schema fixes a tabular sink's column set for a whole campaign, up
// front. It used to be inferred from the first emitted summary, which made
// mixed streams (timed and untimed, faulted and unfaulted) produce rows
// wider than the header and silently misaligned tables — the column set is
// a campaign-level decision, not a per-row one. A summary missing an
// enabled column's value renders an empty cell; a summary carrying a value
// the schema excludes has it dropped.
type Schema struct {
	// Timed includes the wall-time columns (Campaign.Timings).
	Timed bool
	// Faults includes the fault-axis columns (Matrix.Faults non-empty).
	Faults bool
}

// SinkSchema returns the Schema matching this matrix and timing choice.
func (m Matrix) SinkSchema(timed bool) Schema {
	return Schema{Timed: timed, Faults: len(m.Faults) > 0}
}

// NewSink returns the sink named by format: "text", "csv" or "jsonl".
// sch fixes the tabular column set (jsonl ignores it: each line carries
// its own fields).
func NewSink(format string, w io.Writer, sch Schema) (Sink, error) {
	switch format {
	case "text":
		return &textSink{w: w, sch: sch, cols: schemaColumns(sch)}, nil
	case "csv":
		return &csvSink{w: w, sch: sch}, nil
	case "jsonl":
		return &jsonlSink{w: w}, nil
	default:
		return nil, fmt.Errorf("campaign: unknown sink format %q (known: text csv jsonl)", format)
	}
}

// num renders a float compactly and deterministically.
func num(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }

// row flattens a summary into the schema's column values.
func (s ConfigSummary) row(sch Schema) []string {
	r := []string{
		s.Topology, strconv.Itoa(s.N), strconv.Itoa(s.D), s.Task, s.Algo,
		strconv.Itoa(s.Trials), strconv.Itoa(s.Failures),
		num(s.Rounds.Mean), num(s.Rounds.Std), num(s.Rounds.P50),
		num(s.Rounds.P90), num(s.Rounds.P99), num(s.Rounds.Max),
		num(s.Tx.Mean),
	}
	if sch.Faults {
		if s.Survivors != nil && s.Reach != nil {
			r = append(r, s.Faults, num(s.Survivors.Mean), num(s.Reach.Mean), num(s.Reach.P50))
		} else {
			r = append(r, s.Faults, "", "", "")
		}
	}
	if sch.Timed {
		if s.WallMS != nil {
			r = append(r, num(s.WallMS.Mean), num(s.WallMS.P99))
		} else {
			r = append(r, "", "")
		}
	}
	return r
}

func schemaColumns(sch Schema) []string {
	c := []string{
		"topology", "n", "D", "task", "algo", "trials", "fail",
		"rounds.mean", "rounds.std", "rounds.p50", "rounds.p90",
		"rounds.p99", "rounds.max", "tx.mean",
	}
	if sch.Faults {
		c = append(c, "faults", "surv.mean", "reach.mean", "reach.p50")
	}
	if sch.Timed {
		c = append(c, "ms.mean", "ms.p99")
	}
	return c
}

// textSink buffers all rows and writes an aligned table on Close.
type textSink struct {
	w    io.Writer
	sch  Schema
	cols []string
	rows [][]string
}

func (t *textSink) Emit(s ConfigSummary) error {
	t.rows = append(t.rows, s.row(t.sch))
	return nil
}

func (t *textSink) Close() error {
	if len(t.rows) == 0 {
		return nil
	}
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b strings.Builder
	for i, c := range t.cols {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.cols {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for i, v := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(t.w, b.String())
	return err
}

// csvSink writes a header before the first row, then streams.
type csvSink struct {
	w     io.Writer
	sch   Schema
	wrote bool
}

func (c *csvSink) Emit(s ConfigSummary) error {
	if !c.wrote {
		c.wrote = true
		if _, err := io.WriteString(c.w, strings.Join(schemaColumns(c.sch), ",")+"\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(c.w, strings.Join(s.row(c.sch), ",")+"\n")
	return err
}

func (c *csvSink) Close() error { return nil }

// jsonlSink streams one JSON object per configuration.
type jsonlSink struct {
	w io.Writer
}

func (j *jsonlSink) Emit(s ConfigSummary) error {
	b, err := json.Marshal(s)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = j.w.Write(b)
	return err
}

func (j *jsonlSink) Close() error { return nil }
