package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sink consumes per-configuration summaries as the campaign streams them
// (in deterministic configuration order). Close flushes any buffered
// output; a sink is single-use.
type Sink interface {
	Emit(s ConfigSummary) error
	Close() error
}

// NewSink returns the sink named by format: "text", "csv" or "jsonl".
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case "text":
		return &textSink{w: w}, nil
	case "csv":
		return &csvSink{w: w}, nil
	case "jsonl":
		return &jsonlSink{w: w}, nil
	default:
		return nil, fmt.Errorf("campaign: unknown sink format %q (known: text csv jsonl)", format)
	}
}

// num renders a float compactly and deterministically.
func num(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }

// row flattens a summary into column values; wall columns only if timed.
func (s ConfigSummary) row() []string {
	r := []string{
		s.Topology, strconv.Itoa(s.N), strconv.Itoa(s.D), s.Task, s.Algo,
		strconv.Itoa(s.Trials), strconv.Itoa(s.Failures),
		num(s.Rounds.Mean), num(s.Rounds.Std), num(s.Rounds.P50),
		num(s.Rounds.P90), num(s.Rounds.P99), num(s.Rounds.Max),
		num(s.Tx.Mean),
	}
	if s.WallMS != nil {
		r = append(r, num(s.WallMS.Mean), num(s.WallMS.P99))
	}
	return r
}

func (s ConfigSummary) columns() []string {
	c := []string{
		"topology", "n", "D", "task", "algo", "trials", "fail",
		"rounds.mean", "rounds.std", "rounds.p50", "rounds.p90",
		"rounds.p99", "rounds.max", "tx.mean",
	}
	if s.WallMS != nil {
		c = append(c, "ms.mean", "ms.p99")
	}
	return c
}

// textSink buffers all rows and writes an aligned table on Close.
type textSink struct {
	w    io.Writer
	cols []string
	rows [][]string
}

func (t *textSink) Emit(s ConfigSummary) error {
	if t.cols == nil {
		t.cols = s.columns()
	}
	t.rows = append(t.rows, s.row())
	return nil
}

func (t *textSink) Close() error {
	if t.cols == nil {
		return nil
	}
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b strings.Builder
	for i, c := range t.cols {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.cols {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for i, v := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(t.w, b.String())
	return err
}

// csvSink writes a header before the first row, then streams.
type csvSink struct {
	w     io.Writer
	wrote bool
}

func (c *csvSink) Emit(s ConfigSummary) error {
	if !c.wrote {
		c.wrote = true
		if _, err := io.WriteString(c.w, strings.Join(s.columns(), ",")+"\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(c.w, strings.Join(s.row(), ",")+"\n")
	return err
}

func (c *csvSink) Close() error { return nil }

// jsonlSink streams one JSON object per configuration.
type jsonlSink struct {
	w io.Writer
}

func (j *jsonlSink) Emit(s ConfigSummary) error {
	b, err := json.Marshal(s)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = j.w.Write(b)
	return err
}

func (j *jsonlSink) Close() error { return nil }
