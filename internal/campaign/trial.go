package campaign

import (
	"fmt"
	"time"

	"radionet/internal/baseline"
	"radionet/internal/compete"
	"radionet/internal/decay"
	"radionet/internal/radio"
)

// Broadcast and leader-election algorithm names accepted in AlgoSpec,
// matching the radionet facade constants.
var (
	broadcastAlgos = map[string]bool{
		"cd17": true, "hw16": true, "bgi": true, "truncated-decay": true,
	}
	leaderAlgos = map[string]bool{
		"cd17": true, "binary-search": true, "max-broadcast": true,
	}
)

func validateAlgo(a AlgoSpec) error {
	switch a.Task {
	case Broadcast:
		if !broadcastAlgos[a.Algo] {
			return fmt.Errorf("campaign: unknown broadcast algorithm %q (known: cd17 hw16 bgi truncated-decay)", a.Algo)
		}
	case Leader:
		if !leaderAlgos[a.Algo] {
			return fmt.Errorf("campaign: unknown leader algorithm %q (known: cd17 binary-search max-broadcast)", a.Algo)
		}
	default:
		return fmt.Errorf("campaign: unknown task %q (known: broadcast leader)", a.Task)
	}
	return nil
}

// TrialResult reports one protocol run.
type TrialResult struct {
	// Rounds is the executed round count (budget-capped on failure).
	Rounds int64
	// Tx is the total transmission count where the algorithm exposes
	// engine metrics (0 for the composite leader-election baselines,
	// which run their broadcasts internally).
	Tx int64
	// Done reports completion within budget (and, for leader election,
	// a verified postcondition where the algorithm supports it).
	Done bool
	// Err records a constructor failure; the trial counts as failed.
	Err string
	// Reason classifies a failed trial: "" for completed trials, "budget"
	// when the round budget ran out, "error" on a constructor failure.
	Reason string
	// Survivors, Reached and ReachTarget are the fault-axis reach
	// accounting (zero on campaigns without a fault axis): never-crashing
	// nodes, nodes that learned the message among the completion target,
	// and the survivor-scoped completion target itself.
	Survivors   int
	Reached     int
	ReachTarget int
	// Wall is the measured execution time. It is inherently
	// non-deterministic and excluded from sink output unless requested.
	Wall time.Duration
}

// decayBudget is the whp-sufficient Decay budget used when MaxRounds is 0,
// mirroring the radionet facade: 20·(D+L)·L with L = ceil(log2 n) levels.
func decayBudget(n, d int) int64 {
	l := int64(decay.Levels(n))
	return 20 * (int64(d) + l) * l
}

// Scratch carries the reusable, seed-independent part of one Config's
// per-trial work: for the compete-pipeline algorithms (cd17, hw16) a
// shared compete.Pre, so repeated trials on the same graph skip the
// parameter-grid computation and recycle the Partition/schedule build
// buffers. A Scratch is safe for concurrent use — workers at any -workers
// value may share one — and sharing it changes no output bit (the
// per-seed randomness is drawn exactly as without it).
type Scratch struct {
	pre *compete.Pre // non-nil for compete-pipeline configs
}

// NewScratch builds the per-config scratch for cfg. Configs outside the
// compete pipeline get an empty scratch (their trials have no reusable
// seed-independent precomputation).
func NewScratch(cfg *Config) *Scratch {
	s := &Scratch{}
	switch {
	case cfg.Spec.Task == Broadcast && (cfg.Spec.Algo == "cd17" || cfg.Spec.Algo == "hw16"):
		s.pre = compete.NewPre(cfg.G, cfg.D, compete.Config{CurtailLogLog: cfg.Spec.Algo == "hw16"})
	case cfg.Spec.Task == Leader && cfg.Spec.Algo == "cd17":
		s.pre = compete.NewPre(cfg.G, cfg.D, compete.Config{})
	}
	return s
}

// RunTrial executes one trial of cfg with the given RNG stream seed.
// maxRounds 0 selects a per-algorithm whp-sufficient budget.
func RunTrial(cfg *Config, seed uint64, maxRounds int64) TrialResult {
	return RunTrialScratch(cfg, seed, maxRounds, nil)
}

// RunTrialScratch is RunTrial with the per-config scratch supplied by the
// caller, the executor convention for amortizing seed-independent
// precomputation across a configuration's seed axis. A nil scr builds a
// fresh scratch for this trial alone.
func RunTrialScratch(cfg *Config, seed uint64, maxRounds int64, scr *Scratch) TrialResult {
	if scr == nil || scr.pre == nil {
		// Also rebuilds a zero-valued Scratch handed in for a
		// compete-pipeline config, which would otherwise panic in the
		// constructor; for other configs the rebuilt scratch is empty too.
		scr = NewScratch(cfg)
	}
	start := time.Now()
	res := runTrial(cfg, seed, maxRounds, scr)
	res.Wall = time.Since(start)
	return res
}

// trialPlan realizes cfg's fault spec for one trial: fault sites and coin
// streams derive from the trial seed (deterministic at any worker count),
// and the broadcast source (node 0) is protected so the completion target
// never collapses to the empty set.
func trialPlan(cfg *Config, seed uint64) *radio.FaultPlan {
	return cfg.Fault.TrialPlan(cfg.G, seed, 0)
}

// faultResult fills the fault-axis fields of a broadcast trial's result.
// Campaigns without a fault axis (Fault.Spec == "") leave them zero so
// their aggregates — and sink bytes — are unchanged.
func faultResult(res TrialResult, cfg *Config, plan *radio.FaultPlan, reached, target int) TrialResult {
	if !res.Done {
		res.Reason = "budget"
	}
	if cfg.Fault.Spec == "" {
		return res
	}
	res.Survivors = cfg.G.N()
	if plan != nil {
		res.Survivors = plan.Survivors()
	}
	res.Reached, res.ReachTarget = reached, target
	return res
}

func runTrial(cfg *Config, seed uint64, maxRounds int64, scr *Scratch) TrialResult {
	fail := func(err error) TrialResult { return TrialResult{Err: err.Error(), Reason: "error"} }
	g, d := cfg.G, cfg.D
	switch cfg.Spec.Task {
	case Broadcast:
		plan := trialPlan(cfg, seed)
		switch cfg.Spec.Algo {
		case "cd17", "hw16":
			b, err := compete.NewBroadcastPreFaults(scr.pre, seed, 0, 9, plan)
			if err != nil {
				return fail(err)
			}
			budget := maxRounds
			if budget <= 0 {
				budget = 8 * b.Budget()
			}
			rounds, done := b.Run(budget)
			res := TrialResult{Rounds: rounds, Tx: b.Engine.Metrics.Transmissions, Done: done}
			return faultResult(res, cfg, plan, b.Reached(), b.ReachTarget())
		case "bgi", "truncated-decay":
			// truncated-decay is baseline.NewTruncatedDecay, inlined so the
			// fault plan can ride in the decay Config.
			dcfg := decay.Config{Faults: plan}
			if cfg.Spec.Algo == "truncated-decay" {
				dcfg.Levels = baseline.TruncatedDecayLevels(g.N(), d)
			}
			b := decay.NewBroadcast(g, dcfg, seed, map[int]int64{0: 9})
			budget := maxRounds
			if budget <= 0 {
				budget = decayBudget(g.N(), d)
			}
			rounds, done := b.Run(budget)
			res := TrialResult{Rounds: rounds, Tx: b.Engine.Metrics.Transmissions, Done: done}
			return faultResult(res, cfg, plan, b.Reached(), b.ReachTarget())
		}
	case Leader:
		switch cfg.Spec.Algo {
		case "cd17":
			le, err := compete.NewLeaderElectionPre(scr.pre, compete.LeaderConfig{}, seed)
			if err != nil {
				return fail(err)
			}
			budget := maxRounds
			if budget <= 0 {
				budget = 8 * le.Budget()
			}
			rounds, done := le.Run(budget)
			done = done && le.Verify() == nil
			return TrialResult{Rounds: rounds, Tx: le.Engine.Metrics.Transmissions, Done: done}
		case "binary-search":
			// Binary search charges its per-iteration broadcast budget tbc
			// for each of the 40 default ID bits, so a trial cap maps to
			// tbc = maxRounds/40 (floored to 1: the constructor treats
			// tbc <= 0 as "use the whp default", which would un-cap).
			tbc := int64(0)
			if maxRounds > 0 {
				tbc = maxRounds / 40
				if tbc < 1 {
					tbc = 1
				}
			}
			le, err := baseline.NewBinarySearchLE(g, d, seed, 0, 0, tbc)
			if err != nil {
				return fail(err)
			}
			r := le.Run()
			return TrialResult{Rounds: r.Rounds, Done: r.Done}
		case "max-broadcast":
			le, err := baseline.NewMaxBroadcastLE(g, d, seed, 0, 0, maxRounds)
			if err != nil {
				return fail(err)
			}
			r := le.Run()
			return TrialResult{Rounds: r.Rounds, Done: r.Done}
		}
	}
	return fail(fmt.Errorf("campaign: unrunnable spec %s", cfg.Spec))
}
