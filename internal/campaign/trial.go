package campaign

import (
	"fmt"
	"time"

	"radionet/internal/precompute"
	"radionet/internal/protocol"
	"radionet/internal/radio"

	// Populate the protocol registry with the full algorithm catalogue.
	// This import — not any code in this package — decides what a
	// campaign can run; new algorithms register themselves and need no
	// changes here.
	_ "radionet/internal/protocol/all"
)

// lookup resolves an AlgoSpec against the protocol registry.
func lookup(a AlgoSpec) (*protocol.Descriptor, error) {
	task := protocol.Task(a.Task)
	if !protocol.KnownTask(task) {
		known := ""
		for i, t := range protocol.Tasks() {
			if i > 0 {
				known += " "
			}
			known += string(t)
		}
		return nil, fmt.Errorf("campaign: unknown task %q (known: %s)", a.Task, known)
	}
	desc, ok := protocol.Lookup(task, a.Algo)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown %s algorithm %q (known: %s)", a.Task, a.Algo, protocol.KnownList(task))
	}
	return desc, nil
}

// TrialResult reports one protocol run.
type TrialResult struct {
	// Rounds is the executed round count (budget-capped on failure).
	Rounds int64
	// Tx is the total engine transmission count, summed over every engine
	// the trial drove (composite runners like binary-search LE run one
	// per ID bit).
	Tx int64
	// Done reports completion within budget and, where the algorithm
	// exposes a postcondition check (protocol.Result.Verify), a verified
	// postcondition.
	Done bool
	// Err records a constructor failure; the trial counts as failed.
	Err string
	// Reason classifies a failed trial: "" for completed trials, "budget"
	// when the round budget ran out, "verify" when the run finished but
	// its postcondition check failed, "error" on a constructor failure.
	Reason string
	// Survivors, Reached and ReachTarget are the fault-axis reach
	// accounting (zero on campaigns without a fault axis): never-crashing
	// nodes, nodes that reached the completion condition among the
	// completion target, and the survivor-scoped completion target itself.
	Survivors   int
	Reached     int
	ReachTarget int
	// Wall is the measured execution time. It is inherently
	// non-deterministic and excluded from sink output unless requested.
	Wall time.Duration
	// Budget is the trial's effective round budget — maxRounds when the
	// caller set one, else the runner's resolved default where it exposes
	// one (protocol.Budgeted), else 0. Telemetry only (budget-fraction
	// histograms); never aggregated into sink output.
	Budget int64
}

// Scratch carries the reusable, seed-independent part of one Config's
// per-trial work, built by the configuration's descriptor (e.g. a shared
// compete.Pre for the clustering pipeline, so repeated trials on the same
// graph skip the parameter-grid computation). A Scratch is safe for
// concurrent use — workers at any -workers value may share one — and
// sharing it changes no output bit (the per-seed randomness is drawn
// exactly as without it).
type Scratch struct {
	val any
}

// NewScratch builds the per-config scratch for cfg. Configs whose
// descriptor has no reusable precomputation (or that fail to resolve —
// Expand reports that loudly) get an empty scratch.
func NewScratch(cfg *Config) *Scratch {
	desc, err := lookup(cfg.Spec)
	if err != nil || desc.NewScratch == nil {
		return &Scratch{}
	}
	return &Scratch{val: desc.NewScratch(cfg.G, cfg.D, nil)}
}

// scratchGroupKey identifies one shareable scratch build: the topology
// product key crossed with the descriptor's declared ScratchKey. Configs
// differing only in fault spec or transport always group (NewScratch
// never sees either); configs of different descriptors group exactly when
// both descriptors declare the same ScratchKey (e.g. broadcast:cd17 and
// leader:cd17 share "compete/pre").
type scratchGroupKey struct {
	topo    precompute.Key
	scratch string
}

// buildScratches constructs the per-config scratches for a materialized
// plan, deduplicated by (topology product, descriptor ScratchKey) and
// built concurrently across the worker pool. Configs without reusable
// precomputation get the empty scratch for free; configs whose descriptor
// opts out of sharing (ScratchKey "") build one scratch per config, as
// the serial setup phase always did. Each group's build wall time is
// added to cfgSetup at the group's first config index. Sharing is
// output-neutral: scratches are seed-independent by contract, and equal
// group keys imply equal constructor inputs.
func buildScratches(plan *Plan, workers int, cfgSetup []time.Duration) []*Scratch {
	scratches := make([]*Scratch, len(plan.Configs))
	type group struct {
		first int
		cfgs  []int
	}
	var groups []group
	gidx := make(map[scratchGroupKey]int)
	for ci := range plan.Configs {
		cfg := &plan.Configs[ci]
		desc, err := lookup(cfg.Spec)
		if err != nil || desc.NewScratch == nil {
			scratches[ci] = &Scratch{}
			continue
		}
		if desc.ScratchKey == "" {
			groups = append(groups, group{first: ci, cfgs: []int{ci}})
			continue
		}
		gk := scratchGroupKey{topo: cfg.Key, scratch: desc.ScratchKey}
		gi, ok := gidx[gk]
		if !ok {
			gi = len(groups)
			gidx[gk] = gi
			groups = append(groups, group{first: ci})
		}
		groups[gi].cfgs = append(groups[gi].cfgs, ci)
	}
	ForEachWorker(workers, len(groups), func(_, gi int) {
		g := &groups[gi]
		start := time.Now() //lint:wallclock setup timing is telemetry (manifest/bench only), never part of trial output
		scr := NewScratch(&plan.Configs[g.first])
		wall := time.Since(start) //lint:wallclock setup timing is telemetry (manifest/bench only), never part of trial output
		for _, ci := range g.cfgs {
			scratches[ci] = scr
		}
		// Distinct groups have distinct first indexes, so these writes
		// never race; Materialize's attribution wrote before this pool
		// started.
		cfgSetup[g.first] += wall
	})
	return scratches
}

// RunTrial executes one trial of cfg with the given RNG stream seed.
// maxRounds 0 selects the algorithm's registered whp-sufficient budget.
func RunTrial(cfg *Config, seed uint64, maxRounds int64) TrialResult {
	return RunTrialScratch(cfg, seed, maxRounds, nil)
}

// RunTrialScratch is RunTrial with the per-config scratch supplied by the
// caller, the executor convention for amortizing seed-independent
// precomputation across a configuration's seed axis. A nil scr builds a
// fresh scratch for this trial alone.
func RunTrialScratch(cfg *Config, seed uint64, maxRounds int64, scr *Scratch) TrialResult {
	return runTrialScratchHook(cfg, seed, maxRounds, scr, trialOpts{})
}

// trialOpts carries the engine-level execution knobs threaded from the
// campaign into each trial's BuildParams: the shared obs round hook, the
// intra-round shard count, and the per-shard busy-time hook. All of them
// are output-neutral — hooks observe, and sharding is bit-exact at any
// count — so equal (cfg, seed) trials produce identical results under any
// opts.
type trialOpts struct {
	hook      radio.RoundHook
	shards    int
	shardHook radio.ShardHook
}

// runTrialScratchHook is the full trial entry point: RunTrialScratch plus
// the campaign's execution knobs (see trialOpts). The hooks observe
// rounds; they never change them — telemetry stays strictly
// output-neutral.
func runTrialScratchHook(cfg *Config, seed uint64, maxRounds int64, scr *Scratch, opts trialOpts) TrialResult {
	if scr == nil || scr.val == nil {
		// Also rebuilds a zero-valued Scratch handed in for a config whose
		// descriptor expects one; for scratch-free configs the rebuilt
		// scratch is empty too.
		scr = NewScratch(cfg)
	}
	start := time.Now() //lint:wallclock TrialResult.Wall is telemetry, excluded from the sink stream
	res := runTrial(cfg, seed, maxRounds, scr, opts)
	res.Wall = time.Since(start) //lint:wallclock TrialResult.Wall is telemetry, excluded from the sink stream
	return res
}

// trialPlan realizes cfg's fault spec for one trial: fault sites and coin
// streams derive from the trial seed (deterministic at any worker count),
// and the descriptor's protected nodes — the broadcast source, a leader
// election's would-be winner — are never selected, so the completion
// target never collapses to the empty set.
func trialPlan(cfg *Config, desc *protocol.Descriptor, seed uint64, sources map[int]int64) *radio.FaultPlan {
	return cfg.Fault.TrialPlan(cfg.G, seed, desc.ProtectedNodes(cfg.G, cfg.D, seed, sources, nil)...)
}

// faultResult fills the fault-axis fields of a trial's result. Campaigns
// without a fault axis (Fault.Spec == "") leave them zero so their
// aggregates — and sink bytes — are unchanged.
func faultResult(res TrialResult, cfg *Config, plan *radio.FaultPlan, reached, target int) TrialResult {
	if !res.Done && res.Reason == "" {
		res.Reason = "budget"
	}
	if cfg.Fault.Spec == "" {
		return res
	}
	res.Survivors = cfg.G.N()
	if plan != nil {
		res.Survivors = plan.Survivors()
	}
	res.Reached, res.ReachTarget = reached, target
	return res
}

// runTrial is the whole per-trial dispatch: resolve the descriptor,
// realize the fault plan, build the runner, run it, verify. Every
// algorithm-specific decision — constructors, budget defaults, metric
// extraction — lives behind the registry.
func runTrial(cfg *Config, seed uint64, maxRounds int64, scr *Scratch, opts trialOpts) TrialResult {
	desc, err := lookup(cfg.Spec)
	if err != nil {
		return TrialResult{Err: err.Error(), Reason: "error"}
	}
	sources := desc.DefaultSources()
	var plan *radio.FaultPlan
	// The None guard isn't just an optimization: ProtectedNodes may
	// resample a leader election's candidate set, and unfaulted trials
	// must not pay that per trial.
	if desc.Caps.Faults && !cfg.Fault.None() {
		plan = trialPlan(cfg, desc, seed, sources)
	}
	// Non-simulator cells run over their backend's round executor: one
	// transport instance per trial (a transport owns per-run goroutines
	// and sockets), closed when the trial ends — budget-exhausted runs
	// included.
	var tr radio.Transport
	if cfg.Transport != "" && cfg.Transport != SimTransport {
		t, err := radio.NewTransport(cfg.Transport)
		if err != nil {
			return TrialResult{Err: err.Error(), Reason: "error"}
		}
		tr = t
		defer tr.Close()
	}
	// Engines built for this trial release their resident shard workers
	// when the trial ends (sharded engines park k-1 goroutines; without
	// the deterministic close a long campaign would accumulate them until
	// GC).
	var engines radio.EngineSet
	defer engines.Close()
	r, err := desc.Build(protocol.BuildParams{
		G:         cfg.G,
		D:         cfg.D,
		Seed:      seed,
		Sources:   sources,
		Faults:    plan,
		Scratch:   scr.val,
		Hook:      opts.hook,
		Shards:    opts.shards,
		ShardHook: opts.shardHook,
		Transport: tr,
		Engines:   &engines,
	})
	if err != nil {
		return TrialResult{Err: err.Error(), Reason: "error"}
	}
	// The effective budget, resolved before Run (a Budgeted runner may
	// fold an explicit budget into the same state afterwards).
	budget := maxRounds
	if budget <= 0 {
		budget = 0
		if b, ok := r.(protocol.Budgeted); ok {
			budget = b.DefaultBudget()
		}
	}
	res := r.Run(maxRounds)
	out := TrialResult{Rounds: res.Rounds, Tx: res.Tx, Done: res.Done, Budget: budget}
	if res.Done && res.Verify != nil && res.Verify() != nil {
		// The run finished within budget but the postcondition failed —
		// a distinct failure class fail_reasons must not fold into
		// "budget".
		out.Done = false
		out.Reason = "verify"
	}
	return faultResult(out, cfg, plan, res.Reached, res.ReachTarget)
}
