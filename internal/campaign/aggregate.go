package campaign

import "radionet/internal/stats"

// Dist is the rendered distribution of one metric over a configuration's
// trials.
type Dist struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func distOf(r *stats.Running) Dist {
	return Dist{
		Mean: r.Mean(),
		Std:  r.Std(),
		P50:  r.Quantile(0.5),
		P90:  r.Quantile(0.9),
		P99:  r.Quantile(0.99),
		Max:  r.Max(),
	}
}

// ConfigSummary is the aggregate of every trial of one configuration —
// one output row of a campaign.
type ConfigSummary struct {
	Topology string `json:"topology"`
	N        int    `json:"n"`
	D        int    `json:"d"`
	Task     string `json:"task"`
	Algo     string `json:"algo"`
	Trials   int    `json:"trials"`
	// Failures counts trials that did not complete within budget (or
	// failed to construct).
	Failures int  `json:"failures"`
	Rounds   Dist `json:"rounds"`
	Tx       Dist `json:"transmissions"`
	// WallMS is present only when the campaign ran with Timings: wall
	// time is non-deterministic and would break byte-identical output.
	WallMS *Dist `json:"wall_ms,omitempty"`
	// Fault-axis fields, present only when the configuration sits on a
	// fault axis (Matrix.Faults) so unfaulted campaign output stays
	// byte-identical: the fault spec, the distribution of never-crashing
	// node counts, the distribution of per-trial reach fractions
	// (reached / survivor-scoped target; 1.0 exactly when the trial
	// completed), and failed-trial counts keyed by reason.
	Faults      string         `json:"faults,omitempty"`
	Survivors   *Dist          `json:"survivors,omitempty"`
	Reach       *Dist          `json:"reach,omitempty"`
	FailReasons map[string]int `json:"fail_reasons,omitempty"`
}

// summarize aggregates configuration ci from the per-trial result slice.
// Trials are folded in repetition order — never completion order — so the
// floating-point reductions are identical for every worker count.
func summarize(p *Plan, ci int, results []TrialResult, timings bool) ConfigSummary {
	cfg := &p.Configs[ci]
	faulted := cfg.Fault.Spec != ""
	var rounds, tx, wall, surv, reach stats.Running
	var reasons map[string]int
	failures := 0
	base := ci * p.Seeds
	for rep := 0; rep < p.Seeds; rep++ {
		r := results[base+rep]
		if !r.Done {
			failures++
		}
		rounds.Add(float64(r.Rounds))
		tx.Add(float64(r.Tx))
		wall.Add(float64(r.Wall.Nanoseconds()) / 1e6)
		if faulted {
			surv.Add(float64(r.Survivors))
			f := 1.0
			if r.ReachTarget > 0 {
				f = float64(r.Reached) / float64(r.ReachTarget)
			}
			reach.Add(f)
			if !r.Done {
				if reasons == nil {
					reasons = map[string]int{}
				}
				reason := r.Reason
				if reason == "" {
					reason = "budget"
				}
				reasons[reason]++
			}
		}
	}
	s := ConfigSummary{
		Topology: cfg.Topology,
		N:        cfg.G.N(),
		D:        cfg.D,
		Task:     string(cfg.Spec.Task),
		Algo:     cfg.Spec.Algo,
		Trials:   p.Seeds,
		Failures: failures,
		Rounds:   distOf(&rounds),
		Tx:       distOf(&tx),
	}
	if timings {
		w := distOf(&wall)
		s.WallMS = &w
	}
	if faulted {
		sv, rc := distOf(&surv), distOf(&reach)
		s.Faults = cfg.Fault.Spec
		s.Survivors, s.Reach = &sv, &rc
		s.FailReasons = reasons
	}
	return s
}
