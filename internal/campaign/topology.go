package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// Topology is a parsed topology spec that can build its graph.
type Topology struct {
	// Spec is the canonical spec string.
	Spec string
	// Build generates the graph; seed matters only for the random
	// families (geometric, gnp, randtree, regular).
	Build func(seed uint64) *graph.Graph
}

// ParseTopology parses a topology spec. The grammar is
// "family:params" with dimensions joined by 'x':
//
//	path:N cycle:N star:N complete:N randtree:N
//	grid:RxC cliquepath:KxS caterpillar:SPINExLEGS
//	tree:ARITYxDEPTH dumbbell:SxL regular:NxD
//	hypercube:DIM
//	geometric:N:RADIUS gnp:N:P
func ParseTopology(spec string) (Topology, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	fail := func(format string, args ...any) (Topology, error) {
		return Topology{}, fmt.Errorf("campaign: topology %q: %s", spec, fmt.Sprintf(format, args...))
	}
	family := parts[0]
	args := parts[1:]

	oneInt := func() (int, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("want 1 argument, got %d", len(args))
		}
		return strconv.Atoi(args[0])
	}
	twoInts := func() (int, int, error) {
		if len(args) != 1 {
			return 0, 0, fmt.Errorf("want AxB argument")
		}
		dims := strings.Split(args[0], "x")
		if len(dims) != 2 {
			return 0, 0, fmt.Errorf("want AxB argument, got %q", args[0])
		}
		a, err := strconv.Atoi(dims[0])
		if err != nil {
			return 0, 0, err
		}
		b, err := strconv.Atoi(dims[1])
		if err != nil {
			return 0, 0, err
		}
		return a, b, nil
	}
	intFloat := func() (int, float64, error) {
		if len(args) != 2 {
			return 0, 0, fmt.Errorf("want N:X arguments")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return 0, 0, err
		}
		f, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return 0, 0, err
		}
		return n, f, nil
	}
	static := func(g func() *graph.Graph) func(uint64) *graph.Graph {
		return func(uint64) *graph.Graph { return g() }
	}

	var build func(seed uint64) *graph.Graph
	switch family {
	case "path", "cycle", "star", "complete", "hypercube", "randtree":
		n, err := oneInt()
		if err != nil {
			return fail("%v", err)
		}
		switch family {
		case "path":
			build = static(func() *graph.Graph { return graph.Path(n) })
		case "cycle":
			build = static(func() *graph.Graph { return graph.Cycle(n) })
		case "star":
			build = static(func() *graph.Graph { return graph.Star(n) })
		case "complete":
			build = static(func() *graph.Graph { return graph.Complete(n) })
		case "hypercube":
			build = static(func() *graph.Graph { return graph.Hypercube(n) })
		case "randtree":
			build = func(seed uint64) *graph.Graph { return graph.RandomTree(n, rng.New(seed)) }
		}
	case "grid", "cliquepath", "caterpillar", "tree", "dumbbell", "regular":
		a, b, err := twoInts()
		if err != nil {
			return fail("%v", err)
		}
		switch family {
		case "grid":
			build = static(func() *graph.Graph { return graph.Grid(a, b) })
		case "cliquepath":
			build = static(func() *graph.Graph { return graph.PathOfCliques(a, b) })
		case "caterpillar":
			build = static(func() *graph.Graph { return graph.Caterpillar(a, b) })
		case "tree":
			build = static(func() *graph.Graph { return graph.BalancedTree(a, b) })
		case "dumbbell":
			build = static(func() *graph.Graph { return graph.Dumbbell(a, b) })
		case "regular":
			build = func(seed uint64) *graph.Graph { return graph.RandomRegular(a, b, rng.New(seed)) }
		}
	case "geometric", "gnp":
		n, f, err := intFloat()
		if err != nil {
			return fail("%v", err)
		}
		if family == "geometric" {
			build = func(seed uint64) *graph.Graph { return graph.RandomGeometric(n, f, rng.New(seed)) }
		} else {
			build = func(seed uint64) *graph.Graph { return graph.Gnp(n, f, rng.New(seed)) }
		}
	default:
		return fail("unknown family (known: path cycle star complete hypercube randtree grid cliquepath caterpillar tree dumbbell regular geometric gnp)")
	}
	return Topology{Spec: strings.TrimSpace(spec), Build: build}, nil
}
