package campaign

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFaultSpec(t *testing.T) {
	good := []struct {
		in   string
		want FaultSpec
	}{
		{"none", FaultSpec{Spec: "none"}},
		{"crash:0.3@50", FaultSpec{Spec: "crash:0.3@50", CrashFrac: 0.3, CrashRound: 50}},
		{"jam:0.05:p0.2", FaultSpec{Spec: "jam:0.05:p0.2", JamFrac: 0.05, JamP: 0.2}},
		{"loss:0.1", FaultSpec{Spec: "loss:0.1", LossP: 0.1}},
		{"crash:0.2@100+loss:0.1", FaultSpec{Spec: "crash:0.2@100+loss:0.1", CrashFrac: 0.2, CrashRound: 100, LossP: 0.1}},
		{"crash:0.1@0+jam:0.1:p1+loss:1", FaultSpec{Spec: "crash:0.1@0+jam:0.1:p1+loss:1", CrashFrac: 0.1, JamFrac: 0.1, JamP: 1, LossP: 1}},
	}
	for _, tc := range good {
		got, err := ParseFaultSpec(tc.in)
		if err != nil {
			t.Errorf("ParseFaultSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseFaultSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	bad := []string{
		"", "crash", "crash:0.3", "crash:1.0@50", "crash:0.3@-1", "crash:x@5",
		"crash:0@50", "jam:0:p0.5", "crash:0@50+loss:0.1",
		"jam:0.05", "jam:0.05:0.2", "jam:0.05:p0", "jam:0.05:p1.5",
		"loss:0", "loss:1.2", "loss:x", "fire:0.3", "crash:0.1@5+crash:0.1@9",
		"loss:0.1+loss:0.2", "none+loss:0.1",
	}
	for _, in := range bad {
		if _, err := ParseFaultSpec(in); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted", in)
		}
	}
}

func TestFaultSpecPlanDeterministicAndProtected(t *testing.T) {
	topo, _ := ParseTopology("grid:6x6")
	g := topo.Build(1)
	fs, err := ParseFaultSpec("crash:0.3@50+jam:0.1:p0.2")
	if err != nil {
		t.Fatal(err)
	}
	p1 := fs.Plan(g, 99, 0)
	p2 := fs.Plan(g, 99, 0)
	for v := 0; v < g.N(); v++ {
		if p1.CrashRound(v) != p2.CrashRound(v) {
			t.Fatalf("crash sites not deterministic at node %d", v)
		}
	}
	if !p1.Alive(0) {
		t.Fatal("protected source was crashed")
	}
	if got, want := g.N()-p1.Survivors(), int(0.3*float64(g.N())); got != want {
		t.Fatalf("%d crash sites, want %d", got, want)
	}
	if p3 := fs.Plan(g, 100, 0); func() bool {
		for v := 0; v < g.N(); v++ {
			if p1.CrashRound(v) != p3.CrashRound(v) {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds chose identical crash sites (suspicious)")
	}
	var none FaultSpec
	if none.Plan(g, 1) != nil {
		t.Fatal("unfaulted spec built a plan")
	}
}

// TestFaultedCampaign runs a crash campaign end to end: every
// configuration terminates (no budget exhaustion — the bug this PR fixes),
// reach is 1.0 over survivors, fault aggregates are present, and output is
// byte-identical across worker counts.
func TestFaultedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	m := Matrix{
		Topologies: []string{"grid:6x6", "cliquepath:4x4"},
		Algorithms: []AlgoSpec{
			{Task: Broadcast, Algo: "cd17"},
			{Task: Broadcast, Algo: "bgi"},
		},
		Faults:     []string{"none", "crash:0.3@50"},
		Seeds:      3,
		MasterSeed: 5,
	}
	run := func(workers int) ([]ConfigSummary, string) {
		var buf bytes.Buffer
		s, err := NewSink("jsonl", &buf, m.SinkSchema(false))
		if err != nil {
			t.Fatal(err)
		}
		sums, err := (&Campaign{Matrix: m, Workers: workers}).Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return sums, buf.String()
	}
	sums, out1 := run(1)
	_, out8 := run(8)
	if out1 != out8 {
		t.Errorf("faulted campaign output differs between 1 and 8 workers:\n%s\nvs\n%s", out1, out8)
	}
	if len(sums) != 8 {
		t.Fatalf("%d summaries, want 8 (2 topos x 2 algos x 2 faults)", len(sums))
	}
	for _, s := range sums {
		if s.Failures != 0 {
			t.Errorf("%s %s %s: %d failed trials (faulted runs must terminate): %+v",
				s.Topology, s.Algo, s.Faults, s.Failures, s.FailReasons)
		}
		if s.Faults == "" || s.Survivors == nil || s.Reach == nil {
			t.Errorf("%s %s: fault aggregates missing: %+v", s.Topology, s.Algo, s)
			continue
		}
		if s.Reach.Mean != 1 {
			t.Errorf("%s %s %s: reach %.3f, want 1.0 over survivors", s.Topology, s.Algo, s.Faults, s.Reach.Mean)
		}
		wantSurv := float64(s.N)
		if s.Faults == "crash:0.3@50" {
			wantSurv = float64(s.N - int(0.3*float64(s.N)))
		}
		if s.Survivors.Mean != wantSurv {
			t.Errorf("%s %s %s: survivors %.1f, want %.1f", s.Topology, s.Algo, s.Faults, s.Survivors.Mean, wantSurv)
		}
	}
	if !strings.Contains(out1, `"faults":"crash:0.3@50"`) {
		t.Errorf("jsonl missing fault spec:\n%s", out1)
	}
}

// TestFaultedLeaderCampaign is the satellite-1 regression: the Faults
// axis applies to fault-capable leader algorithms — threaded through the
// registry capability, with the would-be winner protected — and faulted
// leader trials terminate with verified elections and full survivor
// reach, deterministically at any worker count.
func TestFaultedLeaderCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	m := Matrix{
		Topologies: []string{"grid:6x6"},
		Algorithms: []AlgoSpec{
			{Task: Leader, Algo: "cd17"},
			{Task: Leader, Algo: "max-broadcast"},
		},
		Faults:     []string{"none", "crash:0.3@20"},
		Seeds:      3,
		MasterSeed: 7,
	}
	run := func(workers int) ([]ConfigSummary, string) {
		var buf bytes.Buffer
		s, err := NewSink("jsonl", &buf, m.SinkSchema(false))
		if err != nil {
			t.Fatal(err)
		}
		sums, err := (&Campaign{Matrix: m, Workers: workers}).Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return sums, buf.String()
	}
	sums, out1 := run(1)
	_, out8 := run(8)
	if out1 != out8 {
		t.Errorf("faulted leader campaign output differs between 1 and 8 workers:\n%s\nvs\n%s", out1, out8)
	}
	if len(sums) != 4 {
		t.Fatalf("%d summaries, want 4 (2 algos x 2 faults)", len(sums))
	}
	for _, s := range sums {
		if s.Failures != 0 {
			t.Errorf("%s %s %s: %d failed trials (faulted leader runs must terminate): %+v",
				s.Topology, s.Algo, s.Faults, s.Failures, s.FailReasons)
		}
		if s.Reach == nil || s.Reach.Mean != 1 {
			t.Errorf("%s %s %s: reach %+v, want 1.0 over the winner-reachable survivors", s.Topology, s.Algo, s.Faults, s.Reach)
		}
	}
}

// TestFaultAxisCapabilityValidation pins the registry-driven fault-axis
// rules: an effective fault spec crossed with a fault-incapable algorithm
// is a loud configuration error (never a silently unfaulted run), while
// fault-capable leader algorithms are accepted — the axis is gated by the
// descriptor capability, not by the task.
func TestFaultAxisCapabilityValidation(t *testing.T) {
	m := Matrix{
		Topologies: []string{"path:8"},
		Algorithms: []AlgoSpec{{Task: Leader, Algo: "binary-search"}},
		Faults:     []string{"crash:0.3@50"},
		Seeds:      1,
	}
	if _, err := m.Expand(); err == nil {
		t.Fatal("fault axis accepted a fault-incapable algorithm")
	} else if !strings.Contains(err.Error(), "does not support the fault axis") {
		t.Fatalf("wrong error: %v", err)
	}
	// The explicit "none" baseline alone is fine on any algorithm: it
	// fixes the schema without injecting faults.
	m.Faults = []string{"none"}
	if _, err := m.Expand(); err != nil {
		t.Fatalf("none-only axis rejected: %v", err)
	}
	// Fault-capable leader algorithms take the axis.
	m.Faults = []string{"none", "crash:0.3@50"}
	for _, algo := range []string{"cd17", "max-broadcast"} {
		m.Algorithms = []AlgoSpec{{Task: Leader, Algo: algo}}
		if _, err := m.Expand(); err != nil {
			t.Fatalf("fault-capable leader %q rejected: %v", algo, err)
		}
	}
	m.Faults = []string{"not-a-spec"}
	m.Algorithms = []AlgoSpec{{Task: Broadcast, Algo: "bgi"}}
	if _, err := m.Expand(); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

// TestSinkSchemaStableUnderMixedSummaries is the satellite-3 regression:
// the column set is fixed by the campaign-level Schema, so a stream mixing
// timed/untimed and faulted/unfaulted summaries can never yield rows wider
// than the header (the old first-summary inference did exactly that).
func TestSinkSchemaStableUnderMixedSummaries(t *testing.T) {
	d := Dist{Mean: 1, Std: 0, P50: 1, P90: 1, P99: 1, Max: 1}
	untimed := ConfigSummary{Topology: "path:4", N: 4, D: 3, Task: "broadcast", Algo: "bgi", Trials: 1, Rounds: d, Tx: d}
	timed := untimed
	timed.WallMS = &d
	faulted := untimed
	faulted.Faults = "crash:0.3@50"
	faulted.Survivors, faulted.Reach = &d, &d

	for _, sch := range []Schema{{}, {Timed: true}, {Faults: true}, {Timed: true, Faults: true}} {
		wantCols := len(schemaColumns(sch))
		var csvBuf, txtBuf bytes.Buffer
		cs, _ := NewSink("csv", &csvBuf, sch)
		ts, _ := NewSink("text", &txtBuf, sch)
		for _, s := range []ConfigSummary{untimed, timed, faulted} {
			if err := cs.Emit(s); err != nil {
				t.Fatal(err)
			}
			if err := ts.Emit(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := cs.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ts.Close(); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(csvBuf.String(), "\n"), "\n")
		if len(lines) != 4 {
			t.Fatalf("schema %+v: %d csv lines, want header + 3 rows", sch, len(lines))
		}
		for i, l := range lines {
			if got := len(strings.Split(l, ",")); got != wantCols {
				t.Errorf("schema %+v: csv line %d has %d columns, header has %d:\n%s", sch, i, got, wantCols, l)
			}
		}
		txtLines := strings.Split(strings.TrimRight(txtBuf.String(), "\n"), "\n")
		if len(txtLines) != 5 { // header, rule, 3 rows
			t.Fatalf("schema %+v: %d text lines, want 5", sch, len(txtLines))
		}
	}
}
