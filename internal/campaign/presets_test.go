package campaign

import "testing"

// Every preset must expand cleanly: topology specs parse and algorithms
// validate. Graphs are not built here (the large-n presets would make the
// unit suite minutes-long); spec parsing plus algorithm validation is the
// part Expand would reject.
func TestPresetsAreWellFormed(t *testing.T) {
	names := PresetNames()
	if len(names) == 0 {
		t.Fatal("no presets registered")
	}
	for _, name := range names {
		m, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if len(m.Topologies) == 0 || len(m.Algorithms) == 0 || m.Seeds <= 0 {
			t.Fatalf("preset %q is incomplete: %+v", name, m)
		}
		for _, spec := range m.Topologies {
			if _, err := ParseTopology(spec); err != nil {
				t.Fatalf("preset %q topology %q: %v", name, spec, err)
			}
		}
		for _, a := range m.Algorithms {
			if _, err := lookup(a); err != nil {
				t.Fatalf("preset %q: %v", name, err)
			}
		}
		for _, f := range m.Faults {
			if _, err := ParseFaultSpec(f); err != nil {
				t.Fatalf("preset %q: %v", name, err)
			}
		}
	}
}

// Preset must return an isolated copy.
func TestPresetReturnsCopy(t *testing.T) {
	m1, err := Preset("smoke")
	if err != nil {
		t.Fatal(err)
	}
	m1.Topologies[0] = "mutated"
	m1.Algorithms[0].Algo = "mutated"
	m2, err := Preset("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Topologies[0] == "mutated" || m2.Algorithms[0].Algo == "mutated" {
		t.Fatal("Preset returned shared slices")
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("definitely-not-a-preset"); err == nil {
		t.Fatal("want error for unknown preset")
	}
}

// The smoke preset must actually run end to end.
func TestPresetSmokeRuns(t *testing.T) {
	m, err := Preset("smoke")
	if err != nil {
		t.Fatal(err)
	}
	m.Seeds = 1
	c := Campaign{Matrix: m, Workers: 2}
	sums, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(m.Topologies)*len(m.Algorithms) {
		t.Fatalf("got %d summaries, want %d", len(sums), len(m.Topologies)*len(m.Algorithms))
	}
	for _, s := range sums {
		if s.Failures != 0 {
			t.Fatalf("preset smoke config %s %s/%s failed trials: %+v", s.Topology, s.Task, s.Algo, s)
		}
	}
}
