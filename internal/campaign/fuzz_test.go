package campaign

import "testing"

// FuzzParseFaultSpec asserts the fault-spec parser never panics and that
// accepted specs round-trip: reparsing the canonical Spec string yields
// the identical FaultSpec (this is what makes manifests reproducible —
// the spec string in a manifest must mean exactly what the original
// command line meant).
func FuzzParseFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"none",
		"crash:0.2@64",
		"jam:0.1:p0.5",
		"loss:0.25",
		"crash:0.3@0+jam:0.2:p1+loss:0.01",
		"  loss:0.5\t",
		"crash:@",
		"jam:0.5:0.5",
		"loss:nan",
		"crash:0x1p-2@7",
		"bogus",
		"",
		"+",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fs, err := ParseFaultSpec(s)
		if err != nil {
			return
		}
		again, err := ParseFaultSpec(fs.Spec)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not reparse: %v", fs.Spec, s, err)
		}
		if again != fs {
			t.Fatalf("round trip drifted: %q parsed as %+v, its canonical spec reparsed as %+v", s, fs, again)
		}
	})
}

// FuzzTopologySpec asserts the topology parser never panics and that
// accepted specs round-trip to the same canonical Spec with a usable
// builder. Build is deliberately not called: the parser accepts any
// dimensions that scan, and materializing a fuzzer-chosen graph would
// make memory, not parsing, the failure mode.
func FuzzTopologySpec(f *testing.F) {
	for _, seed := range []string{
		"path:64",
		"cycle:5",
		"star:9",
		"complete:4",
		"randtree:33",
		"grid:4x5",
		"cliquepath:3x4",
		"caterpillar:10x2",
		"tree:2x3",
		"dumbbell:5x3",
		"regular:16x4",
		"hypercube:6",
		"geometric:50:0.3",
		"gnp:40:0.1",
		" path:8 ",
		"grid:4x",
		"path:",
		"path:-1",
		"nosuch:3",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		topo, err := ParseTopology(s)
		if err != nil {
			return
		}
		if topo.Build == nil {
			t.Fatalf("accepted spec %q has no builder", s)
		}
		again, err := ParseTopology(topo.Spec)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not reparse: %v", topo.Spec, s, err)
		}
		if again.Spec != topo.Spec {
			t.Fatalf("canonical spec drifted: %q -> %q -> %q", s, topo.Spec, again.Spec)
		}
	})
}
