// Package campaign is the parallel simulation-campaign engine: the
// execution layer between the algorithm library (internal/compete,
// internal/decay, internal/baseline) and the CLIs.
//
// A campaign is described declaratively by a Matrix — a topology sweep
// crossed with (task, algorithm) pairs and a seed range — which Expand
// turns into a deterministic trial list. A worker pool (ForEach) fans the
// trials out across GOMAXPROCS goroutines; every trial derives an
// independent RNG stream from the master seed via rng.Hash64, so the same
// master seed produces bit-identical aggregates regardless of worker count
// or completion order. Per-configuration aggregation streams results to
// pluggable sinks (aligned text, CSV, JSON lines) as soon as each
// configuration's trials complete, in deterministic configuration order.
//
// cmd/campaign drives matrices from flags or a JSON config file;
// internal/exp routes its repetition loops through ForEach so
// cmd/experiments parallelizes for free; cmd/radiosim uses the same
// executor for its -trials fan-out mode.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"radionet/internal/graph"
	"radionet/internal/obs"
	"radionet/internal/precompute"
	"radionet/internal/protocol"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// Task names the protocol problem a trial solves. It aliases
// protocol.Task: any task with registered descriptors — including tasks
// introduced by new algorithm packages — is runnable in a matrix.
type Task = protocol.Task

// The two historical tasks, re-exported for convenience; see
// protocol.Tasks() for the full live set.
const (
	Broadcast = protocol.Broadcast
	Leader    = protocol.Leader
)

// faultCapable renders the task's fault-capable algorithm names for
// error messages ("cd17 hw16 ..." or "none").
func faultCapable(task Task) string {
	var names []string
	for _, d := range protocol.ByTask(task) {
		if d.Caps.Faults {
			names = append(names, d.Name)
		}
	}
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, " ")
}

// AlgoSpec selects one algorithm for one task.
type AlgoSpec struct {
	Task Task   `json:"task"`
	Algo string `json:"algo"`
}

func (a AlgoSpec) String() string { return string(a.Task) + ":" + a.Algo }

// Matrix is the declarative description of a campaign: every topology is
// crossed with every (task, algorithm) pair, and each resulting
// configuration is repeated for Seeds independent trials.
type Matrix struct {
	// Topologies are topology specs like "grid:16x16" or "gnp:400:0.01"
	// (see ParseTopology for the grammar).
	Topologies []string `json:"topologies"`
	// Algorithms are the (task, algorithm) pairs to run on every topology.
	Algorithms []AlgoSpec `json:"algorithms"`
	// Faults are fault-scenario specs (see ParseFaultSpec) crossed with
	// every (topology, algorithm) cell: each spec becomes its own
	// configuration, realized per trial with deterministic fault-site
	// selection. Empty means unfaulted (and keeps the expansion, trial
	// seeds and output byte-identical to a pre-fault-axis campaign). The
	// axis supports broadcast tasks only.
	Faults []string `json:"faults,omitempty"`
	// Transports are transport-backend names (see radio.Transports)
	// crossed with every cell: each name becomes its own configuration,
	// run over that backend's round executor. Backends are
	// observationally identical, so the axis changes no sink byte — it
	// reruns the same trials on a different executor (the CI
	// backend-equivalence smoke pins exactly that). Empty means the
	// in-process simulator (and keeps the expansion, trial seeds and
	// output byte-identical to a pre-transport-axis campaign).
	// Non-simulator names require the algorithm's Transport capability.
	Transports []string `json:"transports,omitempty"`
	// Seeds is the number of independent trials per configuration.
	Seeds int `json:"seeds"`
	// MasterSeed determines every random choice of the campaign: topology
	// generation and each trial's RNG stream.
	MasterSeed uint64 `json:"master_seed"`
	// MaxRounds caps each trial (0 selects per-algorithm whp budgets).
	MaxRounds int64 `json:"max_rounds,omitempty"`
}

// LoadMatrix reads a Matrix from JSON, rejecting unknown fields.
func LoadMatrix(r io.Reader) (Matrix, error) {
	var m Matrix
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Matrix{}, fmt.Errorf("campaign: config: %w", err)
	}
	return m, nil
}

// Config is one expanded (topology, task, algorithm, fault) cell of the
// matrix.
type Config struct {
	Topology string // canonical topology spec
	// Key is the config's topology-product content key (spec + topo
	// seed): configs with equal keys share one graph, diameter and
	// dense-adjacency build through the precompute store. G and D are
	// nil/0 on a plan that has not been materialized yet (Plan.
	// Materialize; Matrix.Expand materializes before returning).
	Key precompute.Key
	G   *graph.Graph
	D   int // estimated hop diameter, as the model assumes known

	Spec AlgoSpec
	// Fault is the cell's fault scenario; the zero value (Spec "") marks a
	// campaign without a fault axis.
	Fault FaultSpec
	// Transport is the cell's backend name; "" and SimTransport both mean
	// the in-process simulator (no transport attachment — the engine's
	// native loops are the simulator).
	Transport string
}

// SimTransport is the default in-process backend's name. A config whose
// Transport is "" or SimTransport runs without a transport attachment.
const SimTransport = "sim"

// transportCapable renders the task's transport-capable algorithm names
// for error messages, mirroring faultCapable.
func transportCapable(task Task) string {
	var names []string
	for _, d := range protocol.ByTask(task) {
		if d.Caps.Transport {
			names = append(names, d.Name)
		}
	}
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, " ")
}

// Trial is one scheduled protocol run.
type Trial struct {
	// Index is the position in the deterministic trial order.
	Index int
	// Cfg indexes Plan.Configs.
	Cfg int
	// Rep is the repetition number within the configuration.
	Rep int
	// Seed is the trial's independent RNG stream, a pure function of
	// (master seed, configuration, repetition).
	Seed uint64
}

// Plan is an expanded Matrix: the configuration list and the flat,
// deterministically ordered trial list.
type Plan struct {
	Configs []Config
	Trials  []Trial
	Seeds   int
	Max     int64

	// topos are the unique topology products the plan references, in
	// first-reference order, with their pending build closures. Emptied
	// by Materialize.
	topos []planTopo
}

// planTopo is one unique topology product: expansion dedups by content
// key, so an 8-algorithm matrix holds one planTopo per topology entry,
// not 8.
type planTopo struct {
	key   precompute.Key
	build func() *graph.Graph
	cfgs  []int // indexes into Plan.Configs sharing this product
}

// TopoBuild reports how one unique topology product was materialized:
// its key, where it came from (built / in-memory / disk cache), the wall
// time spent, and the first configuration referencing it (the one its
// setup time is attributed to).
type TopoBuild struct {
	Key     precompute.Key
	Outcome precompute.Outcome
	Wall    time.Duration
	First   int
}

// Materialize resolves every unique topology product through the store —
// nil store means always build — across a worker pool (workers as in
// ResolveWorkers), filling Config.G and Config.D for every configuration.
// Products are deterministic functions of their keys, so materialization
// order and parallelism never change a sink byte. Idempotent: a second
// call returns nil.
func (p *Plan) Materialize(store *precompute.Store, workers int) []TopoBuild {
	if len(p.topos) == 0 {
		return nil
	}
	builds := make([]TopoBuild, len(p.topos))
	ForEachWorker(workers, len(p.topos), func(_, i int) {
		t := &p.topos[i]
		start := time.Now() //lint:wallclock setup timing is telemetry (manifest/bench only), never part of trial output
		prod, out := store.GetOrBuild(t.key, t.build)
		wall := time.Since(start) //lint:wallclock setup timing is telemetry (manifest/bench only), never part of trial output
		for _, ci := range t.cfgs {
			p.Configs[ci].G = prod.G
			p.Configs[ci].D = prod.D
		}
		builds[i] = TopoBuild{Key: t.key, Outcome: out, Wall: wall, First: t.cfgs[0]}
	})
	p.topos = nil
	return builds
}

// Expand validates the matrix, builds the deterministic trial list and
// materializes every topology product (seeded from the master seed), so
// the returned plan is immutable and safe for concurrent trial execution.
// Campaign.Run uses the two-step form (expand + Materialize) instead, to
// route product construction through the precompute store.
func (m Matrix) Expand() (*Plan, error) {
	p, err := m.expand()
	if err != nil {
		return nil, err
	}
	p.Materialize(nil, 0)
	return p, nil
}

// expand is Expand without materialization: configs carry content keys
// (Config.Key) but no graphs until Plan.Materialize runs. Keys dedup
// identical topology products at expansion time — every (algorithm,
// fault, transport) cell of one topology entry references a single
// pending build, which is what makes a wide matrix's setup O(topologies)
// instead of O(configs).
func (m Matrix) expand() (*Plan, error) {
	if len(m.Topologies) == 0 {
		return nil, fmt.Errorf("campaign: matrix has no topologies")
	}
	if len(m.Algorithms) == 0 {
		return nil, fmt.Errorf("campaign: matrix has no algorithms")
	}
	if m.Seeds <= 0 {
		return nil, fmt.Errorf("campaign: matrix needs seeds > 0")
	}
	descs := make([]*protocol.Descriptor, len(m.Algorithms))
	for i, a := range m.Algorithms {
		d, err := lookup(a)
		if err != nil {
			return nil, err
		}
		descs[i] = d
	}
	// The fault axis: one FaultSpec per configuration. An empty axis
	// expands to the single zero spec, leaving configuration indices (and
	// hence trial seeds) identical to a matrix without the axis. Crossing
	// an effective fault spec with an algorithm whose descriptor lacks the
	// fault capability is a loud configuration error — never a silently
	// unfaulted run.
	faults := []FaultSpec{{}}
	if len(m.Faults) > 0 {
		faults = faults[:0]
		for _, s := range m.Faults {
			fs, err := ParseFaultSpec(s)
			if err != nil {
				return nil, err
			}
			faults = append(faults, fs)
		}
		for i, a := range m.Algorithms {
			if descs[i].Caps.Faults {
				continue
			}
			for _, fs := range faults {
				if !fs.None() {
					return nil, fmt.Errorf("campaign: algorithm %s does not support the fault axis (spec %q); fault-capable %s algorithms: %s",
						a, fs.Spec, a.Task, faultCapable(protocol.Task(a.Task)))
				}
			}
		}
	}
	// The transport axis mirrors the fault axis: one backend name per
	// configuration, with the empty axis expanding to the single empty
	// name so configuration indices — and with them trial seeds — stay
	// identical to a pre-transport-axis matrix. Crossing a non-simulator
	// backend with an algorithm whose descriptor lacks the transport
	// capability is a loud configuration error.
	transports := []string{""}
	if len(m.Transports) > 0 {
		transports = transports[:0]
		for _, name := range m.Transports {
			if name != "" && !radio.KnownTransport(name) {
				return nil, fmt.Errorf("campaign: unknown transport %q (known: %s)", name, radio.KnownTransports())
			}
			transports = append(transports, name)
		}
		for i, a := range m.Algorithms {
			if descs[i].Caps.Transport {
				continue
			}
			for _, name := range transports {
				if name != "" && name != SimTransport {
					return nil, fmt.Errorf("campaign: algorithm %s does not support the transport axis (backend %q); transport-capable %s algorithms: %s",
						a, name, a.Task, transportCapable(protocol.Task(a.Task)))
				}
			}
		}
	}
	p := &Plan{Seeds: m.Seeds, Max: m.MaxRounds}
	// Two disjoint stream families derived from the master seed: one per
	// topology (graph generation), one per trial. Fork's SplitMix64-based
	// derivation keeps streams independent even for adjacent ids.
	master := rng.New(m.MasterSeed)
	topoStreams := master.Fork(0x70b0)
	trialStreams := master.Fork(0x7291a1)
	topoIdx := make(map[precompute.Key]int)
	for ti, spec := range m.Topologies {
		topo, err := ParseTopology(spec)
		if err != nil {
			return nil, err
		}
		// The per-entry seed derivation is unchanged from the eager-build
		// era: duplicate topology entries keep distinct seeds (hence
		// distinct keys and graphs), preserving historical output exactly.
		seed := topoStreams.Fork(uint64(ti)).Uint64()
		key := precompute.Key{Spec: topo.Spec, Seed: seed}
		t, ok := topoIdx[key]
		if !ok {
			t = len(p.topos)
			topoIdx[key] = t
			build := topo.Build
			p.topos = append(p.topos, planTopo{key: key, build: func() *graph.Graph { return build(seed) }})
		}
		for _, a := range m.Algorithms {
			for _, fs := range faults {
				for _, tn := range transports {
					p.topos[t].cfgs = append(p.topos[t].cfgs, len(p.Configs))
					p.Configs = append(p.Configs, Config{Topology: topo.Spec, Key: key, Spec: a, Fault: fs, Transport: tn})
				}
			}
		}
	}
	for ci := range p.Configs {
		for rep := 0; rep < m.Seeds; rep++ {
			p.Trials = append(p.Trials, Trial{
				Index: len(p.Trials),
				Cfg:   ci,
				Rep:   rep,
				Seed:  trialStreams.Fork(uint64(ci)<<32 | uint64(rep)).Uint64(),
			})
		}
	}
	return p, nil
}

// Campaign binds a Matrix to execution parameters.
type Campaign struct {
	Matrix
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// EngineShards controls intra-round sharding inside each trial's
	// engine (see radio.Engine.SetShards — output is bit-exact at any
	// value, so this only moves wall time). 0 auto-splits the cores left
	// over by trial-level parallelism: GOMAXPROCS/workers shards per
	// trial, and only on configurations large enough to profit
	// (n >= shardMinNodes). 1 disables sharding; k > 1 forces exactly k
	// shards on every configuration.
	EngineShards int
	// Timings includes wall-time aggregates in the output. They are
	// non-deterministic, so sinks omit them unless asked.
	Timings bool
	// Cache, when non-nil, routes topology-product construction through
	// the precompute store (-cache-dir wires a disk-backed one): products
	// already in the store — from an earlier run of the same process or,
	// disk-backed, any earlier process — skip their graph build entirely.
	// Cached products are bit-identical to built ones, so the cache moves
	// setup wall time only, never a sink byte.
	Cache *precompute.Store

	// The telemetry surface. All three fields are strictly output-neutral:
	// they observe the run (engine rounds, trial outcomes, wall times)
	// without changing a byte of what reaches the sinks, at any Workers.
	//
	// Obs, when non-nil, collects engine counters (obs.Engine*), trial
	// histograms (obs.Trial*) and per-worker utilization counters
	// ("worker.NN.busy_us"/"worker.NN.trials") into the registry.
	Obs *obs.Registry
	// Progress, when non-nil, receives a live \r-rewritten status line
	// (done/total, ETA, current config). Point it at stderr, never at a
	// sink stream.
	Progress io.Writer
	// Stats, when non-nil, is filled with the run's execution record
	// (whole-run and per-config wall times) for manifests and benchmarks.
	Stats *RunStats
}

// shardMinNodes gates auto-sharding: below this node count the per-wave
// goroutine spawns and the shard arenas cost more than the split saves,
// and trial-level parallelism already covers small configurations.
const shardMinNodes = 1 << 15

// resolveShards returns the effective intra-round shard count for one
// n-node configuration under the given worker count (see EngineShards).
func (c *Campaign) resolveShards(n, workers int) int {
	if c.EngineShards >= 1 {
		return c.EngineShards
	}
	if n < shardMinNodes || workers <= 0 {
		return 1
	}
	k := runtime.GOMAXPROCS(0) / workers
	if k < 1 {
		k = 1
	}
	return k
}

// Run expands the matrix, executes every trial across the worker pool, and
// streams one ConfigSummary per configuration — in deterministic
// configuration order, as soon as each configuration completes — to every
// sink. It returns the summaries; sinks are closed before returning.
func (c *Campaign) Run(sinks ...Sink) ([]ConfigSummary, error) {
	plan, err := c.expand()
	if err != nil {
		for _, sk := range sinks {
			sk.Close() // honor the close-before-return contract
		}
		return nil, err
	}
	// Setup phase: materialize the deduplicated topology products through
	// the precompute store (cache-backed when Cache is set), then build
	// the deduplicated scratches — both across the worker pool. Setup is
	// timed separately from the run wall (RunStats.Setup vs .Wall,
	// bench schema v4's setup_ms split); the run wall has excluded setup
	// since the eager-build era, so the split adds data without moving
	// any existing measurement's meaning.
	setupStart := time.Now() //lint:wallclock setup wall time is telemetry, never part of trial output
	cfgSetup := make([]time.Duration, len(plan.Configs))
	builds := plan.Materialize(c.Cache, c.Workers)
	cacheStatus := "off"
	if c.Cache.Dir() != "" {
		cacheStatus = "warm"
	}
	var cacheHits, cacheMisses, cacheBytes int64
	for _, tb := range builds {
		cfgSetup[tb.First] += tb.Wall
		cacheBytes += tb.Outcome.Bytes
		switch tb.Outcome.Source {
		case precompute.SourceBuilt:
			cacheMisses++
			if cacheStatus == "warm" {
				cacheStatus = "cold"
			}
			if c.Obs != nil {
				c.Obs.Timer(obs.PrecomputeBuild(tb.Key.Spec, tb.Key.Seed)).Observe(tb.Wall)
			}
		default: // disk or in-memory: the build was skipped
			cacheHits++
		}
	}
	if c.Obs != nil && c.Cache != nil {
		c.Obs.Counter(obs.PrecomputeCacheHits).Add(cacheHits)
		c.Obs.Counter(obs.PrecomputeCacheMisses).Add(cacheMisses)
		c.Obs.Counter(obs.PrecomputeCacheBytes).Add(cacheBytes)
	}
	scratches := buildScratches(plan, c.Workers, cfgSetup)
	setup := time.Since(setupStart) //lint:wallclock setup wall time is telemetry, never part of trial output

	results := make([]TrialResult, len(plan.Trials))
	// Telemetry setup. All collectors are nil-safe no-ops when Obs is nil,
	// and none of them touches the sink stream.
	start := time.Now() //lint:wallclock campaign wall time is telemetry, never part of trial output
	workers := ResolveWorkers(c.Workers, len(plan.Trials))
	// Intra-round sharding, resolved per configuration (auto mode skips
	// small graphs). Output is bit-exact at any count — the knob only
	// moves wall time, so it shares the telemetry section's neutrality
	// contract.
	cfgShards := make([]int, len(plan.Configs))
	shardsUsed := 1
	for ci := range plan.Configs {
		cfgShards[ci] = c.resolveShards(plan.Configs[ci].G.N(), workers)
		if cfgShards[ci] > shardsUsed {
			shardsUsed = cfgShards[ci]
		}
	}
	var shardHook radio.ShardHook
	if shardsUsed > 1 {
		shardHook = obs.NewShardCollector(c.Obs, shardsUsed).Hook()
	}
	engineHook := obs.NewEngineCollector(c.Obs).Hook()
	trialObs := obs.NewTrialCollector(c.Obs)
	roundsBefore := int64(0)
	var workerBusy, workerTrials []*obs.Counter
	if c.Obs != nil {
		roundsBefore = c.Obs.Counter(obs.EngineRounds).Value()
		workerBusy = make([]*obs.Counter, workers)
		workerTrials = make([]*obs.Counter, workers)
		for w := range workerBusy {
			workerBusy[w] = c.Obs.Counter(fmt.Sprintf("worker.%02d.busy_us", w))
			workerTrials[w] = c.Obs.Counter(fmt.Sprintf("worker.%02d.trials", w))
		}
	}
	prog := newProgress(c.Progress, len(plan.Trials))
	cfgWall := make([]time.Duration, len(plan.Configs))

	var (
		mu        sync.Mutex
		remaining = make([]int, len(plan.Configs))
		nextCfg   int
		summaries = make([]ConfigSummary, 0, len(plan.Configs))
		sinkErr   error
	)
	for i := range remaining {
		remaining[i] = plan.Seeds
	}
	// Emit (under mu) every configuration whose trials have all completed,
	// strictly in configuration order so output is deterministic.
	flush := func() {
		for nextCfg < len(plan.Configs) && remaining[nextCfg] == 0 {
			s := summarize(plan, nextCfg, results, c.Timings)
			summaries = append(summaries, s)
			for _, sk := range sinks {
				if err := sk.Emit(s); err != nil && sinkErr == nil {
					sinkErr = err
				}
			}
			nextCfg++
		}
	}
	ForEachWorker(c.Workers, len(plan.Trials), func(w, i int) {
		tr := plan.Trials[i]
		res := runTrialScratchHook(&plan.Configs[tr.Cfg], tr.Seed, plan.Max, scratches[tr.Cfg],
			trialOpts{hook: engineHook, shards: cfgShards[tr.Cfg], shardHook: shardHook})
		results[i] = res
		trialObs.Record(res.Rounds, res.Wall, res.Done, res.Budget)
		if workerBusy != nil {
			workerBusy[w].Add(res.Wall.Microseconds())
			workerTrials[w].Inc()
		}
		mu.Lock()
		defer mu.Unlock()
		remaining[tr.Cfg]--
		cfgWall[tr.Cfg] += res.Wall
		prog.step(&plan.Configs[tr.Cfg])
		flush()
	})
	prog.finish()
	wall := time.Since(start) //lint:wallclock throughput gauge only; sink stream is untouched
	if c.Obs != nil {
		if secs := wall.Seconds(); secs > 0 {
			delta := c.Obs.Counter(obs.EngineRounds).Value() - roundsBefore
			c.Obs.Gauge(obs.EngineRoundsPerSec).Set(int64(float64(delta) / secs))
		}
	}
	if c.Stats != nil {
		*c.Stats = RunStats{Wall: wall, Setup: setup, Cache: cacheStatus, Workers: workers, Shards: shardsUsed, Configs: make([]ConfigStats, len(plan.Configs))}
		for ci := range plan.Configs {
			cfg := &plan.Configs[ci]
			cs := &c.Stats.Configs[ci]
			cs.Name = cfg.Name()
			cs.N, cs.D = cfg.G.N(), cfg.D
			cs.Trials = plan.Seeds
			cs.Wall = cfgWall[ci]
			cs.Setup = cfgSetup[ci]
			if ci < len(summaries) {
				cs.Failures = summaries[ci].Failures
				cs.RoundsMean = summaries[ci].Rounds.Mean
			}
		}
	}
	for _, sk := range sinks {
		if err := sk.Close(); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}
	return summaries, sinkErr
}
