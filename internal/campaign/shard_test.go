package campaign

import (
	"testing"

	"radionet/internal/obs"
)

// TestEngineShardsOutputNeutral is the campaign-level acceptance check for
// intra-round sharding: forcing any EngineShards value — off, explicit
// multi-shard, or the auto split — must leave every sink byte-identical.
// The matrix uses a graph large enough (2000 nodes, 32 words) that an
// explicit shard count genuinely splits the delivery passes.
func TestEngineShardsOutputNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	m := Matrix{
		Topologies: []string{"randtree:2000"},
		Algorithms: []AlgoSpec{
			{Task: Broadcast, Algo: "bgi"},
			{Task: Broadcast, Algo: "truncated-decay"},
		},
		Seeds:      2,
		MasterSeed: 42,
	}
	ref := runToBuffers(t, Campaign{Matrix: m, Workers: 1, EngineShards: 1})
	for _, shards := range []int{0, 2, 4} {
		var st RunStats
		c := Campaign{Matrix: m, Workers: 2, EngineShards: shards, Obs: obs.NewRegistry(), Stats: &st}
		got := runToBuffers(t, c)
		for _, f := range []string{"text", "csv", "jsonl"} {
			if ref[f] != got[f] {
				t.Errorf("EngineShards=%d: %s sink differs from unsharded run:\n-- shards=1 --\n%s\n-- shards=%d --\n%s",
					shards, f, ref[f], shards, got[f])
			}
		}
		if shards >= 1 && st.Shards != shards {
			t.Errorf("EngineShards=%d: RunStats.Shards = %d", shards, st.Shards)
		}
		if shards == 0 && st.Shards < 1 {
			t.Errorf("auto split: RunStats.Shards = %d, want >= 1", st.Shards)
		}
	}
}

// TestResolveShards pins the auto-split policy: explicit values win, small
// graphs never shard, and the auto split divides GOMAXPROCS by the worker
// count.
func TestResolveShards(t *testing.T) {
	c := &Campaign{EngineShards: 3}
	if got := c.resolveShards(1<<20, 1); got != 3 {
		t.Fatalf("explicit EngineShards: got %d, want 3", got)
	}
	c = &Campaign{EngineShards: 1}
	if got := c.resolveShards(1<<20, 1); got != 1 {
		t.Fatalf("EngineShards=1 must disable: got %d", got)
	}
	c = &Campaign{}
	if got := c.resolveShards(100, 1); got != 1 {
		t.Fatalf("small graph must not auto-shard: got %d", got)
	}
	if got := c.resolveShards(shardMinNodes, 1); got < 1 {
		t.Fatalf("auto split returned %d", got)
	}
}
