// Run statistics and manifests: the non-deterministic execution record of
// a campaign — wall times, worker counts — collected strictly outside the
// sink stream, so enabling telemetry never changes a byte of deterministic
// output. RunStats is the in-process form; Campaign.Manifest renders it
// into the machine-readable obs.Manifest schema shared by every tool.

package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"time"

	"radionet/internal/obs"
	"radionet/internal/protocol"
	"radionet/internal/radio"
)

// Name identifies the configuration in progress lines and manifests:
// "topology/task:algo", plus the fault spec when the cell sits on a fault
// axis.
func (cfg *Config) Name() string {
	s := cfg.Topology + "/" + cfg.Spec.String()
	if cfg.Fault.Spec != "" {
		s += "/" + cfg.Fault.Spec
	}
	return s
}

// RunStats is the execution record of one Campaign.Run: everything a
// manifest needs that the deterministic summaries cannot carry. Point
// Campaign.Stats at a zero RunStats and Run fills it.
type RunStats struct {
	// Wall is the whole-run wall time (expansion through last trial),
	// excluding Setup — the semantics Wall has always had: the setup
	// phase ran before the run clock started even when it was serial and
	// anonymous.
	Wall time.Duration
	// Setup is the setup-phase wall time: topology materialization (graph
	// build or precompute-cache load) plus scratch construction, measured
	// from expansion to the first trial dispatch.
	Setup time.Duration
	// Cache is the precompute disk-cache status: "off" (no cache
	// attached), "cold" (at least one product built from source), "warm"
	// (every product served without building).
	Cache string
	// Workers is the resolved worker-pool size the run executed with.
	Workers int
	// Shards is the largest intra-round shard count any configuration ran
	// with (1 when sharding was off or no configuration qualified for the
	// auto split — see Campaign.EngineShards).
	Shards int
	// Configs holds per-configuration stats, in configuration order.
	Configs []ConfigStats
}

// ConfigStats is one configuration's slice of RunStats.
type ConfigStats struct {
	// Name is the configuration identifier (Config.Name).
	Name string
	N, D int
	// Trials and Failures mirror the configuration's ConfigSummary.
	Trials, Failures int
	// RoundsMean is the mean executed round count across the trials.
	RoundsMean float64
	// Wall is the summed execution time of the configuration's trials. It
	// overlaps across workers, so config walls may sum past RunStats.Wall.
	Wall time.Duration
	// Setup is the setup time attributed to this configuration: the
	// build/load wall of every deduplicated product (topology, scratch)
	// charged to its first referencing configuration — so sibling configs
	// sharing the products report 0, and summing Setup over configs never
	// double-counts shared work.
	Setup time.Duration
}

// Hash fingerprints the matrix: the hex sha256 of its canonical JSON
// encoding. Identical matrices hash identically across machines and
// commits, which is what makes manifests from repeated runs linkable.
func (m Matrix) Hash() string {
	b, err := json.Marshal(m)
	if err != nil {
		return "" // unreachable: every Matrix field marshals
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// RegisteredProtocols lists the full protocol registry as "task:name" —
// the manifest convention for recording what the binary could have run.
func RegisteredProtocols() []string {
	var out []string
	for _, t := range protocol.Tasks() {
		for _, d := range protocol.ByTask(t) {
			out = append(out, string(d.Task)+":"+d.Name)
		}
	}
	return out
}

// RegisteredTransports lists the transport-backend registry by name, the
// manifest's record of which round executors the binary carried.
func RegisteredTransports() []string {
	var out []string
	for _, t := range radio.Transports() {
		out = append(out, t.Name)
	}
	return out
}

// Manifest renders the run's machine-readable record from the campaign's
// configuration, the RunStats a Run filled (nil for a manifest without
// execution stats) and the campaign's metric registry.
func (c *Campaign) Manifest(tool string, st *RunStats) *obs.Manifest {
	m := obs.NewManifest(tool)
	m.ConfigHash = c.Matrix.Hash()
	m.Protocols = RegisteredProtocols()
	m.Transports = RegisteredTransports()
	if st != nil {
		m.Workers = st.Workers
		m.WallMS = durMS(st.Wall)
		m.SetupMS = durMS(st.Setup)
		m.Cache = st.Cache
		for _, cs := range st.Configs {
			rec := obs.ConfigRecord{
				Name:        cs.Name,
				N:           cs.N,
				D:           cs.D,
				Trials:      cs.Trials,
				Failures:    cs.Failures,
				RoundsMean:  cs.RoundsMean,
				WallMSTotal: durMS(cs.Wall),
				SetupMS:     durMS(cs.Setup),
			}
			if cs.Trials > 0 {
				rec.WallMSMean = rec.WallMSTotal / float64(cs.Trials)
			}
			m.Configs = append(m.Configs, rec)
		}
	}
	m.Metrics = c.Obs.Snapshot()
	return m
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
