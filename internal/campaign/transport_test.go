package campaign

import (
	"runtime"
	"testing"
	"time"
)

// transportMatrix is a small faulted matrix exercising both a bulk-path
// algorithm (bgi) and the reference-path switch (cd17) under crash
// faults — the acceptance scenario of the transport seam.
func transportMatrix(transports ...string) Matrix {
	return Matrix{
		Topologies: []string{"grid:4x6"},
		Algorithms: []AlgoSpec{
			{Task: Broadcast, Algo: "bgi"},
			{Task: Broadcast, Algo: "cd17"},
		},
		Faults:     []string{"crash:0.3@50"},
		Transports: transports,
		Seeds:      2,
		MasterSeed: 42,
	}
}

// TestTransportAxisExpansion: the transport axis crosses innermost, the
// empty axis leaves expansion identical to a pre-axis matrix, and an
// explicit empty name means the simulator.
func TestTransportAxisExpansion(t *testing.T) {
	base, err := transportMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	m := transportMatrix(SimTransport, "lockstep")
	p, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Configs) != 2*len(base.Configs) {
		t.Fatalf("%d configs, want %d", len(p.Configs), 2*len(base.Configs))
	}
	if p.Configs[0].Transport != SimTransport || p.Configs[1].Transport != "lockstep" {
		t.Fatalf("transport not innermost: %q then %q", p.Configs[0].Transport, p.Configs[1].Transport)
	}
	if p.Configs[0].Spec.Algo != p.Configs[1].Spec.Algo {
		t.Fatal("transport axis crossed outside the algorithm axis")
	}
	if base.Configs[0].Transport != "" {
		t.Fatalf("axis-free config carries transport %q", base.Configs[0].Transport)
	}
}

// TestTransportAxisValidation: unknown backends and transport-incapable
// algorithms fail at Expand, loudly, never as silently retargeted runs.
func TestTransportAxisValidation(t *testing.T) {
	m := transportMatrix("warp-drive")
	if _, err := m.Expand(); err == nil {
		t.Fatal("unknown transport accepted")
	}
	// binary-search LE is a composite runner (one engine per ID bit) and
	// does not advertise the transport capability.
	bad := Matrix{
		Topologies: []string{"grid:4x4"},
		Algorithms: []AlgoSpec{{Task: Leader, Algo: "binary-search"}},
		Transports: []string{"lockstep"},
		Seeds:      1,
		MasterSeed: 1,
	}
	if _, err := bad.Expand(); err == nil {
		t.Fatal("transport-incapable algorithm accepted a lockstep cell")
	}
	// The simulator name is always acceptable — it is the default
	// executor every algorithm already runs on.
	bad.Transports = []string{"", SimTransport}
	if _, err := bad.Expand(); err != nil {
		t.Fatalf("simulator cell rejected: %v", err)
	}
}

// TestTransportSinkEquivalence is the backend-equivalence acceptance
// criterion: the same faulted campaign produces byte-identical sink
// output on the simulator and the lockstep backend, at any worker count.
func TestTransportSinkEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	sim := runToBuffers(t, Campaign{Matrix: transportMatrix(SimTransport), Workers: 1})
	for _, workers := range []int{1, 4} {
		lock := runToBuffers(t, Campaign{Matrix: transportMatrix("lockstep"), Workers: workers})
		for _, f := range []string{"text", "csv", "jsonl"} {
			if sim[f] != lock[f] {
				t.Errorf("workers=%d: %s sink diverges across backends:\n-- sim --\n%s\n-- lockstep --\n%s",
					workers, f, sim[f], lock[f])
			}
		}
	}
}

// TestTransportBudgetExhaustedNoLeak: trials that exhaust their round
// budget mid-protocol still tear their lockstep backends down — no node
// goroutines survive the campaign.
func TestTransportBudgetExhaustedNoLeak(t *testing.T) {
	m := transportMatrix("lockstep")
	m.MaxRounds = 5 // far below any completion budget
	before := runtime.NumGoroutine()
	sum, err := (&Campaign{Matrix: m, Workers: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	exhausted := 0
	for _, s := range sum {
		exhausted += s.FailReasons["budget"]
	}
	if exhausted == 0 {
		t.Fatal("no trial exhausted its budget; the teardown path went unexercised")
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i >= 100 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
