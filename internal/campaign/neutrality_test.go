package campaign

import (
	"bytes"
	"strings"
	"testing"

	"radionet/internal/obs"
	"radionet/internal/precompute"
)

// TestTelemetryOutputNeutral is the observability acceptance criterion:
// attaching the full telemetry surface — metrics registry, run stats, the
// progress stream, and the precompute cache with its hit/miss/build
// metrics — must leave every sink byte-identical to a bare run, at any
// worker count. Telemetry observes the campaign; it never participates
// in it.
func TestTelemetryOutputNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	m := testMatrix(3)
	bare := runToBuffers(t, Campaign{Matrix: m, Workers: 1})
	for _, workers := range []int{1, 4} {
		var progress bytes.Buffer
		var st RunStats
		c := Campaign{
			Matrix:   m,
			Workers:  workers,
			Cache:    precompute.NewStore(t.TempDir()),
			Obs:      obs.NewRegistry(),
			Progress: &progress,
			Stats:    &st,
		}
		full := runToBuffers(t, c)
		for _, f := range []string{"text", "csv", "jsonl"} {
			if bare[f] != full[f] {
				t.Errorf("workers=%d: %s sink differs with telemetry attached:\n-- bare --\n%s\n-- telemetry --\n%s",
					workers, f, bare[f], full[f])
			}
			// The progress stream must never leak into a sink, and vice
			// versa: sink bytes carry no carriage-return rewrites.
			if strings.Contains(full[f], "\r") {
				t.Errorf("workers=%d: %s sink contains progress control bytes", workers, f)
			}
		}
		if progress.Len() == 0 {
			t.Errorf("workers=%d: progress writer got no output", workers)
		}
		if !strings.Contains(progress.String(), "trials") {
			t.Errorf("workers=%d: progress output unrecognizable: %q", workers, progress.String())
		}
	}
}

// TestCampaignTelemetryContent checks that the registry and RunStats a
// campaign fills are self-consistent with what the sinks reported.
func TestCampaignTelemetryContent(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	m := testMatrix(2)
	plan, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var st RunStats
	c := Campaign{Matrix: m, Workers: 2, Obs: obs.NewRegistry(), Stats: &st}
	summaries, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	snap := c.Obs.Snapshot()
	trials := int64(len(plan.Trials))
	if got := snap.Counters[obs.TrialsCompleted]; got != trials {
		t.Errorf("trials.completed = %d, want %d", got, trials)
	}
	if snap.Counters[obs.EngineRounds] <= 0 {
		t.Error("engine.rounds not collected")
	}
	if snap.Counters[obs.EngineTx] <= 0 {
		t.Error("engine.transmissions not collected")
	}
	h, ok := snap.Histograms[obs.TrialRounds]
	if !ok || h.Count != trials {
		t.Fatalf("trial.rounds histogram count = %+v, want %d samples", h, trials)
	}
	// Budget-fraction telemetry: every algorithm in the test matrix
	// reports a default budget, so each trial lands one permille sample.
	bh, ok := snap.Histograms[obs.TrialBudgetPermille]
	if !ok || bh.Count != trials {
		t.Fatalf("trial.budget_used_permille count = %+v, want %d samples", bh, trials)
	}
	// Worker slots 0 and 1 both exist and account for every trial.
	var workerTrials int64
	for _, w := range []string{"worker.00.trials", "worker.01.trials"} {
		workerTrials += snap.Counters[w]
	}
	if workerTrials != trials {
		t.Errorf("worker trial counters sum to %d, want %d", workerTrials, trials)
	}

	if st.Workers != 2 || st.Wall <= 0 {
		t.Errorf("run stats header: %+v", st)
	}
	if len(st.Configs) != len(summaries) {
		t.Fatalf("stats configs = %d, want %d", len(st.Configs), len(summaries))
	}
	for i, cs := range st.Configs {
		s := summaries[i]
		if cs.Trials != s.Trials || cs.Failures != s.Failures || cs.RoundsMean != s.Rounds.Mean {
			t.Errorf("config %d stats diverge from summary: %+v vs %+v", i, cs, s)
		}
		if cs.Name == "" || cs.Wall <= 0 {
			t.Errorf("config %d stats incomplete: %+v", i, cs)
		}
	}
}
