package campaign

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 53
		var hits [53]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	ForEach(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			ForEach(workers, 16, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: no panic", workers)
		}()
	}
}

// TestForEachParallelSum is the -race canary: concurrent workers folding
// into an atomic accumulator.
func TestForEachParallelSum(t *testing.T) {
	var sum atomic.Int64
	n := 1000
	ForEach(8, n, func(i int) { sum.Add(int64(i)) })
	want := int64(n*(n-1)) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}
