package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// Presets are named ready-made matrices, so common campaigns (and the
// large-n scales the hot-path work targets) don't need hand-assembled flag
// soup. The large-n presets deliberately stick to the Decay-based
// algorithms: at n = 10^5..10^6 the clustering pipeline's precomputation
// oracle dominates wall time, while the oblivious baselines exercise
// exactly the per-round simulation hot path (engine + incremental
// termination) the presets exist to measure.
var presets = map[string]Matrix{
	// smoke: seconds-scale sanity sweep over every algorithm family.
	"smoke": {
		Topologies: []string{"grid:8x8", "path:64", "cliquepath:8x4", "randtree:200"},
		Algorithms: []AlgoSpec{
			{Task: Broadcast, Algo: "cd17"},
			{Task: Broadcast, Algo: "bgi"},
			{Task: Broadcast, Algo: "truncated-decay"},
			{Task: Leader, Algo: "max-broadcast"},
		},
		Seeds:      3,
		MasterSeed: 1,
	},
	// large-n-broadcast: the sparse 10^5-node broadcast workloads behind
	// the incremental-termination benchmarks (DESIGN.md §5).
	"large-n-broadcast": {
		Topologies: []string{"randtree:100000", "gnp:100000:0.00005"},
		Algorithms: []AlgoSpec{
			{Task: Broadcast, Algo: "bgi"},
			{Task: Broadcast, Algo: "truncated-decay"},
		},
		Seeds:      3,
		MasterSeed: 1,
	},
	// large-n-leader: leader election at the same scale via the
	// single-broadcast baseline (binary-search runs 40 budgeted
	// broadcasts per trial and is left to explicit flags).
	"large-n-leader": {
		Topologies: []string{"randtree:100000", "gnp:100000:0.00005"},
		Algorithms: []AlgoSpec{
			{Task: Leader, Algo: "max-broadcast"},
		},
		Seeds:      3,
		MasterSeed: 1,
	},
	// faults: the fault/dynamics axis — crash, jam and loss scenarios
	// against the paper's pipeline and the BGI baseline, with an explicit
	// unfaulted baseline row in the same schema. Completion is
	// survivor-scoped, so the crash rows terminate (reach 1.0 over the
	// survivor-reachable set) instead of exhausting their budgets.
	"faults": {
		Topologies: []string{"grid:8x8", "cliquepath:8x4"},
		Algorithms: []AlgoSpec{
			{Task: Broadcast, Algo: "cd17"},
			{Task: Broadcast, Algo: "bgi"},
		},
		Faults:     []string{"none", "crash:0.3@50", "jam:0.05:p0.2", "loss:0.1"},
		Seeds:      3,
		MasterSeed: 1,
	},
	// huge-n-broadcast: the 10^6-node scale of the ROADMAP north star.
	// Minutes-scale; run with every core (-workers 0).
	"huge-n-broadcast": {
		Topologies: []string{"randtree:1000000"},
		Algorithms: []AlgoSpec{
			{Task: Broadcast, Algo: "bgi"},
		},
		Seeds:      2,
		MasterSeed: 1,
	},
}

// Preset returns the named built-in matrix. The returned Matrix is a copy;
// callers may override Seeds/MasterSeed/MaxRounds freely.
func Preset(name string) (Matrix, error) {
	m, ok := presets[name]
	if !ok {
		return Matrix{}, fmt.Errorf("campaign: unknown preset %q (known: %s)", name, strings.Join(PresetNames(), " "))
	}
	cp := m
	cp.Topologies = append([]string(nil), m.Topologies...)
	cp.Algorithms = append([]AlgoSpec(nil), m.Algorithms...)
	if m.Faults != nil {
		cp.Faults = append([]string(nil), m.Faults...)
	}
	return cp, nil
}

// PresetNames lists the built-in preset names in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
