package campaign

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across a pool of workers
// goroutines (0 means GOMAXPROCS). Indices are handed out in ascending
// order through an atomic counter, so work is balanced without any
// per-trial channel traffic. fn must be safe for concurrent invocation on
// distinct indices; determinism is the caller's job — write results by
// index and derive per-index randomness from the index, never from
// completion order.
//
// A panic in any fn is re-raised on the calling goroutine after the pool
// drains, matching the behavior of an inline loop closely enough for tests.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ResolveWorkers returns the worker-pool size ForEach actually runs with:
// workers, defaulted to GOMAXPROCS and clamped to the item count. Callers
// sizing per-worker state (the campaign's utilization counters) use it so
// their indexing matches the pool.
func ResolveWorkers(workers, n int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForEachWorker is ForEach with the pool slot exposed: fn(w, i) runs item
// i on worker w, with w in [0, ResolveWorkers(workers, n)). The slot is
// stable per goroutine — the seam per-worker telemetry hangs off — and
// carries no scheduling meaning beyond that.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = ResolveWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
					// Stop handing out work: jump the counter past n.
					next.Add(int64(n))
				}
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(w, int(i))
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
