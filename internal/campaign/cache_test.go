package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"radionet/internal/obs"
	"radionet/internal/precompute"
)

// TestCampaignCacheEquivalence is the cache acceptance criterion: every
// sink's bytes are identical with the precompute cache off, cold and
// warm, at 1 worker and at 4 — the cache trades setup time, never
// output. RunStats must honestly report which state each run executed
// under, and the registry's hit/miss counters must match it.
func TestCampaignCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	m := testMatrix(2)
	bare := runToBuffers(t, Campaign{Matrix: m, Workers: 1})
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		for _, want := range []string{"cold", "warm"} {
			var st RunStats
			reg := obs.NewRegistry()
			c := Campaign{Matrix: m, Workers: workers, Cache: precompute.NewStore(dir), Obs: reg, Stats: &st}
			out := runToBuffers(t, c)
			for _, f := range []string{"text", "csv", "jsonl"} {
				if out[f] != bare[f] {
					t.Fatalf("workers=%d %s cache: %s sink differs from cache-off run:\n-- off --\n%s\n-- %s --\n%s",
						workers, want, f, bare[f], want, out[f])
				}
			}
			if st.Cache != want {
				t.Fatalf("workers=%d: cache status %q, want %q", workers, st.Cache, want)
			}
			snap := reg.Snapshot()
			hits, misses := snap.Counters[obs.PrecomputeCacheHits], snap.Counters[obs.PrecomputeCacheMisses]
			if want == "cold" && misses == 0 {
				t.Fatalf("workers=%d: cold run recorded no cache misses", workers)
			}
			if want == "warm" && (hits == 0 || misses != 0) {
				t.Fatalf("workers=%d: warm run recorded hits=%d misses=%d", workers, hits, misses)
			}
		}
	}
}

// TestCampaignCacheCorruptionRebuilds pins the corruption contract end to
// end: truncating every cached product file between runs forces silent
// rebuilds — same sink bytes, cache status back to "cold" — and the
// rewritten files serve the next run warm again.
func TestCampaignCacheCorruptionRebuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full protocol trials")
	}
	m := testMatrix(1)
	dir := t.TempDir()
	first := runToBuffers(t, Campaign{Matrix: m, Workers: 2, Cache: precompute.NewStore(dir)})
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var corrupted int
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".rnp" {
			continue
		}
		if err := os.Truncate(filepath.Join(dir, e.Name()), 10); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("cold run left no cache files to corrupt")
	}
	var st RunStats
	second := runToBuffers(t, Campaign{Matrix: m, Workers: 2, Cache: precompute.NewStore(dir), Stats: &st})
	for _, f := range []string{"text", "csv", "jsonl"} {
		if second[f] != first[f] {
			t.Fatalf("%s sink differs after cache corruption:\n-- first --\n%s\n-- second --\n%s", f, first[f], second[f])
		}
	}
	if st.Cache != "cold" {
		t.Fatalf("corrupted cache reported %q, want cold (rebuilt)", st.Cache)
	}
	var st3 RunStats
	runToBuffers(t, Campaign{Matrix: m, Workers: 2, Cache: precompute.NewStore(dir), Stats: &st3})
	if st3.Cache != "warm" {
		t.Fatalf("rebuilt cache reported %q, want warm", st3.Cache)
	}
}
