// Package lint is the repository's machine-checked invariant suite: a
// small static-analysis framework (mirroring the golang.org/x/tools
// go/analysis shape on the standard library alone — go/ast, go/types and
// the gc export-data importer — so the module stays dependency-free) plus
// the five analyzers that turn the repo's by-convention contracts into
// vet-time errors:
//
//	determinism    — simulation packages must be bit-exact functions of
//	                 their seeds: no wall clock, no math/crypto rand, no
//	                 environment reads, no map-iteration order reaching
//	                 output.
//	rngdiscipline  — randomness flows only through rng.Rand streams built
//	                 by rng.New/Fork from explicit seeds; never from
//	                 ambient state, never from the unusable zero value.
//	registerinit   — protocol.Register is called only from an init in a
//	                 register.go, and every registering package is
//	                 reachable from internal/protocol/all.
//	hookneutrality — radio.RoundHook implementations and everything in
//	                 internal/obs observe, never steer: no engine/campaign
//	                 mutation, no randomness, no non-atomic shared writes.
//	hotpath        — functions annotated //radionet:hotpath must not
//	                 allocate per round (make/new/closure/locally grown
//	                 append) or box values into interfaces.
//
// Findings a human has vetted are suppressed in place with a
// //lint:<key> annotation carrying a mandatory reason, e.g.
//
//	//lint:ordered max-reduction over unique candidate IDs
//	for v, id := range cands { ... }
//
// The annotation suppresses the matching diagnostic on its own line and
// the line below; an annotation without a reason is itself a diagnostic.
// DESIGN.md §10 documents each contract and the suppression policy.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. It mirrors the x/tools
// analysis.Analyzer surface closely enough that migrating to the real
// framework (if the dependency ever lands) is mechanical.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is the one-paragraph contract description shown by -list.
	Doc string
	// Scope restricts the analyzer to packages for which it returns true;
	// nil means every package. Fixture harnesses bypass Scope.
	Scope func(pkgPath string) bool
	// SkipTests excludes _test.go files (relevant under go vet, which
	// analyzes test variants; the standalone loader only sees non-test
	// files to begin with).
	SkipTests bool
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
	// suppressions per file line, scanned once per package by RunAnalyzers.
	suppr map[*ast.File]map[int]suppression
}

type suppression struct {
	key    string
	reason string
}

// suppressionRE matches a //lint:<key> annotation; the rest of the line
// is the mandatory reason.
var suppressionRE = regexp.MustCompile(`^//lint:([a-z]+)(.*)$`)

// Reportf records a diagnostic at pos unless a matching //lint:<key>
// suppression covers the line. key is the Analyzer's suppression key
// (one annotation key per analyzer keeps the policy greppable).
func (p *Pass) Reportf(key string, pos token.Pos, format string, args ...any) {
	if p.suppressed(pos, key) {
		return
	}
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether a //lint:key annotation covers pos: on the
// same line (trailing comment) or the line immediately above.
func (p *Pass) suppressed(pos token.Pos, key string) bool {
	file := p.fileOf(pos)
	if file == nil {
		return false
	}
	m := p.suppr[file]
	line := p.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		if s, ok := m[l]; ok && s.key == key {
			return true
		}
	}
	return false
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// scanSuppressions indexes a file's //lint: annotations by line and
// reports malformed ones (unknown key, missing reason) — a suppression is
// a reviewed exception and must say why it exists. It runs once per file
// per package load (not per analyzer), under the framework's own "lint"
// diagnostic name, so malformed annotations surface even in files no
// analyzer otherwise flags.
func scanSuppressions(fset *token.FileSet, file *ast.File) (map[int]suppression, []Diagnostic) {
	m := map[int]suppression{}
	var diags []Diagnostic
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			sub := suppressionRE.FindStringSubmatch(c.Text)
			if sub == nil {
				continue
			}
			key, reason := sub[1], strings.TrimSpace(sub[2])
			line := fset.Position(c.Pos()).Line
			if !knownSuppressionKeys[key] {
				diags = append(diags, Diagnostic{
					Pos:      fset.Position(c.Pos()),
					Analyzer: "lint",
					Message:  fmt.Sprintf("unknown suppression key %q (known: %s)", key, knownSuppressionList()),
				})
				continue
			}
			if reason == "" {
				diags = append(diags, Diagnostic{
					Pos:      fset.Position(c.Pos()),
					Analyzer: "lint",
					Message:  fmt.Sprintf("//lint:%s needs a reason (the annotation is a reviewed exception; say why)", key),
				})
				continue
			}
			m[line] = suppression{key: key, reason: reason}
		}
	}
	return m, diags
}

// knownSuppressionKeys enumerates the annotation vocabulary; one key per
// analyzer that supports suppression at all (registerinit does not — a
// misplaced Register call has no sanctioned variant).
var knownSuppressionKeys = map[string]bool{
	"ordered":   true, // determinism: map range proven order-independent
	"wallclock": true, // determinism: sanctioned telemetry wall-clock read
	"seedroot":  true, // rngdiscipline: sanctioned seed construction site
	"hookstate": true, // hookneutrality: sanctioned non-atomic hook state
	"alloc":     true, // hotpath: sanctioned (amortized) allocation
}

func knownSuppressionList() string {
	keys := make([]string, 0, len(knownSuppressionKeys))
	for k := range knownSuppressionKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

// RunAnalyzers applies each analyzer to each package (honoring Scope and
// SkipTests), validates the packages' //lint: annotations, and returns
// the findings sorted by position, analyzer and message, deduplicated.
func RunAnalyzers(res *Result, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range res.Pkgs {
		suppr := map[*ast.File]map[int]suppression{}
		for _, f := range pkg.Files {
			m, bad := scanSuppressions(res.Fset, f)
			suppr[f] = m
			diags = append(diags, bad...)
		}
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.ImportPath) {
				continue
			}
			diags = append(diags, runOne(res.Fset, pkg, a, suppr)...)
		}
	}
	SortDiagnostics(diags)
	return dedup(diags)
}

// runOne applies one analyzer to one loaded package.
func runOne(fset *token.FileSet, pkg *Package, a *Analyzer, suppr map[*ast.File]map[int]suppression) []Diagnostic {
	files := pkg.Files
	if a.SkipTests {
		files = files[:0:0]
		for _, f := range pkg.Files {
			name := fset.Position(f.FileStart).Filename
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, f)
		}
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   func(d Diagnostic) { diags = append(diags, d) },
		suppr:    suppr,
	}
	a.Run(pass)
	return diags
}

// dedup removes adjacent duplicates from a sorted diagnostic slice.
func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// SortDiagnostics orders by file, line, column, analyzer, message and
// removes duplicates in place semantics (returns nothing; slices share
// backing).
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
