package lint_test

import (
	"os/exec"
	"strings"
	"testing"

	"radionet/internal/lint"
)

// TestRepoIsClean runs the full analyzer suite plus the registry
// reachability check over the module itself and demands zero findings —
// the same bar CI's vet-radionet step enforces. A regression in any
// policed invariant (a new unsorted map range in a simulation package, a
// stray wall-clock read, a hot-path allocation) fails this test.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	res, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers(res, lint.All())
	diags = append(diags, lint.CheckRegistryReachability(res)...)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
