// The determinism analyzer: simulation packages must be bit-exact
// functions of their seeds. See the package comment for the contract it
// enforces and DESIGN.md §10 for the full policy.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism forbids, in simulation packages (non-test files):
//
//   - importing math/rand, math/rand/v2 or crypto/rand (all randomness
//     flows through internal/rng streams),
//   - wall-clock reads and timers (time.Now, Since, Until, Sleep, After,
//     AfterFunc, Tick, NewTimer, NewTicker) — suppressible with
//     //lint:wallclock for sanctioned telemetry side channels that are
//     pinned output-neutral,
//   - environment reads (os.Getenv, os.LookupEnv, os.Environ): behavior
//     must never branch on ambient configuration,
//   - ranging over a map unless the loop is provably order-independent
//     (the collect-then-sort idiom, pure commutative accumulation, or a
//     keyed insert of a constant) or carries a //lint:ordered annotation
//     whose reason records the order-independence argument.
var Determinism = &Analyzer{
	Name:      "determinism",
	Doc:       "forbid wall clock, ambient randomness, env reads and map-order dependence in simulation packages",
	Scope:     SimScope,
	SkipTests: true,
	Run:       runDeterminism,
}

var forbiddenImports = map[string]string{
	"math/rand":    "use radionet/internal/rng streams seeded by the caller",
	"math/rand/v2": "use radionet/internal/rng streams seeded by the caller",
	"crypto/rand":  "simulation randomness must be reproducible; use radionet/internal/rng",
}

var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

var forbiddenOSFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			if why, bad := forbiddenImports[importPathOf(spec)]; bad {
				// Key "" — a forbidden import has no sanctioned variant, so
				// no annotation suppresses it.
				pass.Reportf("", spec.Pos(), "simulation package imports %s: %s", importPathOf(spec), why)
			}
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if forbiddenTimeFuncs[fn.Name()] && methodRecvNamed(fn) == nil {
						pass.Reportf("wallclock", n.Pos(),
							"time.%s in a simulation package: trial output must be a function of the seed alone", fn.Name())
					}
				case "os":
					if forbiddenOSFuncs[fn.Name()] {
						pass.Reportf("wallclock", n.Pos(),
							"os.%s in a simulation package: behavior must not depend on the environment", fn.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
			return true
		})
	}
}

// checkMapRange flags `for ... := range m` over a map unless the loop is
// provably order-independent or annotated //lint:ordered.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	t := pass.Info.TypeOf(rs.X)
	if !isMapType(t) {
		return
	}
	if orderIndependentBody(pass, rs) || collectsThenSorts(pass, rs, stack) {
		return
	}
	pass.Reportf("ordered", rs.Pos(),
		"map iteration order can escape this loop; sort the keys, or annotate //lint:ordered with the order-independence argument")
}

// collectsThenSorts recognizes the collect-then-sort idiom: every
// statement of the body only appends to (or keyed-assigns) accumulator
// variables, and each appended-to accumulator is passed to a sort call
// (sort.Strings/Ints/Float64s/Slice/SliceStable, slices.Sort/SortFunc/
// SortStableFunc) by a later statement of the enclosing block.
func collectsThenSorts(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	// The body may only append to accumulators (plus if/continue guards):
	// any other effect could leak iteration order even if a sort follows.
	appended := map[types.Object]bool{}
	if !collectOnlyBody(pass, rs.Body, appended) || len(appended) == 0 {
		return false
	}
	// Find the enclosing block and scan the statements after the range.
	var block []ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b.List
			break
		}
	}
	idx := -1
	for i, st := range block {
		if st == rs {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	sorted := map[types.Object]bool{}
	for _, st := range block[idx+1:] {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			continue
		}
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable",
			"Sort", "SortFunc", "SortStableFunc", "Stable":
		default:
			continue
		}
		if id := rootIdent(call.Args[0]); id != nil {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				sorted[obj] = true
			}
		}
	}
	for obj := range appended {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// collectOnlyBody reports whether every statement in the block is an
// append-accumulation (`acc = append(acc, ...)`), a keyed map/slice
// assignment, an if/continue guard around such statements, or a no-op —
// recording the accumulator objects that must be sorted afterwards.
func collectOnlyBody(pass *Pass, block *ast.BlockStmt, appended map[types.Object]bool) bool {
	var stmtOK func(ast.Stmt) bool
	stmtOK = func(st ast.Stmt) bool {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 || st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
				return false
			}
			lhs, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fid.Name != "append" || pass.Info.Uses[fid] != types.Universe.Lookup("append") {
				return false
			}
			if len(call.Args) == 0 {
				return false
			}
			dst := rootIdent(call.Args[0])
			if dst == nil || pass.Info.ObjectOf(dst) != pass.Info.ObjectOf(lhs) {
				return false
			}
			appended[pass.Info.ObjectOf(lhs)] = true
			return true
		case *ast.IfStmt:
			if st.Init != nil || st.Else != nil {
				return false
			}
			for _, s := range st.Body.List {
				if !stmtOK(s) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			return st.Tok == token.CONTINUE
		case *ast.EmptyStmt:
			return true
		}
		return false
	}
	for _, st := range block.List {
		if !stmtOK(st) {
			return false
		}
	}
	return true
}

// orderIndependentBody recognizes loop bodies whose effect provably
// commutes across iterations: compound accumulation into variables
// declared outside the loop (x++, x--, x += e, x |= e, ...), keyed
// insertion of a constant into a map/set, deletion from the ranged map,
// and blank assignments — optionally wrapped in if/continue guards whose
// conditions are side-effect-free.
func orderIndependentBody(pass *Pass, rs *ast.RangeStmt) bool {
	var stmtOK func(ast.Stmt) bool
	stmtOK = func(st ast.Stmt) bool {
		switch st := st.(type) {
		case *ast.IncDecStmt:
			_, ok := ast.Unparen(st.X).(*ast.Ident)
			return ok
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
				token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
				// Compound accumulation commutes when the operand does not
				// read the accumulator's own order-sensitive state; require
				// a plain side-effect-free operand.
				return len(st.Lhs) == 1 && len(st.Rhs) == 1 &&
					sideEffectFree(pass, st.Rhs[0])
			case token.ASSIGN:
				if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
					return false
				}
				if isBlank(st.Lhs[0]) {
					return sideEffectFree(pass, st.Rhs[0])
				}
				// m[k] = <constant>: a set/constant-valued insert lands the
				// same final state in any order, even on key collisions.
				ix, ok := st.Lhs[0].(*ast.IndexExpr)
				if !ok || !isMapType(pass.Info.TypeOf(ix.X)) {
					return false
				}
				if !sideEffectFree(pass, ix.Index) || !sideEffectFree(pass, st.Rhs[0]) {
					return false
				}
				tv, ok := pass.Info.Types[st.Rhs[0]]
				return ok && tv.Value != nil
			}
			return false
		case *ast.ExprStmt:
			// delete(m, k) commutes (distinct keys per iteration).
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
			return ok && pass.Info.Uses[fid] == types.Universe.Lookup("delete")
		case *ast.IfStmt:
			if st.Init != nil || st.Else != nil || !sideEffectFree(pass, st.Cond) {
				return false
			}
			for _, s := range st.Body.List {
				if !stmtOK(s) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			return st.Tok == token.CONTINUE
		case *ast.EmptyStmt:
			return true
		}
		return false
	}
	for _, st := range rs.Body.List {
		if !stmtOK(st) {
			return false
		}
	}
	return true
}

// sideEffectFree reports whether evaluating expr cannot observably
// mutate state or produce output: identifiers, literals, selectors,
// indexing, arithmetic and len/cap only. Any other call is assumed
// effectful.
func sideEffectFree(pass *Pass, expr ast.Expr) bool {
	ok := true
	ast.Inspect(expr, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return ok
		}
		if fid, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
			if obj := pass.Info.Uses[fid]; obj == types.Universe.Lookup("len") || obj == types.Universe.Lookup("cap") {
				return true
			}
		}
		// Type conversions are value-only.
		if tv, found := pass.Info.Types[call.Fun]; found && tv.IsType() {
			return true
		}
		ok = false
		return false
	})
	return ok
}
