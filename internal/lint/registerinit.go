// The registerinit analyzer: protocol registration is an init-time,
// register.go-only affair, and every registering package is reachable
// from internal/protocol/all — the single import that decides what a
// binary can run.

package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// RegisterInit requires every call of protocol.Register to sit inside a
// func init() in a file named register.go. The registry seam (PR 5)
// works because registration is a pure, init-time side effect of
// importing a package: a Register call anywhere else (a constructor, a
// conditional, another file) makes the available-algorithm set depend on
// runtime control flow and breaks the "new algorithm = new register.go +
// one line in protocol/all" invariant. There is no suppression: a
// misplaced registration has no sanctioned variant.
var RegisterInit = &Analyzer{
	Name:      "registerinit",
	Doc:       "protocol.Register only from func init() in register.go",
	SkipTests: true, // tests may register synthetic descriptors
	Run:       runRegisterInit,
}

func runRegisterInit(pass *Pass) {
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.FileStart).Filename)
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if !isPkgFunc(fn, protocolPath, "Register") || methodRecvNamed(fn) != nil {
				return true
			}
			if base != "register.go" {
				pass.Reportf("", call.Pos(),
					"protocol.Register outside register.go: registration lives in the package's register.go so the catalogue is greppable")
			}
			if !inTopLevelInit(stack) {
				pass.Reportf("", call.Pos(),
					"protocol.Register outside func init(): registration must be an unconditional import-time side effect")
			}
			return true
		})
	}
}

// inTopLevelInit reports whether the ancestor stack is rooted in a
// receiver-less function declaration named init (calls inside closures
// declared in init still qualify — they execute at init time only if
// called there, which the unconditional-call rule below covers: the
// closure itself must be invoked, and a stored closure is not — so only
// direct statement nesting is accepted).
func inTopLevelInit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return false // a closure may escape init; not unconditional
		case *ast.FuncDecl:
			return f.Recv == nil && f.Name.Name == "init"
		}
	}
	return false
}

// CheckRegistryReachability is the whole-module half of registerinit: it
// verifies that every loaded package containing a protocol.Register call
// is in the import closure of internal/protocol/all. It needs the full
// module load (the closure is computed over Result.Imports) and is
// skipped — returning nil — when protocol/all was not part of the load
// (partial patterns, go vet unit mode).
func CheckRegistryReachability(res *Result) []Diagnostic {
	const allPath = protocolPath + "/all"
	if _, ok := res.Imports[allPath]; !ok {
		return nil
	}
	// Import closure of protocol/all.
	reachable := map[string]bool{allPath: true}
	queue := []string{allPath}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, imp := range res.Imports[p] {
			if !reachable[imp] {
				reachable[imp] = true
				queue = append(queue, imp)
			}
		}
	}
	var diags []Diagnostic
	for _, pkg := range res.Pkgs {
		if reachable[pkg.ImportPath] || strings.Contains(pkg.ImportPath, "/testdata/") {
			continue
		}
		pos := firstRegisterCall(pkg)
		if pos == token.NoPos {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      res.Fset.Position(pos),
			Analyzer: RegisterInit.Name,
			Message:  "package registers a protocol but is not reachable from radionet/internal/protocol/all; add its blank import there",
		})
	}
	SortDiagnostics(diags)
	return diags
}

// firstRegisterCall returns the position of the package's first
// protocol.Register call (NoPos if it never registers).
func firstRegisterCall(pkg *Package) token.Pos {
	pos := token.NoPos
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if pos != token.NoPos {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(pkg.Info, call); isPkgFunc(fn, protocolPath, "Register") && methodRecvNamed(fn) == nil {
					pos = call.Pos()
					return false
				}
			}
			return true
		})
	}
	return pos
}
