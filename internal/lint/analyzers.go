package lint

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		BackendIsolation,
		Determinism,
		HookNeutrality,
		HotPath,
		RegisterInit,
		RNGDiscipline,
	}
}
