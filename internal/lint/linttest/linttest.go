// Package linttest runs lint analyzers over fixture packages under
// internal/lint/testdata/src and checks their findings against // want
// comments, in the style of x/tools' analysistest.
//
// A fixture is an ordinary compilable package; go list's wildcards skip
// testdata directories, so fixtures never reach go build, go test or go
// vet — only this harness (which names their directories explicitly)
// loads them.
//
// Expectation syntax, as trailing comments in fixture files:
//
//	foo() // want "regexp" "second regexp"
//
// expects exactly one diagnostic per quoted regexp on that line. When the
// expected diagnostic sits on a line that cannot carry a trailing comment
// (a //lint: annotation line — a trailing // would be swallowed into the
// annotation's reason), use the offset form on the line above:
//
//	// want:+1 "needs a reason"
//	//lint:ordered
package linttest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"radionet/internal/lint"
)

// moduleRoot locates the module directory once; fixtures are addressed
// relative to it so tests work from any package directory.
var moduleRoot = sync.OnceValues(func() (string, error) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", fmt.Errorf("linttest: locating module root: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
})

// wantRE matches one expectation comment: an optional line offset
// followed by quoted regexps.
var wantRE = regexp.MustCompile(`//\s*want(?::\+(\d+))?((?:\s+"(?:[^"]*)")+)\s*$`)

var quotedRE = regexp.MustCompile(`"([^"]*)"`)

// expectation is one unmatched // want entry.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
}

// Run loads testdata/src/<fixture> (bypassing the analyzer's package
// Scope — fixtures live outside the real package tree on purpose), runs
// the analyzer, and reports any mismatch between its diagnostics and the
// fixture's // want comments.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Load(root, "./internal/lint/testdata/src/"+fixture)
	if err != nil {
		t.Fatal(err)
	}
	unscoped := *a
	unscoped.Scope = nil
	diags := lint.RunAnalyzers(res, []*lint.Analyzer{&unscoped})

	var wants []expectation
	for _, pkg := range res.Pkgs {
		for _, name := range pkg.GoFiles {
			w, err := parseWants(name)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, w...)
		}
	}

	// Greedy bipartite match: every diagnostic consumes exactly one
	// expectation on its line; leftovers on either side fail the test.
	used := make([]bool, len(wants))
	for _, d := range diags {
		matched := false
		for i, w := range wants {
			if used[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the expectations from one fixture file.
func parseWants(filename string) ([]expectation, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	base := filepath.Base(filename)
	var wants []expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		lineNo := i + 1
		if m[1] != "" {
			off, err := strconv.Atoi(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want offset: %v", base, lineNo, err)
			}
			lineNo += off
		}
		for _, q := range quotedRE.FindAllStringSubmatch(m[2], -1) {
			re, err := regexp.Compile(q[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", base, lineNo, q[1], err)
			}
			wants = append(wants, expectation{file: base, line: lineNo, re: re})
		}
	}
	return wants, nil
}
