// Shared AST/type resolution helpers for the analyzers.

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// simPackages is the determinism perimeter: every package whose code runs
// inside a trial (or expands/aggregates one) and therefore must be a
// bit-exact function of its seeds. internal/obs, internal/trace and the
// CLIs sit outside — they are telemetry and presentation layers, policed
// by hookneutrality instead.
var simPackages = map[string]bool{
	"radionet/internal/radio":            true,
	"radionet/internal/radio/simbackend": true,
	"radionet/internal/radio/lockstep":   true,
	"radionet/internal/radio/backends":   true,
	"radionet/internal/rng":              true,
	"radionet/internal/graph":            true,
	"radionet/internal/schedule":         true,
	"radionet/internal/cluster":          true,
	"radionet/internal/decay":            true,
	"radionet/internal/compete":          true,
	"radionet/internal/multicast":        true,
	"radionet/internal/baseline":         true,
	"radionet/internal/cd":               true,
	"radionet/internal/ghle":             true,
	"radionet/internal/protocol":         true,
	"radionet/internal/protocol/all":     true,
	"radionet/internal/campaign":         true,
	"radionet/internal/precompute":       true,
}

// SimScope reports whether pkgPath is inside the determinism perimeter.
func SimScope(pkgPath string) bool { return simPackages[pkgPath] }

const (
	rngPath      = "radionet/internal/rng"
	radioPath    = "radionet/internal/radio"
	protocolPath = "radionet/internal/protocol"
	obsPath      = "radionet/internal/obs"
)

// calleeFunc resolves a call expression's callee to its *types.Func
// (package function or method). It returns nil for builtins, type
// conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn // method or field-func? fields are *types.Var
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// or a method named name on a type declared in pkgPath.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// methodRecvNamed returns the named type of fn's receiver (through one
// pointer), or nil for package-level functions.
func methodRecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOf reports whether fn is a method named method on type
// pkgPath.typeName (value or pointer receiver).
func isMethodOf(fn *types.Func, pkgPath, typeName, method string) bool {
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	named := methodRecvNamed(fn)
	return named != nil && named.Obj().Name() == typeName
}

// rootIdent peels selectors, indexing, stars, parens and slicing to the
// leftmost identifier of an lvalue-ish expression ("e.transmit[i]" -> e).
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// walkStack traverses n, invoking fn with each node and the stack of its
// ancestors (outermost first, excluding n itself). Returning false from
// fn prunes the subtree.
func walkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		enter := fn(node, stack)
		if enter {
			stack = append(stack, node)
		}
		return enter
	})
}

// enclosingFunc returns the innermost function declaration or literal in
// the ancestor stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// importPathOf strips quotes off an import spec path.
func importPathOf(spec *ast.ImportSpec) string {
	return strings.Trim(spec.Path.Value, `"`)
}

// funcDoc returns the doc comment of a function declaration ("" for
// literals and undocumented functions).
func funcDoc(n ast.Node) *ast.CommentGroup {
	if d, ok := n.(*ast.FuncDecl); ok {
		return d.Doc
	}
	return nil
}

// hasDirective reports whether the comment group contains a line whose
// text (after "//") starts with the given directive, e.g.
// "radionet:hotpath".
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.HasPrefix(strings.TrimSpace(text), directive) {
			return true
		}
	}
	return false
}

// isBlank reports whether expr is the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}
