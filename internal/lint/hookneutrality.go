// The hookneutrality analyzer: observation must not perturb the run.
// Telemetry hooks and everything in internal/obs may read the world and
// bump atomic counters, but must never call back into engine or campaign
// mutators, touch rng streams, or scribble on shared state — the
// telemetry-neutrality smoke (byte-identical output with obs on or off)
// is the dynamic half of this contract; the analyzer is the static half.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HookNeutrality enforces two perimeters:
//
//   - everywhere: a function whose signature structurally matches
//     radio.RoundHook — func(int64, []int32, int, int) with no results —
//     must not call engine/campaign mutating APIs, must not use
//     internal/rng, and must not write to variables declared outside the
//     hook itself (captured state; atomic counters are method calls and
//     pass). //lint:hookstate marks a reviewed exception, e.g. a
//     single-engine trace recorder documented non-concurrent.
//   - package internal/obs: no rng import, no engine/campaign mutator
//     calls anywhere, and no writes to package-level variables outside
//     func init.
var HookNeutrality = &Analyzer{
	Name:      "hookneutrality",
	Doc:       "round hooks and internal/obs must observe without mutating engine, campaign, rng or shared state",
	SkipTests: true,
	Run:       runHookNeutrality,
}

// engineMutators lists the radio-package calls that advance or
// reconfigure a simulation — a hook firing mid-round must never reenter
// them.
var engineMutators = map[string]map[string]bool{
	"Engine":   {"Step": true, "Run": true, "RunUntil": true, "SetFaults": true, "AddHook": true},
	"Progress": {"Add": true},
}

const campaignPath = "radionet/internal/campaign"

func runHookNeutrality(pass *Pass) {
	inObs := pass.Pkg.Path() == obsPath
	for _, file := range pass.Files {
		if inObs {
			for _, spec := range file.Imports {
				if importPathOf(spec) == rngPath {
					// Key "" — obs consuming rng streams has no sanctioned
					// variant; an observer that draws randomness perturbs
					// every stream forked after it.
					pass.Reportf("", spec.Pos(),
						"internal/obs imports %s: observers must not consume or fork rng streams", rngPath)
				}
			}
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if inObs {
					checkNeutralCall(pass, n, "internal/obs")
				}
			case *ast.AssignStmt, *ast.IncDecStmt:
				if inObs && !inInitFunc(stack) {
					checkObsPackageWrite(pass, n)
				}
			case *ast.FuncLit:
				if sig, ok := pass.Info.TypeOf(n).(*types.Signature); ok && isRoundHookSig(sig) {
					checkHookBody(pass, n.Body, n.Pos(), n.End())
				}
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				if fn, ok := pass.Info.Defs[n.Name].(*types.Func); ok {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && isRoundHookSig(sig) {
						checkHookBody(pass, n.Body, n.Pos(), n.End())
					}
				}
			}
			return true
		})
	}
}

// isRoundHookSig reports whether sig structurally matches
// radio.RoundHook: func(int64, []int32, int, int) with no results. The
// match is structural, not nominal — RoundHook is a defined func type,
// so implementations are ordinary funcs assignable to it and carry no
// marker of their own.
func isRoundHookSig(sig *types.Signature) bool {
	if sig.Results().Len() != 0 || sig.Variadic() || sig.Params().Len() != 4 {
		return false
	}
	p := sig.Params()
	return isBasicKind(p.At(0).Type(), types.Int64) &&
		isSliceOfKind(p.At(1).Type(), types.Int32) &&
		isBasicKind(p.At(2).Type(), types.Int) &&
		isBasicKind(p.At(3).Type(), types.Int)
}

func isBasicKind(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func isSliceOfKind(t types.Type, kind types.BasicKind) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isBasicKind(s.Elem(), kind)
}

// checkHookBody applies the hook rules to a RoundHook-shaped function
// whose source span is [lo, hi): no mutator calls, no rng use, no writes
// to variables declared outside the span.
func checkHookBody(pass *Pass, body *ast.BlockStmt, lo, hi token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNeutralCall(pass, n, "a round hook")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkHookWrite(pass, lhs, lo, hi)
			}
		case *ast.IncDecStmt:
			checkHookWrite(pass, n.X, lo, hi)
		}
		return true
	})
}

// checkNeutralCall flags calls a neutral observer must not make: engine
// mutators, anything in internal/campaign, and anything in internal/rng.
func checkNeutralCall(pass *Pass, call *ast.CallExpr, where string) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case radioPath:
		if recv := methodRecvNamed(fn); recv != nil && engineMutators[recv.Obj().Name()][fn.Name()] {
			pass.Reportf("hookstate", call.Pos(),
				"%s calls radio.%s.%s, which mutates the simulation it is observing", where, recv.Obj().Name(), fn.Name())
		}
	case campaignPath:
		pass.Reportf("hookstate", call.Pos(),
			"%s calls into internal/campaign: observers must not drive campaign execution", where)
	case rngPath:
		pass.Reportf("hookstate", call.Pos(),
			"%s uses internal/rng: an observer that consumes randomness perturbs every later stream", where)
	}
}

// checkHookWrite flags an assignment target whose root variable is
// declared outside the hook's source span — captured state shared with
// the engine or other hooks.
func checkHookWrite(pass *Pass, lhs ast.Expr, lo, hi token.Pos) {
	id := rootIdent(lhs)
	if id == nil || isBlank(id) {
		return
	}
	obj := pass.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if v.Pos() < lo || v.Pos() >= hi {
		pass.Reportf("hookstate", lhs.Pos(),
			"round hook writes %s, declared outside the hook: use atomic counters or annotate //lint:hookstate with the safety argument", id.Name)
	}
}

// checkObsPackageWrite flags writes to obs package-level variables
// outside init: shared mutable package state is how an observer leaks
// ordering effects between engines.
func checkObsPackageWrite(pass *Pass, n ast.Node) {
	report := func(lhs ast.Expr) {
		id := rootIdent(lhs)
		if id == nil || isBlank(id) {
			return
		}
		v, ok := pass.Info.ObjectOf(id).(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return
		}
		pass.Reportf("hookstate", lhs.Pos(),
			"internal/obs writes package-level variable %s outside init", id.Name)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			report(lhs)
		}
	case *ast.IncDecStmt:
		report(n.X)
	}
}

// inInitFunc reports whether the ancestor stack is inside func init.
func inInitFunc(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if d, ok := stack[i].(*ast.FuncDecl); ok {
			return d.Recv == nil && d.Name.Name == "init"
		}
	}
	return false
}
