// Package loading for the standalone analysis driver: `go list -deps
// -export -json` supplies every package's metadata plus compiled export
// data from the build cache, and the standard library's gc importer
// consumes that export data, so full go/types information is available
// without any dependency outside the standard library (the x/tools
// go/packages loader is exactly this shape).

package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Result is a loaded package set: the analysis targets plus the import
// edges of everything beneath them (targets and dependencies alike), for
// whole-module checks such as registration reachability.
type Result struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Imports maps every loaded import path (targets and dependencies) to
	// its direct imports.
	Imports map[string][]string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
}

// Load lists, parses and type-checks the packages matching patterns,
// resolving imports through the build cache's export data. dir is the
// working directory for the go command ("" for the current one);
// patterns follow go list syntax ("./...", explicit directories, import
// paths). Packages must compile — the analyzers assume well-typed input,
// exactly like go vet.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		return nil, errors.New("lint: no packages to load")
	}
	args := append([]string{"list", "-deps", "-export", "-json=Dir,ImportPath,Export,GoFiles,Imports,DepOnly,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	imports := map[string][]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		imports[p.ImportPath] = p.Imports
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}

	res := &Result{Fset: fset, Imports: imports}
	for _, t := range targets {
		pkg, err := checkPackage(fset, &conf, t)
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, pkg)
	}
	return res, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, conf *types.Config, t listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	paths := make([]string, 0, len(t.GoFiles))
	for _, g := range t.GoFiles {
		path := filepath.Join(t.Dir, g)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := NewTypesInfo()
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		GoFiles:    paths,
		Imports:    t.Imports,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewTypesInfo allocates the full set of type-information maps the
// analyzers consult (shared with the go vet unitchecker driver).
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
