package lint_test

import (
	"testing"

	"radionet/internal/lint"
	"radionet/internal/lint/linttest"
)

func TestBackendIsolation(t *testing.T) { linttest.Run(t, lint.BackendIsolation, "backiso/...") }
func TestDeterminism(t *testing.T)      { linttest.Run(t, lint.Determinism, "determ") }
func TestRNGDiscipline(t *testing.T)    { linttest.Run(t, lint.RNGDiscipline, "rngfix") }
func TestRegisterInit(t *testing.T)     { linttest.Run(t, lint.RegisterInit, "reginit") }
func TestHookNeutrality(t *testing.T)   { linttest.Run(t, lint.HookNeutrality, "hookfix") }
func TestHotPath(t *testing.T)          { linttest.Run(t, lint.HotPath, "hotfix") }
