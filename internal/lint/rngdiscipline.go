// The rngdiscipline analyzer: randomness reaches a component only as an
// rng.Rand stream built by rng.New/Fork from an explicitly passed seed.

package lint

import (
	"go/ast"
	"go/types"
)

// RNGDiscipline enforces, in simulation packages (non-test files):
//
//   - rng.Rand is never constructed as a zero value (composite literal
//     or new(rng.Rand)) — the zero state is unusable by documented
//     contract; streams come from rng.New or Rand.Fork,
//   - the seed argument of rng.New (and the id argument of Fork) is
//     derived only from parameters, locals, fields, constants and other
//     rng calls — never from ambient state (any non-rng call, or a
//     mutable package-level variable, in the seed expression is
//     flagged). //lint:seedroot marks a reviewed exception.
var RNGDiscipline = &Analyzer{
	Name:      "rngdiscipline",
	Doc:       "rng.Rand streams are built by New/Fork from explicit seeds, never from ambient state or the zero value",
	Scope:     SimScope,
	SkipTests: true,
	Run:       runRNGDiscipline,
}

func runRNGDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isRNGRand(pass.Info.TypeOf(n)) {
					pass.Reportf("seedroot", n.Pos(),
						"rng.Rand composite literal: the zero state is unusable; construct streams with rng.New or Rand.Fork")
				}
			case *ast.CallExpr:
				if fid, ok := ast.Unparen(n.Fun).(*ast.Ident); ok &&
					pass.Info.Uses[fid] == types.Universe.Lookup("new") && len(n.Args) == 1 {
					if tv, ok := pass.Info.Types[n.Args[0]]; ok && isRNGRand(tv.Type) {
						pass.Reportf("seedroot", n.Pos(),
							"new(rng.Rand) yields the unusable zero state; construct streams with rng.New or Rand.Fork")
					}
					return true
				}
				fn := calleeFunc(pass.Info, n)
				if fn == nil {
					return true
				}
				seedFunc := isPkgFunc(fn, rngPath, "New") && methodRecvNamed(fn) == nil ||
					isMethodOf(fn, rngPath, "Rand", "Fork")
				if seedFunc && len(n.Args) == 1 {
					checkSeedExpr(pass, n.Args[0])
				}
			}
			return true
		})
	}
}

func isRNGRand(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Rand" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == rngPath
}

// checkSeedExpr walks a seed/id argument and flags constructions from
// ambient state: any call outside package rng (conversions and len/cap
// excepted) and any read of a mutable package-level variable.
func checkSeedExpr(pass *Pass, expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, value-only
			}
			if fid, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if obj := pass.Info.Uses[fid]; obj == types.Universe.Lookup("len") || obj == types.Universe.Lookup("cap") {
					return true
				}
			}
			fn := calleeFunc(pass.Info, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != rngPath {
				pass.Reportf("seedroot", n.Pos(),
					"seed derived from a call outside radionet/internal/rng: seeds must come from explicit parameters, not ambient state")
				return false
			}
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() || v.Pkg() == nil {
				return true
			}
			if v.Parent() == v.Pkg().Scope() {
				pass.Reportf("seedroot", n.Pos(),
					"seed reads package-level variable %s: seeds must come from explicit parameters, not mutable package state", n.Name)
			}
		}
		return true
	})
}
