// The hotpath analyzer: functions annotated //radionet:hotpath run once
// per simulated round across millions of rounds; a single allocation or
// interface boxing there dominates the profile. The bench trajectory
// (PR 6) measures the symptom; this analyzer pins the cause.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath flags, inside functions whose doc comment carries the
// //radionet:hotpath directive:
//
//   - make, new, map/slice composite literals, &T{...} and func literals
//     — per-call heap allocation,
//   - append to a slice declared inside the function — a per-call grow,
//     unlike appends to receiver fields or parameters, which amortize
//     across rounds,
//   - passing or converting a concrete value to an interface — boxing
//     allocates and adds dynamic dispatch.
//
// //lint:alloc marks a reviewed exception (a cold branch, a once-only
// setup path inside an otherwise hot function).
var HotPath = &Analyzer{
	Name:      "hotpath",
	Doc:       "no per-call allocation or interface boxing in //radionet:hotpath functions",
	SkipTests: true,
	Run:       runHotPath,
}

func runHotPath(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "radionet:hotpath") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	bodyLo, bodyHi := fd.Body.Pos(), fd.Body.End()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf("alloc", n.Pos(), "func literal in hot path: closures allocate per call")
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf("alloc", n.Pos(), "map literal in hot path allocates per call")
			case *types.Slice:
				pass.Reportf("alloc", n.Pos(), "slice literal in hot path allocates per call")
			}
			// Struct and array value literals build on the stack; only
			// flag them when their address is taken (see UnaryExpr).
		case *ast.UnaryExpr:
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op.String() == "&" {
				pass.Reportf("alloc", cl.Pos(), "&composite literal in hot path escapes to the heap per call")
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, bodyLo, bodyHi)
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, bodyLo, bodyHi token.Pos) {
	// Builtins: make/new always allocate; append is a per-call grow when
	// the destination lives inside this function.
	if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch pass.Info.Uses[fid] {
		case types.Universe.Lookup("make"):
			pass.Reportf("alloc", call.Pos(), "make in hot path allocates per call; hoist the buffer to a reused field")
			return
		case types.Universe.Lookup("new"):
			pass.Reportf("alloc", call.Pos(), "new in hot path allocates per call; hoist to a reused field")
			return
		case types.Universe.Lookup("append"):
			if len(call.Args) > 0 {
				if dst := rootIdent(call.Args[0]); dst != nil {
					if obj := pass.Info.ObjectOf(dst); obj != nil && obj.Pos() >= bodyLo && obj.Pos() < bodyHi {
						pass.Reportf("alloc", call.Pos(),
							"append to %s, declared in this function: the slice regrows every call; append to a reused field or parameter instead", dst.Name)
					}
				}
			}
			return
		}
	}
	// Conversion to an interface boxes the operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0]) {
			pass.Reportf("alloc", call.Pos(), "conversion to interface in hot path boxes the value per call")
		}
		return
	}
	// Interface-typed parameters box concrete arguments.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice itself
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) && boxes(pass, arg) {
			pass.Reportf("alloc", arg.Pos(),
				"concrete value boxed into interface parameter in hot path")
		}
	}
}

// boxes reports whether passing arg to an interface slot allocates: the
// argument has a concrete (non-interface, non-nil) type.
func boxes(pass *Pass, arg ast.Expr) bool {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return !types.IsInterface(tv.Type)
}
