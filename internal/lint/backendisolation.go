// The backendisolation analyzer: transport backends under
// internal/radio/ are siblings behind the radio.Transport seam and must
// stay mutually unaware — each one talks to the engine contract, never
// to another backend.

package lint

import (
	"path"
	"regexp"
)

// BackendIsolation forbids a transport-backend package (any immediate
// subpackage of internal/radio) from importing a sibling backend. The
// seam's portability argument — every backend is exercised through the
// same Driver contract and is observationally interchangeable — only
// holds while backends share nothing but radionet/internal/radio itself;
// a cross-import would let one backend's round semantics lean on
// another's internals. The aggregator package internal/radio/backends is
// exempt as an importer: linking every backend into a binary is its
// whole job. There is no suppression: a backend cross-import has no
// sanctioned variant.
var BackendIsolation = &Analyzer{
	Name:      "backendisolation",
	Doc:       "transport backend packages under internal/radio/ must not import each other",
	SkipTests: true, // tests may drive a sibling for differential checks
	Run:       runBackendIsolation,
}

// backendPathRE matches an immediate subpackage of an internal/radio
// directory — the backend namespace. The parent engine package itself
// (".../internal/radio") does not match.
var backendPathRE = regexp.MustCompile(`(^|/)internal/radio/[^/]+$`)

// isBackendPkg reports whether pkgPath names a transport backend: an
// immediate internal/radio subpackage other than the backends
// aggregator.
func isBackendPkg(pkgPath string) bool {
	return backendPathRE.MatchString(pkgPath) && path.Base(pkgPath) != "backends"
}

func runBackendIsolation(pass *Pass) {
	if !isBackendPkg(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			imp := importPathOf(spec)
			if imp == pass.Pkg.Path() || !backendPathRE.MatchString(imp) {
				continue
			}
			pass.Reportf("", spec.Pos(),
				"backend package imports sibling backend %s: backends must stay mutually unaware and meet only at the radio.Transport seam", imp)
		}
	}
}
