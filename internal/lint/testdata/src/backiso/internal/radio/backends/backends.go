// Package backends mirrors the real aggregator: importing every backend
// is its whole job, so the analyzer must stay silent here.
package backends

import (
	_ "radionet/internal/lint/testdata/src/backiso/internal/radio/fakeback"
	_ "radionet/internal/lint/testdata/src/backiso/internal/radio/otherback"
)
