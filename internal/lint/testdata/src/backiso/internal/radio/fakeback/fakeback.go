// Package fakeback is the backendisolation-analyzer fixture: a backend
// that reaches into a sibling backend, which the analyzer must flag.
package fakeback

import (
	"fmt"

	"radionet/internal/lint/testdata/src/backiso/internal/radio/otherback" // want "imports sibling backend"
)

// Name leans on the sibling — the exact dependency shape the analyzer
// exists to forbid.
func Name() string { return fmt.Sprintf("fake-%s", otherback.Name()) }
