// Package otherback is a clean backendisolation fixture: a backend that
// imports nothing from the backend namespace.
package otherback

// Name identifies the fixture backend.
func Name() string { return "otherback" }
