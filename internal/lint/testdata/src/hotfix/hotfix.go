// Package hotfix is the hotpath-analyzer fixture: //radionet:hotpath
// functions must not allocate or box per call.
package hotfix

type buffers struct {
	scratch []int
}

//radionet:hotpath
func (b *buffers) hotAlloc(n int) {
	m := make([]int, n) // want "make in hot path"
	_ = m
	p := new(int) // want "new in hot path"
	_ = p
	lit := []int{1, 2}   // want "slice literal in hot path"
	lit = append(lit, n) // want "append to lit"
	b.scratch = append(b.scratch, n)
	kv := map[int]int{} // want "map literal in hot path"
	_ = kv
	f := func() {} // want "func literal in hot path"
	f()
	q := &buffers{} // want "composite literal in hot path escapes"
	_ = q
}

func sink(v any)      {}
func sinks(vs ...any) {}

//radionet:hotpath
func hotBox(x int) {
	sink(x)     // want "boxed into interface parameter"
	_ = any(x)  // want "conversion to interface"
	sinks(x, x) // want "boxed into interface parameter" "boxed into interface parameter"
}

//radionet:hotpath
func hotClean(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

//radionet:hotpath
func hotSanctioned(n int) []int {
	//lint:alloc fixture: one-time setup branch
	return make([]int, n)
}

// coldAlloc has no hotpath directive; its allocations are out of scope.
func coldAlloc(n int) []int {
	return make([]int, n)
}

// The delivery-kernel idioms below are the patterns the sharded engine
// relies on staying clean: word loops over preallocated bitsets, appends
// to struct-field scratch, and goroutine spawns via method values (a
// FuncLit spawn would allocate per round and is flagged).

type kernelShard struct {
	onair  []uint64
	dirty  []uint64
	rcv    []int32
	busy   int64
	notify func()
}

//radionet:hotpath
func (st *kernelShard) hotWordLoop(tx []int32) {
	for _, u := range tx {
		w := uint32(u) >> 6
		st.onair[w] |= 1 << (uint32(u) & 63)
		st.dirty[w>>6] |= 1 << (w & 63)
	}
	for w, bits := range st.onair {
		for bits != 0 {
			st.rcv = append(st.rcv, int32(w<<6)) // struct-field scratch: fine
			bits &= bits - 1
		}
	}
}

func (st *kernelShard) goWork() { st.busy++ }

//radionet:hotpath
func (st *kernelShard) hotSpawn() {
	go st.goWork() // method value: no per-round closure
	go func() {    // want "func literal in hot path"
		st.busy++
	}()
}

//radionet:hotpath
func (st *kernelShard) hotPanic(v int32) int32 {
	for w := range st.onair {
		if st.onair[w] != 0 {
			return int32(w)
		}
	}
	panic("kernel: unreachable") //lint:alloc fixture: invariant-violation panic off the hot path
}
