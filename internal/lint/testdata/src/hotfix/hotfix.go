// Package hotfix is the hotpath-analyzer fixture: //radionet:hotpath
// functions must not allocate or box per call.
package hotfix

type buffers struct {
	scratch []int
}

//radionet:hotpath
func (b *buffers) hotAlloc(n int) {
	m := make([]int, n) // want "make in hot path"
	_ = m
	p := new(int) // want "new in hot path"
	_ = p
	lit := []int{1, 2}   // want "slice literal in hot path"
	lit = append(lit, n) // want "append to lit"
	b.scratch = append(b.scratch, n)
	kv := map[int]int{} // want "map literal in hot path"
	_ = kv
	f := func() {} // want "func literal in hot path"
	f()
	q := &buffers{} // want "composite literal in hot path escapes"
	_ = q
}

func sink(v any)      {}
func sinks(vs ...any) {}

//radionet:hotpath
func hotBox(x int) {
	sink(x)     // want "boxed into interface parameter"
	_ = any(x)  // want "conversion to interface"
	sinks(x, x) // want "boxed into interface parameter" "boxed into interface parameter"
}

//radionet:hotpath
func hotClean(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

//radionet:hotpath
func hotSanctioned(n int) []int {
	//lint:alloc fixture: one-time setup branch
	return make([]int, n)
}

// coldAlloc has no hotpath directive; its allocations are out of scope.
func coldAlloc(n int) []int {
	return make([]int, n)
}
