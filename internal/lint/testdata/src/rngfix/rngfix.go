// Package rngfix is the rngdiscipline-analyzer fixture.
package rngfix

import "radionet/internal/rng"

var globalSeed uint64

func zeroValue() *rng.Rand {
	r := rng.Rand{} // want "rng.Rand composite literal"
	_ = r
	return new(rng.Rand) // want "unusable zero state"
}

func ambient() *rng.Rand {
	return rng.New(globalSeed) // want "package-level variable globalSeed"
}

func seedOf() uint64 { return 42 }

func derived() *rng.Rand {
	return rng.New(seedOf()) // want "call outside radionet/internal/rng"
}

func forkAmbient(master *rng.Rand) *rng.Rand {
	return master.Fork(globalSeed) // want "package-level variable globalSeed"
}

func clean(seed, id uint64) *rng.Rand {
	master := rng.New(seed)
	return master.Fork(id)
}

func hashed(seed uint64, v int) *rng.Rand {
	return rng.New(rng.Hash64(seed, uint64(v)))
}

func sanctioned() *rng.Rand {
	//lint:seedroot fixture: reviewed ambient seed
	return rng.New(globalSeed)
}
