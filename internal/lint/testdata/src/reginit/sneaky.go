package reginit

import "radionet/internal/protocol"

// Sneak registers from the wrong file and outside init: both rules fire.
func Sneak() {
	protocol.Register(protocol.Descriptor{ // want "outside register.go" "outside func init"
		Task:  protocol.Broadcast,
		Name:  "fixture-sneaky",
		Build: build,
	})
}
