// Package reginit is the registerinit-analyzer fixture. Its Register
// calls are only ever type-checked (the harness loads, never runs, the
// fixture), so they never reach the real registry.
package reginit

import "radionet/internal/protocol"

func build(p protocol.BuildParams) (protocol.Runner, error) { return nil, nil }

func init() {
	protocol.Register(protocol.Descriptor{
		Task:  protocol.Broadcast,
		Name:  "fixture-good",
		Build: build,
	})
}

func init() {
	deferred := func() {
		protocol.Register(protocol.Descriptor{ // want "outside func init"
			Task:  protocol.Broadcast,
			Name:  "fixture-closure",
			Build: build,
		})
	}
	deferred()
}
