// Package determ is the determinism-analyzer fixture: every // want
// comment is a diagnostic the analyzer must produce; everything else must
// stay silent.
package determ

import (
	"math/rand" // want "simulation package imports math/rand"
	"os"
	"sort"
	"time"
)

var _ = rand.Int

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now in a simulation package"
	return time.Since(start) // want "time.Since in a simulation package"
}

func sanctionedWall() time.Time {
	return time.Now() //lint:wallclock fixture: sanctioned telemetry read
}

func env() string {
	if v, ok := os.LookupEnv("RADIONET_DEBUG"); ok { // want "os.LookupEnv in a simulation package"
		return v
	}
	return os.Getenv("HOME") // want "os.Getenv in a simulation package"
}

func leaky(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order can escape"
		out = append(out, k)
		println(k)
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func counts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func constInsert(m map[string]int, set map[string]bool) {
	for k := range m {
		set[k] = true
	}
}

func annotated(m map[string]int) int {
	best := -1
	//lint:ordered fixture: max reduction; order cannot change the maximum
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// want:+2 "needs a reason"
//
//lint:ordered
func reasonless(m map[int]int) []int {
	var out []int
	for k := range m { // want "map iteration order can escape"
		out = append(out, k)
	}
	return out
}

// want:+2 "unknown suppression key"
//
//lint:nonsense because reasons
func unknownKey() {}
