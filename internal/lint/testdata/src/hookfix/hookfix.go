// Package hookfix is the hookneutrality-analyzer fixture: functions
// shaped like radio.RoundHook must observe without steering.
package hookfix

import (
	"sync/atomic"

	"radionet/internal/radio"
	"radionet/internal/rng"
)

var hits int

// RecordRound is assignable to radio.RoundHook, so the analyzer treats
// the declaration itself as a hook implementation.
func RecordRound(round int64, tx []int32, deliveries, collisions int) {
	hits++ // want "round hook writes hits"
}

func leakyHook(counter *int) radio.RoundHook {
	return func(round int64, tx []int32, deliveries, collisions int) {
		*counter++ // want "round hook writes counter"
	}
}

func engineHook(e *radio.Engine) radio.RoundHook {
	return func(round int64, tx []int32, deliveries, collisions int) {
		e.Step() // want "calls radio.Engine.Step"
	}
}

func rngHook(seed uint64) radio.RoundHook {
	return func(round int64, tx []int32, deliveries, collisions int) {
		_ = rng.New(seed) // want "uses internal/rng"
	}
}

func cleanHook(c *atomic.Int64) radio.RoundHook {
	return func(round int64, tx []int32, deliveries, collisions int) {
		c.Add(int64(deliveries))
		seen := len(tx) + collisions
		_ = seen
	}
}

func sanctionedHook(total *int) radio.RoundHook {
	return func(round int64, tx []int32, deliveries, collisions int) {
		*total += deliveries //lint:hookstate fixture: single-engine accumulator
	}
}

// notAHook has four parameters but not RoundHook's shape; its writes are
// out of scope.
func notAHook(counter *int, round int64, tx []int32, deliveries int) {
	*counter++
}
