// Package multicast implements k-message broadcast, the multi-message
// primitive behind Lemma 2.3's "one-to-all broadcast of k messages in
// O(D + k·log n + log⁶n) rounds": after the source injects k messages,
// every node must learn all of them.
//
// Two strategies are provided:
//
//   - Sequential: the classical reduction — k successive single-message
//     Decay broadcasts, Θ(k·(D+log n)·log n) rounds. This is the baseline
//     the pipelined bound is measured against.
//   - Pipelined: all messages propagate concurrently. Every informed node
//     participates in Decay phases continuously, each time transmitting a
//     uniformly random message from the set it currently knows (the
//     random-push epidemic). Messages behave as k epidemics sharing the
//     channel: completion is Θ(D·log n + k·log n·log k)-flavored —
//     additive in k rather than multiplicative in k·D, which is the
//     pipelining shape Lemma 2.3 claims (the paper's schedules sharpen
//     the constants; see DESIGN.md §3).
//
// Experiment T8 regenerates the comparison.
package multicast

import (
	"errors"

	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// KindMulti tags pipelined multicast transmissions. A carries the message
// value, B its index.
const KindMulti radio.Kind = 5

// node is the pipelined per-node state.
type node struct {
	levels int
	rnd    *rng.Rand
	prog   *radio.Progress // nodes knowing all k messages (shared)
	vals   []int64
	known  []bool
	count  int
	latest int // most recently learned index; -1 before any
}

func (nd *node) learn(idx int, val int64) {
	if idx >= 0 && idx < len(nd.known) && !nd.known[idx] {
		nd.known[idx] = true
		nd.vals[idx] = val
		nd.count++
		nd.latest = idx
		if nd.count == len(nd.known) {
			nd.prog.Add(1) // per-message counts only grow: counted once
		}
	}
}

// Dormant implements radio.Sleeper: a node that knows no message yet
// always listens, ignores silence, and consumes no randomness.
func (nd *node) Dormant() bool { return nd.count == 0 }

// IgnoresSilence implements radio.SilenceOblivious: Recv without a message
// is always a no-op.
func (nd *node) IgnoresSilence() bool { return true }

func (nd *node) Act(t int64) radio.Action {
	if nd.count == 0 {
		return radio.Listen
	}
	step := int(t % int64(nd.levels))
	if !nd.rnd.Bernoulli(decay.Prob(step)) {
		return radio.Listen
	}
	// Newest-biased push: with probability 1/2 forward the most recently
	// learned message (it is the one the frontier still lacks), otherwise
	// a uniformly random known one (back-fill for nodes that missed
	// earlier epidemics). Pure uniform push dilutes the frontier message
	// by a 1/k factor and loses the additive-in-k pipelining shape.
	idx := nd.latest
	if nd.rnd.Bernoulli(0.5) {
		pick := nd.rnd.Intn(nd.count)
		for i, ok := range nd.known {
			if !ok {
				continue
			}
			if pick == 0 {
				idx = i
				break
			}
			pick--
		}
	}
	return radio.Transmit(radio.Message{Kind: KindMulti, A: nd.vals[idx], B: int64(idx)})
}

func (nd *node) Recv(_ int64, msg *radio.Message, _ bool) {
	if msg == nil || msg.Kind != KindMulti {
		return
	}
	nd.learn(int(msg.B), msg.A)
}

// Pipelined is a running pipelined k-message broadcast.
type Pipelined struct {
	Engine *radio.Engine
	nodes  []*node
	k      int
	prog   radio.Progress // completion tracker shared with the nodes
}

// NewPipelined builds a pipelined broadcast of msgs from src on g.
func NewPipelined(g *graph.Graph, seed uint64, src int, msgs []int64) (*Pipelined, error) {
	if len(msgs) == 0 {
		return nil, errors.New("multicast: no messages")
	}
	if src < 0 || src >= g.N() {
		return nil, errors.New("multicast: source out of range")
	}
	master := rng.New(seed)
	l := decay.Levels(g.N())
	p := &Pipelined{nodes: make([]*node, g.N()), k: len(msgs)}
	p.prog = *radio.NewProgress(int64(g.N()))
	rn := make([]radio.Node, g.N())
	for v := range p.nodes {
		p.nodes[v] = &node{
			levels: l,
			rnd:    master.Fork(uint64(v)),
			prog:   &p.prog,
			vals:   make([]int64, len(msgs)),
			known:  make([]bool, len(msgs)),
			latest: -1,
		}
		rn[v] = p.nodes[v]
	}
	for i, m := range msgs {
		p.nodes[src].learn(i, m)
	}
	p.Engine = radio.NewEngine(g, rn)
	return p, nil
}

// Done reports whether every node knows all k messages. O(1): nodes report
// their k-th delivery to the shared radio.Progress inside learn.
func (p *Pipelined) Done() bool { return p.prog.Done() }

// doneFullScan is the O(n) reference implementation of Done, kept for the
// equivalence tests.
func (p *Pipelined) doneFullScan() bool {
	for _, nd := range p.nodes {
		if nd.count != p.k {
			return false
		}
	}
	return true
}

// KnownCounts returns how many messages each node currently knows.
func (p *Pipelined) KnownCounts() []int {
	out := make([]int, len(p.nodes))
	for i, nd := range p.nodes {
		out[i] = nd.count
	}
	return out
}

// Run executes until completion or maxRounds.
func (p *Pipelined) Run(maxRounds int64) (int64, bool) {
	return p.Engine.RunUntil(maxRounds, &p.prog)
}

// Sequential runs k single-message Decay broadcasts back to back and
// returns the total rounds, the total engine transmissions, and whether
// all completed. Each broadcast runs until globally complete
// (oracle-sequenced), so the total is exactly the classical reduction's
// cost on this instance.
func Sequential(g *graph.Graph, seed uint64, src int, msgs []int64, perMsgBudget int64) (rounds, tx int64, done bool) {
	if perMsgBudget <= 0 {
		l := int64(decay.Levels(g.N()))
		perMsgBudget = 40 * (int64(g.N()) + l) * l
	}
	for i, m := range msgs {
		bc := decay.NewBroadcast(g, decay.Config{}, seed+uint64(i), map[int]int64{src: m})
		r, ok := bc.Run(perMsgBudget)
		rounds += r
		tx += bc.Engine.Metrics.Transmissions
		if !ok {
			return rounds, tx, false
		}
	}
	return rounds, tx, true
}
