package multicast

import (
	"fmt"

	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/protocol"
)

// This file registers the k-message broadcast strategies under the
// "multicast" task: the pipelined random-push epidemic (Lemma 2.3's
// additive-in-k shape) and the classical k-sequential-broadcasts
// reduction it is measured against. Campaign trials seed the task with
// the standard {node 0: value 9} source; the runner broadcasts K
// consecutive message values starting there (K defaults to 8, tunable
// via multicast.Tuning).

// Tuning parameterizes the registered multicast runners.
type Tuning struct {
	// K is the number of messages to broadcast (default 8).
	K int
}

func (t Tuning) k() int {
	if t.K <= 0 {
		return 8
	}
	return t.K
}

func tuning(v any) (Tuning, error) {
	switch t := v.(type) {
	case nil:
		return Tuning{}, nil
	case Tuning:
		return t, nil
	default:
		return Tuning{}, fmt.Errorf("multicast: tuning must be multicast.Tuning, got %T", v)
	}
}

// trialMessages expands the single-source convention into the k-message
// set: values base..base+k-1 from the one source node.
func trialMessages(g *graph.Graph, sources map[int]int64, k int) (src int, msgs []int64, err error) {
	if len(sources) != 1 {
		return 0, nil, fmt.Errorf("multicast: needs exactly one source, got %d", len(sources))
	}
	var base int64
	//lint:ordered the map has exactly one entry (checked above)
	for s, v := range sources {
		src, base = s, v
	}
	msgs = make([]int64, k)
	for i := range msgs {
		msgs[i] = base + int64(i)
	}
	return src, msgs, nil
}

func init() {
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Multicast,
		Name:      "sequential",
		Label:     "k-sequential",
		Summary:   "classical reduction: k successive single-message Decay broadcasts, Θ(k·(D+log n)·log n)",
		BudgetDoc: "k · 40·(n+L)·L per message (explicit budgets split evenly per message)",
		Order:     10,
		Caps:      protocol.Caps{Bulk: true},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			if p.Faults != nil {
				return nil, fmt.Errorf("multicast: sequential does not support fault plans (each broadcast restarts the round clock)")
			}
			t, err := tuning(p.Tuning)
			if err != nil {
				return nil, err
			}
			src, msgs, err := trialMessages(p.G, p.Sources, t.k())
			if err != nil {
				return nil, err
			}
			return sequentialRunner{g: p.G, seed: p.Seed, src: src, msgs: msgs}, nil
		},
	})
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Multicast,
		Name:      "pipelined",
		Aliases:   []string{"epidemic"},
		Label:     "pipelined",
		Summary:   "Lemma 2.3-shaped random-push epidemic: all k messages propagate concurrently, additive in k",
		BudgetDoc: "20·(D + k·L)·L",
		Order:     20,
		Caps:      protocol.Caps{Transport: true},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			if p.Faults != nil {
				return nil, fmt.Errorf("multicast: pipelined does not support fault plans yet")
			}
			t, err := tuning(p.Tuning)
			if err != nil {
				return nil, err
			}
			src, msgs, err := trialMessages(p.G, p.Sources, t.k())
			if err != nil {
				return nil, err
			}
			pl, err := NewPipelined(p.G, p.Seed, src, msgs)
			if err != nil {
				return nil, err
			}
			p.ApplyEngine(pl.Engine)
			l := int64(decay.Levels(p.G.N()))
			def := 20 * (int64(p.D) + int64(len(msgs))*l) * l
			return pipelinedRunner{p: pl, def: def}, nil
		},
	})
}

type pipelinedRunner struct {
	p   *Pipelined
	def int64
}

// DefaultBudget implements protocol.Budgeted.
func (r pipelinedRunner) DefaultBudget() int64 { return r.def }

func (r pipelinedRunner) Run(budget int64) protocol.Result {
	if budget <= 0 {
		budget = r.def
	}
	rounds, done := r.p.Run(budget)
	return protocol.Result{
		Rounds:      rounds,
		Tx:          r.p.Engine.Metrics.Transmissions,
		Done:        done,
		Reached:     int(r.p.prog.Count()),
		ReachTarget: int(r.p.prog.Target()),
	}
}

type sequentialRunner struct {
	g    *graph.Graph
	seed uint64
	src  int
	msgs []int64
}

func (r sequentialRunner) Run(budget int64) protocol.Result {
	perMsg := int64(0)
	if budget > 0 {
		perMsg = budget / int64(len(r.msgs))
		if perMsg < 1 {
			perMsg = 1
		}
	}
	rounds, tx, done := Sequential(r.g, r.seed, r.src, r.msgs, perMsg)
	return protocol.Result{Rounds: rounds, Tx: tx, Done: done}
}
