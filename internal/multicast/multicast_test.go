package multicast

import (
	"testing"

	"radionet/internal/graph"
)

func msgs(k int) []int64 {
	out := make([]int64, k)
	for i := range out {
		out[i] = int64(1000 + i)
	}
	return out
}

func TestPipelinedCompletes(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(30),
		graph.Grid(6, 10),
		graph.PathOfCliques(5, 5),
	} {
		p, err := NewPipelined(g, 3, 0, msgs(8))
		if err != nil {
			t.Fatal(err)
		}
		rounds, done := p.Run(1 << 22)
		if !done {
			t.Fatalf("%v: pipelined multicast incomplete after %d rounds", g, rounds)
		}
		for v, nd := range p.nodes {
			for i, m := range msgs(8) {
				if nd.vals[i] != m {
					t.Fatalf("%v: node %d message %d = %d, want %d", g, v, i, nd.vals[i], m)
				}
			}
		}
	}
}

func TestPipelinedValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := NewPipelined(g, 1, 0, nil); err == nil {
		t.Fatal("empty message set accepted")
	}
	if _, err := NewPipelined(g, 1, 9, msgs(2)); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestPipelinedSingleMessageMatchesBroadcast(t *testing.T) {
	g := graph.Path(40)
	p, err := NewPipelined(g, 7, 0, msgs(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, done := p.Run(1 << 20); !done {
		t.Fatal("k=1 multicast incomplete")
	}
}

func TestSequentialCompletes(t *testing.T) {
	g := graph.Grid(5, 8)
	rounds, tx, done := Sequential(g, 11, 0, msgs(4), 0)
	if !done {
		t.Fatalf("sequential multicast incomplete after %d rounds", rounds)
	}
	if rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
	if tx <= 0 {
		t.Fatal("no transmissions recorded")
	}
}

func TestKnownCountsMonotone(t *testing.T) {
	g := graph.Path(20)
	p, err := NewPipelined(g, 5, 0, msgs(4))
	if err != nil {
		t.Fatal(err)
	}
	prev := p.KnownCounts()
	for i := 0; i < 500; i++ {
		p.Engine.Step()
		cur := p.KnownCounts()
		for v := range cur {
			if cur[v] < prev[v] {
				t.Fatalf("node %d known count decreased", v)
			}
		}
		prev = cur
	}
}

// TestPipeliningBeatsSequentialForManyMessages is the Lemma 2.3 shape:
// additive-in-k pipelining vs multiplicative-in-k sequential.
func TestPipeliningBeatsSequentialForManyMessages(t *testing.T) {
	g := graph.Path(48)
	k := 16
	p, err := NewPipelined(g, 9, 0, msgs(k))
	if err != nil {
		t.Fatal(err)
	}
	pr, pdone := p.Run(1 << 24)
	sr, _, sdone := Sequential(g, 9, 0, msgs(k), 0)
	if !pdone || !sdone {
		t.Fatalf("incomplete: pipelined=%v sequential=%v", pdone, sdone)
	}
	if pr >= sr {
		t.Fatalf("pipelined (%d) not faster than sequential (%d) at k=%d", pr, sr, k)
	}
}
