package multicast

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// Incremental Done (nodes report their k-th delivery to the shared
// radio.Progress) must agree with the O(n) reference scan after every
// round, on randomized graphs and seeds.
func TestDoneMatchesFullScanEveryRound(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		r := rng.New(seed)
		graphs := []*graph.Graph{
			graph.RandomTree(40, r.Fork(1)),
			graph.Gnp(60, 0.07, r.Fork(2)),
			graph.Grid(5, 8),
		}
		for _, g := range graphs {
			p, err := NewPipelined(g, seed, 0, []int64{3, 1, 4, 1, 5})
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 1<<14; round++ {
				inc, ref := p.Done(), p.doneFullScan()
				if inc != ref {
					t.Fatalf("%s seed=%d round %d: incremental Done=%v, full scan=%v",
						g, seed, round, inc, ref)
				}
				if ref {
					break
				}
				p.Engine.Step()
			}
			if !p.doneFullScan() {
				t.Fatalf("%s seed=%d: pipelined multicast did not complete", g, seed)
			}
			for v, c := range p.KnownCounts() {
				if c != 5 {
					t.Fatalf("%s seed=%d: node %d knows %d/5 messages after Done", g, seed, v, c)
				}
			}
		}
	}
}
