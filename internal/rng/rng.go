// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every randomized component of the simulator.
//
// Reproducibility is a core requirement: an experiment run is fully
// determined by a single master seed. Each node of a simulated radio
// network, and each logical subsystem (clustering, schedules, protocol
// lanes), derives an independent stream from the master seed via Fork, so
// adding or removing one consumer never perturbs the randomness seen by
// another.
//
// The generator is xoshiro256** seeded through SplitMix64, the standard
// construction recommended by the xoshiro authors. It is not
// cryptographically secure; it is fast, has a 2^256-1 period, and passes
// BigCrush, which is what a discrete-event simulator needs.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for stream derivation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic pseudo-random stream. The zero value is not
// usable; construct streams with New or Fork.
type Rand struct {
	s [4]uint64
}

// New returns a stream derived from seed. Distinct seeds yield
// (statistically) independent streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Fork derives an independent child stream identified by id. Forking with
// the same id twice yields the same stream; distinct ids yield independent
// streams. Fork does not advance the parent.
func (r *Rand) Fork(id uint64) *Rand {
	// Mix the parent state with the id through SplitMix64 so that child
	// streams are decorrelated from the parent and from each other.
	sm := r.s[0] ^ (r.s[1] << 1) ^ (r.s[2] >> 1) ^ r.s[3] ^ (id * 0xd1342543de82ef95)
	_ = splitMix64(&sm)
	return New(splitMix64(&sm) ^ id)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a uniformly random non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0,
// mirroring math/rand.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly random int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed variate with rate beta
// (mean 1/beta). It panics if beta <= 0.
func (r *Rand) Exp(beta float64) float64 {
	if beta <= 0 {
		panic("rng: Exp called with beta <= 0")
	}
	// Inverse CDF; 1-Float64() is in (0, 1] so Log never sees zero.
	return -math.Log(1-r.Float64()) / beta
}

// Hash64 deterministically mixes the given words into a single 64-bit
// value. Protocols use it to derive shared per-cluster coins: every member
// of a cluster computes the same hash of (seed, cluster, epoch) and hence
// the same coin, modeling randomness distributed by the cluster center
// during precomputation.
func Hash64(words ...uint64) uint64 {
	state := uint64(0x6a09e667f3bcc909)
	for _, w := range words {
		state ^= w
		_ = splitMix64(&state)
	}
	return splitMix64(&state)
}

// HashFloat maps Hash64 of the words to a uniform float64 in [0, 1).
func HashFloat(words ...uint64) float64 {
	return float64(Hash64(words...)>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
