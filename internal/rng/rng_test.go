package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestForkDeterministicAndIndependent(t *testing.T) {
	parent := New(7)
	c1a := parent.Fork(3)
	c1b := parent.Fork(3)
	c2 := parent.Fork(4)
	for i := 0; i < 100; i++ {
		v1a, v1b, v2 := c1a.Uint64(), c1b.Uint64(), c2.Uint64()
		if v1a != v1b {
			t.Fatalf("same fork id produced different streams at step %d", i)
		}
		if v1a == v2 {
			t.Fatalf("different fork ids collided at step %d", i)
		}
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Fork(1)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fork advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := New(19)
	for _, beta := range []float64{0.1, 1, 5} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Exp(beta)
			if v < 0 {
				t.Fatalf("Exp(%v) returned negative %v", beta, v)
			}
			sum += v
		}
		mean := sum / n
		want := 1 / beta
		if math.Abs(mean-want)/want > 0.05 {
			t.Fatalf("Exp(%v) mean = %v, want ~%v", beta, mean, want)
		}
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) frequency = %v", freq)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(37)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: %v", xs)
	}
}

func TestUint64Uniformity(t *testing.T) {
	// Chi-square-ish sanity check on the top 4 bits.
	r := New(41)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	want := n / 16
	for b, c := range buckets {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", b, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exp(0.1)
	}
	_ = sink
}
