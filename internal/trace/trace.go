// Package trace records per-round channel activity of a radio simulation
// and renders compact text reports: how busy the channel was over time,
// how much of the traffic was lost to collisions, and which nodes
// transmitted most. It attaches to an engine via the RoundHook.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"radionet/internal/radio"
)

// Sample is one recorded round.
type Sample struct {
	Transmitters int
	Deliveries   int
	Collisions   int
}

// Recorder accumulates round samples and per-node transmission counts.
// The zero value is ready to use; attach it with Attach.
type Recorder struct {
	Samples []Sample
	PerNode map[int32]int64
}

// Attach installs the recorder on the engine, replacing any previous
// hook, and returns the recorder for chaining.
func (r *Recorder) Attach(e *radio.Engine) *Recorder {
	e.Hook = r.HookFunc()
	return r
}

// HookFunc returns a RoundHook that records into r, for engines the
// caller cannot reach directly (e.g. behind the public facade).
func (r *Recorder) HookFunc() radio.RoundHook {
	if r.PerNode == nil {
		r.PerNode = make(map[int32]int64)
	}
	return func(_ int64, tx []int32, deliveries, collisions int) {
		r.Samples = append(r.Samples, Sample{
			Transmitters: len(tx),
			Deliveries:   deliveries,
			Collisions:   collisions,
		})
		for _, v := range tx {
			r.PerNode[v]++
		}
	}
}

// Rounds returns the number of recorded rounds.
func (r *Recorder) Rounds() int { return len(r.Samples) }

// Totals returns the summed transmitters, deliveries and collisions.
func (r *Recorder) Totals() (tx, deliveries, collisions int64) {
	for _, s := range r.Samples {
		tx += int64(s.Transmitters)
		deliveries += int64(s.Deliveries)
		collisions += int64(s.Collisions)
	}
	return tx, deliveries, collisions
}

// Busiest returns the k nodes with the most transmissions, busiest first.
func (r *Recorder) Busiest(k int) []struct {
	Node int32
	Tx   int64
} {
	type nt struct {
		Node int32
		Tx   int64
	}
	all := make([]nt, 0, len(r.PerNode))
	for v, c := range r.PerNode {
		all = append(all, nt{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Tx != all[j].Tx {
			return all[i].Tx > all[j].Tx
		}
		return all[i].Node < all[j].Node
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]struct {
		Node int32
		Tx   int64
	}, k)
	for i := 0; i < k; i++ {
		out[i] = struct {
			Node int32
			Tx   int64
		}{all[i].Node, all[i].Tx}
	}
	return out
}

const sparks = " .:-=+*#%@"

// Timeline renders channel load (transmitters per round) as a sparkline
// of the given width, bucketing rounds evenly.
func (r *Recorder) Timeline(width int) string {
	if width <= 0 || len(r.Samples) == 0 {
		return ""
	}
	if width > len(r.Samples) {
		width = len(r.Samples)
	}
	buckets := make([]float64, width)
	per := float64(len(r.Samples)) / float64(width)
	max := 0.0
	for b := range buckets {
		lo := int(float64(b) * per)
		hi := int(float64(b+1) * per)
		if hi > len(r.Samples) {
			hi = len(r.Samples)
		}
		sum := 0.0
		for _, s := range r.Samples[lo:hi] {
			sum += float64(s.Transmitters)
		}
		if hi > lo {
			buckets[b] = sum / float64(hi-lo)
		}
		if buckets[b] > max {
			max = buckets[b]
		}
	}
	var sb strings.Builder
	for _, v := range buckets {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparks)-1))
		}
		sb.WriteByte(sparks[idx])
	}
	return sb.String()
}

// Report writes a human-readable activity summary.
func (r *Recorder) Report(w io.Writer) error {
	tx, del, col := r.Totals()
	var sb strings.Builder
	fmt.Fprintf(&sb, "rounds:        %d\n", r.Rounds())
	fmt.Fprintf(&sb, "transmissions: %d\n", tx)
	fmt.Fprintf(&sb, "deliveries:    %d\n", del)
	fmt.Fprintf(&sb, "collisions:    %d (listener-rounds)\n", col)
	if tx > 0 {
		fmt.Fprintf(&sb, "deliveries/tx: %.2f\n", float64(del)/float64(tx))
	}
	fmt.Fprintf(&sb, "channel load:  [%s]\n", r.Timeline(64))
	if top := r.Busiest(5); len(top) > 0 {
		fmt.Fprintf(&sb, "busiest nodes:")
		for _, b := range top {
			fmt.Fprintf(&sb, " %d(%d)", b.Node, b.Tx)
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
