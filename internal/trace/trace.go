// Package trace records per-round channel activity of a radio simulation
// and renders compact text reports: how busy the channel was over time,
// how much of the traffic was lost to collisions, and which nodes
// transmitted most. It attaches to an engine via the RoundHook.
package trace

import (
	"cmp"
	"fmt"
	"io"
	"slices"
	"strings"

	"radionet/internal/radio"
)

// Sample is one recorded bucket of rounds: the summed transmitter,
// delivery and collision counts over the rounds it covers. While the
// recorder is below its sample cap each Sample covers exactly one round;
// past the cap, adjacent buckets merge pairwise (see MaxSamples), so a
// Sample covers Scale() rounds and all sums stay exact.
type Sample struct {
	Transmitters int
	Deliveries   int
	Collisions   int
}

func (s Sample) add(o Sample) Sample {
	return Sample{
		Transmitters: s.Transmitters + o.Transmitters,
		Deliveries:   s.Deliveries + o.Deliveries,
		Collisions:   s.Collisions + o.Collisions,
	}
}

// DefaultMaxSamples is the sample cap applied when MaxSamples is 0: small
// enough that a multi-million-round n=1e5 run stays at ~100KB of samples,
// large enough that a 64-column Timeline has dozens of buckets per cell.
const DefaultMaxSamples = 4096

// Recorder accumulates round samples and per-node transmission counts.
// The zero value is ready to use; attach it with Attach. Memory is
// bounded: Samples holds at most MaxSamples buckets (rounds are merged
// pairwise past the cap, keeping Totals and Rounds exact), and PerNode
// has one entry per node that ever transmitted.
type Recorder struct {
	Samples []Sample
	PerNode map[int32]int64
	// MaxSamples caps len(Samples); 0 selects DefaultMaxSamples. When a
	// new round would exceed the cap, adjacent buckets merge pairwise and
	// the per-bucket round count doubles — totals stay exact, memory
	// stays O(MaxSamples) for arbitrarily long runs.
	MaxSamples int

	scale int64 // rounds per full bucket (power of two; 0 = not started)
	total int64 // exact recorded round count
	fill  int64 // rounds accumulated in the last bucket
}

// Attach installs the recorder on the engine — composing with any
// already-installed hook via radio.ChainHooks, never replacing it — and
// returns the recorder for chaining.
func (r *Recorder) Attach(e *radio.Engine) *Recorder {
	e.AddHook(r.HookFunc())
	return r
}

// HookFunc returns a RoundHook that records into r, for engines the
// caller cannot reach directly (e.g. behind the public facade).
func (r *Recorder) HookFunc() radio.RoundHook {
	if r.PerNode == nil {
		r.PerNode = make(map[int32]int64)
	}
	return func(_ int64, tx []int32, deliveries, collisions int) {
		r.record(Sample{Transmitters: len(tx), Deliveries: deliveries, Collisions: collisions})
		for _, v := range tx {
			r.PerNode[v]++ //lint:hookstate single-engine recorder; Recorder is documented non-concurrent
		}
	}
}

func (r *Recorder) sampleCap() int {
	if r.MaxSamples > 0 {
		return r.MaxSamples
	}
	return DefaultMaxSamples
}

// record folds one round into the bucket structure.
func (r *Recorder) record(s Sample) {
	if r.scale == 0 {
		r.scale = 1
	}
	if len(r.Samples) > 0 && r.fill == r.scale && len(r.Samples) >= r.sampleCap() {
		r.compact()
	}
	if len(r.Samples) == 0 || r.fill == r.scale {
		r.Samples = append(r.Samples, Sample{})
		r.fill = 0
	}
	r.Samples[len(r.Samples)-1] = r.Samples[len(r.Samples)-1].add(s)
	r.fill++
	r.total++
}

// compact merges adjacent sample pairs and doubles the bucket scale.
// Called only when every bucket is full, so the merged buckets cover
// exactly the new scale — except an odd tail bucket, which stays
// half-full and absorbs the next scale/2 rounds.
func (r *Recorder) compact() {
	n := len(r.Samples)
	for i := 0; i+1 < n; i += 2 {
		r.Samples[i/2] = r.Samples[i].add(r.Samples[i+1])
	}
	if n%2 == 1 {
		r.Samples[n/2] = r.Samples[n-1]
	}
	r.Samples = r.Samples[:(n+1)/2]
	r.scale *= 2
	if n%2 == 1 {
		r.fill = r.scale / 2
	} else {
		r.fill = r.scale
	}
}

// Scale returns the number of rounds each full Sample bucket covers (1
// until the sample cap is first reached; the last bucket may be partial).
func (r *Recorder) Scale() int64 {
	if r.scale == 0 {
		return 1
	}
	return r.scale
}

// Rounds returns the exact number of recorded rounds.
func (r *Recorder) Rounds() int { return int(r.total) }

// Totals returns the summed transmitters, deliveries and collisions.
// Totals are exact regardless of downsampling.
func (r *Recorder) Totals() (tx, deliveries, collisions int64) {
	for _, s := range r.Samples {
		tx += int64(s.Transmitters)
		deliveries += int64(s.Deliveries)
		collisions += int64(s.Collisions)
	}
	return tx, deliveries, collisions
}

// Busiest returns the k nodes with the most transmissions, busiest first.
func (r *Recorder) Busiest(k int) []struct {
	Node int32
	Tx   int64
} {
	type nt struct {
		Node int32
		Tx   int64
	}
	all := make([]nt, 0, len(r.PerNode))
	for v, c := range r.PerNode {
		all = append(all, nt{v, c})
	}
	slices.SortFunc(all, func(a, b nt) int {
		if a.Tx != b.Tx {
			return cmp.Compare(b.Tx, a.Tx) // busiest first
		}
		return cmp.Compare(a.Node, b.Node)
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]struct {
		Node int32
		Tx   int64
	}, k)
	for i := 0; i < k; i++ {
		out[i] = struct {
			Node int32
			Tx   int64
		}{all[i].Node, all[i].Tx}
	}
	return out
}

const sparks = " .:-=+*#%@"

// sampleRounds returns the number of rounds Samples[i] covers (the last
// bucket may be partial).
func (r *Recorder) sampleRounds(i int) int64 {
	if i == len(r.Samples)-1 && r.fill > 0 {
		return r.fill
	}
	return r.Scale()
}

// Timeline renders channel load (mean transmitters per round) as a
// sparkline of the given width, bucketing samples evenly.
func (r *Recorder) Timeline(width int) string {
	if width <= 0 || len(r.Samples) == 0 {
		return ""
	}
	if width > len(r.Samples) {
		width = len(r.Samples)
	}
	buckets := make([]float64, width)
	per := float64(len(r.Samples)) / float64(width)
	max := 0.0
	for b := range buckets {
		lo := int(float64(b) * per)
		hi := int(float64(b+1) * per)
		if hi > len(r.Samples) {
			hi = len(r.Samples)
		}
		sum, rounds := 0.0, int64(0)
		for i := lo; i < hi; i++ {
			sum += float64(r.Samples[i].Transmitters)
			rounds += r.sampleRounds(i)
		}
		if rounds > 0 {
			buckets[b] = sum / float64(rounds)
		}
		if buckets[b] > max {
			max = buckets[b]
		}
	}
	var sb strings.Builder
	for _, v := range buckets {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparks)-1))
		}
		sb.WriteByte(sparks[idx])
	}
	return sb.String()
}

// Report writes a human-readable activity summary.
func (r *Recorder) Report(w io.Writer) error {
	tx, del, col := r.Totals()
	var sb strings.Builder
	fmt.Fprintf(&sb, "rounds:        %d\n", r.Rounds())
	fmt.Fprintf(&sb, "transmissions: %d\n", tx)
	fmt.Fprintf(&sb, "deliveries:    %d\n", del)
	fmt.Fprintf(&sb, "collisions:    %d (listener-rounds)\n", col)
	if tx > 0 {
		fmt.Fprintf(&sb, "deliveries/tx: %.2f\n", float64(del)/float64(tx))
	}
	fmt.Fprintf(&sb, "channel load:  [%s]\n", r.Timeline(64))
	if top := r.Busiest(5); len(top) > 0 {
		fmt.Fprintf(&sb, "busiest nodes:")
		for _, b := range top {
			fmt.Fprintf(&sb, " %d(%d)", b.Node, b.Tx)
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
