package trace

import (
	"bytes"
	"strings"
	"testing"

	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/radio"
)

func record(t *testing.T) *Recorder {
	t.Helper()
	g := graph.Grid(5, 8)
	bc := decay.NewBroadcast(g, decay.Config{}, 3, map[int]int64{0: 9})
	rec := (&Recorder{}).Attach(bc.Engine)
	if _, done := bc.Run(1 << 20); !done {
		t.Fatal("broadcast incomplete")
	}
	return rec
}

func TestRecorderCountsMatchMetrics(t *testing.T) {
	g := graph.Grid(5, 8)
	bc := decay.NewBroadcast(g, decay.Config{}, 3, map[int]int64{0: 9})
	rec := (&Recorder{}).Attach(bc.Engine)
	bc.Run(1 << 20)
	tx, del, col := rec.Totals()
	m := bc.Engine.Metrics
	if tx != m.Transmissions || del != m.Deliveries || col != m.Collisions {
		t.Fatalf("recorder (%d,%d,%d) != metrics (%d,%d,%d)",
			tx, del, col, m.Transmissions, m.Deliveries, m.Collisions)
	}
	if int64(rec.Rounds()) != m.Rounds {
		t.Fatalf("rounds %d != %d", rec.Rounds(), m.Rounds)
	}
}

func TestBusiest(t *testing.T) {
	rec := record(t)
	top := rec.Busiest(3)
	if len(top) == 0 {
		t.Fatal("no busiest nodes")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Tx > top[i-1].Tx {
			t.Fatal("busiest not sorted")
		}
	}
	// Asking for more than exist is fine.
	all := rec.Busiest(1 << 20)
	if len(all) != len(rec.PerNode) {
		t.Fatalf("Busiest(max) returned %d of %d", len(all), len(rec.PerNode))
	}
}

func TestTimeline(t *testing.T) {
	rec := record(t)
	line := rec.Timeline(40)
	if len(line) != 40 {
		t.Fatalf("timeline width %d, want 40", len(line))
	}
	if strings.TrimSpace(line) == "" {
		t.Fatal("timeline is blank despite traffic")
	}
	if rec.Timeline(0) != "" {
		t.Fatal("zero-width timeline should be empty")
	}
	if (&Recorder{}).Timeline(10) != "" {
		t.Fatal("empty recorder timeline should be empty")
	}
}

func TestReport(t *testing.T) {
	rec := record(t)
	var buf bytes.Buffer
	if err := rec.Report(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rounds:", "transmissions:", "deliveries/tx:", "busiest nodes:"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
}

func TestHookSliceNotRetained(t *testing.T) {
	// The engine reuses the transmitters slice; the recorder must not
	// alias it. Two beacons guarantee a nonempty slice each round.
	g := graph.Path(3)
	e := radio.NewEngine(g, []radio.Node{
		beacon{}, radio.Silent{}, beacon{},
	})
	rec := (&Recorder{}).Attach(e)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if rec.PerNode[0] != 10 || rec.PerNode[2] != 10 {
		t.Fatalf("per-node counts %v", rec.PerNode)
	}
}

type beacon struct{}

func (beacon) Act(int64) radio.Action           { return radio.Transmit(radio.Message{A: 1}) }
func (beacon) Recv(int64, *radio.Message, bool) {}

// TestAttachComposesWithInstalledHook is the hook-clobbering regression
// test on the trace side: Attach must chain with an already-installed
// engine hook, and both must observe every round.
func TestAttachComposesWithInstalledHook(t *testing.T) {
	g := graph.Path(3)
	e := radio.NewEngine(g, []radio.Node{beacon{}, radio.Silent{}, beacon{}})
	preInstalled := 0
	e.Hook = func(int64, []int32, int, int) { preInstalled++ }
	rec := (&Recorder{}).Attach(e)
	const rounds = 7
	for i := 0; i < rounds; i++ {
		e.Step()
	}
	if preInstalled != rounds {
		t.Fatalf("pre-installed hook saw %d rounds, want %d (clobbered by Attach?)", preInstalled, rounds)
	}
	if rec.Rounds() != rounds {
		t.Fatalf("recorder saw %d rounds, want %d", rec.Rounds(), rounds)
	}
}

// TestDownsamplingExactTotals drives a recorder far past its sample cap
// and checks the memory bound plus the exactness contract: Rounds and
// Totals never lose a count, whatever the compaction history.
func TestDownsamplingExactTotals(t *testing.T) {
	rec := &Recorder{MaxSamples: 64}
	hook := rec.HookFunc()
	const rounds = 100_000
	var wantTx, wantDel, wantCol int64
	ids := []int32{1, 2, 3}
	for i := 0; i < rounds; i++ {
		tx := ids[:1+i%3]
		del := i % 2
		col := i % 5
		wantTx += int64(len(tx))
		wantDel += int64(del)
		wantCol += int64(col)
		hook(int64(i), tx, del, col)
	}
	if len(rec.Samples) > 64 {
		t.Fatalf("samples grew to %d, cap 64", len(rec.Samples))
	}
	if rec.Rounds() != rounds {
		t.Fatalf("rounds = %d, want %d", rec.Rounds(), rounds)
	}
	tx, del, col := rec.Totals()
	if tx != wantTx || del != wantDel || col != wantCol {
		t.Fatalf("totals (%d,%d,%d) != exact (%d,%d,%d)", tx, del, col, wantTx, wantDel, wantCol)
	}
	if rec.Scale() < rounds/64 {
		t.Fatalf("scale = %d, want >= %d", rec.Scale(), rounds/64)
	}
	// Downsampled per-node counts stay exact too (they're per-node, not
	// per-round), and the report still renders.
	if rec.PerNode[1] != rounds {
		t.Fatalf("PerNode[1] = %d, want %d", rec.PerNode[1], rounds)
	}
	line := rec.Timeline(40)
	if len(line) != 40 {
		t.Fatalf("timeline width %d, want 40", len(line))
	}
	var buf bytes.Buffer
	if err := rec.Report(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rounds:        100000") {
		t.Fatalf("report rounds wrong:\n%s", buf.String())
	}
}

// TestDownsamplingOddCap exercises the odd-length compaction tail (the
// half-full bucket) across several doublings.
func TestDownsamplingOddCap(t *testing.T) {
	rec := &Recorder{MaxSamples: 7}
	hook := rec.HookFunc()
	const rounds = 1000
	for i := 0; i < rounds; i++ {
		hook(int64(i), []int32{0}, 1, 0)
	}
	if len(rec.Samples) > 7 {
		t.Fatalf("samples grew to %d, cap 7", len(rec.Samples))
	}
	if rec.Rounds() != rounds {
		t.Fatalf("rounds = %d, want %d", rec.Rounds(), rounds)
	}
	tx, del, _ := rec.Totals()
	if tx != rounds || del != rounds {
		t.Fatalf("totals (%d,%d) != (%d,%d)", tx, del, rounds, rounds)
	}
	// Every bucket's round coverage must sum to the exact round count.
	var covered int64
	for i := range rec.Samples {
		covered += rec.sampleRounds(i)
	}
	if covered != rounds {
		t.Fatalf("bucket coverage %d != rounds %d", covered, rounds)
	}
}
