package trace

import (
	"bytes"
	"strings"
	"testing"

	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/radio"
)

func record(t *testing.T) *Recorder {
	t.Helper()
	g := graph.Grid(5, 8)
	bc := decay.NewBroadcast(g, decay.Config{}, 3, map[int]int64{0: 9})
	rec := (&Recorder{}).Attach(bc.Engine)
	if _, done := bc.Run(1 << 20); !done {
		t.Fatal("broadcast incomplete")
	}
	return rec
}

func TestRecorderCountsMatchMetrics(t *testing.T) {
	g := graph.Grid(5, 8)
	bc := decay.NewBroadcast(g, decay.Config{}, 3, map[int]int64{0: 9})
	rec := (&Recorder{}).Attach(bc.Engine)
	bc.Run(1 << 20)
	tx, del, col := rec.Totals()
	m := bc.Engine.Metrics
	if tx != m.Transmissions || del != m.Deliveries || col != m.Collisions {
		t.Fatalf("recorder (%d,%d,%d) != metrics (%d,%d,%d)",
			tx, del, col, m.Transmissions, m.Deliveries, m.Collisions)
	}
	if int64(rec.Rounds()) != m.Rounds {
		t.Fatalf("rounds %d != %d", rec.Rounds(), m.Rounds)
	}
}

func TestBusiest(t *testing.T) {
	rec := record(t)
	top := rec.Busiest(3)
	if len(top) == 0 {
		t.Fatal("no busiest nodes")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Tx > top[i-1].Tx {
			t.Fatal("busiest not sorted")
		}
	}
	// Asking for more than exist is fine.
	all := rec.Busiest(1 << 20)
	if len(all) != len(rec.PerNode) {
		t.Fatalf("Busiest(max) returned %d of %d", len(all), len(rec.PerNode))
	}
}

func TestTimeline(t *testing.T) {
	rec := record(t)
	line := rec.Timeline(40)
	if len(line) != 40 {
		t.Fatalf("timeline width %d, want 40", len(line))
	}
	if strings.TrimSpace(line) == "" {
		t.Fatal("timeline is blank despite traffic")
	}
	if rec.Timeline(0) != "" {
		t.Fatal("zero-width timeline should be empty")
	}
	if (&Recorder{}).Timeline(10) != "" {
		t.Fatal("empty recorder timeline should be empty")
	}
}

func TestReport(t *testing.T) {
	rec := record(t)
	var buf bytes.Buffer
	if err := rec.Report(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rounds:", "transmissions:", "deliveries/tx:", "busiest nodes:"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
}

func TestHookSliceNotRetained(t *testing.T) {
	// The engine reuses the transmitters slice; the recorder must not
	// alias it. Two beacons guarantee a nonempty slice each round.
	g := graph.Path(3)
	e := radio.NewEngine(g, []radio.Node{
		beacon{}, radio.Silent{}, beacon{},
	})
	rec := (&Recorder{}).Attach(e)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if rec.PerNode[0] != 10 || rec.PerNode[2] != 10 {
		t.Fatalf("per-node counts %v", rec.PerNode)
	}
}

type beacon struct{}

func (beacon) Act(int64) radio.Action           { return radio.Transmit(radio.Message{A: 1}) }
func (beacon) Recv(int64, *radio.Message, bool) {}
