// Dense-adjacency bitset layer: per-node neighbor bitmasks for the
// high-degree vertices, so the radio engine's transmit-marking pass can OR
// whole 64-node words instead of walking a long CSR neighbor list. Low-
// degree vertices keep the CSR representation — a row costs O(n/64) words
// to scan, so it only beats the neighbor walk above a degree threshold.
package graph

import "math/bits"

// AdjBits is the dense-adjacency companion of a Graph: nodes whose degree
// is at least the threshold get a full neighbor bitmask (one bit per
// potential neighbor, ceil(n/64) words); all other nodes stay CSR-only.
// Built once per graph (Graph.DenseAdj caches it) and immutable after
// construction, so any number of engines may share one.
type AdjBits struct {
	words     int
	threshold int
	rowIdx    []int32  // node -> row number, -1 for CSR-only nodes
	bits      []uint64 // dense rows, rows*words, row r at bits[r*words:]
	rows      int
}

// DenseThreshold returns the degree above which a dense row pays off for
// an n-node graph: a row OR touches ceil(n/64) words, a CSR walk touches
// deg entries, so the crossover sits near n/64 (floored at 64 so tiny
// graphs never build rows that a short neighbor list beats). The resulting
// total row memory is bounded by 2m/threshold rows of n/64 words each,
// i.e. at most ~16m bytes — the same order as the CSR arrays themselves.
func DenseThreshold(n int) int {
	t := n / 64
	if t < 64 {
		t = 64
	}
	return t
}

// Words returns the number of 64-bit words per row: ceil(n/64).
func (a *AdjBits) Words() int { return a.words }

// Threshold returns the degree threshold rows were built with.
func (a *AdjBits) Threshold() int { return a.threshold }

// Rows returns the number of dense rows built.
func (a *AdjBits) Rows() int { return a.rows }

// Row returns node v's neighbor bitmask, or nil when v is CSR-only (its
// degree is below the threshold). The slice aliases the layer's storage
// and must not be modified. A nil AdjBits has no rows.
func (a *AdjBits) Row(v int) []uint64 {
	if a == nil || a.rowIdx[v] < 0 {
		return nil
	}
	r := int(a.rowIdx[v])
	return a.bits[r*a.words : (r+1)*a.words]
}

// NewAdjBits builds the dense layer for g with the given degree threshold
// (<= 0 selects DenseThreshold(g.N())).
func NewAdjBits(g *Graph, threshold int) *AdjBits {
	n := g.N()
	if threshold <= 0 {
		threshold = DenseThreshold(n)
	}
	a := &AdjBits{
		words:     (n + 63) / 64,
		threshold: threshold,
		rowIdx:    make([]int32, n),
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) >= threshold {
			a.rowIdx[v] = int32(a.rows)
			a.rows++
		} else {
			a.rowIdx[v] = -1
		}
	}
	if a.rows == 0 {
		return a
	}
	a.bits = make([]uint64, a.rows*a.words)
	for v := 0; v < n; v++ {
		r := a.rowIdx[v]
		if r < 0 {
			continue
		}
		row := a.bits[int(r)*a.words:]
		for _, u := range g.Neighbors(v) {
			row[u>>6] |= 1 << (uint(u) & 63)
		}
	}
	return a
}

// PopCount returns the number of set bits in row r of the layer — a
// checking helper (row popcounts must equal degrees).
func (a *AdjBits) popCount(row []uint64) int {
	c := 0
	for _, w := range row {
		c += bits.OnesCount64(w)
	}
	return c
}

// DenseAdj returns the graph's cached dense-adjacency layer, building it
// on first use with the DenseThreshold degree cutoff. Safe for concurrent
// callers (campaign trials share one Graph across workers); the layer is
// immutable once built.
func (g *Graph) DenseAdj() *AdjBits {
	g.denseOnce.Do(g.buildDense)
	return g.dense
}

func (g *Graph) buildDense() { g.dense = NewAdjBits(g, 0) }
