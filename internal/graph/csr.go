package graph

import (
	"fmt"
	"sort"
)

// FromCSR reconstructs a Graph directly from compressed-sparse-row arrays,
// validating every structural invariant the Builder would have established:
// offsets are monotone and span adj exactly, neighbor ids are in range with
// no self-loops, each neighbor list is strictly ascending (no duplicate
// edges, and HasEdge's binary search stays sound), and the adjacency is
// symmetric. The slices are adopted, not copied; the caller must not modify
// them afterwards. This is the trusted-decode seam for the precompute disk
// cache (internal/precompute): a cached file that fails any check here is
// treated as corrupt and rebuilt from source.
func FromCSR(name string, n int, off, adj []int32) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: FromCSR: negative node count %d", n)
	}
	if len(off) != n+1 {
		return nil, fmt.Errorf("graph: FromCSR: len(off) = %d, want n+1 = %d", len(off), n+1)
	}
	if off[0] != 0 {
		return nil, fmt.Errorf("graph: FromCSR: off[0] = %d, want 0", off[0])
	}
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return nil, fmt.Errorf("graph: FromCSR: off not monotone at %d (%d > %d)", v, off[v], off[v+1])
		}
	}
	if int(off[n]) != len(adj) {
		return nil, fmt.Errorf("graph: FromCSR: off[n] = %d, want len(adj) = %d", off[n], len(adj))
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: FromCSR: odd directed-edge count %d", len(adj))
	}
	g := &Graph{name: name, off: off, adj: adj}
	for v := 0; v < n; v++ {
		nb := adj[off[v]:off[v+1]]
		for i, w := range nb {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: FromCSR: neighbor %d of node %d out of range", w, v)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: FromCSR: self-loop at node %d", v)
			}
			if i > 0 && nb[i-1] >= w {
				return nil, fmt.Errorf("graph: FromCSR: neighbor list of node %d not strictly ascending", v)
			}
		}
		// Symmetry: every directed entry v->w must have its reverse w->v.
		// Both directions are checked — a backward-only stray entry (w < v
		// with no matching forward edge) would otherwise slip through.
		for _, w := range nb {
			if !hasSorted(adj[off[w]:off[w+1]], int32(v)) {
				return nil, fmt.Errorf("graph: FromCSR: edge (%d,%d) missing its reverse", v, w)
			}
		}
	}
	return g, nil
}

func hasSorted(nb []int32, v int32) bool {
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// CSR exposes the graph's raw offset and adjacency arrays for serialization
// (the precompute disk cache). The returned slices alias internal storage
// and must not be modified.
func (g *Graph) CSR() (off, adj []int32) { return g.off, g.adj }
