package graph

// Unreached marks nodes not reached by a BFS.
const Unreached int32 = -1

// BFS returns the distance in hops from src to every node, with Unreached
// for nodes in other components.
func (g *Graph) BFS(src int) []int32 {
	return g.MultiBFS([]int{src})
}

// MultiBFS returns, for every node, the hop distance to the nearest source.
// Nodes unreachable from all sources get Unreached.
func (g *Graph) MultiBFS(srcs []int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreached
	}
	queue := make([]int32, 0, len(srcs))
	for _, s := range srcs {
		if dist[s] == Unreached {
			dist[s] = 0
			queue = append(queue, int32(s))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Unreached {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// MultiBFSAlive is MultiBFS restricted to the subgraph induced by the
// alive mask: sources with alive[s] == false contribute nothing, dead
// nodes are never entered, and distances count alive hops only. It is the
// survivor-reachability primitive behind fault-scoped completion targets
// (a node belongs to a faulted run's completion target iff its distance
// here is not Unreached). len(alive) must be g.N().
func (g *Graph) MultiBFSAlive(srcs []int, alive []bool) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreached
	}
	queue := make([]int32, 0, len(srcs))
	for _, s := range srcs {
		if alive[s] && dist[s] == Unreached {
			dist[s] = 0
			queue = append(queue, int32(s))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Unreached && alive[w] {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// BFSTree returns (dist, parent) for a BFS from src. The parent of src and
// of unreachable nodes is -1. Ties are broken toward the smallest-id
// parent, so the tree (and every root-to-node path in it) is canonical:
// independent runs produce identical trees.
func (g *Graph) BFSTree(src int) (dist, parent []int32) {
	n := g.N()
	dist = make([]int32, n)
	parent = make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
		parent[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		// Neighbors are sorted ascending, and the queue pops lowest
		// discovery order first, so the first discoverer of a node is the
		// smallest-id eligible parent at the previous layer.
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Unreached {
				dist[w] = dv + 1
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return dist, parent
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreached {
			return false
		}
	}
	return true
}

// Eccentricity returns the largest hop distance from v to any node.
// It panics if the graph is disconnected.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	ecc := int32(0)
	for _, d := range dist {
		if d == Unreached {
			panic("graph: Eccentricity on disconnected graph")
		}
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}

// Diameter computes the exact diameter with an all-pairs BFS, O(n·m).
// It panics if the graph is disconnected. Use DiameterEstimate for large
// graphs.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(v); e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterEstimate returns a lower bound on the diameter obtained by
// iterated double sweeps, and is exact on trees. For the structured
// families used in the experiments it matches the true diameter. It panics
// if the graph is disconnected.
func (g *Graph) DiameterEstimate() int {
	if g.N() == 0 {
		return 0
	}
	// Double sweep: BFS from 0, then from the farthest node found, a few
	// times. Each sweep can only improve the bound.
	best := 0
	start := 0
	for sweep := 0; sweep < 4; sweep++ {
		dist := g.BFS(start)
		far, fd := start, int32(0)
		for v, d := range dist {
			if d == Unreached {
				panic("graph: DiameterEstimate on disconnected graph")
			}
			if d > fd {
				fd = d
				far = v
			}
		}
		if int(fd) > best {
			best = int(fd)
		}
		if far == start {
			break
		}
		start = far
	}
	return best
}

// ShortestPath returns the canonical shortest path from u to v, inclusive
// of both endpoints. The path is derived from the canonical BFS tree of u
// (smallest-id parent tie-breaking), matching the paper's "fix a canonical
// shortest path between each pair" convention. Returns nil if v is
// unreachable from u.
func (g *Graph) ShortestPath(u, v int) []int32 {
	dist, parent := g.BFSTree(u)
	if dist[v] == Unreached {
		return nil
	}
	path := make([]int32, dist[v]+1)
	cur := int32(v)
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = cur
		cur = parent[cur]
	}
	return path
}
