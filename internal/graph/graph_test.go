package graph

import (
	"testing"
	"testing/quick"

	"radionet/internal/rng"
)

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder("t", 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(2, 2) // self loop discarded
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatalf("unexpected degrees %v", g.SortedDegrees())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("t", 2).AddEdge(0, 2)
}

func TestHasEdge(t *testing.T) {
	g := Cycle(5)
	for i := 0; i < 5; i++ {
		if !g.HasEdge(i, (i+1)%5) {
			t.Fatalf("missing cycle edge %d-%d", i, (i+1)%5)
		}
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected chord 0-2")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := Complete(6)
	count := 0
	g.Edges(func(u, v int) bool {
		if u >= v {
			t.Fatalf("Edges yielded u=%d >= v=%d", u, v)
		}
		count++
		return true
	})
	if count != 15 {
		t.Fatalf("Edges yielded %d edges, want 15", count)
	}
	// Early stop.
	count = 0
	g.Edges(func(u, v int) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop yielded %d", count)
	}
}

func TestGeneratorShapes(t *testing.T) {
	tests := []struct {
		name    string
		g       *Graph
		n, m, d int // d = expected diameter, -1 to skip
	}{
		{"path", Path(10), 10, 9, 9},
		{"path1", Path(1), 1, 0, 0},
		{"cycle", Cycle(8), 8, 8, 4},
		{"cycleOdd", Cycle(9), 9, 9, 4},
		{"star", Star(7), 7, 6, 2},
		{"complete", Complete(5), 5, 10, 1},
		{"grid", Grid(3, 4), 12, 17, 5},
		{"gridRow", Grid(1, 6), 6, 5, 5},
		{"hypercube", Hypercube(4), 16, 32, 4},
		{"tree", BalancedTree(2, 3), 15, 14, 6},
		{"treeUnary", BalancedTree(1, 4), 5, 4, 4},
		{"cliquepath", PathOfCliques(4, 3), 12, 15, 7},
		{"cliquepath1", PathOfCliques(1, 5), 5, 10, 1},
		{"caterpillar", Caterpillar(5, 2), 15, 14, 6},
		{"dumbbell", Dumbbell(4, 3), 11, 16, 6},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.N(); got != tc.n {
				t.Errorf("N = %d, want %d", got, tc.n)
			}
			if got := tc.g.M(); got != tc.m {
				t.Errorf("M = %d, want %d", got, tc.m)
			}
			if !tc.g.IsConnected() {
				t.Error("not connected")
			}
			if tc.d >= 0 {
				if got := tc.g.Diameter(); got != tc.d {
					t.Errorf("Diameter = %d, want %d", got, tc.d)
				}
			}
		})
	}
}

func TestPathOfCliquesDiameterFormula(t *testing.T) {
	// Diameter of k cliques of size s >= 3 chained by bridges: one hop from
	// a non-port node to the exit port, k-1 bridge hops, one hop across
	// each of the k-2 intermediate cliques, one final hop to a non-port
	// node: 2k-1 in total.
	for _, k := range []int{1, 2, 3, 5, 8} {
		g := PathOfCliques(k, 4)
		want := 2*k - 1
		if k == 1 {
			want = 1
		}
		if got := g.Diameter(); got != want {
			t.Errorf("PathOfCliques(%d,4) diameter = %d, want %d", k, got, want)
		}
	}
}

func TestRandomGenerators(t *testing.T) {
	r := rng.New(1)
	t.Run("randtree", func(t *testing.T) {
		g := RandomTree(200, r.Fork(1))
		if g.N() != 200 || g.M() != 199 || !g.IsConnected() {
			t.Fatalf("bad random tree: %v connected=%v", g, g.IsConnected())
		}
	})
	t.Run("gnp", func(t *testing.T) {
		g := Gnp(300, 0.02, r.Fork(2))
		if g.N() != 300 || !g.IsConnected() {
			t.Fatalf("bad gnp: %v", g)
		}
		// Expected ~ 299 tree + 0.02*C(300,2) ≈ 1196 edges total.
		if g.M() < 600 || g.M() > 2500 {
			t.Fatalf("gnp edge count %d outside plausible range", g.M())
		}
	})
	t.Run("geometric", func(t *testing.T) {
		g := RandomGeometric(400, 0.08, r.Fork(3))
		if g.N() != 400 || !g.IsConnected() {
			t.Fatalf("bad geometric: %v", g)
		}
	})
	t.Run("regular", func(t *testing.T) {
		g := RandomRegular(100, 4, r.Fork(4))
		if !g.IsConnected() {
			t.Fatal("regular graph disconnected")
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != 4 {
				t.Fatalf("node %d degree %d, want 4", v, g.Degree(v))
			}
		}
	})
}

func TestBFSDistancesOnGrid(t *testing.T) {
	g := Grid(4, 5)
	dist := g.BFS(0)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if got := int(dist[r*5+c]); got != r+c {
				t.Fatalf("dist[%d,%d] = %d, want %d", r, c, got, r+c)
			}
		}
	}
}

func TestMultiBFS(t *testing.T) {
	g := Path(10)
	dist := g.MultiBFS([]int{0, 9})
	want := []int32{0, 1, 2, 3, 4, 4, 3, 2, 1, 0}
	for i, d := range dist {
		if d != want[i] {
			t.Fatalf("MultiBFS dist[%d] = %d, want %d", i, d, want[i])
		}
	}
}

func TestBFSTreeCanonical(t *testing.T) {
	g := Cycle(6)
	_, p1 := g.BFSTree(0)
	_, p2 := g.BFSTree(0)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("BFSTree not deterministic")
		}
	}
	// Node 3 is equidistant via 1-2 and 5-4; canonical parent must come
	// from the smaller-id branch (2).
	if p1[3] != 2 {
		t.Fatalf("canonical parent of 3 = %d, want 2", p1[3])
	}
}

func TestShortestPathProperties(t *testing.T) {
	r := rng.New(5)
	g := Gnp(150, 0.03, r)
	dist := g.BFS(7)
	for _, v := range []int{0, 50, 100, 149} {
		p := g.ShortestPath(7, v)
		if len(p) != int(dist[v])+1 {
			t.Fatalf("path length %d, want %d", len(p)-1, dist[v])
		}
		if p[0] != 7 || p[len(p)-1] != int32(v) {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(int(p[i]), int(p[i+1])) {
				t.Fatalf("path step %d-%d not an edge", p[i], p[i+1])
			}
		}
	}
}

func TestDiameterEstimateMatchesExactOnFamilies(t *testing.T) {
	r := rng.New(9)
	graphs := []*Graph{
		Path(50), Cycle(33), Grid(6, 9), BalancedTree(3, 4),
		PathOfCliques(6, 4), RandomTree(300, r),
	}
	for _, g := range graphs {
		exact, est := g.Diameter(), g.DiameterEstimate()
		if est > exact {
			t.Fatalf("%v: estimate %d exceeds exact %d", g, est, exact)
		}
		// Double sweep is exact on trees and these structured families.
		if est != exact {
			t.Errorf("%v: estimate %d != exact %d", g, est, exact)
		}
	}
}

func TestQuickGnpInvariants(t *testing.T) {
	r := rng.New(77)
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(func(seed uint64, nn uint8, pp uint8) bool {
		n := int(nn%100) + 2
		p := float64(pp%50) / 100
		g := Gnp(n, p, r.Fork(seed))
		if g.N() != n || !g.IsConnected() {
			return false
		}
		// Handshake: sum of degrees = 2m, no self loops, sorted neighbors.
		sum := 0
		for v := 0; v < n; v++ {
			nb := g.Neighbors(v)
			for i, w := range nb {
				if int(w) == v {
					return false
				}
				if i > 0 && nb[i-1] >= w {
					return false
				}
			}
			sum += len(nb)
		}
		return sum == 2*g.M()
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	g := NewBuilder("empty", 0).Build()
	if g.N() != 0 || g.M() != 0 || !g.IsConnected() {
		t.Fatal("empty graph misbehaves")
	}
	s := Path(1)
	if s.Diameter() != 0 || s.Eccentricity(0) != 0 {
		t.Fatal("singleton graph misbehaves")
	}
}

func TestMultiBFSAlive(t *testing.T) {
	// Path 0-1-2-3-4-5: killing node 2 cuts {3,4,5} off from source 0.
	g := Path(6)
	alive := []bool{true, true, false, true, true, true}
	dist := g.MultiBFSAlive([]int{0}, alive)
	want := []int32{0, 1, Unreached, Unreached, Unreached, Unreached}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d (full: %v)", v, dist[v], want[v], dist)
		}
	}
	// A dead source contributes nothing; a second alive source revives the
	// far side and distances count alive hops only.
	dist = g.MultiBFSAlive([]int{2, 5}, alive)
	want = []int32{Unreached, Unreached, Unreached, 2, 1, 0}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("two-source dist[%d] = %d, want %d (full: %v)", v, dist[v], want[v], dist)
		}
	}
	// All alive reduces to MultiBFS.
	all := []bool{true, true, true, true, true, true}
	ref := g.MultiBFS([]int{0})
	got := g.MultiBFSAlive([]int{0}, all)
	for v := range ref {
		if ref[v] != got[v] {
			t.Fatalf("all-alive mismatch at %d: %d vs %d", v, got[v], ref[v])
		}
	}
}
