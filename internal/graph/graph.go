// Package graph provides the static undirected graphs on which radio
// networks are simulated: a compact CSR representation, deterministic
// generators for the topology families used throughout the experiments,
// and the BFS/diameter/shortest-path utilities the clustering and
// scheduling layers rely on.
//
// Radio networks in the paper are connected undirected graphs N = (V, E)
// with n = |V| nodes and diameter D. Nodes are identified by dense integer
// ids 0..n-1.
package graph

import (
	"fmt"
	"slices"
	"sort"
	"sync"
)

// Graph is an immutable undirected graph in compressed sparse row form.
// Construct one with a Builder or a generator; the zero value is an empty
// graph with no nodes.
type Graph struct {
	name string
	off  []int32 // len n+1; adjacency of v is adj[off[v]:off[v+1]]
	adj  []int32

	// Lazily built dense-adjacency layer (see bitadj.go). Graphs are shared
	// across concurrently running trials, so the build is Once-guarded.
	denseOnce sync.Once
	dense     *AdjBits
}

// N returns the number of nodes.
func (g *Graph) N() int {
	if len(g.off) == 0 {
		return 0
	}
	return len(g.off) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Name returns the human-readable family name given at construction.
func (g *Graph) Name() string { return g.name }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the neighbor list of v. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// HasEdge reports whether {u, v} is an edge. Cost is O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Edges calls fn once per undirected edge with u < v. It stops early if fn
// returns false.
func (g *Graph) Edges(fn func(u, v int) bool) {
	n := g.N()
	for u := 0; u < n; u++ {
		for _, w := range g.Neighbors(u) {
			v := int(w)
			if u < v && !fn(u, v) {
				return
			}
		}
	}
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("%s(n=%d, m=%d)", g.name, g.N(), g.M())
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are discarded.
type Builder struct {
	n     int
	name  string
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(name string, n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, name: name}
}

// Reserve grows the builder's edge buffer so that at least m further
// AddEdge calls proceed without reallocation. Generators that know their
// edge count up front use this to avoid the doubling-growth garbage that
// otherwise dominates Build's allocation profile.
func (b *Builder) Reserve(m int) {
	if m <= 0 {
		return
	}
	if need := len(b.edges) + m; cap(b.edges) < need {
		edges := make([][2]int32, len(b.edges), need)
		copy(edges, b.edges)
		b.edges = edges
	}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// It panics if an endpoint is out of range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build finalizes the graph. The builder may not be reused afterwards.
func (b *Builder) Build() *Graph {
	// slices.SortFunc compiles a concrete comparison instead of sort.Slice's
	// reflection-based swaps — see BenchmarkBuilderBuild for the effect at
	// n = 10^5. Neither sort is stable, but equal elements here are
	// identical [2]int32 values, so any order among them builds the same
	// graph.
	slices.SortFunc(b.edges, func(x, y [2]int32) int {
		if x[0] != y[0] {
			return int(x[0]) - int(y[0])
		}
		return int(x[1]) - int(y[1])
	})
	// Deduplicate in place.
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	off := make([]int32, b.n+1)
	for _, e := range uniq {
		off[e[0]+1]++
		off[e[1]+1]++
	}
	for i := 0; i < b.n; i++ {
		off[i+1] += off[i]
	}
	// The adjacency array is sized exactly from the degree counts, and the
	// offset array doubles as the insertion cursor: after the fill, off[v]
	// has advanced to the start of v+1's block, so one downward shift
	// restores the CSR offsets without a separate cursor allocation.
	adj := make([]int32, 2*len(uniq))
	for _, e := range uniq {
		adj[off[e[0]]] = e[1]
		off[e[0]]++
		adj[off[e[1]]] = e[0]
		off[e[1]]++
	}
	for v := b.n; v > 0; v-- {
		off[v] = off[v-1]
	}
	off[0] = 0
	g := &Graph{name: b.name, off: off, adj: adj}
	// Each neighbor list comes out sorted without any per-vertex re-sort:
	// edges are sorted by (u, v) with u < v, so for a vertex w the
	// reverse-direction entries (sources u < w) are appended in ascending
	// u order, all before the forward-direction entries (targets v > w),
	// which are themselves appended in ascending v order — a sorted run of
	// values < w followed by a sorted run of values > w. A linear check
	// guards the HasEdge invariant (and would repair it if the fill logic
	// ever changed), replacing the former O(deg·log deg) re-sort per
	// vertex with an O(deg) verification.
	for v := 0; v < b.n; v++ {
		nb := g.adj[g.off[v]:g.off[v+1]]
		for i := 1; i < len(nb); i++ {
			if nb[i-1] > nb[i] {
				slices.Sort(nb)
				break
			}
		}
	}
	return g
}
