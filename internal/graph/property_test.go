package graph

import (
	"math/bits"
	"testing"
	"testing/quick"

	"radionet/internal/rng"
)

// TestHypercubeDistancesAreHamming: BFS distance in the hypercube equals
// the Hamming distance between vertex labels.
func TestHypercubeDistancesAreHamming(t *testing.T) {
	g := Hypercube(6)
	dist := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if int(dist[v]) != bits.OnesCount(uint(v)) {
			t.Fatalf("dist(0,%d) = %d, want %d", v, dist[v], bits.OnesCount(uint(v)))
		}
	}
}

func TestDumbbellDiameterFormula(t *testing.T) {
	// Two cliques of size s joined by a pathLen-node path: diameter is
	// pathLen + 3 for s >= 2 (one hop inside each clique plus the bridge
	// path's pathLen+1 edges).
	for _, tc := range []struct{ s, p, want int }{
		{4, 0, 3}, {4, 1, 4}, {5, 6, 9}, {2, 3, 6},
	} {
		g := Dumbbell(tc.s, tc.p)
		if got := g.Diameter(); got != tc.want {
			t.Errorf("Dumbbell(%d,%d) diameter = %d, want %d", tc.s, tc.p, got, tc.want)
		}
	}
}

func TestCaterpillarDiameterFormula(t *testing.T) {
	// Leg-to-leg across the full spine: spine-1 edges plus one leg hop at
	// each end.
	for _, tc := range []struct{ spine, legs, want int }{
		{5, 1, 6}, {10, 2, 11}, {3, 0, 2},
	} {
		g := Caterpillar(tc.spine, tc.legs)
		if got := g.Diameter(); got != tc.want {
			t.Errorf("Caterpillar(%d,%d) diameter = %d, want %d", tc.spine, tc.legs, got, tc.want)
		}
	}
}

func TestRandomGeometricDeterministic(t *testing.T) {
	a := RandomGeometric(200, 0.1, rng.New(42))
	b := RandomGeometric(200, 0.1, rng.New(42))
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	equal := true
	a.Edges(func(u, v int) bool {
		if !b.HasEdge(u, v) {
			equal = false
			return false
		}
		return true
	})
	if !equal {
		t.Fatal("same seed, different edge sets")
	}
}

// TestQuickTreeGeneratorsAcyclic: random recursive trees have exactly n-1
// edges and are connected, hence acyclic.
func TestQuickTreeGeneratorsAcyclic(t *testing.T) {
	r := rng.New(99)
	if err := quick.Check(func(seed uint64, nn uint8) bool {
		n := int(nn%200) + 1
		g := RandomTree(n, r.Fork(seed))
		return g.N() == n && g.M() == n-1 && g.IsConnected()
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBFSTriangleInequality: for random graphs, dist(a,c) <=
// dist(a,b) + dist(b,c) over BFS metrics.
func TestQuickBFSTriangleInequality(t *testing.T) {
	r := rng.New(123)
	if err := quick.Check(func(seed uint64, aa, bb, cc uint8) bool {
		g := Gnp(60, 0.06, r.Fork(seed))
		a, b, c := int(aa)%60, int(bb)%60, int(cc)%60
		da := g.BFS(a)
		db := g.BFS(b)
		return int(da[c]) <= int(da[b])+int(db[c])
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickShortestPathIsShortest: the canonical path length equals the
// BFS distance for random pairs.
func TestQuickShortestPathIsShortest(t *testing.T) {
	r := rng.New(321)
	if err := quick.Check(func(seed uint64, uu, vv uint8) bool {
		g := Gnp(50, 0.08, r.Fork(seed))
		u, v := int(uu)%50, int(vv)%50
		p := g.ShortestPath(u, v)
		d := g.BFS(u)[v]
		return len(p) == int(d)+1
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEccentricityBounds(t *testing.T) {
	// radius <= diameter <= 2*radius on any connected graph.
	r := rng.New(7)
	g := Gnp(80, 0.05, r)
	diam := g.Diameter()
	radius := diam
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(v); e < radius {
			radius = e
		}
	}
	if diam < radius || diam > 2*radius {
		t.Fatalf("radius %d, diameter %d violate metric bounds", radius, diam)
	}
}
