package graph

import (
	"fmt"
	"math"
	"slices"

	"radionet/internal/rng"
)

// Path returns the path graph on n nodes (diameter n-1).
func Path(n int) *Graph {
	b := NewBuilder("path", n)
	b.Reserve(n - 1)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle on n nodes (diameter floor(n/2)); n must be >= 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	b := NewBuilder("cycle", n)
	b.Reserve(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Star returns the star on n nodes with center 0 (diameter 2 for n >= 3).
func Star(n int) *Graph {
	b := NewBuilder("star", n)
	b.Reserve(n - 1)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	b := NewBuilder("complete", n)
	b.Reserve(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// Grid returns the rows x cols grid graph (diameter rows+cols-2).
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: Grid requires positive dimensions")
	}
	b := NewBuilder(fmt.Sprintf("grid%dx%d", rows, cols), rows*cols)
	b.Reserve(rows*(cols-1) + (rows-1)*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes
// (diameter dim).
func Hypercube(dim int) *Graph {
	if dim < 0 || dim > 24 {
		panic("graph: Hypercube dimension out of range [0,24]")
	}
	n := 1 << dim
	b := NewBuilder(fmt.Sprintf("hypercube%d", dim), n)
	b.Reserve(n * dim / 2)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				b.AddEdge(v, u)
			}
		}
	}
	return b.Build()
}

// BalancedTree returns the complete arity-ary tree of the given depth
// (root at node 0, diameter 2*depth).
func BalancedTree(arity, depth int) *Graph {
	if arity < 1 || depth < 0 {
		panic("graph: BalancedTree requires arity >= 1, depth >= 0")
	}
	n := 1
	layer := 1
	for d := 0; d < depth; d++ {
		layer *= arity
		n += layer
	}
	b := NewBuilder(fmt.Sprintf("tree%d^%d", arity, depth), n)
	b.Reserve(n - 1)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/arity)
	}
	return b.Build()
}

// PathOfCliques returns k cliques of size s arranged in a chain: clique i
// is joined to clique i+1 by a single bridge edge between designated port
// nodes. This is the workhorse long-diameter family of the experiments: it
// lets n = k*s stay fixed while D = 2k-1 varies with k, and the dense
// cliques generate heavy radio collisions.
func PathOfCliques(k, s int) *Graph {
	if k < 1 || s < 1 {
		panic("graph: PathOfCliques requires k, s >= 1")
	}
	b := NewBuilder(fmt.Sprintf("cliquepath%dx%d", k, s), k*s)
	b.Reserve(k*s*(s-1)/2 + k - 1)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
		if c+1 < k {
			// Bridge from the last node of clique c to the first node of
			// clique c+1.
			b.AddEdge(base+s-1, base+s)
		}
	}
	return b.Build()
}

// Caterpillar returns a spine path of length spine with legs pendant
// nodes attached to every spine node (n = spine*(1+legs)).
func Caterpillar(spine, legs int) *Graph {
	if spine < 1 || legs < 0 {
		panic("graph: Caterpillar requires spine >= 1, legs >= 0")
	}
	n := spine * (1 + legs)
	b := NewBuilder(fmt.Sprintf("caterpillar%dx%d", spine, legs), n)
	b.Reserve(n - 1)
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(i, spine+i*legs+l)
		}
	}
	return b.Build()
}

// Dumbbell returns two cliques of size s joined by a path of pathLen
// intermediate nodes (n = 2s + pathLen).
func Dumbbell(s, pathLen int) *Graph {
	if s < 1 || pathLen < 0 {
		panic("graph: Dumbbell requires s >= 1, pathLen >= 0")
	}
	n := 2*s + pathLen
	b := NewBuilder(fmt.Sprintf("dumbbell%d+%d", s, pathLen), n)
	b.Reserve(s*(s-1) + pathLen + 1)
	clique := func(base int) {
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	clique(0)
	clique(s + pathLen)
	prev := s - 1
	for i := 0; i < pathLen; i++ {
		b.AddEdge(prev, s+i)
		prev = s + i
	}
	b.AddEdge(prev, s+pathLen)
	return b.Build()
}

// RandomTree returns a uniform random recursive tree on n nodes: node i
// attaches to a uniformly random earlier node. Expected diameter Θ(log n).
func RandomTree(n int, r *rng.Rand) *Graph {
	b := NewBuilder("randtree", n)
	b.Reserve(n - 1)
	for i := 1; i < n; i++ {
		b.AddEdge(i, r.Intn(i))
	}
	return b.Build()
}

// Gnp returns an Erdős–Rényi G(n, p) graph augmented with a random
// spanning tree so that it is always connected. For p above the
// connectivity threshold the extra tree edges are a vanishing fraction.
func Gnp(n int, p float64, r *rng.Rand) *Graph {
	b := NewBuilder(fmt.Sprintf("gnp%.3f", p), n)
	// n-1 spanning-tree edges plus the expected G(n,p) edge count; the
	// geometric-skip loop may overshoot slightly, which just falls back to
	// one append growth step.
	b.Reserve(n - 1 + int(p*float64(n)*float64(n-1)/2))
	for i := 1; i < n; i++ {
		b.AddEdge(i, r.Intn(i)) // spanning tree for connectivity
	}
	// Geometric skipping makes generation O(m) instead of O(n^2).
	if p > 0 && n > 1 {
		logq := math.Log1p(-minFloat(p, 1-1e-12))
		v, w := 1, -1
		for v < n {
			skip := int(math.Floor(math.Log1p(-r.Float64()) / logq))
			w += 1 + skip
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build()
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// RandomGeometric returns a unit-disk graph: n points uniform in the unit
// square, edges between pairs within the given radius. Components are then
// stitched together by connecting each non-root component to its nearest
// outside point, so the result is always connected (the stitch edges model
// sparse long-range relays and are a tiny fraction of m for radii near the
// connectivity threshold). This is the classic model of an ad-hoc wireless
// deployment.
func RandomGeometric(n int, radius float64, r *rng.Rand) *Graph {
	if n < 1 || radius <= 0 {
		panic("graph: RandomGeometric requires n >= 1, radius > 0")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	b := NewBuilder(fmt.Sprintf("geometric%.3f", radius), n)
	// Grid-bucket the points so neighbor search is O(n) expected.
	cell := radius
	cols := int(1/cell) + 1
	buckets := make(map[int][]int32, n)
	key := func(cx, cy int) int { return cy*cols + cx }
	for i := 0; i < n; i++ {
		cx, cy := int(xs[i]/cell), int(ys[i]/cell)
		buckets[key(cx, cy)] = append(buckets[key(cx, cy)], int32(i))
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := int(xs[i]/cell), int(ys[i]/cell)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[key(cx+dx, cy+dy)] {
					if int(j) <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(i, int(j))
					}
				}
			}
		}
	}
	g := b.Build()
	if g.IsConnected() {
		return g
	}
	// Stitch components: repeatedly connect the component of node 0 to the
	// geometrically nearest node outside it.
	extra := make([][2]int, 0, 8)
	for {
		dist := g.BFS(0)
		bestI, bestJ, bestD := -1, -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if dist[j] != Unreached {
				continue
			}
			for i := 0; i < n; i++ {
				if dist[i] == Unreached {
					continue
				}
				ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
				if d := ddx*ddx + ddy*ddy; d < bestD {
					bestD, bestI, bestJ = d, i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		extra = append(extra, [2]int{bestI, bestJ})
		nb := NewBuilder(g.name, n)
		g.Edges(func(u, v int) bool { nb.AddEdge(u, v); return true })
		for _, e := range extra {
			nb.AddEdge(e[0], e[1])
		}
		g = nb.Build()
		if g.IsConnected() {
			break
		}
	}
	return g
}

// RandomRegular returns a random d-regular simple graph on n nodes via the
// configuration model with rejection, then stitches connectivity the same
// way as RandomGeometric if needed. n*d must be even and d < n.
func RandomRegular(n, d int, r *rng.Rand) *Graph {
	if d < 1 || d >= n || n*d%2 != 0 {
		panic("graph: RandomRegular requires 1 <= d < n with n*d even")
	}
	for attempt := 0; ; attempt++ {
		stubs := make([]int32, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, int32(v))
			}
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		seen := make(map[int64]bool, n*d/2)
		b := NewBuilder(fmt.Sprintf("regular%d", d), n)
		b.Reserve(n * d / 2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			lo, hi := u, v
			if lo > hi {
				lo, hi = hi, lo
			}
			k := int64(lo)<<32 | int64(hi)
			if seen[k] {
				ok = false
				break
			}
			seen[k] = true
			b.AddEdge(int(u), int(v))
		}
		if !ok {
			if attempt > 200 {
				panic("graph: RandomRegular failed to generate a simple graph")
			}
			continue
		}
		g := b.Build()
		if g.IsConnected() {
			return g
		}
	}
}

// SortedDegrees returns the degree sequence in non-increasing order
// (useful in tests).
func (g *Graph) SortedDegrees() []int {
	ds := make([]int, g.N())
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	slices.SortFunc(ds, func(a, b int) int { return b - a })
	return ds
}
