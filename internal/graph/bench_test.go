package graph

import (
	"testing"

	"radionet/internal/rng"
)

// BenchmarkBuilderBuild measures CSR construction at n = 10^5 on a sparse
// random edge set (~3 edges per node, duplicates included, the generator
// workload): dominated by the edge sort, where slices.SortFunc's concrete
// comparison replaced sort.Slice's reflection-based swaps. ReportAllocs
// pins the allocation profile: Build now sizes the adjacency array from
// exact degree counts and reuses the offset array as the insertion cursor,
// so the steady state is three allocations (off, adj, Graph) plus whatever
// AddEdge growth the sub-benchmark permits.
func BenchmarkBuilderBuild(b *testing.B) {
	const n = 100_000
	const m = 3 * n
	r := rng.New(11)
	us := make([]int, m)
	vs := make([]int, m)
	for i := 0; i < m; i++ {
		us[i] = r.Intn(n)
		vs[i] = r.Intn(n)
	}
	run := func(b *testing.B, reserve bool) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bd := NewBuilder("bench", n)
			if reserve {
				bd.Reserve(m)
			}
			for j := 0; j < m; j++ {
				if us[j] != vs[j] {
					bd.AddEdge(us[j], vs[j])
				}
			}
			g := bd.Build()
			if g.N() != n {
				b.Fatal("bad graph")
			}
		}
	}
	b.Run("grow", func(b *testing.B) { run(b, false) })
	b.Run("reserve", func(b *testing.B) { run(b, true) })
}
