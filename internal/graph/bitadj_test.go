package graph

import (
	"testing"

	"radionet/internal/rng"
)

// TestAdjBitsRowsMatchNeighbors checks the dense layer against the CSR
// ground truth: exactly the nodes at or above the threshold get rows, and
// each row's set bits are exactly the node's neighbor list.
func TestAdjBitsRowsMatchNeighbors(t *testing.T) {
	graphs := []*Graph{
		Star(100), // hub degree 99, leaves degree 1
		Gnp(300, 0.1, rng.New(4)),
		Grid(9, 11),
		Path(70),
	}
	for _, g := range graphs {
		const threshold = 8
		a := NewAdjBits(g, threshold)
		rows := 0
		for v := 0; v < g.N(); v++ {
			row := a.Row(v)
			if g.Degree(v) >= threshold {
				rows++
				if row == nil {
					t.Fatalf("%s: node %d (deg %d) has no dense row", g, v, g.Degree(v))
				}
				if got := a.popCount(row); got != g.Degree(v) {
					t.Fatalf("%s: node %d row popcount %d != degree %d", g, v, got, g.Degree(v))
				}
				for _, u := range g.Neighbors(v) {
					if row[u>>6]&(1<<(uint(u)&63)) == 0 {
						t.Fatalf("%s: node %d row missing neighbor %d", g, v, u)
					}
				}
			} else if row != nil {
				t.Fatalf("%s: node %d (deg %d) below threshold %d has a dense row", g, v, g.Degree(v), threshold)
			}
		}
		if a.Rows() != rows {
			t.Fatalf("%s: Rows() = %d, counted %d", g, a.Rows(), rows)
		}
		if want := (g.N() + 63) / 64; a.Words() != want {
			t.Fatalf("%s: Words() = %d, want %d", g, a.Words(), want)
		}
	}
}

// TestAdjBitsDefaultThreshold pins the crossover policy: <= 0 selects
// DenseThreshold(n), which floors at 64 and grows as n/64.
func TestAdjBitsDefaultThreshold(t *testing.T) {
	if got := DenseThreshold(100); got != 64 {
		t.Fatalf("DenseThreshold(100) = %d, want the 64 floor", got)
	}
	if got := DenseThreshold(1 << 20); got != 1<<20/64 {
		t.Fatalf("DenseThreshold(1<<20) = %d, want %d", got, 1<<20/64)
	}
	g := Path(50) // max degree 2: no rows at the default threshold
	a := NewAdjBits(g, 0)
	if a.Threshold() != 64 || a.Rows() != 0 {
		t.Fatalf("threshold %d rows %d, want 64 and 0", a.Threshold(), a.Rows())
	}
	for v := 0; v < g.N(); v++ {
		if a.Row(v) != nil {
			t.Fatalf("node %d has a row on an all-sparse graph", v)
		}
	}
}

// TestDenseAdjCachedAndNilSafe: DenseAdj builds once and returns the same
// layer to every caller; a nil layer answers Row with nil.
func TestDenseAdjCachedAndNilSafe(t *testing.T) {
	g := Star(200)
	a, b := g.DenseAdj(), g.DenseAdj()
	if a != b {
		t.Fatal("DenseAdj not cached")
	}
	if a.Row(0) == nil { // the hub clears any threshold floor of 64 at n=200
		t.Fatal("star hub has no dense row")
	}
	var nilAdj *AdjBits
	if nilAdj.Row(0) != nil {
		t.Fatal("nil AdjBits returned a row")
	}
}
