package graph

import (
	"strings"
	"testing"

	"radionet/internal/rng"
)

// TestFromCSRRoundTrip rebuilds generator graphs from their raw CSR arrays
// and checks the result is structurally identical.
func TestFromCSRRoundTrip(t *testing.T) {
	graphs := []*Graph{
		Path(17),
		Grid(5, 7),
		PathOfCliques(4, 6),
		Gnp(300, 0.03, rng.New(7)),
		RandomTree(500, rng.New(9)),
		NewBuilder("empty", 0).Build(),
		NewBuilder("isolated", 3).Build(),
	}
	for _, g := range graphs {
		off, adj := g.CSR()
		got, err := FromCSR(g.Name(), g.N(), off, adj)
		if err != nil {
			t.Fatalf("%s: FromCSR: %v", g, err)
		}
		if got.N() != g.N() || got.M() != g.M() || got.Name() != g.Name() {
			t.Fatalf("%s: round-trip mismatch: got %s", g, got)
		}
		for v := 0; v < g.N(); v++ {
			nb, gb := g.Neighbors(v), got.Neighbors(v)
			if len(nb) != len(gb) {
				t.Fatalf("%s: node %d degree mismatch", g, v)
			}
			for i := range nb {
				if nb[i] != gb[i] {
					t.Fatalf("%s: node %d neighbor mismatch", g, v)
				}
			}
		}
	}
}

// TestFromCSRRejectsCorrupt feeds FromCSR structurally invalid arrays; every
// case must be rejected with a descriptive error, never adopted.
func TestFromCSRRejectsCorrupt(t *testing.T) {
	cases := []struct {
		name string
		n    int
		off  []int32
		adj  []int32
		want string
	}{
		{"off-length", 2, []int32{0, 1}, []int32{1}, "len(off)"},
		{"off-origin", 2, []int32{1, 1, 2}, []int32{1, 0}, "off[0]"},
		{"off-monotone", 2, []int32{0, 2, 1}, []int32{1}, "monotone"},
		{"off-span", 2, []int32{0, 1, 2}, []int32{1, 0, 1}, "off[n]"},
		{"odd-entries", 3, []int32{0, 1, 1, 1}, []int32{1}, "odd"},
		{"neighbor-range", 1, []int32{0, 2}, []int32{1, -1}, "out of range"},
		{"self-loop", 2, []int32{0, 1, 2}, []int32{0, 0}, "self-loop"},
		{"unsorted", 3, []int32{0, 2, 4, 6}, []int32{2, 1, 0, 2, 0, 1}, "ascending"},
		{"duplicate", 2, []int32{0, 2, 4}, []int32{1, 1, 0, 0}, "ascending"},
		{"asymmetric-forward", 3, []int32{0, 1, 2, 2}, []int32{1, 2}, "reverse"},
		// Backward-only stray entries with even total count: 1 and 2 each
		// list 0 as a neighbor but 0 lists nobody.
		{"asymmetric-backward", 3, []int32{0, 0, 1, 2}, []int32{0, 0}, "reverse"},
	}
	for _, tc := range cases {
		_, err := FromCSR("corrupt", tc.n, tc.off, tc.adj)
		if err == nil {
			t.Errorf("%s: FromCSR accepted corrupt input", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestReserve checks Reserve prevents reallocation for the declared count
// and is safe to call with zero or after edges exist.
func TestReserve(t *testing.T) {
	b := NewBuilder("r", 100)
	b.Reserve(0)
	b.Reserve(-1)
	b.AddEdge(0, 1)
	b.Reserve(50)
	head := &b.edges[0]
	for i := 0; i < 50; i++ {
		b.AddEdge(i, i+2)
	}
	if head != &b.edges[0] {
		t.Fatal("Reserve(50) did not prevent reallocation")
	}
	g := b.Build()
	if g.M() != 51 {
		t.Fatalf("M = %d, want 51", g.M())
	}
}
