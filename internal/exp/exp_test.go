package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "F1", "F2", "F3", "F4", "F5", "F6", "F7"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments: %v", len(ids), ids)
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		seen[id] = true
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("Z9", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:         "X",
		Title:      "demo",
		PaperClaim: "claim",
		Columns:    []string{"a", "bb"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", "y")
	tbl.Note("hello %d", 7)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "claim", "2.5", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,bb\n1,2.5\n") {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}

// TestAllExperimentsQuick executes every registered experiment at quick
// scale: the full integration test of the reproduction pipeline.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id, Options{Seed: 1, Quick: true, Seeds: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	a, err := Run("T2", Options{Seed: 9, Quick: true, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("T2", Options{Seed: 9, Quick: true, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := a.Render(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatal("same options produced different tables")
	}
}

// TestExperimentsDeterministicAcrossWorkers checks that routing the
// repetition loops through the campaign executor did not make tables
// depend on the worker count: serial and 8-worker runs must render
// byte-identically for every experiment.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			render := func(workers int) string {
				tbl, err := Run(id, Options{Seed: 5, Quick: true, Seeds: 3, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := tbl.Render(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			serial, parallel := render(1), render(8)
			if serial != parallel {
				t.Errorf("table differs between 1 and 8 workers:\n-- 1 --\n%s\n-- 8 --\n%s", serial, parallel)
			}
		})
	}
}
