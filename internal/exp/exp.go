// Package exp is the experiment harness that regenerates every evaluation
// artifact of the reproduction. The paper has no measured tables or
// figures (it is a theory paper), so each theorem/lemma bound and each
// comparison claim of Sections 1.3–1.4 is treated as one artifact; the
// per-experiment index lives in DESIGN.md §6 and results are recorded in
// EXPERIMENTS.md.
//
// Every experiment is a Runner keyed by its ID (T1…T7, F1…F6) returning a
// Table. cmd/experiments renders them from the command line and
// bench_test.go wraps each in a testing.B benchmark.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"radionet/internal/campaign"
)

// Options control experiment scale and reproducibility.
type Options struct {
	// Seed is the master seed; every run with equal Options is identical.
	Seed uint64
	// Seeds is the number of independent repetitions per configuration
	// (0 means the experiment's default).
	Seeds int
	// Quick shrinks instance sizes for CI/benchmark runs; full scale is
	// used by cmd/experiments for EXPERIMENTS.md.
	Quick bool
	// Workers sizes the worker pool for repetition loops
	// (0 = GOMAXPROCS, 1 = serial). Results are identical for every
	// value: each repetition derives its randomness from its index.
	Workers int
}

func (o Options) seeds(def int) int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	return def
}

// forEach fans the n independent repetitions of one configuration out
// across the campaign executor. Bodies must write results by index so
// tables are identical for every worker count.
func (o Options) forEach(n int, fn func(i int)) {
	campaign.ForEach(o.Workers, n, fn)
}

// all reports whether every flag is set; repetition loops record per-index
// success and reduce after the fan-out.
func all(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

// Table is a rendered experiment artifact.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Rows       [][]string
	Notes      []string
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends an explanatory footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "paper: %s\n", t.PaperClaim)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
		_ = i
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, v := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (no notes).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Runner produces one experiment artifact.
type Runner func(Options) *Table

var registry = map[string]struct {
	title  string
	runner Runner
}{}

func register(id, title string, r Runner) {
	registry[id] = struct {
		title  string
		runner Runner
	}{title, r}
}

// IDs returns all registered experiment IDs in index order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// T before F, then numeric.
		if ids[i][0] != ids[j][0] {
			return ids[i][0] > ids[j][0] // 'T' > 'F'
		}
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Title returns the registered title for id ("" if unknown).
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given ID.
func Run(id string, o Options) (*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %s)", id, strings.Join(IDs(), " "))
	}
	return e.runner(o), nil
}
