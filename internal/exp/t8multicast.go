package exp

import (
	"radionet/internal/graph"
	"radionet/internal/multicast"
	"radionet/internal/stats"
)

func init() {
	register("T8", "k-message broadcast pipelining (Lemma 2.3)", runT8)
}

// runT8 measures k-message broadcast: the pipelined epidemic vs the
// classical k-sequential-broadcasts reduction, sweeping k. Lemma 2.3's
// schedule primitive claims O(D + k·log n + log⁶n) — additive in k —
// versus the reduction's multiplicative k·T_BC.
func runT8(o Options) *Table {
	t := &Table{
		ID:         "T8",
		Title:      Title("T8"),
		PaperClaim: "k messages in O(D + k log n + log^6 n) (additive in k) vs k*T_BC sequential",
		Columns:    []string{"graph", "k", "pipelined", "sequential", "speedup", "allDone"},
	}
	seeds := o.seeds(3)
	g := graph.Grid(8, 32)
	ks := []int{1, 2, 4, 8, 16, 32}
	if o.Quick {
		g = graph.Grid(6, 12)
		ks = []int{1, 4, 16}
		if seeds > 2 {
			seeds = 2
		}
	}
	msgs := func(k int) []int64 {
		out := make([]int64, k)
		for i := range out {
			out[i] = int64(100 + i)
		}
		return out
	}
	var xs, ys []float64
	for _, k := range ks {
		pr := make([]float64, seeds)
		sr := make([]float64, seeds)
		ok := make([]bool, seeds)
		o.forEach(seeds, func(s int) {
			p, err := multicast.NewPipelined(g, o.Seed+8+uint64(s), 0, msgs(k))
			if err != nil {
				return
			}
			r, done := p.Run(1 << 26)
			pr[s] = float64(r)
			r2, _, done2 := multicast.Sequential(g, o.Seed+8+uint64(s), 0, msgs(k), 0)
			sr[s] = float64(r2)
			ok[s] = done && done2
		})
		pm, sm := stats.Mean(pr), stats.Mean(sr)
		speedup := 0.0
		if pm > 0 {
			speedup = sm / pm
		}
		t.AddRow(g.Name(), k, pm, sm, speedup, all(ok))
		xs = append(xs, float64(k))
		ys = append(ys, pm)
	}
	if len(xs) >= 2 {
		f := stats.FitPower(xs, ys)
		t.Note("pipelined rounds ~ %.0f * k^%.2f (r2=%.2f): sublinear/additive in k, vs the reduction's k^1 growth", f.Coeff, f.Exp, f.R2)
	}
	return t
}
