package exp

import (
	"radionet/internal/graph"
)

func init() {
	register("F7", "Energy: total transmissions per broadcast", runF7)
}

// runF7 compares the transmission (energy) cost of the algorithms — not a
// claim the paper optimizes for, but a first-class concern in the radio
// network literature and a consequence of its design: spontaneous
// transmissions mean nodes spend energy before being informed, so the
// paper's speed is bought with channel activity. The table quantifies the
// trade.
func runF7(o Options) *Table {
	t := &Table{
		ID:         "F7",
		Title:      Title("F7"),
		PaperClaim: "no explicit claim; quantifies the energy cost of spontaneous transmissions vs informed-only protocols",
		Columns:    []string{"graph", "n", "D", "algo", "rounds", "transmissions", "tx/node/round"},
	}
	seeds := o.seeds(3)
	gs := []*graph.Graph{graph.Grid(16, 64), graph.PathOfCliques(32, 8)}
	if o.Quick {
		gs = []*graph.Graph{graph.Grid(8, 16)}
		if seeds > 2 {
			seeds = 2
		}
	}
	algos := []broadcastAlgo{namedAlgo("bgi"), namedAlgo("truncated-decay"), namedAlgo("cd17")}
	for _, g := range gs {
		d := g.DiameterEstimate()
		for _, a := range algos {
			rounds, tx, all := meanRoundsTx(o, a, g, d, o.Seed+9, seeds)
			perNodeRound := 0.0
			if rounds > 0 {
				perNodeRound = tx / (rounds * float64(g.N()))
			}
			t.AddRow(g.Name(), g.N(), d, a.name, rounds, tx, perNodeRound)
			_ = all
		}
	}
	t.Note("BGI/CR-KP transmit only after being informed; CD17's clustering lanes keep a low duty cycle per node but spend energy network-wide from round 0")
	return t
}
