package exp

import (
	"fmt"
	"math"

	"radionet/internal/compete"
	"radionet/internal/graph"
	"radionet/internal/protocol"
	"radionet/internal/stats"
)

func init() {
	register("F1", "Broadcast rounds vs D at fixed n (Theorem 5.1 vs prior)", runF1)
	register("F2", "Broadcast rounds vs n at fixed D", runF2)
	register("F3", "Leader election vs prior; LE time ~ broadcast time (Theorem 5.2)", runF3)
	register("F4", "Compete rounds vs |S| (Theorem 4.1 additive term)", runF4)
	register("F5", "Optimality: rounds/D flattens when n = poly(D) (Section 1.4)", runF5)
	register("F6", "Ablations: curtailment, random beta, background processes", runF6)
}

// broadcastAlgo abstracts "run a broadcast of value 9 from node 0 on g".
// run reports the rounds used, total transmissions (energy) and success.
type broadcastAlgo struct {
	name string
	run  func(g *graph.Graph, d int, seed uint64) (rounds, tx int64, done bool)
}

// regAlgo adapts a registered broadcast descriptor to the experiment
// harness: display name from the descriptor label, dispatch through its
// Build, tuning passed through (nil = algorithm defaults). Every
// algorithm runs at its registered whp-sufficient default budget
// (Run(0)); a run that exhausts it is reported not-all-done (F6's
// ablated variants are expected to).
func regAlgo(d *protocol.Descriptor, tuning any) broadcastAlgo {
	const budget = 0
	return broadcastAlgo{name: d.Label, run: func(g *graph.Graph, diam int, seed uint64) (int64, int64, bool) {
		r, err := d.Build(protocol.BuildParams{G: g, D: diam, Seed: seed, Sources: map[int]int64{0: 9}, Tuning: tuning})
		if err != nil {
			return 0, 0, false
		}
		res := r.Run(budget)
		return res.Rounds, res.Tx, res.Done
	}}
}

// namedAlgo resolves a broadcast algorithm by registry name.
func namedAlgo(name string) broadcastAlgo {
	d, ok := protocol.Lookup(protocol.Broadcast, name)
	if !ok {
		panic("exp: unregistered broadcast algorithm " + name)
	}
	return regAlgo(d, nil)
}

// comparableBroadcastAlgos enumerates every registered same-model
// broadcast algorithm (the collision-detection beep-wave runs in a
// strictly stronger model and is excluded), in registry order — the
// baselines-first ordering the comparison tables have always used. An
// algorithm registered tomorrow appears in F1 with no exp changes.
func comparableBroadcastAlgos() []broadcastAlgo {
	var out []broadcastAlgo
	for _, d := range protocol.ByTask(protocol.Broadcast) {
		if d.Caps.CollisionDetection {
			continue
		}
		out = append(out, regAlgo(d, nil))
	}
	return out
}

// meanRounds runs algo for the given seeds through the campaign executor
// and returns the mean round count and whether all runs completed.
func meanRounds(o Options, a broadcastAlgo, g *graph.Graph, d int, baseSeed uint64, seeds int) (float64, bool) {
	m, _, ok := meanRoundsTx(o, a, g, d, baseSeed, seeds)
	return m, ok
}

// meanRoundsTx additionally returns the mean transmission count.
func meanRoundsTx(o Options, a broadcastAlgo, g *graph.Graph, d int, baseSeed uint64, seeds int) (float64, float64, bool) {
	rs := make([]float64, seeds)
	txs := make([]float64, seeds)
	ok := make([]bool, seeds)
	o.forEach(seeds, func(s int) {
		r, tx, done := a.run(g, d, baseSeed+uint64(s))
		rs[s], txs[s], ok[s] = float64(r), float64(tx), done
	})
	return stats.Mean(rs), stats.Mean(txs), all(ok)
}

// gridFamily returns n≈const grids with varying diameter.
func gridFamily(quick bool) []*graph.Graph {
	if quick {
		return []*graph.Graph{graph.Grid(16, 16), graph.Grid(8, 32), graph.Grid(4, 64)}
	}
	return []*graph.Graph{
		graph.Grid(32, 32), graph.Grid(16, 64), graph.Grid(8, 128),
		graph.Grid(4, 256), graph.Grid(2, 512),
	}
}

// runF1 is the headline comparison: fixed n, growing D, four algorithms.
func runF1(o Options) *Table {
	t := &Table{
		ID:         "F1",
		Title:      Title("F1"),
		PaperClaim: "O(D log n/log D + polylog) vs BGI O((D+log n)log n), CR/KP O(D log(n/D)+log^2 n), HW16 O(D log n loglog n/log D + polylog)",
		Columns:    []string{"graph", "n", "D", "algo", "rounds", "rounds/D", "allDone"},
	}
	seeds := o.seeds(3)
	if o.Quick && seeds > 2 {
		seeds = 2
	}
	algos := comparableBroadcastAlgos()
	for _, g := range gridFamily(o.Quick) {
		d := g.DiameterEstimate()
		for _, a := range algos {
			m, all := meanRounds(o, a, g, d, o.Seed+1, seeds)
			t.AddRow(g.Name(), g.N(), d, a.name, m, m/float64(d), all)
		}
	}
	t.Note("constants at simulable scale favor the oblivious baselines; the reproduced shape is rounds/D flat in D for CD17 and the CD17 < HW16-mode ordering (see F5 for the n-scaling crossover)")
	return t
}

// runF2 fixes D (caterpillar spine) and grows n via pendant legs.
func runF2(o Options) *Table {
	t := &Table{
		ID:         "F2",
		Title:      Title("F2"),
		PaperClaim: "at fixed D, CD17 grows as log n/log D vs BGI's log n (factor log D)",
		Columns:    []string{"graph", "n", "D", "algo", "rounds", "allDone"},
	}
	seeds := o.seeds(3)
	spine := 64
	legSet := []int{1, 3, 7, 15}
	if o.Quick {
		spine = 32
		legSet = []int{1, 3, 7}
		if seeds > 2 {
			seeds = 2
		}
	}
	algos := []broadcastAlgo{namedAlgo("bgi"), namedAlgo("cd17")}
	for _, legs := range legSet {
		g := graph.Caterpillar(spine, legs)
		d := g.Diameter()
		for _, a := range algos {
			m, all := meanRounds(o, a, g, d, o.Seed+2, seeds)
			t.AddRow(g.Name(), g.N(), d, a.name, m, all)
		}
	}
	t.Note("growing n at fixed D necessarily grows local contention; CD17's schedules pay log(local contention) where BGI pays the oblivious log n (DESIGN.md §3)")
	return t
}

// runF3 compares leader election algorithms and checks the paper's parity
// claim: CD17 leader election runs in the same time as CD17 broadcast.
func runF3(o Options) *Table {
	t := &Table{
		ID:         "F3",
		Title:      Title("F3"),
		PaperClaim: "LE in O(D log n/log D + polylog), first LE asymptotically equal to broadcast; prior: binary-search O(T_BC log n), GH13 O(D log(n/D) min(loglog n, log(n/D)) + polylog)",
		Columns:    []string{"graph", "n", "D", "algo", "rounds", "done"},
	}
	seeds := o.seeds(2)
	gs := gridFamily(o.Quick)
	if len(gs) > 3 {
		gs = gs[:3]
	}
	// Every registered leader algorithm, registry order (baselines first,
	// the paper's algorithm last) — GH13 joined this table by registering
	// itself, with no changes here. Completion requires the descriptor's
	// postcondition check where one is registered.
	leaders := protocol.ByTask(protocol.Leader)
	for _, g := range gs {
		d := g.DiameterEstimate()
		rounds := make([][]float64, len(leaders))
		oks := make([][]bool, len(leaders))
		for i := range leaders {
			rounds[i] = make([]float64, seeds)
			oks[i] = make([]bool, seeds)
		}
		bcr := make([]float64, seeds)
		bcOK := make([]bool, seeds)
		var leMean float64 // CD17-LE mean, for the parity note
		o.forEach(seeds, func(s int) {
			seed := o.Seed + 3 + uint64(s)
			for i, ld := range leaders {
				r, err := ld.Build(protocol.BuildParams{G: g, D: d, Seed: seed})
				if err != nil {
					continue
				}
				res := r.Run(0)
				oks[i][s] = res.Done && (res.Verify == nil || res.Verify() == nil)
				rounds[i][s] = float64(res.Rounds)
			}
			// CD17 broadcast (parity claim).
			if b, err := compete.NewBroadcast(g, d, compete.Config{}, seed, 0, 9); err == nil {
				rb, doneb := b.Run(8 * b.Budget())
				bcOK[s] = doneb
				bcr[s] = float64(rb)
			}
		})
		for i, ld := range leaders {
			m := stats.Mean(rounds[i])
			t.AddRow(g.Name(), g.N(), d, ld.Label, m, all(oks[i]))
			if ld.Name == "cd17" {
				leMean = m
			}
		}
		t.AddRow(g.Name(), g.N(), d, "CD17-broadcast", stats.Mean(bcr), all(bcOK))
		if stats.Mean(bcr) > 0 {
			t.Note("%s: LE/broadcast ratio = %.2f (paper: O(1), the parity claim)", g.Name(), leMean/stats.Mean(bcr))
		}
	}
	return t
}

// runF4 sweeps the source set size of Compete on a fixed graph.
func runF4(o Options) *Table {
	t := &Table{
		ID:         "F4",
		Title:      Title("F4"),
		PaperClaim: "Compete(S) = O(D log n/log D + |S| D^0.125 + polylog n)",
		Columns:    []string{"graph", "|S|", "rounds", "allDone"},
	}
	seeds := o.seeds(3)
	g := graph.Grid(16, 64)
	if o.Quick {
		g = graph.Grid(8, 32)
		if seeds > 2 {
			seeds = 2
		}
	}
	d := g.DiameterEstimate()
	sizes := []int{1, 2, 4, 8, 16, 32}
	var xs, ys []float64
	for _, k := range sizes {
		rs := make([]float64, seeds)
		ok := make([]bool, seeds)
		o.forEach(seeds, func(s int) {
			sources := make(map[int]int64, k)
			for i := 0; i < k; i++ {
				sources[(i*g.N())/k] = int64(100 + i)
			}
			c, err := compete.New(g, d, compete.Config{}, o.Seed+5+uint64(s), sources)
			if err != nil {
				return
			}
			r, done := c.Run(8 * c.Budget())
			ok[s] = done
			rs[s] = float64(r)
		})
		m := stats.Mean(rs)
		t.AddRow(g.Name(), k, m, all(ok))
		xs = append(xs, float64(k))
		ys = append(ys, m)
	}
	if len(xs) >= 2 {
		f := stats.FitPower(xs, ys)
		t.Note("rounds ~ %.0f * |S|^%.2f (r2=%.2f); the paper's additive |S| D^0.125 term predicts weak sublinear growth in |S|", f.Coeff, f.Exp, f.R2)
	}
	return t
}

// runF5 is the optimality reproduction: on paths (n = D+1, i.e. n poly in
// D), CD17's rounds/D should be flat while BGI's grows with log n.
func runF5(o Options) *Table {
	t := &Table{
		ID:         "F5",
		Title:      Title("F5"),
		PaperClaim: "when n = poly(D), running time is O(D): rounds/D = O(1); BGI rounds/D grows as log n",
		Columns:    []string{"n", "D", "algo", "rounds", "rounds/D"},
	}
	seeds := o.seeds(2)
	ns := []int{128, 256, 512, 1024, 2048}
	if o.Quick {
		ns = []int{64, 128, 256, 512}
	}
	algos := []broadcastAlgo{namedAlgo("bgi"), namedAlgo("cd17")}
	perHop := map[string][]float64{}
	logns := map[string][]float64{}
	for _, n := range ns {
		g := graph.Path(n)
		d := n - 1
		for _, a := range algos {
			m, all := meanRounds(o, a, g, d, o.Seed+6, seeds)
			t.AddRow(n, d, a.name, m, m/float64(d))
			if all {
				perHop[a.name] = append(perHop[a.name], m/float64(d))
				logns[a.name] = append(logns[a.name], math.Log2(float64(n)))
			}
		}
	}
	for _, a := range algos {
		ph := perHop[a.name]
		if len(ph) >= 2 {
			slope := (ph[len(ph)-1] - ph[0]) / (logns[a.name][len(ph)-1] - logns[a.name][0])
			t.Note("%s: rounds/D from %.1f to %.1f over the sweep (slope %.2f per log2 n); CD17 flat, BGI growing reproduces the O(D) optimality claim; extrapolated crossover where BGI's ~1.4·log2 n exceeds CD17's flat constant", a.name, ph[0], ph[len(ph)-1], slope)
		}
	}
	return t
}

// runF6 toggles the paper's design choices one at a time (Section 2.3's
// claimed advances).
func runF6(o Options) *Table {
	t := &Table{
		ID:         "F6",
		Title:      Title("F6"),
		PaperClaim: "curtailment via Theorem 2.2 (vs HW16's loglog-longer schedules), random beta per slot, and the background processes are each load-bearing",
		Columns:    []string{"variant", "rounds", "vs default", "allDone"},
	}
	seeds := o.seeds(3)
	g := graph.Grid(8, 128)
	if o.Quick {
		g = graph.Grid(8, 48)
		if seeds > 2 {
			seeds = 2
		}
	}
	d := g.DiameterEstimate()
	jmid := 0
	{
		c, err := compete.New(g, d, compete.Config{}, o.Seed, map[int]int64{0: 9})
		if err == nil {
			_ = c
		}
		jmid = 2 // middle of the default [0.25,0.75]·log2 D range at these scales
	}
	variants := []struct {
		name string
		cfg  compete.Config
	}{
		{"default (CD17)", compete.Config{}},
		{"HW16 curtail (loglog n longer)", compete.Config{CurtailLogLog: true}},
		{"no curtailment (full radius)", compete.Config{DisableCurtail: true}},
		{"fixed j (no random beta)", compete.Config{FixedJ: jmid}},
		{"no background process", compete.Config{DisableBackground: true}},
		{"no Algorithm-4 helper", compete.Config{DisableHelper: true}},
	}
	cd17Desc, ok := protocol.Lookup(protocol.Broadcast, "cd17")
	if !ok {
		panic("exp: cd17 not registered")
	}
	var base float64
	for i, v := range variants {
		a := regAlgo(cd17Desc, v.cfg)
		a.name = v.name
		m, all := meanRounds(o, a, g, d, o.Seed+7, seeds)
		if i == 0 {
			base = m
		}
		rel := "1.00x"
		if base > 0 {
			rel = fmt.Sprintf("%.2fx", m/base)
		}
		t.AddRow(v.name, m, rel, all)
	}
	t.Note("runs capped at 8x budget; a variant reported not-all-done hit the cap (the ablated mechanism is load-bearing)")
	return t
}
