package exp

import (
	"math"

	"radionet/internal/cluster"
	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/rng"
	"radionet/internal/stats"
)

func init() {
	register("T1", "Decay informs with constant probability (Lemma 3.1)", runT1)
	register("T2", "Partition strong radius is O(log n/beta) (Lemma 2.1a)", runT2)
	register("T3", "Edge cut probability is O(beta) (Lemma 2.1b)", runT3)
	register("T4", "Distance to cluster center, random j (Theorem 2.2)", runT4)
	register("T5", "Clusters near a node (Lemma 4.3)", runT5)
	register("T6", "Bad subpaths along shortest paths (Lemma 4.4)", runT6)
	register("T7", "Distributed Partition round cost (Lemma 2.1 impl.)", runT7)
}

// runT1 measures the probability that one Decay phase delivers to a
// listener with k participating neighbors, for k across five orders of
// contention. Paper: constant, independent of k (Lemma 3.1).
func runT1(o Options) *Table {
	t := &Table{
		ID:         "T1",
		Title:      Title("T1"),
		PaperClaim: "P[delivery in one Decay phase] >= constant for any #participants",
		Columns:    []string{"participants", "phaseLen", "P[deliver]", "bound 1/(2e)"},
	}
	trials := 4000
	if o.Quick {
		trials = 800
	}
	master := rng.New(o.Seed)
	for _, k := range []int{1, 2, 4, 8, 32, 128, 512} {
		l := decay.Levels(k + 1)
		hits := make([]bool, trials)
		o.forEach(trials, func(trial int) {
			r := master.Fork(uint64(k)<<20 | uint64(trial))
			for s := 0; s < l; s++ {
				tx := 0
				for i := 0; i < k; i++ {
					if r.Bernoulli(decay.Prob(s)) {
						tx++
					}
				}
				if tx == 1 {
					hits[trial] = true
					return
				}
			}
		})
		hit := 0
		for _, h := range hits {
			if h {
				hit++
			}
		}
		t.AddRow(k, l, float64(hit)/float64(trials), 1/(2*math.E))
	}
	t.Note("measured on a star: listener with k transmitting neighbors, one Decay phase of ceil(log2(k+1)) steps")
	return t
}

// clusterGraphs returns the T2–T5 topology suite.
func clusterGraphs(o Options, master *rng.Rand) []*graph.Graph {
	if o.Quick {
		return []*graph.Graph{
			graph.Grid(16, 16),
			graph.RandomGeometric(300, 0.09, master.Fork(1)),
		}
	}
	return []*graph.Graph{
		graph.Grid(40, 40),
		graph.RandomGeometric(1500, 0.045, master.Fork(1)),
		graph.Gnp(1200, 0.004, master.Fork(2)),
		graph.PathOfCliques(128, 8),
	}
}

// runT2 sweeps beta and reports the worst strong radius against the
// O(log n/beta) bound.
func runT2(o Options) *Table {
	t := &Table{
		ID:         "T2",
		Title:      Title("T2"),
		PaperClaim: "every cluster has strong diameter O(log n/beta) whp",
		Columns:    []string{"graph", "beta", "maxRadius(mean)", "maxRadius(max)", "ln(n)/beta", "ratio"},
	}
	master := rng.New(o.Seed)
	seeds := o.seeds(10)
	for _, g := range clusterGraphs(o, master) {
		lnN := math.Log(float64(g.N()))
		for _, beta := range []float64{0.05, 0.1, 0.2, 0.4} {
			radii := make([]float64, seeds)
			o.forEach(seeds, func(s int) {
				p := cluster.Partition(g, beta, master.Fork(uint64(s)+100*uint64(beta*1000)))
				radii[s] = float64(p.MaxStrongRadius())
			})
			sum := stats.Summarize(radii)
			bound := lnN / beta
			t.AddRow(g.Name(), beta, sum.Mean, sum.Max, bound, sum.Max/bound)
		}
	}
	t.Note("ratio = measured worst radius / (ln n / beta); Lemma 2.1a predicts an O(1) ratio across the sweep")
	return t
}

// runT3 sweeps beta and reports the edge cut fraction against O(beta).
func runT3(o Options) *Table {
	t := &Table{
		ID:         "T3",
		Title:      Title("T3"),
		PaperClaim: "each edge is cut with probability O(beta)",
		Columns:    []string{"graph", "beta", "cutFraction", "cutFraction/beta"},
	}
	master := rng.New(o.Seed)
	seeds := o.seeds(10)
	for _, g := range clusterGraphs(o, master) {
		for _, beta := range []float64{0.02, 0.05, 0.1, 0.2, 0.4} {
			fr := make([]float64, seeds)
			o.forEach(seeds, func(s int) {
				p := cluster.Partition(g, beta, master.Fork(uint64(s)+100*uint64(beta*1000)))
				fr[s] = p.CutFraction()
			})
			m := stats.Mean(fr)
			t.AddRow(g.Name(), beta, m, m/beta)
		}
	}
	t.Note("Lemma 2.1b predicts cutFraction/beta bounded by a constant across the sweep")
	return t
}

// runT4 is the Theorem 2.2 reproduction: for each j in the fine range,
// the mean distance from a fixed node to its cluster center, against
// c·log n/(beta·log D); the paper claims >= 55% of j values satisfy the
// bound, improving Haeupler–Wajc's extra log log n factor.
func runT4(o Options) *Table {
	t := &Table{
		ID:         "T4",
		Title:      Title("T4"),
		PaperClaim: "P_j[E[dist to center] = O(log n/(beta log D))] >= 0.55 over random j",
		Columns:    []string{"graph", "j", "beta", "E[dist]", "CD17 bound", "ok", "HW16 bound"},
	}
	master := rng.New(o.Seed)
	trials := o.seeds(40)
	gs := []*graph.Graph{graph.Path(512), graph.Grid(16, 64)}
	if o.Quick {
		gs = []*graph.Graph{graph.Path(256)}
		if trials > 15 {
			trials = 15
		}
	}
	const c = 5.0
	for _, g := range gs {
		d := g.DiameterEstimate()
		logn := math.Log2(float64(g.N()))
		logD := math.Log2(float64(d))
		v := g.N() / 2
		jmin, jmax := cluster.JRange(d, 0.25, 0.75)
		good := 0
		for j := jmin; j <= jmax; j++ {
			beta := math.Pow(2, -float64(j))
			ds := make([]float64, trials)
			o.forEach(trials, func(s int) {
				p := cluster.Partition(g, beta, master.Fork(uint64(j)<<16|uint64(s)))
				ds[s] = float64(p.Dist[v])
			})
			mean := stats.Mean(ds)
			bound := c * logn / (beta * logD)
			hw := bound * math.Log2(logn)
			ok := mean <= bound
			if ok {
				good++
			}
			t.AddRow(g.Name(), j, beta, mean, bound, ok, hw)
		}
		frac := float64(good) / float64(jmax-jmin+1)
		t.Note("%s: fraction of good j = %.2f (paper: >= 0.55); c = %.1f", g.Name(), frac, c)
	}
	return t
}

// runT5 compares the empirical probability of seeing >= t clusters within
// distance d of a node with Lemma 4.3's (1-e^{-beta(2d+1)})^{t-1} bound.
func runT5(o Options) *Table {
	t := &Table{
		ID:         "T5",
		Title:      Title("T5"),
		PaperClaim: "P[>= t clusters within distance d] <= (1-e^{-beta(2d+1)})^{t-1}",
		Columns:    []string{"graph", "beta", "d", "t", "P[measured]", "bound"},
	}
	master := rng.New(o.Seed)
	trials := o.seeds(60)
	g := graph.Grid(24, 24)
	if o.Quick {
		g = graph.Grid(14, 14)
		if trials > 25 {
			trials = 25
		}
	}
	nodes := []int{g.N() / 2, g.N() / 4}
	for _, beta := range []float64{0.05, 0.15} {
		for _, d := range []int{1, 2, 4} {
			bound1 := 1 - math.Exp(-beta*float64(2*d+1))
			for _, tt := range []int{2, 3} {
				perTrial := make([]int, trials)
				o.forEach(trials, func(s int) {
					p := cluster.Partition(g, beta, master.Fork(uint64(s)|uint64(d)<<20|uint64(tt)<<28|uint64(beta*1e4)<<36))
					for _, v := range nodes {
						if p.ClustersWithin(v, d) >= tt {
							perTrial[s]++
						}
					}
				})
				hits, total := 0, trials*len(nodes)
				for _, h := range perTrial {
					hits += h
				}
				t.AddRow(g.Name(), beta, d, tt, float64(hits)/float64(total), math.Pow(bound1, float64(tt-1)))
			}
		}
	}
	t.Note("measured over %d partitions x %d probe nodes per row", trials, len(nodes))
	return t
}

// runT6 counts bad subpaths along canonical shortest paths under the
// coarse clustering, sweeping D, and fits the growth exponent. Lemma 4.4:
// O(D^0.63) with the paper's exponents; the subpath/neighborhood exponents
// are rescaled for simulable D as documented.
func runT6(o Options) *Table {
	t := &Table{
		ID:         "T6",
		Title:      Title("T6"),
		PaperClaim: "all shortest paths have O(D^0.63) bad subpaths whp (paper exponents)",
		Columns:    []string{"D", "n", "subLen", "neigh", "subpaths", "bad(mean)", "bad(max)"},
	}
	master := rng.New(o.Seed)
	seeds := o.seeds(8)
	ks := []int{32, 64, 128, 256}
	if o.Quick {
		ks = []int{16, 32, 64}
		if seeds > 4 {
			seeds = 4
		}
	}
	var dims, bads []float64
	for _, k := range ks {
		g := graph.PathOfCliques(k, 4)
		d := 2*k - 1
		subLen := int(math.Ceil(math.Pow(float64(d), 0.25)))
		neigh := int(math.Ceil(math.Pow(float64(d), 0.15)))
		coarseBeta := math.Pow(float64(d), -0.5)
		path := g.ShortestPath(0, g.N()-1)
		nsub := (len(path) + subLen - 1) / subLen
		counts := make([]float64, seeds)
		o.forEach(seeds, func(s int) {
			p := cluster.Partition(g, coarseBeta, master.Fork(uint64(k)<<20|uint64(s)))
			bad := 0
			for i := 0; i < len(path); i += subLen {
				end := i + subLen
				if end > len(path) {
					end = len(path)
				}
				if subpathIsBad(g, p, path[i:end], neigh) {
					bad++
				}
			}
			counts[s] = float64(bad)
		})
		sum := stats.Summarize(counts)
		t.AddRow(d, g.N(), subLen, neigh, nsub, sum.Mean, sum.Max)
		if sum.Mean > 0 {
			dims = append(dims, float64(d))
			bads = append(bads, sum.Mean)
		}
	}
	if len(dims) >= 2 {
		f := stats.FitPower(dims, bads)
		t.Note("fit: bad ~ %.2f * D^%.2f (r2=%.2f); sublinear growth in D reproduces the lemma's shape", f.Coeff, f.Exp, f.R2)
	}
	t.Note("subpath length D^0.25 and neighborhood D^0.15 are the rescaled equivalents of the paper's D^0.12/D^0.11 (DESIGN.md §3)")
	return t
}

// subpathIsBad reports whether any node within distance neigh of the
// subpath sees a different coarse cluster than the rest (the paper's
// "bad subpath": its neighborhood is not contained in one coarse cluster).
func subpathIsBad(g *graph.Graph, p *cluster.Result, sub []int32, neigh int) bool {
	srcs := make([]int, len(sub))
	for i, v := range sub {
		srcs[i] = int(v)
	}
	dist := g.MultiBFS(srcs)
	var center int32 = -1
	for v, dv := range dist {
		if dv == graph.Unreached || int(dv) > neigh {
			continue
		}
		if center == -1 {
			center = p.Center[v]
		} else if p.Center[v] != center {
			return true
		}
	}
	return false
}

// runT7 runs the distributed Partition protocol and reports rounds against
// the O(log^3 n/beta) bound of Lemma 2.1, validating the result structure.
func runT7(o Options) *Table {
	t := &Table{
		ID:         "T7",
		Title:      Title("T7"),
		PaperClaim: "Partition(beta) implementable in radio networks in O(log^3 n/beta) rounds",
		Columns:    []string{"graph", "beta", "rounds", "log^3(n)/beta", "ratio", "valid"},
	}
	master := rng.New(o.Seed)
	seeds := o.seeds(3)
	gs := []*graph.Graph{graph.Grid(12, 12), graph.PathOfCliques(12, 6)}
	if !o.Quick {
		gs = append(gs, graph.Grid(24, 24), graph.RandomGeometric(500, 0.08, master.Fork(3)))
	}
	for _, g := range gs {
		logn := math.Log2(float64(g.N()))
		for _, beta := range []float64{0.15, 0.3} {
			rounds := make([]float64, seeds)
			ok := make([]bool, seeds)
			o.forEach(seeds, func(s int) {
				dp := cluster.NewDistributed(g, cluster.DistConfig{Beta: beta}, o.Seed+uint64(s))
				r, done := dp.Run()
				ok[s] = done && dp.Result().Validate() == nil
				rounds[s] = float64(r)
			})
			bound := logn * logn * logn / beta
			m := stats.Mean(rounds)
			t.AddRow(g.Name(), beta, m, bound, m/bound, all(ok))
		}
	}
	t.Note("ratio should stay O(1) across graphs and beta; valid = partition invariants hold")
	return t
}
