// Package ghle implements a Ghaffari–Haeupler-style leader election — a
// scoped variant of the elimination tournament of:
//
//	Mohsen Ghaffari and Bernhard Haeupler. "Near Optimal Leader Election
//	in Multi-Hop Radio Networks." SODA 2013 (arXiv:1210.8439).
//
// Their protocol elects a leader in almost the broadcast time T_BC by
// knocking candidates out with a geometric sequence of cheap, truncated
// broadcasts before paying for one full network-wide agreement broadcast
// — in contrast to the classical binary-search reduction's Θ(T_BC·log n)
// (one full budget per ID bit). The variant reproduced here keeps exactly
// that lever and simplifies the rest:
//
//  1. Candidates are sampled as in the source paper's Algorithm 6 (each
//     node with probability Θ(log n/n), random Θ(log n)-bit IDs).
//  2. Elimination phases i = 1..k, k = ⌈log₂ L⌉ (L = ⌈log₂ n⌉, so
//     k = Θ(log log n) as in GH13): surviving candidates seed a fresh
//     max-propagating Decay broadcast truncated to budget T/2^(k-i+1);
//     every candidate that hears an ID above its own is eliminated.
//     Early phases reach only small neighborhoods, but that is enough to
//     knock out most candidates — the GH13 insight — and their cost is
//     geometric, summing to < T.
//  3. One full agreement broadcast with budget T from the survivors; on
//     completion all nodes know the maximum ID, whose (unique) owner —
//     never eliminated, since no higher ID exists to be heard — becomes
//     leader.
//
// Total round cost < 2T where T defaults to 6·(D+L)·L, the same
// whp-sufficient Decay budget the max-broadcast baseline uses — "almost
// the same time as broadcasting", vs 40 full budgets for binary search.
//
// The package exists twice over: as the GH13 comparison point the
// experiment tables previously only footnoted (internal/baseline used
// MaxBroadcastLE as a stand-in), and as the protocol-registry acceptance
// test — it reaches the campaign engine, the radionet facade and both
// CLIs purely through its register.go, with zero edits to any dispatch
// code.
package ghle

import (
	"errors"
	"fmt"
	"math/bits"

	"radionet/internal/baseline"
	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/protocol"
	"radionet/internal/rng"
)

// Config parameterizes the election. The zero value selects the
// documented defaults.
type Config struct {
	// CandidateC scales the candidacy probability CandidateC·ln n/n
	// [paper Θ(log n/n); default 2, matching Algorithm 6].
	CandidateC float64
	// IDBits is the candidate ID length [Θ(log n); default 40].
	IDBits int
	// Phases is the number of elimination phases before the agreement
	// broadcast [default ⌈log₂ L⌉, the GH13 Θ(log log n)].
	Phases int
}

// LE is a prepared (and, after Run, executed) election instance.
type LE struct {
	g          *graph.Graph
	d          int
	seed       uint64
	cfg        Config
	candidates map[int]int64

	// Run outcome.
	ran       bool
	done      bool
	rounds    int64
	tx        int64
	survivors map[int]int64
	leader    int
	leaderID  int64
	values    []int64 // final-phase per-node outputs, for Verify
	reached   int
	target    int
}

// DefaultBudget is the agreement-broadcast budget T = 6·(D+L)·L (L =
// ⌈log₂ n⌉ Decay levels); the whole election costs < 2T.
func DefaultBudget(n, d int) int64 {
	l := int64(decay.Levels(n))
	return 6 * (int64(d) + l) * l
}

// phases returns the configured or default elimination-phase count.
func (c Config) phases(n int) int {
	if c.Phases > 0 {
		return c.Phases
	}
	k := bits.Len(uint(decay.Levels(n) - 1)) // ceil(log2 L)
	if k < 1 {
		k = 1
	}
	return k
}

// New samples the candidate set (a pure function of (n, cfg, seed) — the
// registry's fault protection derives the winner from the same draw) and
// prepares the election on g with diameter d.
func New(g *graph.Graph, d int, cfg Config, seed uint64) (*LE, error) {
	if g.N() == 0 {
		return nil, errors.New("ghle: empty graph")
	}
	cands, err := baseline.SampleCandidates(g.N(), seed, cfg.CandidateC, cfg.IDBits)
	if err != nil {
		return nil, err
	}
	return &LE{g: g, d: d, seed: seed, cfg: cfg, candidates: cands, leader: -1}, nil
}

// Candidates exposes the sampled candidate set (node -> ID).
func (le *LE) Candidates() map[int]int64 { return le.candidates }

// Winner returns the maximum-ID candidate — the node the election elects
// whenever it completes (and the node a future fault capability must
// protect).
func (le *LE) Winner() (node int, id int64) {
	return protocol.MaxIDNode(le.candidates)
}

// Leader returns the elected node once Done; -1 before completion.
func (le *LE) Leader() int { return le.leader }

// LeaderID returns the agreed-upon winning ID (valid once Done).
func (le *LE) LeaderID() int64 { return le.leaderID }

// Done reports completion of the agreement broadcast.
func (le *LE) Done() bool { return le.done }

// Rounds and Tx report the summed cost over every phase of the run.
func (le *LE) Rounds() int64 { return le.rounds }
func (le *LE) Tx() int64     { return le.tx }

// Reached and ReachTarget report the agreement broadcast's completion
// accounting (n and n on success; see decay.Broadcast).
func (le *LE) Reached() int     { return le.reached }
func (le *LE) ReachTarget() int { return le.target }

// Run executes the tournament. budget <= 0 selects DefaultBudget as the
// agreement budget T (total cost < 2T); an explicit budget B is split the
// same way with T = B/2, so the whole run never exceeds B. It returns the
// rounds consumed and whether the election completed. Run is single-use.
func (le *LE) Run(budget int64) (int64, bool) {
	if le.ran {
		return le.rounds, le.done
	}
	le.ran = true
	t := DefaultBudget(le.g.N(), le.d)
	if budget > 0 {
		t = budget / 2
		if t < 1 {
			t = 1
		}
	}
	master := rng.New(le.seed)
	k := le.cfg.phases(le.g.N())
	cur := le.candidates
	for i := 0; i < k && len(cur) > 1; i++ {
		phaseBudget := t >> uint(k-i)
		if phaseBudget < 1 {
			continue // deeper than the budget resolves; skip the phase
		}
		bc := decay.NewBroadcast(le.g, decay.Config{}, master.Fork(uint64(1000+i)).Uint64(), cur)
		r, _ := bc.Run(phaseBudget)
		le.rounds += r
		le.tx += bc.Engine.Metrics.Transmissions
		vals := bc.Values()
		next := make(map[int]int64, len(cur))
		//lint:ordered pure keyed filter: next[v] depends only on v and vals[v]
		for v, id := range cur {
			// A candidate survives iff it heard nothing above its own ID
			// this phase. The maximum-ID candidate always survives.
			if vals[v] == id {
				next[v] = id
			}
		}
		cur = next
	}
	le.survivors = cur
	final := decay.NewBroadcast(le.g, decay.Config{}, master.Fork(2000).Uint64(), cur)
	r, done := final.Run(t)
	le.rounds += r
	le.tx += final.Engine.Metrics.Transmissions
	le.done = done
	le.values = final.Values()
	le.reached, le.target = final.Reached(), final.ReachTarget()
	if done {
		le.leader, le.leaderID = le.Winner()
	}
	return le.rounds, le.done
}

// Verify checks the election postcondition after completion: the agreed
// ID is the true maximum over the sampled candidates, exactly one
// candidate owns it, it survived every elimination phase, and every node
// outputs it.
func (le *LE) Verify() error {
	if !le.done {
		return errors.New("ghle: election not complete")
	}
	wantNode, want := protocol.MaxIDNode(le.candidates)
	owners := 0
	for _, id := range le.candidates {
		if id == want {
			owners++
		}
	}
	if owners != 1 {
		return fmt.Errorf("ghle: %d candidates own the winning ID", owners)
	}
	if le.leaderID != want || le.leader != wantNode {
		return fmt.Errorf("ghle: elected (%d, %d), true winner (%d, %d)", le.leader, le.leaderID, wantNode, want)
	}
	if _, ok := le.survivors[wantNode]; !ok {
		return errors.New("ghle: the true winner was eliminated")
	}
	for v, got := range le.values {
		if got != want {
			return fmt.Errorf("ghle: node %d outputs %d, want %d", v, got, want)
		}
	}
	return nil
}
