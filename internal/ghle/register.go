package ghle

import (
	"fmt"

	"radionet/internal/protocol"
)

// Registration is this package's only integration point: the campaign
// engine, the radionet facade and both CLIs pick the algorithm up from
// the protocol registry — no dispatch code anywhere names it.

func init() {
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Leader,
		Name:      "gh13",
		Aliases:   []string{"ghaffari-haeupler"},
		Label:     "GH13-LE",
		Summary:   "Ghaffari–Haeupler SODA'13-style elimination tournament (scoped variant): Θ(log log n) geometric knockout broadcasts + one full agreement broadcast, < 2·T_BC total",
		BudgetDoc: "< 2T with T = 6·(D+L)·L (explicit budgets: T = budget/2)",
		Order:     30,
		// No Protect hook: the descriptor is fault-incapable (each
		// tournament phase restarts the round clock a FaultPlan's crash
		// schedule is written against), so fault planning never reaches
		// it. When the capability lands, protect LE.Winner here.
		Caps: protocol.Caps{},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			cfg := Config{}
			switch t := p.Tuning.(type) {
			case nil:
			case Config:
				cfg = t
			default:
				return nil, fmt.Errorf("ghle: tuning must be ghle.Config, got %T", p.Tuning)
			}
			if p.Faults != nil {
				return nil, fmt.Errorf("ghle: gh13 does not support fault plans (each tournament phase restarts the round clock)")
			}
			le, err := New(p.G, p.D, cfg, p.Seed)
			if err != nil {
				return nil, err
			}
			return runner{le: le}, nil
		},
	})
}

type runner struct {
	le *LE
}

// DefaultBudget implements protocol.Budgeted: the < 2T total of the
// tournament (knockout phases) plus the agreement broadcast (budget T).
func (r runner) DefaultBudget() int64 {
	return 2 * DefaultBudget(r.le.g.N(), r.le.d)
}

func (r runner) Run(budget int64) protocol.Result {
	rounds, done := r.le.Run(budget)
	return protocol.Result{
		Rounds:      rounds,
		Tx:          r.le.Tx(),
		Done:        done,
		Reached:     r.le.Reached(),
		ReachTarget: r.le.ReachTarget(),
		Verify:      r.le.Verify,
	}
}

func (r runner) Leader() int               { return r.le.Leader() }
func (r runner) LeaderID() int64           { return r.le.LeaderID() }
func (r runner) Candidates() map[int]int64 { return r.le.Candidates() }
