package ghle

import (
	"testing"

	"radionet/internal/baseline"
	"radionet/internal/graph"
)

func TestElectsTrueMaxAndVerifies(t *testing.T) {
	g := graph.Grid(8, 8)
	d := g.DiameterEstimate()
	for seed := uint64(1); seed <= 5; seed++ {
		le, err := New(g, d, Config{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		rounds, done := le.Run(0)
		if !done {
			t.Fatalf("seed %d: not done after %d rounds", seed, rounds)
		}
		wantNode, wantID := le.Winner()
		if le.Leader() != wantNode || le.LeaderID() != wantID {
			t.Fatalf("seed %d: elected (%d, %d), want (%d, %d)", seed, le.Leader(), le.LeaderID(), wantNode, wantID)
		}
		if err := le.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if le.Reached() != le.ReachTarget() || le.ReachTarget() != g.N() {
			t.Fatalf("seed %d: reach %d/%d", seed, le.Reached(), le.ReachTarget())
		}
		if le.Tx() <= 0 {
			t.Fatalf("seed %d: no transmissions recorded", seed)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := graph.PathOfCliques(8, 4)
	d := g.DiameterEstimate()
	run := func() (int64, int64, int, int64) {
		le, err := New(g, d, Config{}, 42)
		if err != nil {
			t.Fatal(err)
		}
		rounds, done := le.Run(0)
		if !done {
			t.Fatal("not done")
		}
		return rounds, le.Tx(), le.Leader(), le.LeaderID()
	}
	r1, tx1, l1, id1 := run()
	r2, tx2, l2, id2 := run()
	if r1 != r2 || tx1 != tx2 || l1 != l2 || id1 != id2 {
		t.Fatalf("same seed, different runs: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", r1, tx1, l1, id1, r2, tx2, l2, id2)
	}
}

func TestBudgetCapAndSplit(t *testing.T) {
	g := graph.Grid(6, 6)
	d := g.DiameterEstimate()
	const budget = 100
	le, err := New(g, d, Config{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rounds, _ := le.Run(budget)
	if rounds > budget {
		t.Fatalf("ran %d rounds over the %d budget", rounds, budget)
	}
	// Default budgets stay under the documented 2T bound.
	le2, err := New(g, d, Config{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rounds2, done := le2.Run(0)
	if !done {
		t.Fatal("default budget did not complete")
	}
	if max := 2 * DefaultBudget(g.N(), d); rounds2 > max {
		t.Fatalf("default run used %d rounds, bound is %d", rounds2, max)
	}
}

// TestBeatsBinarySearch pins the comparative claim that motivates the
// algorithm: the knockout tournament elects in a small multiple of one
// broadcast budget, while the binary-search reduction pays a full budget
// per ID bit. A 5x margin leaves plenty of room for constants.
func TestBeatsBinarySearch(t *testing.T) {
	g := graph.Grid(8, 16)
	d := g.DiameterEstimate()
	le, err := New(g, d, Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ghRounds, done := le.Run(0)
	if !done {
		t.Fatal("gh13 did not complete")
	}
	bs, err := baseline.NewBinarySearchLE(g, d, 3, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bsRes := bs.Run()
	if !bsRes.Done {
		t.Fatal("binary search did not complete")
	}
	if ghRounds*5 > bsRes.Rounds {
		t.Fatalf("gh13 %d rounds vs binary-search %d: expected >5x gap", ghRounds, bsRes.Rounds)
	}
}

// TestWinnerNeverEliminated is the tournament's core invariant: whatever
// the phase budgets resolve, the maximum-ID candidate survives every
// elimination phase (it can never hear a higher ID).
func TestWinnerNeverEliminated(t *testing.T) {
	g := graph.Caterpillar(16, 3)
	d := g.DiameterEstimate()
	for seed := uint64(10); seed < 20; seed++ {
		le, err := New(g, d, Config{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		le.Run(0)
		w, _ := le.Winner()
		if _, ok := le.survivors[w]; !ok {
			t.Fatalf("seed %d: winner eliminated", seed)
		}
	}
}
