// Package decay implements the Decay transmission primitive of Bar-Yehuda,
// Goldreich and Itai (Algorithm 5 of the paper) and the classical
// Decay-based broadcasting algorithm built on it, which serves both as the
// paper's collision-handling workhorse and as the O((D+log n)·log n)
// baseline from [3].
//
// One "round of Decay" is a phase of L ≈ log2 n consecutive time steps; in
// step i (1-based) of a phase every participating node transmits with
// probability 2^-i. Lemma 3.1: after a single phase, a listening node with
// at least one participating neighbor receives a message with constant
// probability, regardless of how many neighbors participate.
package decay

import (
	"fmt"
	"math"
	"math/bits"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// KindBroadcast tags messages of the Decay broadcast protocols.
const KindBroadcast radio.Kind = 1

// Levels returns the number of steps in one Decay phase for an n-node
// network: ceil(log2 n), at least 1.
func Levels(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Prob returns the transmission probability at 0-based step s of a phase:
// 2^-(s+1). Large steps (possible when a caller sets Config.Levels beyond
// the float64 exponent range) degrade gracefully toward 0 instead of
// overflowing the shift.
func Prob(s int) float64 {
	if s >= 62 {
		// int64(1)<<uint(s+1) wraps at 63 and overflows at 64; Ldexp
		// computes the same exact power of two (subnormal below 2^-1022,
		// then 0), so the probability stays finite and monotone.
		return math.Ldexp(1, -(s + 1))
	}
	return 1 / float64(int64(1)<<uint(s+1))
}

// Config parameterizes the Decay broadcast protocols.
type Config struct {
	// Levels is the phase length L. Zero means Levels(n).
	Levels int
	// JoinMidPhase lets a newly informed node start participating in the
	// current phase instead of waiting for the next phase boundary. The
	// classical analysis assumes phase-aligned joins; both succeed.
	JoinMidPhase bool
	// Wrap, if set, wraps each node's protocol before it is installed in
	// the engine — the fault-injection hook (see radio.CrashNode et al.).
	Wrap func(v int, n radio.Node) radio.Node
	// Faults, if set, is a whole-network fault scenario. Completion becomes
	// survivor-scoped: the Progress target is the set of nodes reachable
	// from the (surviving) sources in the survivor graph, so Done keeps
	// its meaning when crashed nodes can never be informed. With a nil
	// Wrap the plan is installed as the engine-side overlay (keeping the
	// bulk fast path); with a Wrap hook the overlay is left uninstalled
	// and the hook is expected to realize the same faults per node
	// (radio.FaultPlan.Wrap builds the equivalent wrapper chain).
	Faults *radio.FaultPlan
}

func (c Config) levels(n int) int {
	if c.Levels > 0 {
		return c.Levels
	}
	return Levels(n)
}

// tracker is the broadcast-wide incremental completion state shared by all
// nodes of one instance (see the radio.Progress convention): prog counts
// nodes whose value has reached the highest source value, informed counts
// nodes that know any value. Both are updated at the state transitions in
// Recv, so Done is O(1) instead of an O(n) scan per round. The per-node
// informed flags live here as one compact slice so the bulk Act pass
// streams ~n bytes, not the full node structs, while most nodes are
// uninformed.
type tracker struct {
	prog       radio.Progress
	informed   int
	trueMax    int64     // highest source value; propagation never exceeds it
	levels     int       // phase length, shared by every node
	probs      []float64 // probs[s] = Prob(s), precomputed per phase step
	thr        []uint64  // thr[s]: rnd.Uint64()>>11 < thr[s] <=> Bernoulli(probs[s])
	isInformed []bool    // per-node informed flag, indexed by node id
	// counted is the survivor-scoped completion mask (nil without a fault
	// plan): only nodes reachable from the surviving sources in the
	// survivor graph count toward prog, so nodes a crash schedule makes
	// uninformable can never pin Done at false.
	counted []bool
}

// node is the per-node state of the Decay broadcast protocol. Uninformed
// nodes are silent (the classical protocol does not use spontaneous
// transmissions).
type node struct {
	rnd        rng.Rand // embedded: nodes live in one contiguous slice
	tr         *tracker
	idx        int32
	joinMid    bool
	val        int64
	informedAt int64 // phase-aligned participation gate
	phaseStart int64 // start round of the phase containing the last Act
}

func (b *node) informed() bool { return b.tr.isInformed[b.idx] }

// Dormant implements radio.Sleeper: an uninformed node always listens,
// ignores silence, and consumes no randomness, so the engine may skip it.
func (b *node) Dormant() bool { return !b.informed() }

// IgnoresSilence implements radio.SilenceOblivious: Recv without a message
// is always a no-op.
func (b *node) IgnoresSilence() bool { return true }

func (b *node) Act(t int64) radio.Action {
	if !b.informed() {
		return radio.Listen
	}
	if !b.joinMid && t < b.informedAt {
		return radio.Listen
	}
	// step = t mod levels, tracked via the phase start to keep an integer
	// division off the hot path. The loop self-resyncs after Act gaps
	// (fault wrappers may swallow rounds) and normally runs 0 or 1 times.
	L := int64(b.tr.levels)
	for t-b.phaseStart >= L {
		b.phaseStart += L
	}
	step := int(t - b.phaseStart)
	if b.rnd.Bernoulli(b.tr.probs[step]) {
		return radio.Transmit(radio.Message{Kind: KindBroadcast, A: b.val})
	}
	return radio.Listen
}

func (b *node) Recv(t int64, msg *radio.Message, _ bool) {
	// val starts at the -1 sentinel, so for the non-negative message
	// values the protocol carries, "uninformed or strictly better" is the
	// single compare msg.A > b.val — the by-far common case (a re-delivery
	// to a saturated node) returns here.
	if msg == nil || msg.Kind != KindBroadcast || msg.A <= b.val {
		return
	}
	if !b.informed() {
		// Align participation to the next phase boundary.
		L := int64(b.tr.levels)
		b.informedAt = ((t / L) + 1) * L
		b.phaseStart = b.informedAt
		if b.joinMid {
			// Participation starts next round, mid-phase.
			b.phaseStart = (t + 1) - (t+1)%L
		}
		b.tr.isInformed[b.idx] = true
		b.tr.informed++
	}
	b.val = msg.A
	// Circulating values are source values, so the threshold is crossed
	// at most once per node: val only grows and never exceeds trueMax.
	if msg.A == b.tr.trueMax && (b.tr.counted == nil || b.tr.counted[b.idx]) {
		b.tr.prog.Add(1)
	}
}

// Broadcast is a running instance of the Decay broadcast protocol from a
// set of sources. With a single source it is exactly the [3] algorithm;
// with many, all nodes converge on the highest source value (the
// multi-source extension used by the binary-search leader election of [2]).
type Broadcast struct {
	Engine *radio.Engine
	nodes  []node
	tr     tracker
}

// NewBroadcast builds a Decay broadcast instance on g where each source
// node starts informed with its value from sources. seed determines all
// randomness. Source values must be non-negative (-1 is the internal
// uninformed sentinel, as in compete.Uninformed); negative values panic
// rather than silently failing to propagate.
func NewBroadcast(g *graph.Graph, cfg Config, seed uint64, sources map[int]int64) *Broadcast {
	n := g.N()
	L := cfg.levels(n)
	master := rng.New(seed)
	b := &Broadcast{nodes: make([]node, n)}
	b.tr.levels = L
	b.tr.probs = make([]float64, L)
	b.tr.thr = make([]uint64, L)
	for s := range b.tr.probs {
		p := Prob(s)
		b.tr.probs[s] = p
		// rng.Bernoulli(p) is Float64() < p with Float64 = (Uint64>>11)/2^53.
		// Both sides are exact powers of two, so the comparison equals the
		// integer test (Uint64>>11) < ceil(p*2^53) — same draw, same
		// outcome, no float math on the hot path.
		b.tr.thr[s] = uint64(math.Ceil(p * (1 << 53)))
	}
	b.tr.isInformed = make([]bool, n)
	rn := make([]radio.Node, n)
	for i := 0; i < n; i++ {
		b.nodes[i] = node{rnd: *master.Fork(uint64(i)), tr: &b.tr, idx: int32(i), joinMid: cfg.JoinMidPhase, val: -1}
		rn[i] = &b.nodes[i]
		if cfg.Wrap != nil {
			rn[i] = cfg.Wrap(i, rn[i])
		}
	}
	first := true
	//lint:ordered max reduction over the values; order cannot change the maximum
	for _, v := range sources {
		if first || v > b.tr.trueMax {
			b.tr.trueMax = v
			first = false
		}
	}
	// Completion: every node at trueMax — every survivor-reachable node
	// under a fault plan (see Config.Faults). With no sources nothing can
	// ever circulate, so the target is pinned out of reach (the full
	// scan's "no informed node" case).
	target := int64(n)
	if cfg.Faults != nil {
		b.tr.counted, target = cfg.Faults.CountedTarget(g, sources)
	}
	if len(sources) == 0 {
		target = int64(n) + 1
	}
	atMax := int64(0)
	//lint:ordered keyed writes per source plus commutative counters; the panic fires only on inputs register.go already rejects
	for s, v := range sources {
		if v < 0 {
			panic(fmt.Sprintf("decay: source %d has negative message %d", s, v))
		}
		b.tr.isInformed[s] = true
		b.nodes[s].val = v
		b.tr.informed++
		if v == b.tr.trueMax && (b.tr.counted == nil || b.tr.counted[s]) {
			atMax++
		}
	}
	b.tr.prog = *radio.NewProgress(target)
	b.tr.prog.Add(atMax)
	b.Engine = radio.NewEngine(g, rn)
	if cfg.Wrap == nil {
		// All engine nodes are exactly &b.nodes[i], so the bulk Act and
		// Recv fast paths are observationally identical; a Wrap hook
		// interposes per-node behavior and disables them.
		b.Engine.Bulk = b
		b.Engine.BulkRecv = b
		b.Engine.SetFaults(cfg.Faults)
	}
	return b
}

// ActBulk implements radio.BulkActor: one pass over the contiguous node
// slice, mirroring node.Act exactly (same checks, same RNG draws, same
// order) without per-node interface dispatch.
//
//radionet:hotpath
func (b *Broadcast) ActBulk(t int64, tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	return b.ActBulkRange(t, 0, int32(len(b.nodes)), tx, msgs)
}

// ActBulkRange implements radio.BulkRangeActor, restricting the ActBulk
// pass to ids in [lo, hi) so the engine can shard the Act wave. Safe to
// run concurrently on disjoint ranges: every mutation (phase resync, the
// transmission coin) lives in the node's own struct, and the tracker
// fields read here (isInformed, levels, thr) are only written during Recv
// replay, never inside Act.
//
//radionet:hotpath
func (b *Broadcast) ActBulkRange(t int64, lo, hi int32, tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	L := int64(b.tr.levels)
	thr := b.tr.thr
	for i := lo; i < hi; i++ {
		if !b.tr.isInformed[i] {
			continue
		}
		nd := &b.nodes[i]
		if !nd.joinMid && t < nd.informedAt {
			continue
		}
		for t-nd.phaseStart >= L {
			nd.phaseStart += L
		}
		step := int(t - nd.phaseStart)
		if nd.rnd.Uint64()>>11 < thr[step] { // == rnd.Bernoulli(probs[step])
			tx = append(tx, i)
			msgs = append(msgs, radio.Message{Kind: KindBroadcast, A: nd.val})
		}
	}
	return tx, msgs
}

// RecvBulk implements radio.BulkReceiver: one pass over the round's
// deliveries. The per-listener call is node.Recv itself — static dispatch
// on the concrete type, so the seam removes the interface dispatches
// without duplicating the delivery logic.
//
//radionet:hotpath
func (b *Broadcast) RecvBulk(t int64, listeners, msgIdx []int32, msgs []radio.Message) {
	for k, vi := range listeners {
		b.nodes[vi].Recv(t, &msgs[msgIdx[k]], false)
	}
}

// Done reports whether every node knows the maximum source value. O(1):
// completion is tracked incrementally at the Recv transitions (see
// doneFullScan for the reference semantics it mirrors).
func (b *Broadcast) Done() bool { return b.tr.prog.Done() }

// doneFullScan is the O(n) reference implementation of Done, kept for the
// equivalence tests and the termination-checking benchmarks.
func (b *Broadcast) doneFullScan() bool {
	if b.tr.counted != nil {
		if b.tr.prog.Target() > int64(len(b.nodes)) {
			return false // the no-sources pin (target n+1): never done
		}
		// Survivor-scoped: every counted node informed of trueMax.
		for i := range b.nodes {
			if !b.tr.counted[i] {
				continue
			}
			if nd := &b.nodes[i]; !nd.informed() || nd.val != b.tr.trueMax {
				return false
			}
		}
		return true
	}
	max := int64(0)
	first := true
	for i := range b.nodes {
		if nd := &b.nodes[i]; nd.informed() && (first || nd.val > max) {
			max = nd.val
			first = false
		}
	}
	if first {
		return false
	}
	for i := range b.nodes {
		if nd := &b.nodes[i]; !nd.informed() || nd.val != max {
			return false
		}
	}
	return true
}

// InformedCount returns how many nodes are informed of any value.
func (b *Broadcast) InformedCount() int { return b.tr.informed }

// ReachTarget returns the number of nodes Done waits on: n for a
// fault-free broadcast, the survivor-reachable set size under a fault
// plan (n+1 when no sources were supplied — the unreachable pin).
func (b *Broadcast) ReachTarget() int { return int(b.tr.prog.Target()) }

// Reached returns how many target nodes know the maximum source value —
// the numerator of the fault campaigns' reach fraction.
func (b *Broadcast) Reached() int { return int(b.tr.prog.Count()) }

// Counted returns the survivor-scoped completion mask (nil for a
// fault-free broadcast): counted nodes are the ones Done waits on. The
// returned slice is the broadcast's own — treat it as read-only.
func (b *Broadcast) Counted() []bool { return b.tr.counted }

// Values returns a copy of each node's current value; uninformed nodes
// report -1.
func (b *Broadcast) Values() []int64 {
	vs := make([]int64, len(b.nodes))
	for i := range b.nodes {
		if nd := &b.nodes[i]; nd.informed() {
			vs[i] = nd.val
		} else {
			vs[i] = -1
		}
	}
	return vs
}

// Run executes until completion or maxRounds, returning the rounds used in
// this call and whether broadcast completed.
func (b *Broadcast) Run(maxRounds int64) (int64, bool) {
	return b.Engine.RunUntil(maxRounds, &b.tr.prog)
}

// Participant is a reusable Decay phase driver for protocols that embed
// Decay as a sub-process (e.g. the paper's Algorithm 4 background process).
// A Participant does not itself decide *whether* to take part in a phase —
// the embedding protocol does — it only supplies the per-step coin.
type Participant struct {
	Levels int
	Rnd    *rng.Rand
}

// Transmitp reports whether to transmit at 0-based step s of the current
// phase.
func (p *Participant) Transmitp(s int) bool {
	return p.Rnd.Bernoulli(Prob(s % p.Levels))
}

var (
	_ radio.BulkRangeActor = (*Broadcast)(nil)
	_ radio.BulkReceiver   = (*Broadcast)(nil)
)
