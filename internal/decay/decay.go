// Package decay implements the Decay transmission primitive of Bar-Yehuda,
// Goldreich and Itai (Algorithm 5 of the paper) and the classical
// Decay-based broadcasting algorithm built on it, which serves both as the
// paper's collision-handling workhorse and as the O((D+log n)·log n)
// baseline from [3].
//
// One "round of Decay" is a phase of L ≈ log2 n consecutive time steps; in
// step i (1-based) of a phase every participating node transmits with
// probability 2^-i. Lemma 3.1: after a single phase, a listening node with
// at least one participating neighbor receives a message with constant
// probability, regardless of how many neighbors participate.
package decay

import (
	"math/bits"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// KindBroadcast tags messages of the Decay broadcast protocols.
const KindBroadcast radio.Kind = 1

// Levels returns the number of steps in one Decay phase for an n-node
// network: ceil(log2 n), at least 1.
func Levels(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Prob returns the transmission probability at 0-based step s of a phase:
// 2^-(s+1).
func Prob(s int) float64 { return 1 / float64(int64(1)<<uint(s+1)) }

// Config parameterizes the Decay broadcast protocols.
type Config struct {
	// Levels is the phase length L. Zero means Levels(n).
	Levels int
	// JoinMidPhase lets a newly informed node start participating in the
	// current phase instead of waiting for the next phase boundary. The
	// classical analysis assumes phase-aligned joins; both succeed.
	JoinMidPhase bool
	// Wrap, if set, wraps each node's protocol before it is installed in
	// the engine — the fault-injection hook (see radio.CrashNode et al.).
	Wrap func(v int, n radio.Node) radio.Node
}

func (c Config) levels(n int) int {
	if c.Levels > 0 {
		return c.Levels
	}
	return Levels(n)
}

// node is the per-node state of the Decay broadcast protocol. Uninformed
// nodes are silent (the classical protocol does not use spontaneous
// transmissions).
type node struct {
	levels     int
	rnd        *rng.Rand
	informed   bool
	val        int64
	informedAt int64 // phase-aligned participation gate
	joinMid    bool
}

func (b *node) Act(t int64) radio.Action {
	if !b.informed {
		return radio.Listen
	}
	if !b.joinMid && t < b.informedAt {
		return radio.Listen
	}
	step := int(t % int64(b.levels))
	if b.rnd.Bernoulli(Prob(step)) {
		return radio.Transmit(radio.Message{Kind: KindBroadcast, A: b.val})
	}
	return radio.Listen
}

func (b *node) Recv(t int64, msg *radio.Message, _ bool) {
	if msg == nil || msg.Kind != KindBroadcast {
		return
	}
	if !b.informed || msg.A > b.val {
		if !b.informed {
			// Align participation to the next phase boundary.
			b.informedAt = ((t / int64(b.levels)) + 1) * int64(b.levels)
		}
		b.informed = true
		b.val = msg.A
	}
}

// Broadcast is a running instance of the Decay broadcast protocol from a
// set of sources. With a single source it is exactly the [3] algorithm;
// with many, all nodes converge on the highest source value (the
// multi-source extension used by the binary-search leader election of [2]).
type Broadcast struct {
	Engine *radio.Engine
	nodes  []*node
}

// NewBroadcast builds a Decay broadcast instance on g where each source
// node starts informed with its value from sources. seed determines all
// randomness.
func NewBroadcast(g *graph.Graph, cfg Config, seed uint64, sources map[int]int64) *Broadcast {
	n := g.N()
	L := cfg.levels(n)
	master := rng.New(seed)
	ns := make([]*node, n)
	rn := make([]radio.Node, n)
	for i := 0; i < n; i++ {
		ns[i] = &node{levels: L, rnd: master.Fork(uint64(i)), joinMid: cfg.JoinMidPhase}
		rn[i] = ns[i]
		if cfg.Wrap != nil {
			rn[i] = cfg.Wrap(i, rn[i])
		}
	}
	for s, v := range sources {
		ns[s].informed = true
		ns[s].val = v
	}
	return &Broadcast{Engine: radio.NewEngine(g, rn), nodes: ns}
}

// Done reports whether every node knows the maximum source value.
func (b *Broadcast) Done() bool {
	max := int64(0)
	first := true
	for _, nd := range b.nodes {
		if nd.informed && (first || nd.val > max) {
			max = nd.val
			first = false
		}
	}
	if first {
		return false
	}
	for _, nd := range b.nodes {
		if !nd.informed || nd.val != max {
			return false
		}
	}
	return true
}

// InformedCount returns how many nodes are informed of any value.
func (b *Broadcast) InformedCount() int {
	c := 0
	for _, nd := range b.nodes {
		if nd.informed {
			c++
		}
	}
	return c
}

// Values returns a copy of each node's current value; uninformed nodes
// report -1.
func (b *Broadcast) Values() []int64 {
	vs := make([]int64, len(b.nodes))
	for i, nd := range b.nodes {
		if nd.informed {
			vs[i] = nd.val
		} else {
			vs[i] = -1
		}
	}
	return vs
}

// Run executes until completion or maxRounds, returning the rounds used in
// this call and whether broadcast completed.
func (b *Broadcast) Run(maxRounds int64) (int64, bool) {
	return b.Engine.Run(maxRounds, b.Done)
}

// Participant is a reusable Decay phase driver for protocols that embed
// Decay as a sub-process (e.g. the paper's Algorithm 4 background process).
// A Participant does not itself decide *whether* to take part in a phase —
// the embedding protocol does — it only supplies the per-step coin.
type Participant struct {
	Levels int
	Rnd    *rng.Rand
}

// Transmitp reports whether to transmit at 0-based step s of the current
// phase.
func (p *Participant) Transmitp(s int) bool {
	return p.Rnd.Bernoulli(Prob(s % p.Levels))
}
