package decay

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

func TestLevels(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, tc := range tests {
		if got := Levels(tc.n); got != tc.want {
			t.Errorf("Levels(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestProb(t *testing.T) {
	if Prob(0) != 0.5 || Prob(1) != 0.25 || Prob(3) != 0.0625 {
		t.Fatalf("Prob sequence wrong: %v %v %v", Prob(0), Prob(1), Prob(3))
	}
}

func TestBroadcastPathCompletes(t *testing.T) {
	g := graph.Path(50)
	b := NewBroadcast(g, Config{}, 1, map[int]int64{0: 99})
	rounds, done := b.Run(100000)
	if !done {
		t.Fatalf("broadcast did not finish in %d rounds (informed %d/%d)",
			rounds, b.InformedCount(), g.N())
	}
	for i, v := range b.Values() {
		if v != 99 {
			t.Fatalf("node %d has value %d, want 99", i, v)
		}
	}
}

func TestBroadcastDenseGraphCompletes(t *testing.T) {
	// Heavy contention: cliques force Decay to do real collision work.
	g := graph.PathOfCliques(6, 16)
	b := NewBroadcast(g, Config{}, 7, map[int]int64{0: 5})
	if _, done := b.Run(200000); !done {
		t.Fatalf("broadcast stuck: informed %d/%d", b.InformedCount(), g.N())
	}
}

func TestBroadcastMultiSourceTakesMax(t *testing.T) {
	g := graph.Grid(8, 8)
	b := NewBroadcast(g, Config{}, 3, map[int]int64{0: 10, 63: 70, 32: 40})
	if _, done := b.Run(200000); !done {
		t.Fatal("multi-source broadcast did not converge")
	}
	for i, v := range b.Values() {
		if v != 70 {
			t.Fatalf("node %d converged to %d, want 70", i, v)
		}
	}
}

func TestBroadcastNoSourcesNeverDone(t *testing.T) {
	g := graph.Path(5)
	b := NewBroadcast(g, Config{}, 1, nil)
	if _, done := b.Run(100); done {
		t.Fatal("broadcast with no sources reported done")
	}
	if b.InformedCount() != 0 {
		t.Fatal("phantom informed nodes")
	}
}

func TestBroadcastDeterministicAcrossRuns(t *testing.T) {
	g := graph.Grid(6, 6)
	r1 := NewBroadcast(g, Config{}, 42, map[int]int64{0: 1})
	r2 := NewBroadcast(g, Config{}, 42, map[int]int64{0: 1})
	n1, _ := r1.Run(100000)
	n2, _ := r2.Run(100000)
	if n1 != n2 {
		t.Fatalf("same seed gave different completion rounds: %d vs %d", n1, n2)
	}
}

func TestBroadcastJoinMidPhase(t *testing.T) {
	g := graph.Path(30)
	b := NewBroadcast(g, Config{JoinMidPhase: true}, 11, map[int]int64{0: 1})
	if _, done := b.Run(100000); !done {
		t.Fatal("mid-phase joining broadcast did not finish")
	}
}

// TestDecaySuccessProbability is the Lemma 3.1 check: one Decay phase
// informs a listener with constant probability, for any number of
// participating neighbors.
func TestDecaySuccessProbability(t *testing.T) {
	const trials = 2000
	master := rng.New(123)
	for _, competitors := range []int{1, 2, 4, 16, 64, 256} {
		L := Levels(competitors + 1)
		success := 0
		for trial := 0; trial < trials; trial++ {
			r := master.Fork(uint64(competitors)<<32 | uint64(trial))
			// Simulate one phase on a star: count steps where exactly one
			// of the competitors transmits.
			for s := 0; s < L; s++ {
				tx := 0
				for c := 0; c < competitors; c++ {
					if r.Bernoulli(Prob(s)) {
						tx++
					}
				}
				if tx == 1 {
					success++
					break
				}
			}
		}
		p := float64(success) / trials
		// The classical bound gives p >= 1/(2e) ≈ 0.18 per phase; measured
		// values are well above that.
		if p < 0.18 {
			t.Errorf("Decay success probability %.3f with %d competitors, want >= 0.18",
				p, competitors)
		}
	}
}

func TestParticipant(t *testing.T) {
	p := &Participant{Levels: 4, Rnd: rng.New(5)}
	// Step 0 has probability 1/2; over many phases it must transmit
	// sometimes and not always.
	yes := 0
	for i := 0; i < 1000; i++ {
		if p.Transmitp(0) {
			yes++
		}
	}
	if yes < 400 || yes > 600 {
		t.Fatalf("step-0 transmit count %d out of range for p=1/2", yes)
	}
}

func TestBroadcastScalingOnPath(t *testing.T) {
	// Sanity on the O((D+log n) log n) shape: doubling D should roughly
	// double completion time on a path. Loose factor bounds only.
	times := make(map[int]int64)
	for _, n := range []int{32, 64, 128} {
		g := graph.Path(n)
		b := NewBroadcast(g, Config{}, 9, map[int]int64{0: 1})
		r, done := b.Run(1 << 20)
		if !done {
			t.Fatalf("path n=%d did not finish", n)
		}
		times[n] = r
	}
	if times[128] < times[32] {
		t.Fatalf("completion time not increasing with D: %v", times)
	}
}
