package decay

import (
	"math"
	"testing"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// Prob must stay a finite, positive-or-zero, non-increasing probability
// for every step, including shifts past the int64 range (the seed
// overflowed at s >= 62, yielding ±Inf via a wrapped shift).
func TestProbClampedForLargeSteps(t *testing.T) {
	prev := 1.0
	for s := 0; s < 1200; s++ {
		p := Prob(s)
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 0.5 {
			t.Fatalf("Prob(%d) = %v out of range", s, p)
		}
		if p > prev {
			t.Fatalf("Prob(%d) = %v > Prob(%d) = %v: not monotone", s, p, s-1, prev)
		}
		prev = p
	}
	// Exact powers of two while representable.
	if got := Prob(61); got != math.Ldexp(1, -62) {
		t.Fatalf("Prob(61) = %v, want 2^-62", got)
	}
	if got := Prob(62); got != math.Ldexp(1, -63) {
		t.Fatalf("Prob(62) = %v, want 2^-63", got)
	}
	if got := Prob(63); got != math.Ldexp(1, -64) {
		t.Fatalf("Prob(63) = %v, want 2^-64", got)
	}
	// Far past the subnormal range the probability degrades to exactly 0.
	if got := Prob(2000); got != 0 {
		t.Fatalf("Prob(2000) = %v, want 0", got)
	}
}

// A huge Config.Levels (the trigger for the old overflow) must not wedge
// the protocol: the phase spends its tail in ~zero-probability steps, but
// early steps still make progress.
func TestBroadcastWithHugeLevels(t *testing.T) {
	g := graph.Path(8)
	bc := NewBroadcast(g, Config{Levels: 80}, 3, map[int]int64{0: 9})
	if _, done := bc.Run(1 << 16); !done {
		t.Fatalf("broadcast with Levels=80 incomplete: %d/%d informed", bc.InformedCount(), g.N())
	}
}

// equivalenceGraphs builds the randomized sparse topologies the
// incremental-vs-full-scan tests sweep.
func equivalenceGraphs(seed uint64) []*graph.Graph {
	r := rng.New(seed)
	return []*graph.Graph{
		graph.RandomTree(60, r.Fork(1)),
		graph.Gnp(80, 0.05, r.Fork(2)),
		graph.Grid(6, 9),
		graph.PathOfCliques(6, 4),
	}
}

// Incremental Done must agree with the O(n) reference scan after every
// single round, across graphs, seeds, source patterns and both engine
// paths (bulk and wrapped per-node).
func TestDoneMatchesFullScanEveryRound(t *testing.T) {
	identity := func(_ int, n radio.Node) radio.Node { return n }
	for seed := uint64(1); seed <= 3; seed++ {
		for gi, g := range equivalenceGraphs(seed) {
			for _, wrap := range []bool{false, true} {
				cfg := Config{}
				if wrap {
					// Exercises the per-node engine path (Bulk disabled).
					cfg.Wrap = identity
				}
				sources := map[int]int64{0: 9}
				if gi%2 == 1 { // multi-source with distinct values
					sources = map[int]int64{0: 5, g.N() / 2: 9, g.N() - 1: 2}
				}
				bc := NewBroadcast(g, cfg, seed, sources)
				if wrap == (bc.Engine.Bulk != nil) {
					t.Fatalf("Bulk fast path: wrap=%v but Bulk=%v", wrap, bc.Engine.Bulk)
				}
				for r := 0; r < 1<<14; r++ {
					inc, ref := bc.Done(), bc.doneFullScan()
					if inc != ref {
						t.Fatalf("%s seed=%d wrap=%v round %d: incremental Done=%v, full scan=%v",
							g, seed, wrap, r, inc, ref)
					}
					if ref {
						break
					}
					bc.Engine.Step()
				}
				if !bc.doneFullScan() {
					t.Fatalf("%s seed=%d wrap=%v: broadcast did not complete", g, seed, wrap)
				}
			}
		}
	}
}

// The bulk path (ActBulk + RecvBulk) must match the wrapped per-node path
// round for round: same transmitter sets and delivery/collision counts in
// every round, not just at completion.
func TestBulkMatchesPerNodeRoundForRound(t *testing.T) {
	identity := func(_ int, n radio.Node) radio.Node { return n }
	for seed := uint64(1); seed <= 3; seed++ {
		for gi, g := range equivalenceGraphs(seed) {
			sources := map[int]int64{0: 9}
			if gi%2 == 1 {
				sources = map[int]int64{0: 5, g.N() / 2: 9}
			}
			bb := NewBroadcast(g, Config{}, seed, sources)
			pb := NewBroadcast(g, Config{Wrap: identity}, seed, sources)
			if bb.Engine.Bulk == nil || bb.Engine.BulkRecv == nil {
				t.Fatal("bulk seams not installed on the unwrapped path")
			}
			if pb.Engine.Bulk != nil || pb.Engine.BulkRecv != nil {
				t.Fatal("bulk seams installed despite Wrap")
			}
			type round struct {
				tx         []int32
				deliveries int
				collisions int
			}
			var bl, pl round
			bb.Engine.Hook = func(_ int64, tx []int32, d, c int) {
				bl = round{append([]int32(nil), tx...), d, c}
			}
			pb.Engine.Hook = func(_ int64, tx []int32, d, c int) {
				pl = round{append([]int32(nil), tx...), d, c}
			}
			for r := 0; r < 1<<14 && !(bb.Done() && pb.Done()); r++ {
				bb.Engine.Step()
				pb.Engine.Step()
				if bl.deliveries != pl.deliveries || bl.collisions != pl.collisions || len(bl.tx) != len(pl.tx) {
					t.Fatalf("%s seed=%d round %d: bulk (%d tx, %d/%d) vs per-node (%d tx, %d/%d)",
						g, seed, r, len(bl.tx), bl.deliveries, bl.collisions,
						len(pl.tx), pl.deliveries, pl.collisions)
				}
				for i := range bl.tx {
					if bl.tx[i] != pl.tx[i] {
						t.Fatalf("%s seed=%d round %d: transmitter %d differs: %d vs %d",
							g, seed, r, i, bl.tx[i], pl.tx[i])
					}
				}
			}
			if !bb.Done() || !pb.Done() {
				t.Fatalf("%s seed=%d: broadcast incomplete", g, seed)
			}
		}
	}
}

// The wrapped per-node path and the bulk path must stay bit-identical:
// same completion round, same metrics, same final values.
func TestBulkAndPerNodePathsIdentical(t *testing.T) {
	identity := func(_ int, n radio.Node) radio.Node { return n }
	for seed := uint64(1); seed <= 3; seed++ {
		for _, g := range equivalenceGraphs(seed) {
			run := func(cfg Config) (int64, radio.Metrics, []int64) {
				bc := NewBroadcast(g, cfg, seed, map[int]int64{0: 9})
				rounds, done := bc.Run(1 << 20)
				if !done {
					t.Fatalf("%s seed=%d: incomplete", g, seed)
				}
				return rounds, bc.Engine.Metrics, bc.Values()
			}
			r1, m1, v1 := run(Config{})
			r2, m2, v2 := run(Config{Wrap: identity})
			if r1 != r2 || m1 != m2 {
				t.Fatalf("%s seed=%d: bulk (%d rounds, %+v) vs per-node (%d rounds, %+v)",
					g, seed, r1, m1, r2, m2)
			}
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("%s seed=%d node %d: bulk val %d vs per-node %d", g, seed, i, v1[i], v2[i])
				}
			}
		}
	}
}

// InformedCount must agree with a scan of Values at every round.
func TestInformedCountIncremental(t *testing.T) {
	g := graph.RandomTree(80, rng.New(5))
	bc := NewBroadcast(g, Config{}, 2, map[int]int64{3: 7})
	for r := 0; r < 1<<14 && !bc.Done(); r++ {
		want := 0
		for _, v := range bc.Values() {
			if v >= 0 {
				want++
			}
		}
		if got := bc.InformedCount(); got != want {
			t.Fatalf("round %d: InformedCount = %d, scan = %d", r, got, want)
		}
		bc.Engine.Step()
	}
}

// Negative source values collide with the uninformed sentinel and must be
// rejected loudly instead of silently never propagating.
func TestNegativeSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative source value")
		}
	}()
	NewBroadcast(graph.Path(4), Config{}, 1, map[int]int64{0: -5})
}

// No sources: Done must stay false forever (the seed full scan's "no
// informed node" case), not trivially complete.
func TestDoneWithoutSources(t *testing.T) {
	g := graph.Path(4)
	bc := NewBroadcast(g, Config{}, 1, nil)
	rounds, done := bc.Run(64)
	if done || rounds != 64 {
		t.Fatalf("sourceless broadcast: rounds = %d done = %v, want 64 false", rounds, done)
	}
	if bc.doneFullScan() {
		t.Fatal("full scan claims completion without sources")
	}
}
