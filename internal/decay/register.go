package decay

import (
	"errors"
	"fmt"
	"sort"

	"radionet/internal/protocol"
)

// This file registers the classical BGI Decay broadcast. The runner
// reproduces the historical campaign semantics bit for bit: same
// constructor, same randomness, same 20·(D+L)·L default budget.

func init() {
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Broadcast,
		Name:      "bgi",
		Aliases:   []string{"decay"},
		Label:     "BGI92",
		Summary:   "classical Decay broadcast of Bar-Yehuda–Goldreich–Itai, O((D+log n)·log n); no spontaneous transmissions",
		BudgetDoc: "20·(D+L)·L",
		Order:     10,
		Caps:      protocol.Caps{Faults: true, Bulk: true, Transport: true},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			return BuildRunner(p, Config{})
		},
	})
}

// WhpBudget is the whp-sufficient Decay broadcast budget 20·(D+L)·L with
// L = ceil(log2 n) levels — the default every Decay-family descriptor
// applies when the caller passes budget <= 0, mirroring the radionet
// facade and the historical campaign budget math.
func WhpBudget(n, d int) int64 {
	l := int64(Levels(n))
	return 20 * (int64(d) + l) * l
}

// Runner adapts a Broadcast to the protocol.Runner contract.
type Runner struct {
	B *Broadcast
	// Default is the budget applied when Run gets budget <= 0.
	Default int64
}

// DefaultBudget implements protocol.Budgeted.
func (r Runner) DefaultBudget() int64 { return r.Default }

// Run implements protocol.Runner.
func (r Runner) Run(budget int64) protocol.Result {
	if budget <= 0 {
		budget = r.Default
	}
	rounds, done := r.B.Run(budget)
	return protocol.Result{
		Rounds:      rounds,
		Tx:          r.B.Engine.Metrics.Transmissions,
		Done:        done,
		Reached:     r.B.Reached(),
		ReachTarget: r.B.ReachTarget(),
	}
}

// BuildRunner builds a Decay-family protocol runner from BuildParams and a
// base config (internal/baseline reuses it for the truncated-Decay
// surrogate, which is the same protocol at a different phase length).
// The fault plan rides in the Config, exactly as the campaign and facade
// have always installed it. The Decay descriptors take no tuning, and a
// non-nil value is rejected loudly — silently ignoring a caller's
// intended configuration is the bug class the registry exists to kill.
func BuildRunner(p protocol.BuildParams, cfg Config) (protocol.Runner, error) {
	if p.Tuning != nil {
		return nil, fmt.Errorf("decay: the Decay-family descriptors take no tuning, got %T", p.Tuning)
	}
	if len(p.Sources) == 0 {
		return nil, errors.New("decay: empty source set")
	}
	// Validate in sorted order so the reported source — and with it the
	// error string — does not depend on map iteration order.
	srcIDs := make([]int, 0, len(p.Sources))
	for s := range p.Sources {
		srcIDs = append(srcIDs, s)
	}
	sort.Ints(srcIDs)
	for _, s := range srcIDs {
		if v := p.Sources[s]; v < 0 {
			return nil, fmt.Errorf("decay: source %d has negative message %d", s, v)
		}
	}
	cfg.Faults = p.Faults
	b := NewBroadcast(p.G, cfg, p.Seed, p.Sources)
	p.ApplyEngine(b.Engine)
	return Runner{B: b, Default: WhpBudget(p.G.N(), p.D)}, nil
}
