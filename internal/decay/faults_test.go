package decay

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

func TestDecayBroadcastSurvivesCrashes(t *testing.T) {
	// Grid stays connected after losing scattered interior nodes.
	g := graph.Grid(10, 10)
	crashed := map[int]bool{33: true, 44: true, 55: true, 66: true}
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		if crashed[v] {
			return &radio.CrashNode{Inner: n, CrashAt: 20}
		}
		return n
	}}
	b := NewBroadcast(g, cfg, 3, map[int]int64{0: 9})
	aliveDone := func() bool {
		for v, val := range b.Values() {
			if !crashed[v] && val != 9 {
				return false
			}
		}
		return true
	}
	rounds, done := b.Engine.Run(1<<22, aliveDone)
	if !done {
		t.Fatalf("survivors uninformed after %d rounds", rounds)
	}
}

func TestDecayBroadcastSurvivesJamming(t *testing.T) {
	g := graph.Path(50)
	jr := rng.New(4)
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		if v%7 == 3 {
			return &radio.JamNode{Inner: n, P: 0.25, Rnd: jr.Fork(uint64(v))}
		}
		return n
	}}
	b := NewBroadcast(g, cfg, 9, map[int]int64{0: 9})
	if _, done := b.Run(1 << 22); !done {
		t.Fatalf("broadcast under jamming incomplete: %d/%d informed", b.InformedCount(), g.N())
	}
}
