package decay

import (
	"fmt"
	"slices"
	"testing"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// decayTestPlan is the crash+jam+loss scenario shared by the overlay
// equivalence tests; fresh instances per engine (plans are single-use).
func decayTestPlan(n int) *radio.FaultPlan {
	p := radio.NewFaultPlan(n, 4711)
	p.Crash(7, 30)
	p.Crash(19, 0)
	p.Crash(33, 80)
	p.Jam(11, 0.2)
	p.Jam(28, 0.1)
	for v := 0; v < n; v += 3 {
		p.Loss(v, 0.15)
	}
	return p
}

// TestDecayFaultOverlayMatchesWrapPath is the bulk-vs-per-node fault
// equivalence test: the engine-side FaultPlan overlay on the bulk path
// must match a Wrap-based CrashNode/JamNode/LossyNode run round for round
// — same transmitter sets, same deliveries, same rounds to completion,
// same survivor reach.
func TestDecayFaultOverlayMatchesWrapPath(t *testing.T) {
	g := graph.Grid(6, 8)
	n := g.N()
	record := func(e *radio.Engine) func() []string {
		var rounds []string
		e.Hook = func(_ int64, tx []int32, deliveries, collisions int) {
			ids := slices.Clone(tx)
			slices.Sort(ids)
			rounds = append(rounds, fmt.Sprintf("%v d%d c%d", ids, deliveries, collisions))
		}
		return func() []string { return rounds }
	}
	sources := map[int]int64{0: 9}

	bulk := NewBroadcast(g, Config{Faults: decayTestPlan(n)}, 17, sources)
	logA := record(bulk.Engine)

	wrapPlan := decayTestPlan(n)
	pernode := NewBroadcast(g, Config{
		Faults: decayTestPlan(n),
		Wrap:   wrapPlan.Wrap,
	}, 17, sources)
	logB := record(pernode.Engine)

	if bulk.ReachTarget() != pernode.ReachTarget() {
		t.Fatalf("targets differ: bulk %d, per-node %d", bulk.ReachTarget(), pernode.ReachTarget())
	}
	const maxRounds = 4000
	var doneAt int64 = -1
	for i := int64(0); i < maxRounds; i++ {
		bulk.Engine.Step()
		pernode.Engine.Step()
		if bulk.Done() != pernode.Done() {
			t.Fatalf("round %d: Done diverged (bulk %v, per-node %v)", i, bulk.Done(), pernode.Done())
		}
		if bulk.Done() {
			doneAt = i
			break
		}
	}
	if doneAt < 0 {
		t.Fatalf("faulted broadcast incomplete after %d rounds (%d/%d)", maxRounds, bulk.Reached(), bulk.ReachTarget())
	}
	a, b := logA(), logB()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d diverged:\nbulk+overlay: %s\nwrap path:    %s", i, a[i], b[i])
		}
	}
	if bulk.Engine.Metrics != pernode.Engine.Metrics {
		t.Fatalf("metrics diverged:\nbulk+overlay: %+v\nwrap path:    %+v", bulk.Engine.Metrics, pernode.Engine.Metrics)
	}
	if bulk.Reached() != pernode.Reached() || bulk.Reached() != bulk.ReachTarget() {
		t.Fatalf("reach diverged: bulk %d/%d, per-node %d/%d",
			bulk.Reached(), bulk.ReachTarget(), pernode.Reached(), pernode.ReachTarget())
	}
	av, bv := bulk.Values(), pernode.Values()
	alive := decayTestPlan(n).SurvivorMask()
	for v := range av {
		if alive[v] && av[v] != bv[v] {
			t.Fatalf("survivor %d values diverged: %d vs %d", v, av[v], bv[v])
		}
	}
}

// TestDecaySurvivorScopedTermination: with a crash plan installed, Done
// fires once every survivor-reachable node is informed — before the fix
// the target stayed n and every faulted run could only exhaust its budget.
func TestDecaySurvivorScopedTermination(t *testing.T) {
	// Path: crashing an interior node at round 0 cuts everything behind it.
	g := graph.Path(40)
	plan := radio.NewFaultPlan(40, 5)
	plan.Crash(20, 0)
	b := NewBroadcast(g, Config{Faults: plan}, 11, map[int]int64{0: 9})
	if got := b.ReachTarget(); got != 20 {
		t.Fatalf("ReachTarget = %d, want 20 (nodes 0..19)", got)
	}
	rounds, done := b.Run(1 << 20)
	if !done {
		t.Fatalf("survivor-scoped broadcast incomplete after %d rounds (%d/%d)", rounds, b.Reached(), b.ReachTarget())
	}
	if b.Reached() != b.ReachTarget() {
		t.Fatalf("reach %d/%d at Done", b.Reached(), b.ReachTarget())
	}
	if !b.doneFullScan() {
		t.Fatal("incremental Done disagrees with the survivor-scoped full scan")
	}
	// The unreachable side must not have been counted even if partially
	// informed before the crash (crash at 0 here, so it stays dark).
	for v, val := range b.Values() {
		if v > 20 && val != -1 {
			t.Fatalf("node %d informed through a dead cut vertex", v)
		}
	}
}

func TestDecayBroadcastSurvivesCrashes(t *testing.T) {
	// Grid stays connected after losing scattered interior nodes.
	g := graph.Grid(10, 10)
	crashed := map[int]bool{33: true, 44: true, 55: true, 66: true}
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		if crashed[v] {
			return &radio.CrashNode{Inner: n, CrashAt: 20}
		}
		return n
	}}
	b := NewBroadcast(g, cfg, 3, map[int]int64{0: 9})
	aliveDone := func() bool {
		for v, val := range b.Values() {
			if !crashed[v] && val != 9 {
				return false
			}
		}
		return true
	}
	rounds, done := b.Engine.Run(1<<22, aliveDone)
	if !done {
		t.Fatalf("survivors uninformed after %d rounds", rounds)
	}
}

func TestDecayBroadcastSurvivesJamming(t *testing.T) {
	g := graph.Path(50)
	jr := rng.New(4)
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		if v%7 == 3 {
			return &radio.JamNode{Inner: n, P: 0.25, Rnd: jr.Fork(uint64(v))}
		}
		return n
	}}
	b := NewBroadcast(g, cfg, 9, map[int]int64{0: 9})
	if _, done := b.Run(1 << 22); !done {
		t.Fatalf("broadcast under jamming incomplete: %d/%d informed", b.InformedCount(), g.N())
	}
}
