package decay

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// The incremental-termination benchmarks: Decay broadcast at n = 10^5 on
// sparse topologies, comparing the hot path (O(1) Done via radio.Progress
// + engine Sleeper/SilenceOblivious/BulkActor fast paths) against the
// seed-style configuration (per-round O(n) full-scan stop predicate on
// the per-node engine path). Round counts are identical by construction;
// only wall time differs. See DESIGN.md §5 for recorded numbers — the
// fast path is the ≥3x win this layer exists for.

// opaqueNode hides the Sleeper/SilenceOblivious extensions (and, via
// Config.Wrap, disables the BulkActor install), reproducing the seed
// engine configuration: dense per-node Act and Recv loops every round.
type opaqueNode struct{ inner radio.Node }

func (o *opaqueNode) Act(t int64) radio.Action { return o.inner.Act(t) }
func (o *opaqueNode) Recv(t int64, m *radio.Message, c bool) {
	o.inner.Recv(t, m, c)
}

func benchBroadcast100k(b *testing.B, g *graph.Graph, fullScan bool) {
	b.Helper()
	var rounds int64
	for i := 0; i < b.N; i++ {
		var cfg Config
		if fullScan {
			cfg.Wrap = func(_ int, n radio.Node) radio.Node { return &opaqueNode{inner: n} }
		}
		b.StopTimer()
		bc := NewBroadcast(g, cfg, 1, map[int]int64{0: 5})
		b.StartTimer()
		var done bool
		if fullScan {
			// The seed termination check: O(n) full scan after every round.
			rounds, done = bc.Engine.Run(1<<22, bc.doneFullScan)
		} else {
			rounds, done = bc.Run(1 << 22)
		}
		if !done {
			b.Fatal("broadcast incomplete")
		}
	}
	b.ReportMetric(float64(rounds), "radio-rounds")
}

func BenchmarkBroadcast100kRandTree(b *testing.B) {
	g := graph.RandomTree(100_000, rng.New(7))
	b.ResetTimer()
	benchBroadcast100k(b, g, false)
}

func BenchmarkBroadcast100kRandTreeFullScan(b *testing.B) {
	g := graph.RandomTree(100_000, rng.New(7))
	b.ResetTimer()
	benchBroadcast100k(b, g, true)
}

func BenchmarkBroadcast100kGnp(b *testing.B) {
	g := graph.Gnp(100_000, 0.00005, rng.New(9))
	b.ResetTimer()
	benchBroadcast100k(b, g, false)
}

func BenchmarkBroadcast100kGnpFullScan(b *testing.B) {
	g := graph.Gnp(100_000, 0.00005, rng.New(9))
	b.ResetTimer()
	benchBroadcast100k(b, g, true)
}

// Termination checking in isolation: one Done evaluation at n = 10^5.
// The incremental check is a counter compare; the full scan walks every
// node. This is the per-round cost the tentpole removed.
func BenchmarkDone100kIncremental(b *testing.B) {
	g := graph.RandomTree(100_000, rng.New(7))
	bc := NewBroadcast(g, Config{}, 1, map[int]int64{0: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bc.Done() {
			b.Fatal("unexpectedly done")
		}
	}
}

func BenchmarkDone100kFullScan(b *testing.B) {
	g := graph.RandomTree(100_000, rng.New(7))
	bc := NewBroadcast(g, Config{}, 1, map[int]int64{0: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bc.doneFullScan() {
			b.Fatal("unexpectedly done")
		}
	}
}
