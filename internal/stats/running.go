package stats

import (
	"math"
	"slices"
)

// Running is a mergeable single-pass summary of a stream of observations.
// Moments are maintained with Welford's algorithm so Mean and Std are
// available at any point without a second pass; the raw values are also
// retained (8 bytes per observation) so quantiles are exact rather than
// sketched — campaign trial counts are small enough that exactness is
// worth the memory. The zero value is an empty, ready-to-use summary.
//
// Merge order affects only floating-point rounding of the moments; callers
// that need bit-identical output across worker counts must merge in a
// deterministic order (the campaign aggregator adds trials in trial-index
// order for exactly this reason).
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
	vals     []float64
}

// Add folds one observation into the summary.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
	r.vals = append(r.vals, x)
}

// Merge folds the observations of o into r (Chan et al. parallel-variance
// combination for the moments, concatenation for the retained values). o is
// left unchanged.
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		r.n, r.mean, r.m2, r.min, r.max = o.n, o.mean, o.m2, o.min, o.max
		r.vals = append(r.vals, o.vals...)
		return
	}
	n := float64(r.n + o.n)
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/n
	r.mean += d * float64(o.n) / n
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.vals = append(r.vals, o.vals...)
}

// N returns the number of observations folded in so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Std returns the running sample standard deviation (0 for n < 2).
func (r *Running) Std() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// Quantile returns the exact q-quantile of the observations seen so far
// (0 when empty), with the same linear interpolation as Quantile.
func (r *Running) Quantile(q float64) float64 {
	if r.n == 0 {
		return 0
	}
	return Quantile(r.vals, q)
}

// Summary renders the stream as a Summary. The retained sample is copied
// and sorted once, shared by all three quantiles.
func (r *Running) Summary() Summary {
	if r.n == 0 {
		return Summary{}
	}
	ys := append([]float64(nil), r.vals...)
	slices.Sort(ys)
	return Summary{
		N:    r.n,
		Mean: r.Mean(),
		Std:  r.Std(),
		P50:  quantileSorted(ys, 0.5),
		P90:  quantileSorted(ys, 0.9),
		P99:  quantileSorted(ys, 0.99),
		Max:  r.Max(),
	}
}
