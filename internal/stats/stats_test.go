package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("empty/singleton edge cases wrong")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5, 1e-12) {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if !almost(Std(xs), 2.138, 0.001) {
		t.Fatalf("std = %v", Std(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if !almost(Quantile(xs, 0.5), 3, 1e-12) {
		t.Fatalf("median = %v", Quantile(xs, 0.5))
	}
	if !almost(Quantile(xs, 0.25), 2, 1e-12) {
		t.Fatalf("q25 = %v", Quantile(xs, 0.25))
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Max != 100 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestFitPowerExact(t *testing.T) {
	// y = 3 x^2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	f := FitPower(xs, ys)
	if !almost(f.Exp, 2, 1e-9) || !almost(f.Coeff, 3, 1e-9) || !almost(f.R2, 1, 1e-9) {
		t.Fatalf("fit %+v", f)
	}
}

func TestFitPowerNoisy(t *testing.T) {
	xs := []float64{10, 20, 40, 80, 160, 320}
	ys := []float64{105, 195, 410, 790, 1620, 3150} // ~ 10x
	f := FitPower(xs, ys)
	if !almost(f.Exp, 1, 0.05) {
		t.Fatalf("exponent %v, want ~1", f.Exp)
	}
	if f.R2 < 0.99 {
		t.Fatalf("r2 %v", f.R2)
	}
}

func TestFitPowerPanics(t *testing.T) {
	for _, tc := range [][2][]float64{
		{{1}, {1}},
		{{1, 2}, {1, -2}},
		{{1, 2}, {1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for %v", tc)
				}
			}()
			FitPower(tc[0], tc[1])
		}()
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	if err := quick.Check(func(raw []float64, q float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q = math.Abs(q)
		q -= math.Floor(q)
		v := Quantile(xs, q)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo && v <= hi
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
