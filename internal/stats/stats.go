// Package stats provides the small statistical toolkit the experiment
// harness uses to verify the paper's scaling claims: summary statistics
// and least-squares power-law fits on log–log data.
package stats

import (
	"fmt"
	"math"
	"slices"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation; it panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	ys := append([]float64(nil), xs...)
	slices.Sort(ys)
	return quantileSorted(ys, q)
}

// quantileSorted is Quantile on an already-sorted slice, letting callers
// that need several quantiles (Summarize, Running.Summary) copy and sort
// the sample once instead of once per quantile.
func quantileSorted(ys []float64, q float64) float64 {
	if q <= 0 {
		return ys[0]
	}
	if q >= 1 {
		return ys[len(ys)-1]
	}
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(ys) {
		return ys[len(ys)-1]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// Max returns the maximum of xs; it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary is a compact distribution description.
type Summary struct {
	N                  int
	Mean, Std          float64
	P50, P90, P99, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	ys := append([]float64(nil), xs...)
	slices.Sort(ys)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  Std(xs),
		P50:  quantileSorted(ys, 0.5),
		P90:  quantileSorted(ys, 0.9),
		P99:  quantileSorted(ys, 0.99),
		Max:  ys[len(ys)-1],
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.P50, s.P90, s.P99, s.Max)
}

// PowerFit is the least-squares fit y ≈ Coeff · x^Exp on log–log scale,
// with R2 the coefficient of determination in log space.
type PowerFit struct {
	Coeff, Exp, R2 float64
}

// FitPower fits y = c·x^e to positive data points by linear regression on
// (log x, log y). It panics if fewer than two points or any non-positive
// value is supplied.
func FitPower(xs, ys []float64) PowerFit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: FitPower needs >= 2 paired points")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: FitPower requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, intercept, r2 := linreg(lx, ly)
	return PowerFit{Coeff: math.Exp(intercept), Exp: slope, R2: r2}
}

// linreg returns the least-squares slope, intercept and R² of y on x.
func linreg(xs, ys []float64) (slope, intercept, r2 float64) {
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}
