package stats

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{4, 1, 7, 7, 2, 9, 3, 5, 8, 6}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d, want %d", r.N(), len(xs))
	}
	if !almostEq(r.Mean(), Mean(xs)) {
		t.Errorf("Mean = %v, want %v", r.Mean(), Mean(xs))
	}
	if !almostEq(r.Std(), Std(xs)) {
		t.Errorf("Std = %v, want %v", r.Std(), Std(xs))
	}
	if r.Min() != 1 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 1/9", r.Min(), r.Max())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if !almostEq(r.Quantile(q), Quantile(xs, q)) {
			t.Errorf("Quantile(%v) = %v, want %v", q, r.Quantile(q), Quantile(xs, q))
		}
	}
}

func TestRunningMerge(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7}
	for _, split := range []int{0, 1, 7, len(xs)} {
		var a, b Running
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(&b)
		want := Summarize(xs)
		got := a.Summary()
		if got.N != want.N || !almostEq(got.Mean, want.Mean) || !almostEq(got.Std, want.Std) ||
			!almostEq(got.P50, want.P50) || !almostEq(got.P90, want.P90) ||
			!almostEq(got.P99, want.P99) || !almostEq(got.Max, want.Max) {
			t.Errorf("split %d: merged summary %+v, want %+v", split, got, want)
		}
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Std() != 0 || r.Min() != 0 || r.Max() != 0 || r.Quantile(0.5) != 0 {
		t.Fatalf("empty Running not all-zero: %+v", r.Summary())
	}
	if r.Summary() != (Summary{}) {
		t.Fatalf("empty Summary = %+v", r.Summary())
	}
	var o Running
	o.Add(2)
	r.Merge(&o)
	if r.N() != 1 || r.Mean() != 2 || r.Min() != 2 || r.Max() != 2 {
		t.Fatalf("merge into empty: %+v", r.Summary())
	}
}

func TestSummarizeP99(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if !almostEq(s.P99, 98.01) {
		t.Fatalf("P99 = %v, want 98.01", s.P99)
	}
}
