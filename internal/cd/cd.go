// Package cd implements broadcasting in the radio network model *with*
// collision detection, the stronger model variant the paper contrasts
// with in Sections 1.1 and 1.3 (where Ghaffari, Haeupler and Khabbazian
// [11] gave an O(D + log⁶n) randomized algorithm that beats every no-CD
// algorithm).
//
// The protocol here is the classical beep-wave pipeline: with collision
// detection, "two or more neighbors transmitted" is as informative as a
// reception, so a 1-bit wave can be flooded one hop per round. The source
// emits one wave every 3 rounds — wave 0 is a start marker from which
// every node learns its BFS depth, and wave k carries the k-th message
// bit (beep = 1, silence = 0). Waves spaced 3 apart never interfere: a
// node at depth ℓ listens for wave k exactly at round ℓ-1+3k, when only
// depth ℓ-1 can be beeping among its neighbors. A B-bit message therefore
// reaches every node in ecc(source) + 3B + O(1) rounds, deterministically
// — the O(D + B) separation from the no-CD model's Ω(D·log(n/D)) lower
// bound that motivates the paper's interest in model power.
//
// Without collision detection the same protocol mis-decodes as soon as
// some BFS layer has two members adjacent to a listener (the collision
// reads as silence); the tests demonstrate this separation explicitly.
package cd

import (
	"errors"
	"math/bits"

	"radionet/internal/graph"
	"radionet/internal/radio"
)

// KindBeep tags wave transmissions; beeps carry no payload — timing and
// the collision-or-message distinction are the channel.
const KindBeep radio.Kind = 4

// waveSpacing is the round gap between consecutive waves; 3 guarantees
// non-interference between adjacent wave fronts (see package comment).
const waveSpacing = 3

// node is the per-node beep-wave state.
type node struct {
	isSource bool
	value    int64 // source: message; others: assembled bits
	nbits    int

	offset int64 // round of own wave-0 beep (= BFS depth); -1 unknown
	heard  map[int64]bool
}

// IgnoresSilence implements radio.SilenceOblivious: the protocol decodes
// beeps and collisions only; silence carries the zero bit implicitly via
// the wave schedule, so a no-reception Recv is a no-op.
func (nd *node) IgnoresSilence() bool { return true }

func (nd *node) Act(t int64) radio.Action {
	if nd.isSource {
		k := t / waveSpacing
		if t%waveSpacing == 0 && int(k) <= nd.nbits {
			if k == 0 || nd.bit(int(k-1)) {
				return radio.Transmit(radio.Message{Kind: KindBeep})
			}
		}
		return radio.Listen
	}
	if nd.offset >= 0 {
		// Relay one round after hearing a beep: wave k heard at
		// offset-1+3k is re-beeped at offset+3k.
		if nd.heard[t-1] {
			delete(nd.heard, t-1)
			return radio.Transmit(radio.Message{Kind: KindBeep})
		}
	}
	return radio.Listen
}

func (nd *node) Recv(t int64, msg *radio.Message, collided bool) {
	beep := collided || (msg != nil && msg.Kind == KindBeep)
	if !beep || nd.isSource {
		return
	}
	if nd.offset < 0 {
		// First beep ever heard is wave 0 from depth offset-1.
		nd.offset = t + 1
		nd.heard[t] = true
		return
	}
	// Wave k arrives at offset-1 + 3k.
	rel := t - (nd.offset - 1)
	if rel < 0 || rel%waveSpacing != 0 {
		return // off-schedule beep (e.g. a deeper layer); ignore
	}
	k := int(rel / waveSpacing)
	if k >= 1 && k <= nd.nbits {
		nd.value |= 1 << uint(k-1)
	}
	nd.heard[t] = true
}

func (nd *node) bit(i int) bool { return nd.value&(1<<uint(i)) != 0 }

// Broadcast is a running beep-wave broadcast instance.
type Broadcast struct {
	Engine *radio.Engine

	value int64
	nbits int
	nodes []*node
}

// NewBroadcast builds a beep-wave broadcast of value (>= 0) from src on g.
// The engine runs with collision detection enabled; disable it afterwards
// (Engine.CollisionDetection = false) to demonstrate the model separation.
func NewBroadcast(g *graph.Graph, src int, value int64) (*Broadcast, error) {
	if src < 0 || src >= g.N() {
		return nil, errors.New("cd: source out of range")
	}
	if value < 0 {
		return nil, errors.New("cd: message must be non-negative")
	}
	nbits := bits.Len64(uint64(value))
	if nbits == 0 {
		nbits = 1
	}
	ns := make([]*node, g.N())
	rn := make([]radio.Node, g.N())
	for v := range ns {
		ns[v] = &node{offset: -1, nbits: nbits, heard: make(map[int64]bool)}
		rn[v] = ns[v]
	}
	ns[src].isSource = true
	ns[src].value = value
	ns[src].offset = 0
	e := radio.NewEngine(g, rn)
	e.CollisionDetection = true
	return &Broadcast{Engine: e, value: value, nbits: nbits, nodes: ns}, nil
}

// RoundsNeeded returns the deterministic completion bound for a source
// eccentricity ecc: every node has decoded by round ecc + 3·nbits + 1.
func (b *Broadcast) RoundsNeeded(ecc int) int64 {
	return int64(ecc) + waveSpacing*int64(b.nbits) + 1
}

// Done reports whether every node has decoded the full message. A node is
// decoded once its last wave slot has passed; Done also verifies values.
func (b *Broadcast) Done() bool {
	t := b.Engine.Round()
	for _, nd := range b.nodes {
		if nd.isSource {
			continue
		}
		if nd.offset < 0 {
			return false
		}
		if t <= nd.offset-1+waveSpacing*int64(b.nbits) {
			return false // last wave not yet due at this node
		}
		if nd.value != b.value {
			return false
		}
	}
	return true
}

// Values returns each node's current decode (-1 where depth is unknown).
func (b *Broadcast) Values() []int64 {
	out := make([]int64, len(b.nodes))
	for i, nd := range b.nodes {
		if nd.isSource {
			out[i] = b.value
		} else if nd.offset < 0 {
			out[i] = -1
		} else {
			out[i] = nd.value
		}
	}
	return out
}

// Run executes until done or maxRounds.
func (b *Broadcast) Run(maxRounds int64) (int64, bool) {
	return b.Engine.Run(maxRounds, b.Done)
}
