package cd

import (
	"fmt"

	"radionet/internal/protocol"
)

// This file registers the collision-detection-model beep-wave broadcast.
// It carries the CollisionDetection capability: it runs in the *stronger*
// model variant the paper discusses in Section 1.1, so same-model
// comparison tables (internal/exp F1) exclude it, but campaigns may cross
// it with the standard-model algorithms to regenerate the model
// separation.

func init() {
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Broadcast,
		Name:      "cd-beep",
		Aliases:   []string{"cd"},
		Label:     "CD-beep",
		Summary:   "deterministic beep-wave broadcast under collision detection (Section 1.1 model separation): ecc(src) + 3·bits + O(1) rounds",
		BudgetDoc: "RoundsNeeded(D) + 16",
		Order:     90,
		Caps:      protocol.Caps{CollisionDetection: true, Transport: true},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			if p.Tuning != nil {
				return nil, fmt.Errorf("cd: the beep-wave broadcast takes no tuning, got %T", p.Tuning)
			}
			if p.Faults != nil {
				return nil, fmt.Errorf("cd: the beep-wave broadcast does not support fault plans")
			}
			if len(p.Sources) != 1 {
				return nil, fmt.Errorf("cd: beep-wave broadcast needs exactly one source, got %d", len(p.Sources))
			}
			var src int
			var value int64
			//lint:ordered the map has exactly one entry (checked above)
			for s, v := range p.Sources {
				src, value = s, v
			}
			b, err := NewBroadcast(p.G, src, value)
			if err != nil {
				return nil, err
			}
			p.ApplyEngine(b.Engine)
			return beepRunner{b: b, d: p.D}, nil
		},
	})
}

type beepRunner struct {
	b *Broadcast
	d int
}

// DefaultBudget implements protocol.Budgeted.
func (r beepRunner) DefaultBudget() int64 { return r.b.RoundsNeeded(r.d) + 16 }

func (r beepRunner) Run(budget int64) protocol.Result {
	if budget <= 0 {
		budget = r.b.RoundsNeeded(r.d) + 16
	}
	rounds, done := r.b.Run(budget)
	return protocol.Result{
		Rounds: rounds,
		Tx:     r.b.Engine.Metrics.Transmissions,
		Done:   done,
	}
}
