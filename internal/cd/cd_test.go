package cd

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

func TestBeepWaveOnPathExactRounds(t *testing.T) {
	g := graph.Path(50)
	b, err := NewBroadcast(g, 0, 0b1011001) // 7 bits
	if err != nil {
		t.Fatal(err)
	}
	budget := b.RoundsNeeded(49)
	rounds, done := b.Run(budget + 8)
	if !done {
		t.Fatalf("beep-wave incomplete after %d rounds", rounds)
	}
	if rounds > budget+1 {
		t.Fatalf("took %d rounds, deterministic bound is %d", rounds, budget)
	}
	for v, val := range b.Values() {
		if val != 0b1011001 {
			t.Fatalf("node %d decoded %b", v, val)
		}
	}
}

func TestBeepWaveFamilies(t *testing.T) {
	r := rng.New(3)
	for _, g := range []*graph.Graph{
		graph.Grid(9, 13),
		graph.PathOfCliques(7, 5),
		graph.BalancedTree(3, 4),
		graph.Star(40),
		graph.Gnp(80, 0.06, r),
	} {
		b, err := NewBroadcast(g, 0, 123456)
		if err != nil {
			t.Fatal(err)
		}
		ecc := g.Eccentricity(0)
		rounds, done := b.Run(b.RoundsNeeded(ecc) + 8)
		if !done {
			t.Fatalf("%v: incomplete after %d rounds", g, rounds)
		}
		for v, val := range b.Values() {
			if val != 123456 {
				t.Fatalf("%v: node %d decoded %d", g, v, val)
			}
		}
	}
}

func TestBeepWaveDeterministic(t *testing.T) {
	g := graph.Grid(6, 8)
	b1, _ := NewBroadcast(g, 0, 999)
	b2, _ := NewBroadcast(g, 0, 999)
	r1, _ := b1.Run(1 << 16)
	r2, _ := b2.Run(1 << 16)
	if r1 != r2 {
		t.Fatalf("deterministic protocol gave %d and %d rounds", r1, r2)
	}
}

// TestModelSeparation demonstrates why collision detection matters: the
// identical protocol mis-decodes without CD on any graph where a BFS
// layer has two members adjacent to a listener, because the collision
// reads as silence (a dropped 1-bit).
func TestModelSeparation(t *testing.T) {
	g := graph.Grid(6, 8) // interior nodes have 2 same-wave parents
	b, err := NewBroadcast(g, 0, 0b111111)
	if err != nil {
		t.Fatal(err)
	}
	b.Engine.CollisionDetection = false
	ecc := g.Eccentricity(0)
	if _, done := b.Run(b.RoundsNeeded(ecc) + 50); done {
		t.Fatal("no-CD run decoded correctly; expected the model separation to bite")
	}
	wrong := 0
	for _, val := range b.Values() {
		if val != 0b111111 {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("every node decoded correctly without collision detection")
	}
}

func TestBeepWaveValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := NewBroadcast(g, -1, 5); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := NewBroadcast(g, 0, -5); err == nil {
		t.Fatal("negative message accepted")
	}
}

func TestBeepWaveSingleton(t *testing.T) {
	g := graph.Path(1)
	b, err := NewBroadcast(g, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := b.Run(4); !done {
		t.Fatal("singleton should complete immediately")
	}
}

func TestBeepWaveZeroMessage(t *testing.T) {
	g := graph.Path(10)
	b, err := NewBroadcast(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rounds, done := b.Run(1 << 12)
	if !done {
		t.Fatalf("zero message incomplete after %d rounds", rounds)
	}
}
