package compete

import (
	"radionet/internal/decay"
	"radionet/internal/radio"
	"radionet/internal/rng"
	"radionet/internal/schedule"
)

// cnode is the per-node reference implementation of the protocol: a 4-lane
// TDM of the main process, its Algorithm-4 helper, the background process,
// and its helper, with the node's own lane clocks in per-node icpState.
// It is the semantic baseline the bulk fast path (bulk.go) is verified
// against round-for-round, and the path taken whenever a Wrap hook
// (fault injection) interposes per-node behavior. Node value state and
// randomness live in the instance-wide flat slices (Compete.globalMax,
// Compete.rnd), shared with the bulk path, so accessors and completion
// tracking are identical on both paths.
type cnode struct {
	id   int32
	c    *Compete
	main icpState
	bg   icpState
}

// IgnoresSilence implements radio.SilenceOblivious: Recv without a
// message is always a no-op (cnode is never dormant, though — centers
// transmit spontaneously).
func (nd *cnode) IgnoresSilence() bool { return true }

// Act implements radio.Node.
func (nd *cnode) Act(t int64) radio.Action {
	lane := t % numLanes
	lt := t / numLanes
	switch lane {
	case laneMain:
		return nd.actICP(&nd.main, nd.c.mains, true)
	case laneHelper:
		if nd.c.cfg.DisableHelper {
			return radio.Listen
		}
		return nd.actHelper(&nd.main, nd.c.mains, nd.c.coinMain, lt)
	case laneBg:
		if nd.c.cfg.DisableBackground {
			return radio.Listen
		}
		return nd.actICP(&nd.bg, nd.c.bgs, false)
	default:
		if nd.c.cfg.DisableBackground || nd.c.cfg.DisableHelper {
			return radio.Listen
		}
		return nd.actHelper(&nd.bg, nd.c.bgs, nd.c.coinBg, lt)
	}
}

// Recv implements radio.Node.
func (nd *cnode) Recv(t int64, msg *radio.Message, _ bool) {
	if msg == nil || msg.Kind != KindICP {
		return
	}
	if msg.A > nd.c.globalMax[nd.id] {
		nd.c.globalMax[nd.id] = msg.A
		if msg.A == nd.c.trueMax && (nd.c.counted == nil || nd.c.counted[nd.id]) {
			nd.c.prog.Add(1)
		}
	}
	lane := t % numLanes
	var st *icpState
	var fines []fine
	switch lane {
	case laneMain, laneHelper:
		st, fines = &nd.main, nd.c.mains
	default:
		st, fines = &nd.bg, nd.c.bgs
	}
	f := &fines[st.fid]
	if f.part.Center[nd.id] != int32(msg.B) || f.part.Dist[nd.id] > f.curtail {
		return
	}
	// In-cluster reception within the curtailment radius: adopt the
	// cluster flood. During the inward sub-phase the relay gate
	// (globalMax > floodVal) is evaluated live in actICP, so nothing else
	// is needed here.
	if st.subphase != 1 || lane == laneHelper || lane == laneBgHelper {
		st.heard = true
		if msg.A > st.floodVal {
			st.floodVal = msg.A
		}
	}
}

// actICP advances one lane-local round of Intra-Cluster Propagation
// (Algorithm 3) and returns the node's action.
func (nd *cnode) actICP(st *icpState, fines []fine, isMain bool) radio.Action {
	f := &fines[st.fid]
	globalMax := nd.c.globalMax[nd.id]
	// Slot and sub-phase boundaries.
	if st.offset == 0 || st.offset == 2*f.subLen {
		// Outward sub-phase begins: only the center holds the flood.
		st.heard = false
		st.floodVal = Uninformed
		if f.part.Center[nd.id] == nd.id {
			st.heard = true
			st.floodVal = globalMax
		}
	}
	st.subphase = int8(st.offset / f.subLen)

	action := radio.Listen
	dist := f.part.Dist[nd.id]
	if dist <= f.curtail {
		level := f.sched.Levels[nd.id]
		switch st.subphase {
		case 0, 2: // outward flood of the center's value
			if st.heard && nd.c.rnd[nd.id].Bernoulli(schedule.Prob(level, st.offset%f.subLen)) {
				action = radio.Transmit(radio.Message{
					Kind: KindICP, A: st.floodVal, B: int64(f.part.Center[nd.id]),
				})
			}
		case 1: // inward flood of any higher message toward the center
			if st.heard && globalMax > st.floodVal &&
				nd.c.rnd[nd.id].Bernoulli(schedule.Prob(level, st.offset%f.subLen)) {
				action = radio.Transmit(radio.Message{
					Kind: KindICP, A: globalMax, B: int64(f.part.Center[nd.id]),
				})
			}
		}
	}

	// Advance the lane clock; roll into the next clustering slot at the
	// end of this one.
	st.offset++
	if st.offset >= f.slotLen {
		st.offset = 0
		st.k++
		if isMain {
			st.fid = nd.c.mainFid(nd.id, st.k)
		} else {
			st.fid = nd.c.bgFid(st.k)
		}
	}
	return action
}

// actHelper advances one lane-local round of the Algorithm-4 background
// process for the companion lane's current clustering: time is divided
// into Decay phases of length l4; in the i-th phase of each cycle the
// node's cluster participates with (cluster-shared) probability 2^-i, and
// a participating cluster performs one round of Decay announcing its flood
// value, repairing border nodes that collisions starve in the main lane.
func (nd *cnode) actHelper(st *icpState, fines []fine, coinSeed uint64, lt int64) radio.Action {
	if !st.heard {
		return radio.Listen
	}
	f := &fines[st.fid]
	if f.part.Dist[nd.id] > f.curtail {
		return radio.Listen
	}
	l4 := int64(nd.c.l4)
	window := lt / l4
	step := int(lt % l4)
	i := int(window%l4) + 1
	p := decay.Prob(i - 1) // 2^-i, shift-clamped for large phase lengths
	center := f.part.Center[nd.id]
	if rng.HashFloat(coinSeed, uint64(st.fid), uint64(center), uint64(window)) >= p {
		return radio.Listen // cluster sat this Decay phase out
	}
	if nd.c.rnd[nd.id].Bernoulli(decay.Prob(step)) {
		return radio.Transmit(radio.Message{
			Kind: KindICP, A: st.floodVal, B: int64(center),
		})
	}
	return radio.Listen
}

var _ radio.Node = (*cnode)(nil)
var _ radio.SilenceOblivious = (*cnode)(nil)
