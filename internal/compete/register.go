package compete

import (
	"errors"
	"fmt"

	"radionet/internal/graph"
	"radionet/internal/protocol"
)

// This file registers the paper's algorithms with the protocol registry:
// the cd17 broadcast (Theorem 5.1), its Haeupler–Wajc'16 comparison mode
// hw16, and the cd17 leader election (Algorithm 6 / Theorem 5.2). The
// runners reproduce the historical campaign semantics bit for bit: same
// constructors, same randomness, same 8×Budget() default budget.

func init() {
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Broadcast,
		Name:      "cd17",
		Label:     "CD17",
		Summary:   "the paper's Compete pipeline: random fine clusterings with Theorem 2.2 curtailment, O(D·log n/log D + polylog n) whp",
		BudgetDoc: "8×Budget() (Theorem 4.1 with the implementation's constants)",
		Order:     40,
		Caps:      protocol.Caps{Faults: true, Scratch: true, Bulk: true, Transport: true},
		// Shared with leader:cd17 — both default-tuning scratches are
		// NewPre(g, d, Config{}), so one build serves both descriptors.
		ScratchKey: "compete/pre",
		NewScratch: func(g *graph.Graph, d int, tuning any) any {
			cfg, err := broadcastTuning(tuning, false)
			if err != nil {
				return nil
			}
			return NewPre(g, d, cfg)
		},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			return buildBroadcast(p, false)
		},
	})
	protocol.Register(protocol.Descriptor{
		Task:      protocol.Broadcast,
		Name:      "hw16",
		Label:     "HW16-mode",
		Summary:   "Haeupler–Wajc PODC'16 comparison mode: the same pipeline with their O(log log n)-longer intra-cluster schedules",
		BudgetDoc: "8×Budget()",
		Order:     30,
		Caps:      protocol.Caps{Faults: true, Scratch: true, Bulk: true, Transport: true},
		// Distinct from cd17's key: CurtailLogLog changes the schedule
		// lengths baked into the precomputation.
		ScratchKey: "compete/pre-hw16",
		NewScratch: func(g *graph.Graph, d int, tuning any) any {
			cfg, err := broadcastTuning(tuning, true)
			if err != nil {
				return nil
			}
			return NewPre(g, d, cfg)
		},
		Build: func(p protocol.BuildParams) (protocol.Runner, error) {
			return buildBroadcast(p, true)
		},
	})
	protocol.Register(protocol.Descriptor{
		Task:       protocol.Leader,
		Name:       "cd17",
		Label:      "CD17-LE",
		Summary:    "Algorithm 6 / Theorem 5.2: Θ(log n) random candidates compete, O(D·log n/log D + polylog n) whp — first LE asymptotically equal to broadcast",
		BudgetDoc:  "8×Budget()",
		Order:      40,
		Caps:       protocol.Caps{Faults: true, Scratch: true, Bulk: true, Transport: true},
		ScratchKey: "compete/pre", // see broadcast:cd17
		NewScratch: func(g *graph.Graph, d int, tuning any) any {
			cfg, err := leaderTuning(tuning)
			if err != nil {
				return nil
			}
			return NewPre(g, d, cfg.Config)
		},
		Protect: func(g *graph.Graph, d int, seed uint64, _ map[int]int64, tuning any) []int {
			// Fault plans must not crash the would-be winner (its death
			// makes the completion target vacuous). The sample is the
			// pure (n, cfg, seed) function Build performs — with the
			// trial's tuning threaded through, so the protected node is
			// exactly the node that will win the election.
			cfg, err := leaderTuning(tuning)
			if err != nil {
				return nil
			}
			cands, err := SampleCandidates(g.N(), cfg, seed)
			if err != nil {
				return nil
			}
			w, _ := protocol.MaxIDNode(cands)
			return []int{w}
		},
		Build: buildLeader,
	})
}

// broadcastTuning coerces a BuildParams.Tuning value for the broadcast
// descriptors; hw16 forces the CurtailLogLog comparison mode on top of
// whatever tuning the caller supplied.
func broadcastTuning(tuning any, hw16 bool) (Config, error) {
	cfg := Config{}
	switch t := tuning.(type) {
	case nil:
	case Config:
		cfg = t
	default:
		return Config{}, fmt.Errorf("compete: tuning must be compete.Config, got %T", tuning)
	}
	if hw16 {
		cfg.CurtailLogLog = true
	}
	return cfg, nil
}

func leaderTuning(tuning any) (LeaderConfig, error) {
	switch t := tuning.(type) {
	case nil:
		return LeaderConfig{}, nil
	case LeaderConfig:
		return t, nil
	case Config:
		return LeaderConfig{Config: t}, nil
	default:
		return LeaderConfig{}, fmt.Errorf("compete: tuning must be compete.Config or compete.LeaderConfig, got %T", tuning)
	}
}

// pre resolves the scratch for one build: the caller-provided *Pre when
// present (the campaign's per-config amortization), else a fresh one.
// NewWithPre consumes identical randomness either way, so sharing changes
// no output bit.
func pre(p protocol.BuildParams, cfg Config) (*Pre, error) {
	switch s := p.Scratch.(type) {
	case nil:
		return NewPre(p.G, p.D, cfg), nil
	case *Pre:
		return s, nil
	default:
		return nil, fmt.Errorf("compete: scratch must be *compete.Pre, got %T", p.Scratch)
	}
}

type competeRunner struct {
	c *Compete
}

// DefaultBudget implements protocol.Budgeted.
func (r competeRunner) DefaultBudget() int64 { return 8 * r.c.Budget() }

func (r competeRunner) Run(budget int64) protocol.Result {
	if budget <= 0 {
		budget = 8 * r.c.Budget()
	}
	rounds, done := r.c.Run(budget)
	return protocol.Result{
		Rounds:      rounds,
		Tx:          r.c.Engine.Metrics.Transmissions,
		Done:        done,
		Reached:     r.c.Reached(),
		ReachTarget: r.c.ReachTarget(),
		Precompute:  r.c.PrecomputeRounds,
	}
}

func buildBroadcast(p protocol.BuildParams, hw16 bool) (protocol.Runner, error) {
	cfg, err := broadcastTuning(p.Tuning, hw16)
	if err != nil {
		return nil, err
	}
	pr, err := pre(p, cfg)
	if err != nil {
		return nil, err
	}
	if len(p.Sources) == 0 {
		return nil, errors.New("compete: empty source set")
	}
	// A transport's round executor polls nodes individually, which the
	// bulk shims cannot serve — build the reference machines instead
	// (bit-identical output, pinned by the equivalence tests).
	newCompete := NewWithPreFaults
	if p.Transport != nil {
		newCompete = NewWithPreFaultsRef
	}
	c, err := newCompete(pr, p.Seed, p.Sources, p.Faults)
	if err != nil {
		return nil, err
	}
	p.ApplyEngine(c.Engine)
	return competeRunner{c: c}, nil
}

type leaderRunner struct {
	le *LeaderElection
}

// DefaultBudget implements protocol.Budgeted.
func (r leaderRunner) DefaultBudget() int64 {
	return competeRunner{c: r.le.Compete}.DefaultBudget()
}

func (r leaderRunner) Run(budget int64) protocol.Result {
	res := competeRunner{c: r.le.Compete}.Run(budget)
	res.Verify = r.le.Verify
	return res
}

func (r leaderRunner) Leader() int               { return r.le.Leader() }
func (r leaderRunner) LeaderID() int64           { return r.le.TrueMax() }
func (r leaderRunner) Candidates() map[int]int64 { return r.le.Candidates }

func buildLeader(p protocol.BuildParams) (protocol.Runner, error) {
	cfg, err := leaderTuning(p.Tuning)
	if err != nil {
		return nil, err
	}
	pr, err := pre(p, cfg.Config)
	if err != nil {
		return nil, err
	}
	newLE := NewLeaderElectionPreFaults
	if p.Transport != nil {
		newLE = NewLeaderElectionPreFaultsRef // see buildBroadcast
	}
	le, err := newLE(pr, cfg, p.Seed, p.Faults)
	if err != nil {
		return nil, err
	}
	p.ApplyEngine(le.Engine)
	return leaderRunner{le: le}, nil
}
