package compete

import (
	"fmt"
	"testing"

	"radionet/internal/cluster"
	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// roundLog captures one engine round as seen by a RoundHook.
type roundLog struct {
	tx                     []int32
	deliveries, collisions int
}

func hookInto(e *radio.Engine, log *[]roundLog) {
	e.Hook = func(_ int64, transmitters []int32, deliveries, collisions int) {
		*log = append(*log, roundLog{
			tx:         append([]int32(nil), transmitters...),
			deliveries: deliveries,
			collisions: collisions,
		})
	}
}

// bulkEquivGraphs builds the randomized sparse topologies the
// bulk-vs-reference sweeps run on (cf. decay's equivalenceGraphs).
func bulkEquivGraphs(seed uint64) []*graph.Graph {
	r := rng.New(seed)
	return []*graph.Graph{
		graph.RandomTree(48, r.Fork(1)),
		graph.Gnp(56, 0.07, r.Fork(2)),
		graph.Grid(5, 8),
		graph.PathOfCliques(5, 4),
	}
}

// The bulk fast path (contiguous state, shared lane clocks, ActBulk +
// RecvBulk) must be observationally identical to the retained per-node
// reference implementation, round for round: same transmitter sets, same
// delivery/collision counts, same metrics, same final values — across
// graphs, seeds, source patterns, every ablation flag, and collision
// detection.
func TestBulkMatchesPerNodeRoundForRound(t *testing.T) {
	identity := func(_ int, n radio.Node) radio.Node { return n }
	variants := []struct {
		name string
		cfg  Config
		cd   bool
	}{
		{"default", Config{}, false},
		{"hw16", Config{CurtailLogLog: true}, false},
		{"no-background", Config{DisableBackground: true}, false},
		{"no-helper", Config{DisableHelper: true}, false},
		{"no-curtail", Config{DisableCurtail: true}, false},
		{"collision-detection", Config{}, true},
	}
	for seed := uint64(1); seed <= 2; seed++ {
		for gi, g := range bulkEquivGraphs(seed) {
			d := g.DiameterEstimate()
			sources := map[int]int64{0: 9}
			if gi%2 == 1 { // multi-source with distinct values
				sources = map[int]int64{0: 5, g.N() / 2: 9, g.N() - 1: 2}
			}
			vars := variants
			if gi == 0 {
				// The FixedJ ablation needs a valid exponent for this d.
				jmin, _ := cluster.JRange(d, 0.25, 0.75)
				vars = append(vars, struct {
					name string
					cfg  Config
					cd   bool
				}{fmt.Sprintf("fixed-j=%d", jmin), Config{FixedJ: jmin}, false})
			}
			for _, vr := range vars {
				refCfg := vr.cfg
				refCfg.Wrap = identity
				bc, err := New(g, d, vr.cfg, seed, sources)
				if err != nil {
					t.Fatal(err)
				}
				rc, err := New(g, d, refCfg, seed, sources)
				if err != nil {
					t.Fatal(err)
				}
				if bc.Engine.Bulk == nil || bc.Engine.BulkRecv == nil {
					t.Fatalf("%s %s: bulk seams not installed on the unwrapped path", g, vr.name)
				}
				if rc.Engine.Bulk != nil || rc.Engine.BulkRecv != nil {
					t.Fatalf("%s %s: bulk seams installed despite Wrap", g, vr.name)
				}
				bc.Engine.CollisionDetection = vr.cd
				rc.Engine.CollisionDetection = vr.cd
				var blog, rlog []roundLog
				hookInto(bc.Engine, &blog)
				hookInto(rc.Engine, &rlog)
				budget := 8 * bc.Budget()
				for r := int64(0); r < budget; r++ {
					if bc.Done() != rc.Done() {
						t.Fatalf("%s %s seed=%d round %d: bulk Done=%v, reference Done=%v",
							g, vr.name, seed, r, bc.Done(), rc.Done())
					}
					if bc.Done() && rc.Done() {
						break
					}
					bc.Engine.Step()
					rc.Engine.Step()
					b, p := blog[len(blog)-1], rlog[len(rlog)-1]
					if b.deliveries != p.deliveries || b.collisions != p.collisions {
						t.Fatalf("%s %s seed=%d round %d: bulk %d/%d deliveries/collisions, reference %d/%d",
							g, vr.name, seed, r, b.deliveries, b.collisions, p.deliveries, p.collisions)
					}
					if len(b.tx) != len(p.tx) {
						t.Fatalf("%s %s seed=%d round %d: %d vs %d transmitters",
							g, vr.name, seed, r, len(b.tx), len(p.tx))
					}
					for i := range b.tx {
						if b.tx[i] != p.tx[i] {
							t.Fatalf("%s %s seed=%d round %d: transmitter %d is %d (bulk) vs %d (reference)",
								g, vr.name, seed, r, i, b.tx[i], p.tx[i])
						}
					}
				}
				// Ablated runs may legitimately not complete; identity is
				// still required for everything that executed.
				if bc.Engine.Metrics != rc.Engine.Metrics {
					t.Fatalf("%s %s seed=%d: metrics: bulk %+v, reference %+v",
						g, vr.name, seed, bc.Engine.Metrics, rc.Engine.Metrics)
				}
				bv, rv := bc.Values(), rc.Values()
				for v := range bv {
					if bv[v] != rv[v] {
						t.Fatalf("%s %s seed=%d node %d: value %d (bulk) vs %d (reference)",
							g, vr.name, seed, v, bv[v], rv[v])
					}
				}
				if bc.InformedCount() != rc.InformedCount() {
					t.Fatalf("%s %s seed=%d: InformedCount %d vs %d",
						g, vr.name, seed, bc.InformedCount(), rc.InformedCount())
				}
				if vr.name == "default" && !bc.Done() {
					t.Fatalf("%s seed=%d: default run incomplete within budget", g, seed)
				}
			}
		}
	}
}

// Instances built through a shared Pre (the campaign per-config scratch
// convention) must be bit-identical to independently constructed ones —
// including when the shared Pre is exercised concurrently, as the
// executor does at -workers > 1.
func TestSharedPreIsBitIdentical(t *testing.T) {
	g := graph.Gnp(64, 0.06, rng.New(4))
	d := g.DiameterEstimate()
	pre := NewPre(g, d, Config{})
	type outcome struct {
		rounds int64
		m      radio.Metrics
		values []int64
	}
	run := func(b *Broadcast) outcome {
		rounds, done := b.Run(0)
		if !done {
			t.Error("broadcast incomplete")
		}
		return outcome{rounds, b.Engine.Metrics, b.Values()}
	}
	seeds := []uint64{1, 2, 3, 4}
	want := make([]outcome, len(seeds))
	for i, seed := range seeds {
		b, err := NewBroadcast(g, d, Config{}, seed, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = run(b)
	}
	// Concurrent construction through one Pre, twice to let the scratch
	// pool actually recycle buffers.
	for pass := 0; pass < 2; pass++ {
		results := make([]outcome, len(seeds))
		done := make(chan int, len(seeds))
		for i, seed := range seeds {
			go func(i int, seed uint64) {
				defer func() { done <- i }()
				b, err := NewBroadcastPre(pre, seed, 0, 9)
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = run(b)
			}(i, seed)
		}
		for range seeds {
			<-done
		}
		for i := range seeds {
			if results[i].rounds != want[i].rounds || results[i].m != want[i].m {
				t.Fatalf("pass %d seed %d: shared-Pre run (%d rounds, %+v) differs from independent (%d rounds, %+v)",
					pass, seeds[i], results[i].rounds, results[i].m, want[i].rounds, want[i].m)
			}
			for v := range results[i].values {
				if results[i].values[v] != want[i].values[v] {
					t.Fatalf("pass %d seed %d node %d: %d vs %d",
						pass, seeds[i], v, results[i].values[v], want[i].values[v])
				}
			}
		}
	}
}
