package compete

import (
	"math"

	"radionet/internal/decay"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// bulkState is the contiguous fast-path node state behind the engine's
// BulkActor/BulkReceiver seams: flat per-node slices for the lane-local
// flood state, plus shared lane clocks. It exists because the per-node
// icpState clocks of the reference implementation are redundant — a node's
// main-lane (fid, slot, offset) is a pure function of its coarse cluster
// (every member follows the coarse center's clustering sequence, and slot
// lengths depend only on the fine clustering in play), and the background
// lane's clock is global (round-robin fids, shared slot lengths). The bulk
// path therefore keeps one clock per coarse cluster plus one background
// clock, and each round's transmitters come from a single pass over the
// flat storage in increasing id order, drawing per-node randomness under
// exactly the reference implementation's gates — observational identity is
// enforced by the equivalence tests in bulk_test.go.
type bulkState struct {
	c     *Compete
	shims []bnode

	ci      []int32     // node -> main-lane clock index (compact coarse id)
	mainClk []laneClock // one main-lane clock per coarse cluster
	bgClk   laneClock   // the global background-lane clock

	mainHeard []bool  // main lane: heard the cluster flood this slot
	mainFlood []int64 // main lane: the flooded value
	bgHeard   []bool  // background lane: heard the cluster flood this slot
	bgFlood   []int64 // background lane: the flooded value

	// thr[s] is the integer Bernoulli threshold for the schedule sweep
	// probability 2^-(s+1): rnd.Uint64()>>11 < thr[s] is the same draw and
	// outcome as rnd.Bernoulli(schedule.Prob(level, t)) at s = t%level.
	thr []uint64
	// helperThr is the same table for the Algorithm-4 decay steps.
	helperThr []uint64

	scratch []clkInfo // per-main-clock derived values for the current round

	// Helper-lane cluster-coin cache: every member of a fine cluster
	// computes the same HashFloat(coinSeed, fid, center, window), so the
	// hash is evaluated once per (center, fid, window) and memoized under
	// a stamp that encodes (window, fid). One cache per helper lane —
	// the lanes differ in coin seed and fid space.
	mainCoin coinCache
	bgCoin   coinCache
}

// laneClock is one shared Intra-Cluster Propagation clock (see icpState;
// the per-node heard/floodVal live in the bulkState flat slices).
type laneClock struct {
	center   int32 // owning coarse center (main clocks; unused for bg)
	fid      int32 // index into the lane's fine set
	k        int64 // slot index
	offset   int64 // round offset within the slot
	subphase int8  // set by the lane's most recent ActBulk, pre-advance
}

// clkInfo carries one clock's per-round derived values into the node pass.
type clkInfo struct {
	f        *fine
	boundary bool
	subphase int8
	step     int64 // offset within the current sub-phase
}

// coinCache memoizes the shared per-cluster helper coin, keyed by fine
// cluster center and stamped by (window, fid) so stale windows and
// clustering switches invalidate lazily.
type coinCache struct {
	coin  []float64
	stamp []uint64 // 0 = empty; otherwise 1 + window*numFine + fid
}

func (cc *coinCache) init(n int) {
	cc.coin = make([]float64, n)
	cc.stamp = make([]uint64, n)
}

// get returns HashFloat(seed, fid, center, window), computing it at most
// once per (center, fid, window).
func (cc *coinCache) get(seed uint64, numFine int, fid int32, center int32, window int64) float64 {
	key := 1 + uint64(window)*uint64(numFine) + uint64(fid)
	if cc.stamp[center] == key {
		return cc.coin[center]
	}
	v := rng.HashFloat(seed, uint64(fid), uint64(center), uint64(window))
	cc.stamp[center] = key
	cc.coin[center] = v
	return v
}

func newBulkState(c *Compete) *bulkState {
	n := c.g.N()
	s := &bulkState{
		c:         c,
		ci:        make([]int32, n),
		mainHeard: make([]bool, n),
		mainFlood: make([]int64, n),
		bgHeard:   make([]bool, n),
		bgFlood:   make([]int64, n),
	}
	// Compact clock ids per coarse cluster, assigned in first-member order.
	compact := make([]int32, n)
	for i := range compact {
		compact[i] = -1
	}
	for v := 0; v < n; v++ {
		ctr := c.coarse.Center[v]
		if compact[ctr] < 0 {
			compact[ctr] = int32(len(s.mainClk))
			s.mainClk = append(s.mainClk, laneClock{center: ctr, fid: c.mainFid(ctr, 0)})
		}
		s.ci[v] = compact[ctr]
	}
	s.scratch = make([]clkInfo, len(s.mainClk))
	maxLevel := 1
	for i := range c.mains {
		if l := c.mains[i].sched.MaxLevel; l > maxLevel {
			maxLevel = l
		}
	}
	for i := range c.bgs {
		if l := c.bgs[i].sched.MaxLevel; l > maxLevel {
			maxLevel = l
		}
	}
	s.thr = make([]uint64, maxLevel)
	for i := range s.thr {
		// 2^-(i+1) and 2^53 are exact powers of two, so the integer test
		// (Uint64>>11) < ceil(p*2^53) equals Float64() < p — same draw,
		// same outcome as the reference rnd.Bernoulli (cf. decay's table).
		s.thr[i] = uint64(math.Ceil(math.Ldexp(1, -(i+1)) * (1 << 53)))
	}
	s.helperThr = make([]uint64, c.l4)
	for i := range s.helperThr {
		s.helperThr[i] = uint64(math.Ceil(decay.Prob(i) * (1 << 53)))
	}
	s.mainCoin.init(n)
	s.bgCoin.init(n)
	s.shims = make([]bnode, n)
	for v := range s.shims {
		s.shims[v] = bnode{s: s, id: int32(v)}
	}
	return s
}

// ActBulk implements radio.BulkActor: one pass over the flat node state in
// increasing id order, mirroring cnode.Act exactly (same gates, same RNG
// draws per node, same messages).
//
//radionet:hotpath
func (s *bulkState) ActBulk(t int64, tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	cfg := &s.c.cfg
	lane := t % numLanes
	lt := t / numLanes
	switch lane {
	case laneMain:
		return s.actMain(tx, msgs)
	case laneHelper:
		if cfg.DisableHelper {
			return tx, msgs
		}
		return s.actHelper(true, lt, tx, msgs)
	case laneBg:
		if cfg.DisableBackground {
			return tx, msgs
		}
		return s.actBg(tx, msgs)
	default:
		if cfg.DisableBackground || cfg.DisableHelper {
			return tx, msgs
		}
		return s.actHelper(false, lt, tx, msgs)
	}
}

// actMain runs one main-lane ICP round: derive each coarse clock's slot
// position, pass over the nodes, then advance the clocks (post-pass, so a
// same-round Recv sees the rolled-over fid exactly as the reference does).
func (s *bulkState) actMain(tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	c := s.c
	for i := range s.mainClk {
		cl := &s.mainClk[i]
		f := &c.mains[cl.fid]
		s.scratch[i] = clkInfo{
			f:        f,
			boundary: cl.offset == 0 || cl.offset == 2*f.subLen,
			subphase: int8(cl.offset / f.subLen),
			step:     cl.offset % f.subLen,
		}
	}
	tx, msgs = s.icpPass(s.ci, s.scratch, s.mainHeard, s.mainFlood, tx, msgs)
	for i := range s.mainClk {
		cl := &s.mainClk[i]
		cl.subphase = s.scratch[i].subphase
		cl.offset++
		if cl.offset >= s.scratch[i].f.slotLen {
			cl.offset = 0
			cl.k++
			cl.fid = c.mainFid(cl.center, cl.k)
		}
	}
	return tx, msgs
}

// actBg is actMain for the background lane's single global clock.
func (s *bulkState) actBg(tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	c := s.c
	cl := &s.bgClk
	f := &c.bgs[cl.fid]
	info := clkInfo{
		f:        f,
		boundary: cl.offset == 0 || cl.offset == 2*f.subLen,
		subphase: int8(cl.offset / f.subLen),
		step:     cl.offset % f.subLen,
	}
	tx, msgs = s.icpPass(nil, []clkInfo{info}, s.bgHeard, s.bgFlood, tx, msgs)
	cl.subphase = info.subphase
	cl.offset++
	if cl.offset >= f.slotLen {
		cl.offset = 0
		cl.k++
		cl.fid = c.bgFid(cl.k)
	}
	return tx, msgs
}

// icpPass is the shared per-node loop of one ICP lane round. ci maps each
// node to its clock in clks; a nil ci means every node shares clks[0]
// (the background lane).
//
//radionet:hotpath
func (s *bulkState) icpPass(ci []int32, clks []clkInfo, heard []bool, flood []int64, tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	c := s.c
	gm := c.globalMax
	for v := range gm {
		info := &clks[0]
		if ci != nil {
			info = &clks[ci[v]]
		}
		f := info.f
		if info.boundary {
			// Outward sub-phase begins: only the center holds the flood.
			if f.part.Center[v] == int32(v) {
				heard[v] = true
				flood[v] = gm[v]
			} else {
				heard[v] = false
				flood[v] = Uninformed
			}
		}
		if f.part.Dist[v] > f.curtail || !heard[v] {
			continue
		}
		a := flood[v] // outward sub-phases flood the cluster value
		if info.subphase == 1 {
			// Inward sub-phase: relay only strictly better knowledge.
			if gm[v] <= flood[v] {
				continue
			}
			a = gm[v]
		}
		level := int64(f.sched.Levels[v])
		if c.rnd[v].Uint64()>>11 < s.thr[info.step%level] {
			tx = append(tx, int32(v))
			msgs = append(msgs, radio.Message{Kind: KindICP, A: a, B: int64(f.part.Center[v])})
		}
	}
	return tx, msgs
}

// actHelper runs one Algorithm-4 helper round for the main or background
// companion lane (cf. cnode.actHelper; the window/step/phase values are
// lane-global and hoisted out of the node loop).
//
//radionet:hotpath
func (s *bulkState) actHelper(isMain bool, lt int64, tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	c := s.c
	l4 := int64(c.l4)
	window := lt / l4
	step := int(lt % l4)
	i := int(window%l4) + 1
	p := decay.Prob(i - 1) // 2^-i, shift-clamped for large phase lengths
	coinSeed := c.coinMain
	heard, flood := s.mainHeard, s.mainFlood
	cache, numFine := &s.mainCoin, len(c.mains)
	if !isMain {
		coinSeed = c.coinBg
		heard, flood = s.bgHeard, s.bgFlood
		cache, numFine = &s.bgCoin, len(c.bgs)
	}
	thr := s.helperThr[step]
	bgFid := s.bgClk.fid
	for v := range heard {
		if !heard[v] {
			continue
		}
		fid := bgFid
		if isMain {
			fid = s.mainClk[s.ci[v]].fid
		}
		var f *fine
		if isMain {
			f = &c.mains[fid]
		} else {
			f = &c.bgs[fid]
		}
		if f.part.Dist[v] > f.curtail {
			continue
		}
		center := f.part.Center[v]
		if cache.get(coinSeed, numFine, fid, center, window) >= p {
			continue // cluster sat this Decay phase out
		}
		if c.rnd[v].Uint64()>>11 < thr {
			tx = append(tx, int32(v))
			msgs = append(msgs, radio.Message{Kind: KindICP, A: flood[v], B: int64(center)})
		}
	}
	return tx, msgs
}

// RecvBulk implements radio.BulkReceiver: the round's deliveries in one
// pass, mirroring cnode.Recv per listener.
//
//radionet:hotpath
func (s *bulkState) RecvBulk(t int64, listeners, msgIdx []int32, msgs []radio.Message) {
	for k, vi := range listeners {
		s.recvOne(t, int(vi), &msgs[msgIdx[k]])
	}
}

// recvOne is cnode.Recv against the flat state: value adoption plus the
// lane-local flood update, reading the shared clock the listener's lane is
// on (already advanced by this round's ActBulk, exactly like the per-node
// reference, which advances st.fid before the engine delivers).
func (s *bulkState) recvOne(t int64, v int, msg *radio.Message) {
	c := s.c
	if msg.Kind != KindICP {
		return
	}
	if msg.A > c.globalMax[v] {
		c.globalMax[v] = msg.A
		if msg.A == c.trueMax && (c.counted == nil || c.counted[v]) {
			c.prog.Add(1)
		}
	}
	lane := t % numLanes
	var cl *laneClock
	var f *fine
	var heard []bool
	var flood []int64
	switch lane {
	case laneMain, laneHelper:
		cl = &s.mainClk[s.ci[v]]
		f = &c.mains[cl.fid]
		heard, flood = s.mainHeard, s.mainFlood
	default:
		cl = &s.bgClk
		f = &c.bgs[cl.fid]
		heard, flood = s.bgHeard, s.bgFlood
	}
	if f.part.Center[v] != int32(msg.B) || f.part.Dist[v] > f.curtail {
		return
	}
	if cl.subphase != 1 || lane == laneHelper || lane == laneBgHelper {
		heard[v] = true
		if msg.A > flood[v] {
			flood[v] = msg.A
		}
	}
}

// bnode is the engine-facing shim of the bulk path: the engine needs a
// Node per vertex for construction and for the per-node fallback calls
// that remain outside the bulk seams (collision reports under collision
// detection, which carry no information to this protocol).
type bnode struct {
	s  *bulkState
	id int32
}

// IgnoresSilence implements radio.SilenceOblivious (cf. cnode).
func (nd *bnode) IgnoresSilence() bool { return true }

// Act implements radio.Node. It is unreachable: the engine never calls
// per-node Act while a BulkActor is installed, and the bulk path installs
// one unconditionally.
func (nd *bnode) Act(int64) radio.Action {
	panic("compete: per-node Act on the bulk path (engine must use ActBulk)")
}

// Recv implements radio.Node for the residual per-node deliveries outside
// the bulk seam.
func (nd *bnode) Recv(t int64, msg *radio.Message, _ bool) {
	if msg == nil {
		return
	}
	nd.s.recvOne(t, int(nd.id), msg)
}

var _ radio.BulkActor = (*bulkState)(nil)
var _ radio.BulkReceiver = (*bulkState)(nil)
var _ radio.Node = (*bnode)(nil)
var _ radio.SilenceOblivious = (*bnode)(nil)
