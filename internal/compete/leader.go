package compete

import (
	"errors"
	"fmt"
	"math"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// Broadcast is Theorem 5.1: Compete({s}) with the source's message, which
// completes broadcasting in O(D·log n/log D + polylog n) rounds whp.
type Broadcast struct {
	*Compete
	Source int
}

// NewBroadcast builds a broadcast of value from source src on g.
func NewBroadcast(g *graph.Graph, d int, cfg Config, seed uint64, src int, value int64) (*Broadcast, error) {
	return NewBroadcastPre(NewPre(g, d, cfg), seed, src, value)
}

// NewBroadcastPre is NewBroadcast with the seed-independent
// precomputation supplied externally (see NewWithPre).
func NewBroadcastPre(pre *Pre, seed uint64, src int, value int64) (*Broadcast, error) {
	return NewBroadcastPreFaults(pre, seed, src, value, nil)
}

// NewBroadcastPreFaults is NewBroadcastPre with a fault scenario
// installed; completion is survivor-scoped (see NewWithPreFaults).
func NewBroadcastPreFaults(pre *Pre, seed uint64, src int, value int64, plan *radio.FaultPlan) (*Broadcast, error) {
	c, err := NewWithPreFaults(pre, seed, map[int]int64{src: value}, plan)
	if err != nil {
		return nil, err
	}
	return &Broadcast{Compete: c, Source: src}, nil
}

// LeaderElection is Algorithm 6 / Theorem 5.2: nodes become candidates
// with probability Θ(log n/n), candidates draw Θ(log n)-bit random IDs,
// and Compete(C) propagates the highest ID. Upon completion all nodes
// output the same ID and exactly one node recognizes it as its own.
type LeaderElection struct {
	*Compete
	// Candidates maps candidate nodes to their drawn IDs.
	Candidates map[int]int64
}

// LeaderConfig extends Config with the candidate-sampling constant.
type LeaderConfig struct {
	Config
	// CandidateC scales the candidacy probability CandidateC·ln n/n
	// [paper Θ(log n/n); default 2].
	CandidateC float64
	// IDBits is the candidate ID length [Θ(log n); default 40].
	IDBits int
}

func (c LeaderConfig) withDefaults() LeaderConfig {
	if c.CandidateC == 0 {
		c.CandidateC = 2
	}
	if c.IDBits == 0 {
		c.IDBits = 40
	}
	return c
}

// NewLeaderElection builds a leader election instance on g.
//
// If the candidate sample comes out empty or with duplicate IDs (both
// probability O(n^-c) events the paper conditions away), the sample is
// redrawn with a salted seed; the deviation is measurement-neutral since
// the paper's analysis conditions on |C| = Θ(log n) with unique IDs.
func NewLeaderElection(g *graph.Graph, d int, cfg LeaderConfig, seed uint64) (*LeaderElection, error) {
	return NewLeaderElectionPre(NewPre(g, d, cfg.Config), cfg, seed)
}

// SampleCandidates draws the Algorithm-6 candidate set for an n-node
// network from seed: each node becomes a candidate with probability
// CandidateC·ln n/n and draws a random IDBits-bit ID; empty or duplicate
// samples are redrawn with a salted seed. The draw is a pure function of
// (n, cfg, seed) — the same one NewLeaderElection performs — so callers
// that need the candidate set before construction (e.g. fault planning
// that must protect the would-be winner) see exactly the election's
// candidates.
func SampleCandidates(n int, cfg LeaderConfig, seed uint64) (map[int]int64, error) {
	cfg = cfg.withDefaults()
	p := cfg.CandidateC * math.Log(float64(n)+2) / float64(n)
	if p > 1 {
		p = 1
	}
	idSpace := int64(1) << uint(cfg.IDBits)
	for salt := uint64(0); salt <= 1000; salt++ {
		r := rng.New(seed).Fork(7000 + salt)
		candidates := make(map[int]int64)
		used := make(map[int64]bool)
		dup := false
		for v := 0; v < n; v++ {
			cr := r.Fork(uint64(v))
			if !cr.Bernoulli(p) {
				continue
			}
			id := cr.Int63n(idSpace)
			if used[id] {
				dup = true
				break
			}
			used[id] = true
			candidates[v] = id
		}
		if !dup && len(candidates) > 0 {
			return candidates, nil
		}
	}
	return nil, errors.New("compete: could not sample a valid candidate set")
}

// NewLeaderElectionPre is NewLeaderElection with the seed-independent
// precomputation supplied externally: pre must come from
// NewPre(g, d, cfg.Config) (see NewWithPre).
func NewLeaderElectionPre(pre *Pre, cfg LeaderConfig, seed uint64) (*LeaderElection, error) {
	return NewLeaderElectionPreFaults(pre, cfg, seed, nil)
}

// NewLeaderElectionPreFaults is NewLeaderElectionPre with a fault
// scenario installed; completion becomes survivor-scoped exactly as in
// NewWithPreFaults, and Verify checks the postcondition over the
// survivor-reachable set only. For the election to stay winnable the
// plan must not crash the maximum-ID candidate (see the campaign's
// protect-the-winner convention); a crashed winner makes the run exhaust
// its budget with Done == false rather than elect a wrong leader.
func NewLeaderElectionPreFaults(pre *Pre, cfg LeaderConfig, seed uint64, plan *radio.FaultPlan) (*LeaderElection, error) {
	return newLeaderElection(pre, cfg, seed, plan, false)
}

// NewLeaderElectionPreFaultsRef is NewLeaderElectionPreFaults on the
// per-node reference path (see NewWithPreFaultsRef): required when a
// transport's round executor will poll the nodes individually.
func NewLeaderElectionPreFaultsRef(pre *Pre, cfg LeaderConfig, seed uint64, plan *radio.FaultPlan) (*LeaderElection, error) {
	return newLeaderElection(pre, cfg, seed, plan, true)
}

func newLeaderElection(pre *Pre, cfg LeaderConfig, seed uint64, plan *radio.FaultPlan, ref bool) (*LeaderElection, error) {
	g := pre.g
	if g.N() == 0 {
		return nil, errors.New("compete: empty graph")
	}
	candidates, err := SampleCandidates(g.N(), cfg, seed)
	if err != nil {
		return nil, err
	}
	c, err := newWithPre(pre, seed, candidates, plan, ref)
	if err != nil {
		return nil, err
	}
	return &LeaderElection{Compete: c, Candidates: candidates}, nil
}

// Leader returns the elected node once Done; -1 before completion.
func (le *LeaderElection) Leader() int {
	if !le.Done() {
		return -1
	}
	//lint:ordered candidate IDs are unique, so at most one node matches TrueMax
	for v, id := range le.Candidates {
		if id == le.TrueMax() {
			return v
		}
	}
	return -1
}

// Verify checks the leader election postcondition after completion: every
// node outputs the same ID and exactly one node holds it as its own.
// Under a fault plan the agreement check is survivor-scoped — only nodes
// in the survivor-reachable completion target are required to output the
// winning ID (crashed or unreachable nodes can never learn it).
func (le *LeaderElection) Verify() error {
	if !le.Done() {
		return errors.New("compete: election not complete")
	}
	want := le.TrueMax()
	owners := 0
	for v, id := range le.Candidates {
		if id == want {
			owners++
			_ = v
		}
	}
	if owners != 1 {
		return fmt.Errorf("compete: %d candidates own the winning ID", owners)
	}
	for v, got := range le.Values() {
		if le.counted != nil && !le.counted[v] {
			continue // outside the survivor-scoped completion target
		}
		if got != want {
			return fmt.Errorf("compete: node %d outputs %d, want %d", v, got, want)
		}
	}
	return nil
}
