package compete

import (
	"fmt"
	"slices"
	"testing"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// competeTestPlan is the crash+jam+loss scenario of the overlay
// equivalence test; fresh instances per engine (plans are single-use).
func competeTestPlan(n int) *radio.FaultPlan {
	p := radio.NewFaultPlan(n, 2718)
	p.Crash(31, 40)  // a leg
	p.Crash(35, 0)   // a leg, dead from the start
	p.Crash(15, 200) // a spine node, mid-run
	p.Jam(40, 0.15)
	for v := 1; v < n; v += 4 {
		p.Loss(v, 0.1)
	}
	return p
}

// TestCompeteFaultOverlayMatchesWrapPath is the bulk-vs-per-node fault
// equivalence test for the paper's pipeline: the engine-side FaultPlan
// overlay on the bulk path must match a Wrap-based run of the equivalent
// CrashNode/JamNode/LossyNode chain round for round — same transmitter
// sets, same deliveries, same completion round, same survivor values.
func TestCompeteFaultOverlayMatchesWrapPath(t *testing.T) {
	g := graph.Caterpillar(15, 2) // spine 0..14, legs 15..44
	d := g.Diameter()
	n := g.N()
	const seed = 31
	record := func(e *radio.Engine) func() []string {
		var rounds []string
		e.Hook = func(_ int64, tx []int32, deliveries, collisions int) {
			ids := slices.Clone(tx)
			slices.Sort(ids)
			rounds = append(rounds, fmt.Sprintf("%v d%d c%d", ids, deliveries, collisions))
		}
		return func() []string { return rounds }
	}

	bulk, err := NewWithPreFaults(NewPre(g, d, Config{}), seed, map[int]int64{0: 9}, competeTestPlan(n))
	if err != nil {
		t.Fatal(err)
	}
	logA := record(bulk.Engine)

	wrapPlan := competeTestPlan(n)
	pernode, err := NewWithPreFaults(NewPre(g, d, Config{Wrap: wrapPlan.Wrap}), seed,
		map[int]int64{0: 9}, competeTestPlan(n))
	if err != nil {
		t.Fatal(err)
	}
	logB := record(pernode.Engine)

	if bulk.ReachTarget() != pernode.ReachTarget() {
		t.Fatalf("targets differ: bulk %d, per-node %d", bulk.ReachTarget(), pernode.ReachTarget())
	}
	budget := 8 * bulk.Budget()
	var doneAt int64 = -1
	for i := int64(0); i < budget; i++ {
		bulk.Engine.Step()
		pernode.Engine.Step()
		if bulk.Done() != pernode.Done() {
			t.Fatalf("round %d: Done diverged (bulk %v, per-node %v)", i, bulk.Done(), pernode.Done())
		}
		if bulk.Done() {
			doneAt = i
			break
		}
	}
	if doneAt < 0 {
		t.Fatalf("faulted compete incomplete after %d rounds (%d/%d)", budget, bulk.Reached(), bulk.ReachTarget())
	}
	a, b := logA(), logB()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d diverged:\nbulk+overlay: %s\nwrap path:    %s", i, a[i], b[i])
		}
	}
	if bulk.Engine.Metrics != pernode.Engine.Metrics {
		t.Fatalf("metrics diverged:\nbulk+overlay: %+v\nwrap path:    %+v", bulk.Engine.Metrics, pernode.Engine.Metrics)
	}
	av, bv := bulk.Values(), pernode.Values()
	alive := competeTestPlan(n).SurvivorMask()
	for v := range av {
		if alive[v] && av[v] != bv[v] {
			t.Fatalf("survivor %d values diverged: %d vs %d", v, av[v], bv[v])
		}
	}
}

// TestFaultedBroadcastTerminatesBothPaths is the acceptance criterion: a
// crash-fault broadcast (30% of non-source nodes crashing at round 50)
// terminates with Done=true well under budget and reaches every
// survivor-reachable node, on both the bulk path (engine overlay) and the
// per-node Wrap path — before the survivor-scoped target, both could only
// exhaust the whole whp budget and report failure.
func TestFaultedBroadcastTerminatesBothPaths(t *testing.T) {
	g := graph.Grid(6, 10)
	d := g.Diameter()
	n := g.N()
	mkPlan := func() *radio.FaultPlan {
		p := radio.NewFaultPlan(n, 7)
		r := rng.New(7)
		crashed := 0
		for v := 1; v < n && crashed < n*3/10; v++ {
			if r.Bernoulli(0.4) {
				p.Crash(v, 50)
				crashed++
			}
		}
		return p
	}

	bulk, err := NewWithPreFaults(NewPre(g, d, Config{}), 13, map[int]int64{0: 9}, mkPlan())
	if err != nil {
		t.Fatal(err)
	}
	wrapPlan := mkPlan()
	pernode, err := NewWithPreFaults(NewPre(g, d, Config{Wrap: wrapPlan.Wrap}), 13,
		map[int]int64{0: 9}, mkPlan())
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*Compete{"bulk": bulk, "per-node": pernode} {
		budget := 8 * c.Budget()
		rounds, done := c.Run(budget)
		if !done {
			t.Fatalf("%s: faulted broadcast incomplete after %d rounds (%d/%d informed)",
				name, rounds, c.Reached(), c.ReachTarget())
		}
		if rounds >= budget/2 {
			t.Errorf("%s: %d rounds is not 'well under' the %d budget", name, rounds, budget)
		}
		if c.Reached() != c.ReachTarget() {
			t.Errorf("%s: reach %d/%d at Done", name, c.Reached(), c.ReachTarget())
		}
		if !c.doneFullScan() {
			t.Errorf("%s: incremental Done disagrees with the survivor-scoped full scan", name)
		}
	}
}

// TestBroadcastSurvivesCrashes injects crash faults into non-cut nodes and
// requires every surviving node to still learn the message: the protocol
// must not depend on any fixed relay set (clusterings are resampled every
// slot, so dead nodes are routed around).
func TestBroadcastSurvivesCrashes(t *testing.T) {
	g := graph.Caterpillar(30, 2) // spine 0..29, legs 30..89
	d := g.Diameter()
	// Crash a third of the legs early; legs are never cut vertices.
	crashed := map[int]bool{}
	for v := 30; v < 90; v += 3 {
		crashed[v] = true
	}
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		if crashed[v] {
			return &radio.CrashNode{Inner: n, CrashAt: 50}
		}
		return n
	}}
	c, err := New(g, d, cfg, 17, map[int]int64{0: 9})
	if err != nil {
		t.Fatal(err)
	}
	aliveDone := func() bool {
		for v, val := range c.Values() {
			if !crashed[v] && val != c.TrueMax() {
				return false
			}
		}
		return true
	}
	rounds, done := c.Engine.Run(8*c.Budget(), aliveDone)
	if !done {
		t.Fatalf("surviving nodes not informed after %d rounds", rounds)
	}
}

// TestBroadcastSurvivesJamming runs the pipeline with random jammers that
// transmit noise 20% of rounds: pure interference, no protocol content.
func TestBroadcastSurvivesJamming(t *testing.T) {
	g := graph.Grid(6, 20)
	d := g.Diameter()
	jr := rng.New(5)
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		if v%10 == 3 { // every tenth node doubles as a jammer
			return &radio.JamNode{Inner: n, P: 0.2, Rnd: jr.Fork(uint64(v))}
		}
		return n
	}}
	c, err := New(g, d, cfg, 23, map[int]int64{0: 9})
	if err != nil {
		t.Fatal(err)
	}
	rounds, done := c.Run(16 * c.Budget())
	if !done {
		t.Fatalf("broadcast under jamming incomplete after %d rounds (%d/%d informed)",
			rounds, c.InformedCount(), g.N())
	}
}

// TestBroadcastSurvivesLossyReceivers degrades every receiver with 20%
// reception loss.
func TestBroadcastSurvivesLossyReceivers(t *testing.T) {
	g := graph.Path(40)
	lr := rng.New(6)
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		return &radio.LossyNode{Inner: n, P: 0.2, Rnd: lr.Fork(uint64(v))}
	}}
	c, err := New(g, 39, cfg, 29, map[int]int64{0: 9})
	if err != nil {
		t.Fatal(err)
	}
	rounds, done := c.Run(16 * c.Budget())
	if !done {
		t.Fatalf("broadcast with lossy receivers incomplete after %d rounds", rounds)
	}
}
