package compete

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// TestBroadcastSurvivesCrashes injects crash faults into non-cut nodes and
// requires every surviving node to still learn the message: the protocol
// must not depend on any fixed relay set (clusterings are resampled every
// slot, so dead nodes are routed around).
func TestBroadcastSurvivesCrashes(t *testing.T) {
	g := graph.Caterpillar(30, 2) // spine 0..29, legs 30..89
	d := g.Diameter()
	// Crash a third of the legs early; legs are never cut vertices.
	crashed := map[int]bool{}
	for v := 30; v < 90; v += 3 {
		crashed[v] = true
	}
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		if crashed[v] {
			return &radio.CrashNode{Inner: n, CrashAt: 50}
		}
		return n
	}}
	c, err := New(g, d, cfg, 17, map[int]int64{0: 9})
	if err != nil {
		t.Fatal(err)
	}
	aliveDone := func() bool {
		for v, val := range c.Values() {
			if !crashed[v] && val != c.TrueMax() {
				return false
			}
		}
		return true
	}
	rounds, done := c.Engine.Run(8*c.Budget(), aliveDone)
	if !done {
		t.Fatalf("surviving nodes not informed after %d rounds", rounds)
	}
}

// TestBroadcastSurvivesJamming runs the pipeline with random jammers that
// transmit noise 20% of rounds: pure interference, no protocol content.
func TestBroadcastSurvivesJamming(t *testing.T) {
	g := graph.Grid(6, 20)
	d := g.Diameter()
	jr := rng.New(5)
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		if v%10 == 3 { // every tenth node doubles as a jammer
			return &radio.JamNode{Inner: n, P: 0.2, Rnd: jr.Fork(uint64(v))}
		}
		return n
	}}
	c, err := New(g, d, cfg, 23, map[int]int64{0: 9})
	if err != nil {
		t.Fatal(err)
	}
	rounds, done := c.Run(16 * c.Budget())
	if !done {
		t.Fatalf("broadcast under jamming incomplete after %d rounds (%d/%d informed)",
			rounds, c.InformedCount(), g.N())
	}
}

// TestBroadcastSurvivesLossyReceivers degrades every receiver with 20%
// reception loss.
func TestBroadcastSurvivesLossyReceivers(t *testing.T) {
	g := graph.Path(40)
	lr := rng.New(6)
	cfg := Config{Wrap: func(v int, n radio.Node) radio.Node {
		return &radio.LossyNode{Inner: n, P: 0.2, Rnd: lr.Fork(uint64(v))}
	}}
	c, err := New(g, 39, cfg, 29, map[int]int64{0: 9})
	if err != nil {
		t.Fatal(err)
	}
	rounds, done := c.Run(16 * c.Budget())
	if !done {
		t.Fatalf("broadcast with lossy receivers incomplete after %d rounds", rounds)
	}
}
