// Package compete implements the paper's core contribution: the Compete
// procedure (Algorithms 1–4) and its two applications, broadcasting
// (Theorem 5.1) and leader election (Algorithm 6 / Theorem 5.2).
//
// Compete(S) takes a source set S in which every source holds an integer
// message and guarantees, with high probability, that upon completion all
// nodes know the highest-valued source message, in
// O(D·log n/log D + |S|·D^0.125 + polylog n) rounds (Theorem 4.1).
//
// Structure (matching Section 3 of the paper):
//
//   - A precomputation phase partitions the network into coarse clusters
//     (Partition(β), β = D^-0.5), computes many fine clusterings for each
//     exponent j (β = 2^-j), builds intra-cluster schedules (Lemma 2.3),
//     and distributes a random sequence of fine clusterings within each
//     coarse cluster. Per DESIGN.md §3 this phase is executed by a
//     simulator oracle and charged the paper's round costs — the paper
//     itself notes collisions during precomputation can be ignored at an
//     O(log n) simulation cost (Section 4).
//   - The propagation phase runs packet-level on the true collision model
//     as four interleaved TDM lanes: the main process (Intra-Cluster
//     Propagation on the coarse cluster's random sequence of fine
//     clusterings, curtailed after O(log n/(β·log D)) per Theorem 2.2),
//     its Algorithm-4 Decay background that informs cluster-border nodes,
//     the background Compete process (Algorithm 2: fixed β, round-robin
//     clusterings, longer curtailment) that passes messages across coarse
//     cluster boundaries, and that process's own Algorithm-4 lane.
//
// Intra-Cluster Propagation (Algorithm 3) is realized as three sub-phases
// per clustering slot: outward flood of the center's best message along
// the schedule, inward flood of any higher message toward the center, and
// a second outward flood of the center's updated best.
//
// All constants of the paper's exponents are named Config fields with
// laptop-scale defaults; DESIGN.md §3 explains the scaling.
package compete

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"radionet/internal/cluster"
	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
	"radionet/internal/schedule"
)

// KindICP tags all Intra-Cluster Propagation messages. A is the carried
// value, B is the sender's cluster center for the clustering in play.
const KindICP radio.Kind = 3

// Uninformed is the sentinel value of a node that knows no message yet.
// Source messages must be non-negative.
const Uninformed int64 = -1

// Config holds every tunable constant of Algorithms 1–4. The zero value
// selects the documented defaults. Paper values are given in brackets;
// defaults are scaled for simulable diameters as explained in DESIGN.md §3.
type Config struct {
	// CoarseBetaExp sets the coarse clustering parameter β = D^-x [0.5].
	CoarseBetaExp float64
	// FineLoFrac/FineHiFrac set the range of the random fine exponent j:
	// j ∈ [lo·log2 D, hi·log2 D] [paper 0.01 and 0.1; defaults 0.25, 0.75].
	FineLoFrac, FineHiFrac float64
	// FinePerJ is the number of fine clusterings per j [D^0.2; default
	// min(4, max(2, round(D^0.2)))].
	FinePerJ int
	// BgBetaExp sets the background process clustering β = D^-x [0.1;
	// default 0.3 so background clusters are non-trivial at small D].
	BgBetaExp float64
	// BgNumFine is the number of background clusterings cycled round-robin
	// [D^0.2; default 3].
	BgNumFine int
	// CurtailC scales the main-process curtailment distance
	// ℓ(j) = CurtailC·2^j·log2 n/log2 D (Theorem 2.2) [default 1.0].
	CurtailC float64
	// CurtailLogLog multiplies the curtailment by log2 log2 n, recovering
	// the Haeupler–Wajc'16 schedule length (their distance-to-center bound
	// is an O(log log n) factor weaker); used as the HW16 comparison mode.
	CurtailLogLog bool
	// BgCurtailC scales the background curtailment ℓ = BgCurtailC·log2 n/β
	// [paper O(log n/β); default 0.5].
	BgCurtailC float64
	// HopSlack is the number of schedule sweeps budgeted per hop of flood
	// progress when sizing sub-phase durations [default 2, selected by a
	// sweep over the benchmark families].
	HopSlack float64
	// TailSweeps is the additive sweep budget per sub-phase [default 3].
	TailSweeps int
	// DisableCurtail runs every clustering slot to the clustering's full
	// strong radius instead of the Theorem 2.2 curtailment (ablation: this
	// is what switching clusterings *without* the paper's key insight
	// costs).
	DisableCurtail bool
	// DisableBackground silences lanes 2 and 3 (ablation: progress must
	// then cross coarse-cluster boundaries unaided).
	DisableBackground bool
	// DisableHelper silences the Algorithm-4 lanes (ablation: cluster
	// border nodes are never repaired).
	DisableHelper bool
	// FixedJ forces every main-process slot to use fine exponent j
	// (ablation for the random-β choice of Theorem 2.2); 0 means random.
	FixedJ int
	// Wrap, if set, wraps each node's protocol before it is installed in
	// the engine — the fault-injection hook (see radio.CrashNode et al.).
	Wrap func(v int, n radio.Node) radio.Node
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// withDefaults fills zero fields with defaults for an (n, d) network.
func (c Config) withDefaults(d int) Config {
	if c.CoarseBetaExp == 0 {
		c.CoarseBetaExp = 0.5
	}
	if c.FineLoFrac == 0 {
		c.FineLoFrac = 0.25
	}
	if c.FineHiFrac == 0 {
		c.FineHiFrac = 0.75
	}
	if c.FinePerJ == 0 {
		c.FinePerJ = clampInt(int(math.Round(math.Pow(float64(d), 0.2))), 2, 4)
	}
	if c.BgBetaExp == 0 {
		c.BgBetaExp = 0.3
	}
	if c.BgNumFine == 0 {
		c.BgNumFine = 3
	}
	if c.CurtailC == 0 {
		c.CurtailC = 1.0
	}
	if c.BgCurtailC == 0 {
		c.BgCurtailC = 0.5
	}
	if c.HopSlack == 0 {
		c.HopSlack = 2
	}
	if c.TailSweeps == 0 {
		c.TailSweeps = 3
	}
	return c
}

// fine bundles one fine clustering with its schedule and slot geometry.
type fine struct {
	part    *cluster.Result
	sched   *schedule.Schedule
	beta    float64
	j       int
	curtail int32
	subLen  int64 // rounds per sub-phase (out, in, out)
	slotLen int64 // 3 * subLen
}

// icpState is one lane's Intra-Cluster Propagation position for a node.
type icpState struct {
	fid      int32 // index into the lane's fine set
	k        int64 // slot index
	offset   int64 // round offset within the slot
	subphase int8  // 0 out, 1 in, 2 out — valid after the lane's Act
	heard    bool  // heard the cluster flood this slot
	floodVal int64 // the cluster center's flooded value
}

// Compete is a running Compete(S) instance.
type Compete struct {
	Engine *radio.Engine
	// PrecomputeRounds is the round cost charged for the oracle-executed
	// precomputation phase (DESIGN.md §3, substitution 1).
	PrecomputeRounds int64

	g      *graph.Graph
	d      int
	cfg    Config
	coarse *cluster.Result
	mains  []fine
	bgs    []fine
	// byJ indexes mains by exponent j for the FixedJ ablation.
	byJ map[int][]int32

	l4       int // Decay phase length of the Algorithm-4 lanes
	seqSeed  uint64
	coinMain uint64
	coinBg   uint64
	trueMax  int64
	nsrc     int
	// prog counts nodes whose globalMax has reached trueMax (the
	// radio.Progress incremental-termination convention): globalMax only
	// grows and never exceeds trueMax, so Recv can count the threshold
	// crossing exactly once per node and Done is O(1).
	prog radio.Progress
	// counted is the survivor-scoped completion mask (nil without a fault
	// plan): only nodes reachable from the surviving sources in the
	// survivor graph count toward prog — without the scoping, any crashed
	// node pins Done at false and a faulted run can only exhaust its
	// budget.
	counted []bool

	// Contiguous per-node protocol state, shared by the bulk fast path
	// (bulk.go) and the retained per-node reference implementation
	// (node.go): both operate on the same flat slices, indexed by node id,
	// so accessors and completion tracking are path-independent.
	globalMax []int64    // best known value per node (Uninformed sentinel)
	rnd       []rng.Rand // per-node transmission-coin streams

	// Exactly one of the two is populated: refs when a Wrap hook forces
	// the per-node engine path, bulk otherwise.
	refs []cnode
	bulk *bulkState
}

const (
	laneMain     = 0
	laneHelper   = 1
	laneBg       = 2
	laneBgHelper = 3
	numLanes     = 4
)

// New builds a Compete(S) instance on g with diameter d. sources maps
// source nodes to their (non-negative) messages. All randomness — shifts,
// schedules, sequences, transmission coins — derives from seed.
func New(g *graph.Graph, d int, cfg Config, seed uint64, sources map[int]int64) (*Compete, error) {
	return NewWithPre(NewPre(g, d, cfg), seed, sources)
}

// NewWithPre is New with the seed-independent precomputation geometry
// supplied externally: pre must come from NewPre with the same graph,
// diameter and config. Construction consumes exactly the same randomness
// as New, so trials sharing one Pre (the campaign per-config convention)
// remain bit-identical to independently constructed instances.
func NewWithPre(pre *Pre, seed uint64, sources map[int]int64) (*Compete, error) {
	return NewWithPreFaults(pre, seed, sources, nil)
}

// NewWithPreFaults is NewWithPre with a fault scenario installed.
// Completion becomes survivor-scoped: the Progress target is the set of
// nodes reachable from the (surviving) sources in the survivor graph, so
// Done/Run keep their meaning when crashed nodes can never learn the
// message. With the default bulk path the plan is installed as the
// engine-side overlay (radio.FaultPlan), keeping the bulk-path speed; with
// a Wrap hook the overlay is left uninstalled and the hook is expected to
// realize the same faults per node (radio.FaultPlan.Wrap builds the
// equivalent wrapper chain). A plan is single-use — build one per
// constructed instance.
func NewWithPreFaults(pre *Pre, seed uint64, sources map[int]int64, plan *radio.FaultPlan) (*Compete, error) {
	return newWithPre(pre, seed, sources, plan, false)
}

// NewWithPreFaultsRef is NewWithPreFaults on the per-node reference path:
// the engine hosts the cnode machines directly (no bulk seams) with the
// fault plan installed as the engine-side overlay. A transport backend
// that polls nodes individually — any radio.Transport that installs a
// round-executor driver — requires this path, because the bulk shims
// refuse per-node Act. Output is bit-identical to the bulk path (pinned
// by the package's bulk-vs-reference equivalence tests).
func NewWithPreFaultsRef(pre *Pre, seed uint64, sources map[int]int64, plan *radio.FaultPlan) (*Compete, error) {
	return newWithPre(pre, seed, sources, plan, true)
}

func newWithPre(pre *Pre, seed uint64, sources map[int]int64, plan *radio.FaultPlan, ref bool) (*Compete, error) {
	g, d, cfg := pre.g, pre.d, pre.cfg
	if g.N() == 0 {
		return nil, errors.New("compete: empty graph")
	}
	if len(sources) == 0 {
		return nil, errors.New("compete: empty source set")
	}
	n := g.N()
	master := rng.New(seed)

	c := &Compete{
		g:        g,
		d:        d,
		cfg:      cfg,
		l4:       pre.l4,
		seqSeed:  master.Fork(1).Uint64(),
		coinMain: master.Fork(2).Uint64(),
		coinBg:   master.Fork(3).Uint64(),
		byJ:      make(map[int][]int32),
		trueMax:  Uninformed,
		nsrc:     len(sources),
	}

	scr, release := pre.scratch()
	defer release()

	// Precomputation (oracle; rounds charged below).
	// 1) Coarse clustering with β = D^-CoarseBetaExp.
	c.coarse = cluster.PartitionScratch(g, pre.coarseBeta, master.Fork(10), &scr.part)

	// 2) Fine clusterings for each exponent j, with schedules.
	if cfg.FixedJ != 0 {
		if cfg.FixedJ < pre.jmin || cfg.FixedJ > pre.jmax {
			return nil, fmt.Errorf("compete: FixedJ %d outside [%d, %d]", cfg.FixedJ, pre.jmin, pre.jmax)
		}
	}
	fid := int32(0)
	for j := pre.jmin; j <= pre.jmax; j++ {
		beta := math.Pow(2, -float64(j))
		for q := 0; q < cfg.FinePerJ; q++ {
			part := cluster.PartitionScratch(g, beta, master.Fork(100+uint64(fid)), &scr.part)
			sch := schedule.BuildScratch(g, part, scr.cont)
			ell := pre.ellMain[j-pre.jmin]
			if cfg.DisableCurtail {
				ell = int32(part.MaxStrongRadius())
				if ell < 2 {
					ell = 2
				}
			}
			c.mains = append(c.mains, c.newFine(part, sch, beta, j, ell))
			c.byJ[j] = append(c.byJ[j], fid)
			fid++
		}
	}

	// 3) Background clusterings (Algorithm 2): fixed β = D^-BgBetaExp,
	// curtailment O(log n/β).
	for q := 0; q < cfg.BgNumFine; q++ {
		part := cluster.PartitionScratch(g, pre.bgBeta, master.Fork(5000+uint64(q)), &scr.part)
		sch := schedule.BuildScratch(g, part, scr.cont)
		ell := pre.ellBg
		if cfg.DisableCurtail {
			ell = int32(part.MaxStrongRadius())
			if ell < 2 {
				ell = 2
			}
		}
		c.bgs = append(c.bgs, c.newFine(part, sch, pre.bgBeta, 0, ell))
	}

	c.PrecomputeRounds = c.precomputeCharge()

	// Per-node protocol state: flat slices indexed by node id, shared by
	// whichever engine path runs (bulk or per-node reference).
	c.globalMax = make([]int64, n)
	c.rnd = make([]rng.Rand, n)
	for v := 0; v < n; v++ {
		c.globalMax[v] = Uninformed
		c.rnd[v] = *master.Fork(0x1_0000_0000 + uint64(v))
	}
	// Iterate sources in sorted order so the first validation error — and
	// with it the constructor's behavior — does not depend on map order.
	srcIDs := make([]int, 0, len(sources))
	for s := range sources {
		srcIDs = append(srcIDs, s)
	}
	sort.Ints(srcIDs)
	for _, s := range srcIDs {
		v := sources[s]
		if s < 0 || s >= n {
			return nil, fmt.Errorf("compete: source %d out of range", s)
		}
		if v < 0 {
			return nil, fmt.Errorf("compete: source %d has negative message %d", s, v)
		}
		c.globalMax[s] = v
		if v > c.trueMax {
			c.trueMax = v
		}
	}
	target := int64(n)
	if plan != nil {
		if plan.N() != n {
			return nil, fmt.Errorf("compete: fault plan for %d nodes on %d-node graph", plan.N(), n)
		}
		c.counted, target = plan.CountedTarget(g, sources)
	}
	c.prog = *radio.NewProgress(target)
	for _, s := range srcIDs {
		if sources[s] == c.trueMax && (c.counted == nil || c.counted[s]) {
			c.prog.Add(1)
		}
	}
	rn := make([]radio.Node, n)
	if cfg.Wrap != nil || ref {
		// Reference path: contiguous per-node machines, the semantic
		// baseline the bulk fast path is verified against. A Wrap hook
		// interposes per-node behavior and owns fault realization (the
		// engine overlay stays uninstalled); the ref flag keeps the plain
		// reference nodes with the engine-side overlay, for engines a
		// transport's round executor polls node by node.
		c.refs = make([]cnode, n)
		for v := 0; v < n; v++ {
			c.refs[v] = cnode{id: int32(v), c: c}
			c.refs[v].main.fid = c.mainFid(int32(v), 0)
			rn[v] = &c.refs[v]
			if cfg.Wrap != nil {
				rn[v] = cfg.Wrap(v, &c.refs[v])
			}
		}
		c.Engine = radio.NewEngine(g, rn)
		if cfg.Wrap == nil {
			c.Engine.SetFaults(plan)
		}
		return c, nil
	}
	c.bulk = newBulkState(c)
	for v := 0; v < n; v++ {
		rn[v] = &c.bulk.shims[v]
	}
	c.Engine = radio.NewEngine(g, rn)
	c.Engine.Bulk = c.bulk
	c.Engine.BulkRecv = c.bulk
	c.Engine.SetFaults(plan)
	return c, nil
}

// newFine computes slot geometry for a clustering with curtailment ell.
func (c *Compete) newFine(part *cluster.Result, sch *schedule.Schedule, beta float64, j int, ell int32) fine {
	sweeps := c.cfg.HopSlack*float64(ell) + float64(c.cfg.TailSweeps)
	subLen := int64(math.Ceil(sweeps)) * int64(sch.MaxLevel)
	if subLen < 4 {
		subLen = 4
	}
	return fine{
		part:    part,
		sched:   sch,
		beta:    beta,
		j:       j,
		curtail: ell,
		subLen:  subLen,
		slotLen: 3 * subLen,
	}
}

// mainFid returns the fine clustering the given node's coarse cluster uses
// in main-process slot k (step 5 of Algorithm 1: each coarse cluster center
// draws a random sequence of fine clusterings; shared via the coarse
// schedule, modeled by the shared hash).
func (c *Compete) mainFid(v int32, k int64) int32 {
	if c.cfg.FixedJ != 0 {
		ids := c.byJ[c.cfg.FixedJ]
		h := rng.Hash64(c.seqSeed, uint64(c.coarse.Center[v]), uint64(k))
		return ids[h%uint64(len(ids))]
	}
	h := rng.Hash64(c.seqSeed, uint64(c.coarse.Center[v]), uint64(k))
	return int32(h % uint64(len(c.mains)))
}

// bgFid returns the background clustering for slot k (round-robin order,
// Algorithm 2).
func (c *Compete) bgFid(k int64) int32 {
	return int32(k % int64(len(c.bgs)))
}

// precomputeCharge totals the round costs of the oracle-executed
// precomputation, following the paper's stated bounds (DESIGN.md §3):
// O(log³n/β) per Partition (Lemma 2.1), O(radius·log²n) per schedule
// (Lemma 2.3 scoped to cluster radius), and O(D·log n) to distribute the
// clustering sequences through the coarse clusters.
func (c *Compete) precomputeCharge() int64 {
	l := int64(decay.Levels(c.g.N()))
	charge := l * l * l * int64(math.Ceil(1/c.coarse.Beta))
	all := make([]fine, 0, len(c.mains)+len(c.bgs))
	all = append(all, c.mains...)
	all = append(all, c.bgs...)
	for _, f := range all {
		charge += l * l * l * int64(math.Ceil(1/f.beta))
		charge += int64(f.part.MaxStrongRadius()) * l * l
	}
	charge += int64(c.d) * l
	return charge
}

// TrueMax returns the highest source message.
func (c *Compete) TrueMax() int64 { return c.trueMax }

// Done reports whether every node knows the highest source message. O(1):
// the crossing into globalMax == trueMax is counted incrementally in Recv.
func (c *Compete) Done() bool { return c.prog.Done() }

// doneFullScan is the O(n) reference implementation of Done, kept for the
// equivalence tests.
func (c *Compete) doneFullScan() bool {
	for v, val := range c.globalMax {
		if c.counted != nil && !c.counted[v] {
			continue // outside the survivor-scoped completion target
		}
		if val != c.trueMax {
			return false
		}
	}
	return true
}

// InformedCount returns how many nodes currently know the highest message.
func (c *Compete) InformedCount() int { return int(c.prog.Count()) }

// ReachTarget returns the number of nodes Done waits on: n for a
// fault-free run, the survivor-reachable set size under a fault plan.
func (c *Compete) ReachTarget() int { return int(c.prog.Target()) }

// Reached is InformedCount under its fault-campaign name: the numerator
// of the reach fraction over ReachTarget.
func (c *Compete) Reached() int { return int(c.prog.Count()) }

// Values returns each node's currently known best message (Uninformed for
// nodes that know nothing).
func (c *Compete) Values() []int64 {
	return append([]int64(nil), c.globalMax...)
}

// Budget returns a generous default round budget for Run, derived from
// Theorem 4.1's O(D·log n/log D + |S|·D^0.125 + polylog n) with the
// implementation's constants.
func (c *Compete) Budget() int64 {
	maxSlot := int64(0)
	sumSlot := int64(0)
	minProgress := math.Inf(1)
	for _, f := range c.mains {
		if f.slotLen > maxSlot {
			maxSlot = f.slotLen
		}
		sumSlot += f.slotLen
		if p := 1 / f.beta; p < minProgress {
			minProgress = p
		}
	}
	avgSlot := sumSlot / int64(len(c.mains))
	progress := minProgress / 4
	if progress < 1 {
		progress = 1
	}
	slots := int64(math.Ceil(8*float64(c.d)/progress)) + 32
	polylog := int64(80) * int64(c.l4) * int64(c.l4) * int64(c.l4)
	srcTerm := int64(c.nsrc) * int64(math.Ceil(math.Pow(float64(c.d), 0.125))) * int64(c.l4) * maxSlot / 8
	return numLanes * (slots*avgSlot + 8*maxSlot + polylog + srcTerm)
}

// Run executes the propagation phase until all nodes know the highest
// message or maxRounds elapse (pass 0 to use Budget()). It returns the
// rounds consumed in this call and whether Compete completed.
func (c *Compete) Run(maxRounds int64) (int64, bool) {
	if maxRounds <= 0 {
		maxRounds = c.Budget()
	}
	return c.Engine.RunUntil(maxRounds, &c.prog)
}
