package compete

import (
	"math"
	"sync"

	"radionet/internal/cluster"
	"radionet/internal/decay"
	"radionet/internal/graph"
)

// Pre is the seed-independent part of Compete's precomputation for one
// (graph, diameter, config) triple: the clustering parameter grid (coarse
// and background β, the fine exponent range, per-exponent curtailment
// distances ℓ(j)) and a pool of reusable build buffers for the
// seed-dependent Partition/schedule construction. A Pre can be built once
// per experiment configuration and shared by every trial on that
// configuration — construction through NewWithPre consumes exactly the
// same randomness as New, so sharing a Pre across seeds (or across
// concurrent workers; Pre is safe for concurrent use) leaves every output
// bit-identical.
type Pre struct {
	g          *graph.Graph
	d          int
	cfg        Config // defaults applied
	l4         int
	logn, logD float64
	coarseBeta float64
	bgBeta     float64
	jmin, jmax int
	// ellMain[j-jmin] is the main-process curtailment ℓ(j) of Theorem 2.2
	// (unused under DisableCurtail, which curtails at the seed-dependent
	// strong radius instead).
	ellMain []int32
	// ellBg is the background-process curtailment O(log n/β).
	ellBg int32

	// pool recycles the mutable Partition/schedule build buffers across
	// trials; entries are *buildScratch.
	pool sync.Pool
}

// buildScratch is the per-construction mutable state recycled through
// Pre.pool: the Partition priority-queue/settled buffers and the
// schedule contention buffer. Not safe for concurrent use; NewWithPre
// checks one out for the duration of a single construction.
type buildScratch struct {
	part cluster.Scratch
	cont []int32
}

// NewPre computes the seed-independent precomputation geometry for
// Compete instances on g with diameter d under cfg. The returned Pre is
// immutable (its scratch pool aside) and safe for concurrent use.
func NewPre(g *graph.Graph, d int, cfg Config) *Pre {
	if d < 1 {
		d = 1
	}
	cfg = cfg.withDefaults(d)
	n := g.N()
	p := &Pre{
		g:    g,
		d:    d,
		cfg:  cfg,
		l4:   decay.Levels(n),
		logn: math.Log2(float64(n) + 2),
		logD: math.Log2(float64(d) + 2),
	}
	p.coarseBeta = math.Pow(float64(d), -cfg.CoarseBetaExp)
	if p.coarseBeta > 1 {
		p.coarseBeta = 1
	}
	p.bgBeta = math.Pow(float64(d), -cfg.BgBetaExp)
	if p.bgBeta > 1 {
		p.bgBeta = 1
	}
	p.jmin, p.jmax = cluster.JRange(d, cfg.FineLoFrac, cfg.FineHiFrac)
	for j := p.jmin; j <= p.jmax; j++ {
		ell := int32(math.Ceil(cfg.CurtailC * math.Pow(2, float64(j)) * p.logn / p.logD))
		if cfg.CurtailLogLog {
			ell = int32(math.Ceil(float64(ell) * math.Log2(p.logn)))
		}
		if ell < 2 {
			ell = 2
		}
		p.ellMain = append(p.ellMain, ell)
	}
	p.ellBg = int32(math.Ceil(cfg.BgCurtailC * p.logn / p.bgBeta))
	if p.ellBg < 2 {
		p.ellBg = 2
	}
	return p
}

// scratch checks a build scratch out of the pool; done returns it.
func (p *Pre) scratch() (*buildScratch, func()) {
	s, _ := p.pool.Get().(*buildScratch)
	if s == nil {
		s = &buildScratch{}
	}
	if len(s.cont) < p.g.N() {
		s.cont = make([]int32, p.g.N())
	}
	return s, func() { p.pool.Put(s) }
}
