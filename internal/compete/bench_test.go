package compete

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// The Compete hot-path benchmarks: cd17 and hw16 broadcast over an n grid
// on the sparse families (random recursive tree, sparse G(n,p)), matching
// the style of internal/decay/bench_test.go. The default configuration
// runs the bulk fast path (contiguous state + ActBulk/RecvBulk, shared
// lane clocks); the ...PerNode variants force the per-node reference path
// via an identity Wrap hook, which is the pre-bulk engine configuration.
// Round counts are identical by construction; only wall time and
// allocations differ. See DESIGN.md §5 for recorded numbers.

func benchCompete(b *testing.B, g *graph.Graph, hw16, perNode bool) {
	b.Helper()
	d := g.DiameterEstimate()
	cfg := Config{CurtailLogLog: hw16}
	if perNode {
		cfg.Wrap = func(_ int, n radio.Node) radio.Node { return n }
	}
	pre := NewPre(g, d, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	var rounds int64
	for i := 0; i < b.N; i++ {
		bc, err := NewBroadcastPre(pre, 1, 0, 9)
		if err != nil {
			b.Fatal(err)
		}
		var done bool
		rounds, done = bc.Run(8 * bc.Budget())
		if !done {
			b.Fatal("broadcast incomplete")
		}
	}
	b.ReportMetric(float64(rounds), "radio-rounds")
}

func BenchmarkCD17Broadcast10kRandTree(b *testing.B) {
	benchCompete(b, graph.RandomTree(10_000, rng.New(7)), false, false)
}

func BenchmarkCD17Broadcast100kRandTree(b *testing.B) {
	benchCompete(b, graph.RandomTree(100_000, rng.New(7)), false, false)
}

func BenchmarkCD17Broadcast100kGnp(b *testing.B) {
	benchCompete(b, graph.Gnp(100_000, 0.00005, rng.New(9)), false, false)
}

func BenchmarkHW16Broadcast100kRandTree(b *testing.B) {
	benchCompete(b, graph.RandomTree(100_000, rng.New(7)), true, false)
}

// The per-node reference configuration, kept at n = 10^4 so the CI
// benchmark smoke pass stays fast; the bulk-vs-reference gap is already
// visible at this scale.
func BenchmarkCD17Broadcast10kRandTreePerNode(b *testing.B) {
	benchCompete(b, graph.RandomTree(10_000, rng.New(7)), false, true)
}
