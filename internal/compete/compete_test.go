package compete

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

func TestNewValidation(t *testing.T) {
	g := graph.Path(10)
	if _, err := New(g, 9, Config{}, 1, nil); err == nil {
		t.Fatal("empty source set accepted")
	}
	if _, err := New(g, 9, Config{}, 1, map[int]int64{0: -5}); err == nil {
		t.Fatal("negative message accepted")
	}
	if _, err := New(g, 9, Config{}, 1, map[int]int64{20: 1}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	empty := graph.NewBuilder("e", 0).Build()
	if _, err := New(empty, 1, Config{}, 1, map[int]int64{0: 1}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestBroadcastSmallFamilies(t *testing.T) {
	r := rng.New(4242)
	cases := []*graph.Graph{
		graph.Path(48),
		graph.Cycle(40),
		graph.Grid(7, 7),
		graph.PathOfCliques(8, 5),
		graph.BalancedTree(2, 5),
		graph.Gnp(60, 0.08, r.Fork(1)),
		graph.RandomGeometric(80, 0.17, r.Fork(2)),
	}
	for _, g := range cases {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			d := g.Diameter()
			b, err := NewBroadcast(g, d, Config{}, 11, 0, 7)
			if err != nil {
				t.Fatal(err)
			}
			rounds, done := b.Run(0)
			if !done {
				t.Fatalf("broadcast incomplete after %d rounds (budget %d): %d/%d informed",
					rounds, b.Budget(), b.InformedCount(), g.N())
			}
			for v, val := range b.Values() {
				if val != 7 {
					t.Fatalf("node %d has %d, want 7", v, val)
				}
			}
		})
	}
}

func TestBroadcastDeterministic(t *testing.T) {
	g := graph.PathOfCliques(6, 4)
	d := g.Diameter()
	b1, err := NewBroadcast(g, d, Config{}, 99, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := NewBroadcast(g, d, Config{}, 99, 0, 3)
	r1, _ := b1.Run(0)
	r2, _ := b2.Run(0)
	if r1 != r2 {
		t.Fatalf("same seed, different rounds: %d vs %d", r1, r2)
	}
}

func TestCompeteMultiSource(t *testing.T) {
	g := graph.Grid(8, 8)
	d := g.Diameter()
	sources := map[int]int64{0: 10, 63: 99, 32: 55}
	c, err := New(g, d, Config{}, 5, sources)
	if err != nil {
		t.Fatal(err)
	}
	if c.TrueMax() != 99 {
		t.Fatalf("TrueMax = %d", c.TrueMax())
	}
	rounds, done := c.Run(0)
	if !done {
		t.Fatalf("compete incomplete after %d rounds: %d/%d", rounds, c.InformedCount(), g.N())
	}
}

func TestCompeteSingleNode(t *testing.T) {
	g := graph.Path(1)
	c, err := New(g, 1, Config{}, 1, map[int]int64{0: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := c.Run(16); !done {
		t.Fatal("singleton network should be done immediately")
	}
}

func TestPrecomputeChargePositive(t *testing.T) {
	g := graph.Path(64)
	c, err := New(g, 63, Config{}, 1, map[int]int64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.PrecomputeRounds <= 0 {
		t.Fatalf("PrecomputeRounds = %d", c.PrecomputeRounds)
	}
}

func TestFixedJAblation(t *testing.T) {
	g := graph.Path(60)
	d := g.Diameter()
	// FixedJ outside the valid range must be rejected.
	if _, err := New(g, d, Config{FixedJ: 99}, 1, map[int]int64{0: 1}); err == nil {
		t.Fatal("absurd FixedJ accepted")
	}
	c, err := New(g, d, Config{FixedJ: 2}, 1, map[int]int64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := c.Run(4 * c.Budget()); !done {
		t.Fatal("FixedJ run incomplete")
	}
}

func TestDisableCurtailStillCompletes(t *testing.T) {
	g := graph.Path(40)
	c, err := New(g, 39, Config{DisableCurtail: true}, 3, map[int]int64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := c.Run(8 * c.Budget()); !done {
		t.Fatal("uncurtailed run incomplete")
	}
}

func TestDisableBackgroundStillCompletesViaMain(t *testing.T) {
	// Without the background process the main process must still finish on
	// a small graph (coarse boundaries are rare at this scale); this is
	// the F6 ablation's sanity leg.
	g := graph.Path(40)
	c, err := New(g, 39, Config{DisableBackground: true}, 3, map[int]int64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := c.Run(8 * c.Budget()); !done {
		t.Skip("main process alone did not finish at this budget (expected on unlucky seeds)")
	}
}

func TestLeaderElectionFamilies(t *testing.T) {
	r := rng.New(777)
	cases := []*graph.Graph{
		graph.Path(40),
		graph.Grid(6, 6),
		graph.PathOfCliques(5, 5),
		graph.Gnp(50, 0.1, r.Fork(1)),
	}
	for _, g := range cases {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			le, err := NewLeaderElection(g, g.Diameter(), LeaderConfig{}, 2024)
			if err != nil {
				t.Fatal(err)
			}
			if len(le.Candidates) == 0 {
				t.Fatal("no candidates sampled")
			}
			rounds, done := le.Run(0)
			if !done {
				t.Fatalf("election incomplete after %d rounds", rounds)
			}
			if err := le.Verify(); err != nil {
				t.Fatal(err)
			}
			if le.Leader() < 0 {
				t.Fatal("no leader identified")
			}
		})
	}
}

func TestLeaderBeforeCompletion(t *testing.T) {
	g := graph.Path(30)
	le, err := NewLeaderElection(g, 29, LeaderConfig{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if le.Leader() != -1 && !le.Done() {
		t.Fatal("leader reported before completion")
	}
	if err := le.Verify(); err == nil && !le.Done() {
		t.Fatal("Verify passed before completion")
	}
}

func TestBudgetScalesWithDiameter(t *testing.T) {
	small, _ := New(graph.Path(32), 31, Config{}, 1, map[int]int64{0: 1})
	large, _ := New(graph.Path(128), 127, Config{}, 1, map[int]int64{0: 1})
	if large.Budget() <= small.Budget() {
		t.Fatalf("budget not increasing with D: %d vs %d", small.Budget(), large.Budget())
	}
}

func TestValuesMonotone(t *testing.T) {
	g := graph.Path(30)
	c, err := New(g, 29, Config{}, 9, map[int]int64{0: 42})
	if err != nil {
		t.Fatal(err)
	}
	prev := c.Values()
	for i := 0; i < 200; i++ {
		c.Engine.Step()
		cur := c.Values()
		for v := range cur {
			if cur[v] < prev[v] {
				t.Fatalf("node %d knowledge decreased %d -> %d", v, prev[v], cur[v])
			}
		}
		prev = cur
	}
}
