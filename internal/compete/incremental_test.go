package compete

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// Incremental Done (globalMax threshold crossings counted in Recv) must
// agree with the O(n) reference scan after every round, for single- and
// multi-source instances on randomized graphs and seeds.
func TestDoneMatchesFullScanEveryRound(t *testing.T) {
	for seed := uint64(1); seed <= 2; seed++ {
		r := rng.New(seed)
		graphs := []*graph.Graph{
			graph.RandomTree(36, r.Fork(1)),
			graph.Grid(5, 7),
		}
		for gi, g := range graphs {
			d := g.DiameterEstimate()
			sources := map[int]int64{0: 9}
			if gi%2 == 1 {
				sources = map[int]int64{0: 5, g.N() - 1: 9}
			}
			c, err := New(g, d, Config{}, seed, sources)
			if err != nil {
				t.Fatal(err)
			}
			budget := 8 * c.Budget()
			for round := int64(0); round <= budget; round++ {
				inc, ref := c.Done(), c.doneFullScan()
				if inc != ref {
					t.Fatalf("%s seed=%d round %d: incremental Done=%v, full scan=%v",
						g, seed, round, inc, ref)
				}
				if inc {
					if got, want := c.InformedCount(), g.N(); got != want {
						t.Fatalf("%s seed=%d: InformedCount=%d at completion, want %d", g, seed, got, want)
					}
					break
				}
				c.Engine.Step()
			}
			if !c.doneFullScan() {
				t.Fatalf("%s seed=%d: compete did not complete within budget", g, seed)
			}
		}
	}
}

// InformedCount must match a scan of Values at sampled rounds.
func TestInformedCountMatchesScan(t *testing.T) {
	g := graph.Grid(4, 8)
	c, err := New(g, g.DiameterEstimate(), Config{}, 3, map[int]int64{0: 7})
	if err != nil {
		t.Fatal(err)
	}
	budget := 8 * c.Budget()
	for round := int64(0); round <= budget && !c.Done(); round++ {
		if round%64 == 0 {
			want := 0
			for _, v := range c.Values() {
				if v == c.TrueMax() {
					want++
				}
			}
			if got := c.InformedCount(); got != want {
				t.Fatalf("round %d: InformedCount=%d, scan=%d", round, got, want)
			}
		}
		c.Engine.Step()
	}
	if !c.Done() {
		t.Fatal("compete did not complete")
	}
}
