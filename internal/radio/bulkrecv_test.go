package radio

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// bulkProto is a toy protocol owning all nodes of an engine, with both
// bulk seams: every node transmits its id in rounds where id % 5 == t % 5,
// and records every value it hears. The reference run uses the same type
// with the seams left uninstalled, so per-node Act/Recv and the bulk paths
// must produce identical logs and metrics.
type bulkProto struct {
	n      int
	quiet  []bool // per-node IgnoresSilence answer
	heard  [][]int64
	silent []int // silence/collision reports per node (dense pass only)
}

type bulkProtoNode struct {
	p  *bulkProto
	id int32
}

func (nd *bulkProtoNode) Act(t int64) Action {
	if int64(nd.id)%5 == t%5 {
		return Transmit(Message{Kind: 1, A: int64(nd.id)})
	}
	return Listen
}

func (nd *bulkProtoNode) Recv(t int64, msg *Message, collided bool) {
	if msg == nil {
		// Honor the SilenceOblivious promise: a quiet node's
		// nothing-heard report must be a no-op (the sparse pass may
		// legitimately skip it); collision reports under detection and
		// loud nodes' reports are always counted.
		if collided || !nd.p.quiet[nd.id] {
			nd.p.silent[nd.id]++
		}
		return
	}
	nd.p.heard[nd.id] = append(nd.p.heard[nd.id], msg.A)
}

func (nd *bulkProtoNode) IgnoresSilence() bool { return nd.p.quiet[nd.id] }

func (p *bulkProto) ActBulk(t int64, tx []int32, msgs []Message) ([]int32, []Message) {
	for v := 0; v < p.n; v++ {
		if int64(v)%5 == t%5 {
			tx = append(tx, int32(v))
			msgs = append(msgs, Message{Kind: 1, A: int64(v)})
		}
	}
	return tx, msgs
}

func (p *bulkProto) RecvBulk(t int64, listeners, msgIdx []int32, msgs []Message) {
	for k, vi := range listeners {
		p.heard[vi] = append(p.heard[vi], msgs[msgIdx[k]].A)
	}
}

// run executes rounds rounds on g, with or without the bulk seams. Nodes
// whose id is in loud do not ignore silence, forcing the dense listener
// pass (quiet nodes' silence reports are skipped on both paths there, so
// logs stay comparable).
func (p *bulkProto) run(g *graph.Graph, rounds int64, bulk bool, cd bool, loud map[int]bool) *Engine {
	n := g.N()
	p.n = n
	p.quiet = make([]bool, n)
	p.heard = make([][]int64, n)
	p.silent = make([]int, n)
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		p.quiet[v] = !loud[v]
		nodes[v] = &bulkProtoNode{p: p, id: int32(v)}
	}
	e := NewEngine(g, nodes)
	e.CollisionDetection = cd
	if bulk {
		e.Bulk = p
		e.BulkRecv = p
	}
	e.Run(rounds, nil)
	return e
}

// The bulk Act/Recv seams must be observationally identical to the
// per-node paths in both listener passes (sparse: all nodes quiet; dense:
// some nodes loud) and under collision detection (collision reports stay
// per-node while deliveries travel through the seam).
func TestBulkRecvMatchesPerNode(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(23),
		graph.Grid(5, 7),
		graph.Gnp(40, 0.1, rng.New(3)),
		graph.Star(17),
	}
	for _, g := range graphs {
		for _, cd := range []bool{false, true} {
			for _, loud := range []map[int]bool{nil, {2: true, 7: true}} {
				ref, got := &bulkProto{}, &bulkProto{}
				re := ref.run(g, 64, false, cd, loud)
				ge := got.run(g, 64, true, cd, loud)
				if re.Metrics != ge.Metrics {
					t.Fatalf("%s cd=%v loud=%v: metrics differ: per-node %+v, bulk %+v",
						g, cd, loud, re.Metrics, ge.Metrics)
				}
				for v := 0; v < g.N(); v++ {
					a, b := ref.heard[v], got.heard[v]
					if len(a) != len(b) {
						t.Fatalf("%s cd=%v node %d: heard %d vs %d messages", g, cd, v, len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("%s cd=%v node %d msg %d: %d vs %d", g, cd, v, i, a[i], b[i])
						}
					}
					if ref.silent[v] != got.silent[v] {
						t.Fatalf("%s cd=%v node %d: %d vs %d silence/collision reports",
							g, cd, v, ref.silent[v], got.silent[v])
					}
				}
			}
		}
	}
}

// A dormant node woken by a bulk delivery must be re-queried: the engine
// skips dormant Act calls, so a missed wake-up would silence the node
// forever.
type wakeNode struct {
	id    int32
	awake *[]bool
	acted *int
	heard *int
}

func (nd *wakeNode) Act(t int64) Action {
	*nd.acted++
	return Transmit(Message{Kind: 1, A: int64(nd.id)})
}

func (nd *wakeNode) Recv(t int64, msg *Message, collided bool) {
	if msg != nil {
		*nd.heard++
		(*nd.awake)[nd.id] = true
	}
}

func (nd *wakeNode) Dormant() bool        { return !(*nd.awake)[nd.id] }
func (nd *wakeNode) IgnoresSilence() bool { return true }

type wakeBulk struct {
	nodes []*wakeNode
}

func (w *wakeBulk) ActBulk(t int64, tx []int32, msgs []Message) ([]int32, []Message) {
	for _, nd := range w.nodes {
		if !nd.Dormant() {
			a := nd.Act(t)
			tx = append(tx, nd.id)
			msgs = append(msgs, a.Msg)
		}
	}
	return tx, msgs
}

func (w *wakeBulk) RecvBulk(t int64, listeners, msgIdx []int32, msgs []Message) {
	for k, vi := range listeners {
		w.nodes[vi].Recv(t, &msgs[msgIdx[k]], false)
	}
}

func TestBulkRecvRequeriesDormancy(t *testing.T) {
	g := graph.Path(4)
	awake := make([]bool, 4)
	awake[0] = true
	acted := make([]int, 4)
	heard := make([]int, 4)
	w := &wakeBulk{}
	nodes := make([]Node, 4)
	for v := 0; v < 4; v++ {
		nd := &wakeNode{id: int32(v), awake: &awake, acted: &acted[v], heard: &heard[v]}
		w.nodes = append(w.nodes, nd)
		nodes[v] = nd
	}
	e := NewEngine(g, nodes)
	e.Bulk = w
	e.BulkRecv = w
	// Round 0: node 0 transmits, node 1 hears and wakes through the bulk
	// seam. Round 1: nodes 0 and 1 both transmit (collision at... node 2
	// only neighbors 1). The wake chain must reach the end of the path.
	e.Run(8, nil)
	if !awake[1] {
		t.Fatal("node 1 not woken by bulk delivery")
	}
	if acted[1] == 0 {
		t.Fatal("woken node 1 never acted: dormancy was not re-queried after RecvBulk")
	}
}
