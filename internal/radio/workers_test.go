package radio

import (
	"runtime"
	"testing"
	"time"

	"radionet/internal/graph"
)

// waitGoroutines polls until the process goroutine count drops to at most
// want, giving exiting workers (and, when gc is set, the weak-pointer
// cleanup) time to run. Returns the last observed count.
func waitGoroutines(want int, gc bool) int {
	deadline := time.Now().Add(5 * time.Second) //lint:wallclock test-only teardown polling
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) { //lint:wallclock test-only teardown polling
		if gc {
			runtime.GC()
		}
		time.Sleep(time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// newShardedEngine builds a small sharded engine for lifecycle tests.
func newShardedEngine(k int) *Engine {
	g := graph.Grid(13, 17)
	nodes := make([]Node, g.N())
	for v := range nodes {
		nodes[v] = Silent{}
	}
	e := NewEngine(g, nodes)
	e.SetShards(k)
	return e
}

// TestEngineCloseReleasesWorkers pins the deterministic teardown path:
// SetShards parks k-1 resident workers, Close joins them promptly (no
// waiting on GC), and Close is idempotent.
func TestEngineCloseReleasesWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	e := newShardedEngine(4)
	if got := runtime.NumGoroutine(); got < base+3 {
		t.Fatalf("goroutines after SetShards(4): %d, want >= %d (3 resident workers)", got, base+3)
	}
	e.Close()
	if got := waitGoroutines(base, false); got > base {
		t.Fatalf("goroutines after Close: %d, want <= %d", got, base)
	}
	e.Close() // idempotent
}

// TestEngineUsableAfterClose pins the post-Close contract: a closed
// sharded engine keeps running correctly — waves fall back to inline
// sequential execution — and SetShards may be called again.
func TestEngineUsableAfterClose(t *testing.T) {
	g := graph.Grid(13, 17)
	ref := runShardCase(g, 1, true, true, false, 40)

	n := g.N()
	p := &shardProto{n: n, quiet: make([]bool, n), log: make([][]string, n)}
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		p.quiet[v] = v%7 != 0
		nodes[v] = &shardProtoNode{p: p, id: int32(v)}
	}
	e := NewEngine(g, nodes)
	e.CollisionDetection = true
	e.SetFaults(mkShardPlan(n))
	e.SetShards(8)
	e.Close() // workers gone, shard structures still installed
	e.Run(40, nil)
	if e.Metrics != ref.metrics {
		t.Fatalf("closed sharded engine diverged:\nk=1:    %+v\nclosed: %+v", ref.metrics, e.Metrics)
	}

	// Re-sharding (before the first step) after Close spawns a fresh pool.
	base := runtime.NumGoroutine()
	e2 := newShardedEngine(8)
	e2.Close()
	e2.SetShards(4)
	if got := runtime.NumGoroutine(); got < base+3 {
		t.Fatalf("goroutines after re-SetShards: %d, want >= %d", got, base+3)
	}
	e2.Close()
	waitGoroutines(base, false)
}

// TestEngineGCReleasesWorkers pins the leak backstop: an engine that is
// never Closed must not pin its resident workers forever — the workers
// hold only a weak reference, so dropping the engine lets the GC collect
// it and its cleanup close the command channels.
func TestEngineGCReleasesWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		e := newShardedEngine(4)
		_ = e.Shards()
	}()
	if got := waitGoroutines(base, true); got > base {
		t.Fatalf("goroutines after dropping engine: %d, want <= %d (workers leaked past GC)", got, base)
	}
}

// TestEngineSetCloseAll pins the EngineSet convenience: every added
// engine is closed, nil adds are ignored, and Close is nil-safe.
func TestEngineSetCloseAll(t *testing.T) {
	base := runtime.NumGoroutine()
	var set EngineSet
	set.Add(nil)
	e1 := newShardedEngine(2)
	e2 := newShardedEngine(3)
	set.Add(e1)
	set.Add(e2)
	set.Close()
	if got := waitGoroutines(base, false); got > base {
		t.Fatalf("goroutines after EngineSet.Close: %d, want <= %d", got, base)
	}
	var nilSet *EngineSet
	e3 := newShardedEngine(2)
	nilSet.Add(e3) // nil-safe no-op registration
	nilSet.Close()
	e3.Close()
	waitGoroutines(base, false)
}
