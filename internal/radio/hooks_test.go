package radio

import (
	"testing"

	"radionet/internal/graph"
)

// TestChainHooksBothObserveEveryRound is the hook-clobbering regression
// test: two hooks installed via AddHook (the trace-then-metrics pattern)
// must both observe every executed round with identical arguments.
func TestChainHooksBothObserveEveryRound(t *testing.T) {
	g := graph.Path(4)
	nodes := make([]Node, g.N())
	for i := range nodes {
		i := i
		nodes[i] = &FuncNode{ActFn: func(round int64) Action {
			if int64(i) == round%int64(len(nodes)) {
				return Transmit(Message{A: int64(i)})
			}
			return Listen
		}}
	}
	e := NewEngine(g, nodes)

	type obs struct {
		round int64
		tx    int
		del   int
		col   int
	}
	var a, b []obs
	e.AddHook(func(round int64, tx []int32, deliveries, collisions int) {
		a = append(a, obs{round, len(tx), deliveries, collisions})
	})
	e.AddHook(func(round int64, tx []int32, deliveries, collisions int) {
		b = append(b, obs{round, len(tx), deliveries, collisions})
	})

	const rounds = 10
	for i := 0; i < rounds; i++ {
		e.Step()
	}
	if len(a) != rounds || len(b) != rounds {
		t.Fatalf("hooks saw %d/%d rounds, want %d each", len(a), len(b), rounds)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d: hook observations differ: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].round != int64(i) {
			t.Fatalf("hook round %d out of order: %+v", i, a[i])
		}
	}
}

func TestChainHooksNilHandling(t *testing.T) {
	if ChainHooks() != nil {
		t.Error("ChainHooks() != nil")
	}
	if ChainHooks(nil, nil) != nil {
		t.Error("ChainHooks(nil, nil) != nil")
	}
	calls := 0
	h := func(int64, []int32, int, int) { calls++ }
	single := ChainHooks(nil, h, nil)
	if single == nil {
		t.Fatal("single live hook dropped")
	}
	single(0, nil, 0, 0)
	if calls != 1 {
		t.Fatalf("single hook called %d times, want 1", calls)
	}
	double := ChainHooks(h, nil, h)
	double(1, nil, 0, 0)
	if calls != 3 {
		t.Fatalf("chained hooks called %d more times, want 2", calls-1)
	}
}
