// Resident shard workers: the goroutine pool behind intra-round sharding.
//
// The first sharded engine spawned 3·(k-1) goroutines per round (one per
// spawned shard per wave), ~1000 rounds per trial — cheap individually,
// but measurable single-core overhead at k = 4 (see BENCH_huge.json's
// gomaxprocs: 1 trajectory). SetShards now spawns k-1 workers once; each
// parks on a one-slot command channel and executes whatever wave command
// arrives, so a wave costs k-1 channel sends and one WaitGroup barrier
// instead of k-1 goroutine creations.
//
// Lifecycle: workers hold only a weak pointer to the engine plus their
// command channel, so a worker never keeps its engine alive. Engines are
// torn down two ways: deterministically by Engine.Close (the campaign,
// facade and bench paths close every engine when a trial ends, via
// radio.EngineSet), or — for API users who drop an engine on the floor —
// by a runtime.AddCleanup that closes the command channels once the
// engine is unreachable, unparking the workers into channel-close exit.
// After Close, the engine remains usable: waves fall back to running
// every shard inline on the caller (bit-identical, just sequential).
package radio

import (
	"runtime"
	"sync"
	"weak"
)

// spawnWorkers starts the k-1 resident wave workers and installs the GC
// fallback that closes their command channels when the engine is dropped
// without Close. Called only by SetShards (k > 1), which has already
// released any previous pool.
func (e *Engine) spawnWorkers(k int) {
	e.workerCmds = make([]chan uint8, k-1)
	// The weak pointer is what lets the cleanup ever run: a strong *Engine
	// captured by a worker would keep the engine reachable forever. During
	// a wave the sender holds the engine and blocks on wg.Wait, so Value()
	// is always non-nil while a command is in flight.
	wp := weak.Make(e)
	for i := range e.workerCmds {
		ch := make(chan uint8, 1) // one-slot: dispatch never blocks on a parked worker
		e.workerCmds[i] = ch
		go shardWorker(ch, wp, i+1)
	}
	// The cleanup argument must not (and does not) reference the engine:
	// it captures the channel slice only, so the engine can become
	// unreachable and the cleanup can fire.
	e.workerCleanup = runtime.AddCleanup(e, closeWorkerChans, e.workerCmds)
}

// shardWorker is one resident worker's loop: park on the command channel,
// run the commanded wave on shard idx, hit the barrier, park again. Exits
// when the channel closes (Engine.Close or the GC cleanup).
func shardWorker(cmds <-chan uint8, wp weak.Pointer[Engine], idx int) {
	for cmd := range cmds {
		e := wp.Value()
		if e == nil {
			// Unreachable in practice (senders hold the engine until the
			// barrier), but a vanished engine must not hang the loop.
			continue
		}
		e.sh[idx].run(cmd)
		e.wg.Done()
	}
}

// closeWorkerChans unparks every worker into loop exit. Package-level (not
// a closure) so the cleanup provably captures nothing but its argument.
func closeWorkerChans(chs []chan uint8) {
	for _, ch := range chs {
		close(ch)
	}
}

// Close releases the engine's resident shard workers, if any. Idempotent
// and safe on an unsharded engine; must not be called concurrently with
// Step. The engine remains usable afterwards — subsequent sharded waves
// run inline on the caller, bit-identically. Callers that build engines
// through protocol.BuildParams get this wired for free via EngineSet.
func (e *Engine) Close() {
	if e.workerCmds == nil {
		return
	}
	e.workerCleanup.Stop()
	closeWorkerChans(e.workerCmds)
	e.workerCmds = nil
}

// EngineSet collects the engines a runner builds so their resident shard
// workers can be released deterministically when the trial ends — the
// executor convention threaded through protocol.BuildParams.Engines and
// populated by ApplyEngine. A nil set is a valid no-op receiver, so
// callers that don't care about deterministic teardown (the GC cleanup
// still reclaims workers eventually) pass nothing.
type EngineSet struct {
	mu      sync.Mutex
	engines []*Engine
}

// Add registers an engine for teardown. Nil-safe on both sides.
func (s *EngineSet) Add(e *Engine) {
	if s == nil || e == nil {
		return
	}
	s.mu.Lock()
	s.engines = append(s.engines, e)
	s.mu.Unlock()
}

// Close releases every registered engine's workers and empties the set.
// Idempotent; nil-safe.
func (s *EngineSet) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	engines := s.engines
	s.engines = nil
	s.mu.Unlock()
	for _, e := range engines {
		e.Close()
	}
}
