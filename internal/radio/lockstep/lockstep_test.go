package lockstep_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/radio/lockstep"
	"radionet/internal/rng"
)

// chatter is a deterministic exerciser node: per-node RNG stream, a
// transmit coin each round, and a running digest folding every
// observation (delivery payloads, collision reports, silences) so any
// divergence in what a node hears — not just in what the engine counts —
// fails the equivalence tests.
type chatter struct {
	id     int32
	r      *rng.Rand
	p      float64
	digest uint64
}

func newChatter(id int, seed uint64, p float64) *chatter {
	return &chatter{id: int32(id), r: rng.New(seed).Fork(uint64(id)), p: p}
}

func (c *chatter) Act(t int64) radio.Action {
	if c.r.Bernoulli(c.p) {
		return radio.Transmit(radio.Message{Kind: 1, A: t, B: int64(c.id)*31 + 7})
	}
	return radio.Listen
}

func (c *chatter) Recv(t int64, m *radio.Message, collided bool) {
	h := uint64(t) * 0x9e3779b97f4a7c15
	switch {
	case m != nil:
		h ^= uint64(m.Src)<<32 ^ uint64(m.A)<<16 ^ uint64(m.B) ^ uint64(m.Kind)
	case collided:
		h ^= 0xc011
	default:
		h ^= 0x51e7
	}
	c.digest = c.digest*0x100000001b3 + h
}

// sleepyChatter starts dormant (Sleeper contract: always Listen, no
// randomness, silence is a no-op) and wakes on its first delivery or
// collision report, exercising the retired-dormancy-mask leg of the
// driver path.
type sleepyChatter struct {
	chatter
	awake bool
}

func (s *sleepyChatter) Dormant() bool { return !s.awake }

func (s *sleepyChatter) Act(t int64) radio.Action {
	if !s.awake {
		return radio.Listen
	}
	return s.chatter.Act(t)
}

func (s *sleepyChatter) Recv(t int64, m *radio.Message, collided bool) {
	if !s.awake {
		if m == nil && !collided {
			return // dormant: silence is invisible
		}
		s.awake = true
	}
	s.chatter.Recv(t, m, collided)
}

// trace captures one engine run for comparison: per-round transmitter
// sets, per-round delivery/collision counts, final metrics and final
// per-node digests.
type trace struct {
	rounds  []string
	metrics radio.Metrics
	digests []uint64
}

type scenario struct {
	g      *graph.Graph
	seed   uint64
	cd     bool
	sleepy bool
	shards int
	rounds int
	faults func(n int) *radio.FaultPlan
}

// digestOf reads the node's chatter digest regardless of flavor.
func digestOf(nd radio.Node) uint64 {
	switch n := nd.(type) {
	case *chatter:
		return n.digest
	case *sleepyChatter:
		return n.digest
	}
	return 0
}

// runScenario executes one scenario and returns its trace; tr == nil
// runs the in-process simulator, otherwise the nodes run behind tr.
func runScenario(t *testing.T, sc scenario, tr radio.Transport) trace {
	t.Helper()
	n := sc.g.N()
	nodes := make([]radio.Node, n)
	for i := range nodes {
		if sc.sleepy && i%3 == 1 {
			nodes[i] = &sleepyChatter{chatter: *newChatter(i, sc.seed, 0.5)}
		} else {
			nodes[i] = newChatter(i, sc.seed, 0.25)
		}
	}
	e := radio.NewEngine(sc.g, nodes)
	e.CollisionDetection = sc.cd
	if sc.faults != nil {
		e.SetFaults(sc.faults(n))
	}
	if sc.shards > 1 {
		e.SetShards(sc.shards)
	}
	var out trace
	e.Hook = func(round int64, transmitters []int32, deliveries, collisions int) {
		out.rounds = append(out.rounds, fmt.Sprintf("%d:%v/%d/%d", round, transmitters, deliveries, collisions))
	}
	if tr != nil {
		tr.Attach(e)
		defer tr.Close()
	}
	for i := 0; i < sc.rounds; i++ {
		e.Step()
	}
	if tr != nil {
		// Join the node goroutines before reading their state: digests
		// live node-side under a transport.
		tr.Close()
	}
	out.metrics = e.Metrics
	out.digests = make([]uint64, n)
	for i, nd := range nodes {
		out.digests[i] = digestOf(nd)
	}
	return out
}

// checkEquivalent pins a lockstep trace to the simulator's, round for
// round.
func checkEquivalent(t *testing.T, name string, sim, lk trace) {
	t.Helper()
	if sim.metrics != lk.metrics {
		t.Errorf("%s: metrics diverge: sim %+v, lockstep %+v", name, sim.metrics, lk.metrics)
	}
	if len(sim.rounds) != len(lk.rounds) {
		t.Fatalf("%s: round-trace lengths diverge: %d vs %d", name, len(sim.rounds), len(lk.rounds))
	}
	for i := range sim.rounds {
		if sim.rounds[i] != lk.rounds[i] {
			t.Fatalf("%s: round %d diverges:\n  sim      %s\n  lockstep %s", name, i, sim.rounds[i], lk.rounds[i])
		}
	}
	for v := range sim.digests {
		if sim.digests[v] != lk.digests[v] {
			t.Errorf("%s: node %d observation digest diverges: %#x vs %#x", name, v, sim.digests[v], lk.digests[v])
		}
	}
}

// mixedFaults builds a crash+jam+loss plan covering every overlay leg.
func mixedFaults(seed uint64) func(n int) *radio.FaultPlan {
	return func(n int) *radio.FaultPlan {
		p := radio.NewFaultPlan(n, seed)
		for v := 1; v < n; v += 5 {
			p.Crash(v, int64(3+v%7))
		}
		for v := 2; v < n; v += 7 {
			p.Jam(v, 0.2)
		}
		for v := 3; v < n; v += 4 {
			p.Loss(v, 0.3)
		}
		return p
	}
}

// TestLockstepMatchesSim is the backend-equivalence suite: the same
// (graph, seed, faults, model) run in-process and over the lockstep
// backend must agree on every round's transmitter set, delivery and
// collision counts, the final metrics, and every node's observation
// digest — the transport-seam analogue of the FaultPlan-vs-Wrap and
// sharded-vs-unsharded pinnings.
func TestLockstepMatchesSim(t *testing.T) {
	scenarios := map[string]scenario{
		"grid":        {g: graph.Grid(6, 6), seed: 11, rounds: 60},
		"path-cd":     {g: graph.Path(40), seed: 12, cd: true, rounds: 60},
		"star-sleepy": {g: graph.Star(33), seed: 13, sleepy: true, rounds: 50},
		"tree-faults": {g: graph.BalancedTree(3, 4), seed: 14, rounds: 80, faults: mixedFaults(99)},
		"grid-faults-cd-sleepy": {
			g: graph.Grid(8, 5), seed: 15, cd: true, sleepy: true, rounds: 70, faults: mixedFaults(7),
		},
		"cycle-sharded": {g: graph.Cycle(130), seed: 16, shards: 3, rounds: 40},
	}
	for name, sc := range scenarios {
		t.Run(name, func(t *testing.T) {
			sim := runScenario(t, sc, nil)
			lk := runScenario(t, sc, lockstep.New())
			checkEquivalent(t, name, sim, lk)
		})
	}
}

// TestLockstepTCPMatchesSim pins the loopback-socket variant to the same
// contract (smaller scenario set: the codec and coordinator are shared,
// only the byte stream differs).
func TestLockstepTCPMatchesSim(t *testing.T) {
	scenarios := map[string]scenario{
		"grid":        {g: graph.Grid(5, 5), seed: 21, rounds: 40},
		"tree-faults": {g: graph.BalancedTree(2, 4), seed: 22, rounds: 50, faults: mixedFaults(5)},
	}
	for name, sc := range scenarios {
		t.Run(name, func(t *testing.T) {
			sim := runScenario(t, sc, nil)
			lk := runScenario(t, sc, lockstep.NewTCP())
			checkEquivalent(t, name, sim, lk)
		})
	}
}

// rangeChatter is a marker BulkRangeActor over a chatter population: the
// engine never calls it under a driver (SetDriver clears Bulk), but its
// presence is the protocol's declaration that Act touches no cross-node
// state, which switches the coordinator to the parallel act fan-out.
type rangeChatter struct{ nodes []radio.Node }

func (rc *rangeChatter) ActBulk(t int64, tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	return rc.ActBulkRange(t, 0, int32(len(rc.nodes)), tx, msgs)
}

func (rc *rangeChatter) ActBulkRange(t int64, lo, hi int32, tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	for v := lo; v < hi; v++ {
		if a := rc.nodes[v].Act(t); a.Transmit {
			tx = append(tx, v)
			msgs = append(msgs, a.Msg)
		}
	}
	return tx, msgs
}

// TestLockstepParallelActRace is the ≥64-goroutine race smoke (run under
// -race in CI): 80 node goroutines behind the pipe backend with the
// parallel act fan-out enabled, plus the sequential-observe delivery
// path, for enough rounds to interleave everything. Output equivalence
// is still asserted so the parallel fan-out cannot reorder transmit
// lists.
func TestLockstepParallelActRace(t *testing.T) {
	sc := scenario{g: graph.Gnp(80, 0.08, rng.New(3)), seed: 31, rounds: 50}
	sim := runScenario(t, sc, nil)

	n := sc.g.N()
	nodes := make([]radio.Node, n)
	for i := range nodes {
		nodes[i] = newChatter(i, sc.seed, 0.25)
	}
	e := radio.NewEngine(sc.g, nodes)
	e.Bulk = &rangeChatter{nodes: nodes} // declares Act node-local -> parallel fan-out
	var lk trace
	e.Hook = func(round int64, transmitters []int32, deliveries, collisions int) {
		lk.rounds = append(lk.rounds, fmt.Sprintf("%d:%v/%d/%d", round, transmitters, deliveries, collisions))
	}
	tr := lockstep.New()
	tr.Attach(e)
	defer tr.Close()
	for i := 0; i < sc.rounds; i++ {
		e.Step()
	}
	tr.Close()
	lk.metrics = e.Metrics
	lk.digests = make([]uint64, n)
	for i, nd := range nodes {
		lk.digests[i] = digestOf(nd)
	}
	checkEquivalent(t, "parallel-act", sim, lk)
}

// TestLockstepCloseReleasesEverything is the budget-exhaustion shutdown
// contract: a run abandoned mid-flight (the lockstep analogue of a
// budget-exhausted trial) must release every node goroutine and socket
// on Close, and Close must be idempotent. goleak-style: compare the
// goroutine count before Attach and after Close, with settling retries.
func TestLockstepCloseReleasesEverything(t *testing.T) {
	for _, variant := range []struct {
		name string
		mk   func() *lockstep.Transport
	}{
		{"pipe", lockstep.New},
		{"tcp", lockstep.NewTCP},
	} {
		t.Run(variant.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			g := graph.Grid(8, 8)
			nodes := make([]radio.Node, g.N())
			for i := range nodes {
				nodes[i] = newChatter(i, 41, 0.25)
			}
			e := radio.NewEngine(g, nodes)
			tr := variant.mk()
			tr.Attach(e)
			// A short, "budget-exhausted" run: stop well before any
			// completion notion, with node goroutines mid-conversation.
			for i := 0; i < 5; i++ {
				e.Step()
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			for i := 0; ; i++ {
				if runtime.NumGoroutine() <= before {
					break
				}
				if i >= 100 {
					t.Fatalf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestLockstepAttachTwicePanics pins the misuse contract.
func TestLockstepAttachTwicePanics(t *testing.T) {
	g := graph.Path(2)
	e := radio.NewEngine(g, []radio.Node{radio.Silent{}, radio.Silent{}})
	tr := lockstep.New()
	tr.Attach(e)
	defer tr.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("second Attach did not panic")
		}
	}()
	tr.Attach(radio.NewEngine(g, []radio.Node{radio.Silent{}, radio.Silent{}}))
}
