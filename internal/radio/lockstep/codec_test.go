package lockstep

import (
	"testing"

	"radionet/internal/radio"
)

// TestMsgRoundTrip: the fixed-width codec is lossless over the full
// signed ranges of every field.
func TestMsgRoundTrip(t *testing.T) {
	msgs := []radio.Message{
		{},
		{Kind: 1, Src: 0, A: 9, B: -9},
		{Kind: -32768, Src: 2147483647, A: -1 << 62, B: 1<<62 - 1},
		{Kind: 32767, Src: -1, A: -1, B: 0},
	}
	var buf [msgLen]byte
	for _, m := range msgs {
		putMsg(buf[:], &m)
		if got := getMsg(buf[:]); got != m {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
	}
}

// TestPayloadPanics: Message.Payload must never silently cross the wire
// — encoding a message carrying one is a loud error.
func TestPayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("putMsg accepted a Message with a Payload")
		}
	}()
	var buf [msgLen]byte
	m := radio.Message{Kind: 1, Payload: []int{1}}
	putMsg(buf[:], &m)
}
