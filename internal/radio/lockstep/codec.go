// The lockstep wire format: length-prefixed frames over a reliable byte
// stream, identical for in-process pipes and TCP sockets.
//
//	frame  = len(4B big-endian: bytes after the length) type(1B) payload
//	act     -> round(8B)                                  node replies intent
//	intent  <- flags(1B) [msg(22B) if flagTransmit]
//	observe -> round(8B) flags(1B) [msg(22B) if flagMsg]  node replies ack
//	ack     <- (empty)
//	msg     = kind(2B) src(4B) a(8B) b(8B), all big-endian two's complement
//
// Every exchange is a strict request/reply pair initiated by the
// coordinator, so each side needs exactly one small reusable buffer per
// link and the ack read doubles as the happens-before edge that makes a
// node's Recv side effects (Progress counters, protocol state) visible
// to the coordinator before the round advances.
package lockstep

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"radionet/internal/radio"
)

// Frame types.
const (
	frameAct byte = iota + 1
	frameIntent
	frameObserve
	frameAck
)

// Flag bits (intent frames use flagTransmit; observe frames use
// flagMsg/flagCollided).
const (
	flagTransmit byte = 1 << 0
	flagMsg      byte = 1 << 0
	flagCollided byte = 1 << 1
)

const (
	msgLen     = 2 + 4 + 8 + 8 // Kind, Src, A, B
	headerLen  = 4 + 1         // length prefix + frame type
	maxPayload = 8 + 1 + msgLen
)

// putMsg encodes m's fixed-width fields into b[:msgLen]. Message.Payload
// cannot cross the wire: no registered protocol uses it (they all fit
// Kind/A/B), and silently dropping it would be a correctness bug, so a
// non-nil Payload is a loud error.
func putMsg(b []byte, m *radio.Message) {
	if m.Payload != nil {
		panic("lockstep: Message.Payload cannot cross the wire; extend the codec before using it")
	}
	binary.BigEndian.PutUint16(b[0:2], uint16(m.Kind))
	binary.BigEndian.PutUint32(b[2:6], uint32(m.Src))
	binary.BigEndian.PutUint64(b[6:14], uint64(m.A))
	binary.BigEndian.PutUint64(b[14:22], uint64(m.B))
}

// getMsg decodes a message encoded by putMsg.
func getMsg(b []byte) radio.Message {
	return radio.Message{
		Kind: radio.Kind(int16(binary.BigEndian.Uint16(b[0:2]))),
		Src:  int32(binary.BigEndian.Uint32(b[2:6])),
		A:    int64(binary.BigEndian.Uint64(b[6:14])),
		B:    int64(binary.BigEndian.Uint64(b[14:22])),
	}
}

// link is one end of a node connection plus its framing scratch. A link
// is used by one goroutine at a time (the request/reply discipline plus
// the coordinator's per-round joins enforce that), so the buffers are
// reused without locking.
type link struct {
	c    net.Conn
	rbuf [headerLen + maxPayload]byte
	wbuf [headerLen + maxPayload]byte
}

// stage returns the staging area for an outgoing frame's payload.
func (l *link) stage() []byte { return l.wbuf[headerLen:] }

// send frames the staged n-byte payload as one frame in a single Write
// (net.Pipe is synchronous: one Write is one rendezvous).
func (l *link) send(typ byte, n int) error {
	binary.BigEndian.PutUint32(l.wbuf[0:4], uint32(1+n))
	l.wbuf[4] = typ
	_, err := l.c.Write(l.wbuf[:headerLen+n])
	return err
}

// recv reads one frame; the payload aliases the link's read buffer and
// is valid until the next recv.
func (l *link) recv() (byte, []byte, error) {
	if _, err := io.ReadFull(l.c, l.rbuf[:headerLen]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(l.rbuf[0:4])
	if n < 1 || n > 1+maxPayload {
		return 0, nil, fmt.Errorf("lockstep: bad frame length %d", n)
	}
	p := l.rbuf[headerLen : headerLen+int(n)-1]
	if _, err := io.ReadFull(l.c, p); err != nil {
		return 0, nil, err
	}
	return l.rbuf[4], p, nil
}
