// Package lockstep is the message-passing backend of the transport seam:
// every node runs as its own goroutine behind a byte-stream connection
// (in-process net.Pipe for "lockstep", loopback TCP for "lockstep-tcp",
// the same codec over both), and a lockstep coordinator drives the
// synchronous rounds — polling transmit intents, handing them to the
// engine's interference physics (marking, collision algebra, FaultPlan,
// metrics, hooks, all computed from the shared topology on the engine
// side), and delivering the classified observations back over the wire.
//
// The determinism argument, in full: (1) intents are collected exactly
// from the engine's live list and concatenated in ascending node id, so
// the transmit set equals the in-process per-node loop's; (2) every
// protocol's randomness is drawn node-locally inside Act/Recv, in the
// same per-node order as in-process, because each node's exchanges are a
// strict request/reply sequence on its own connection; (3) observations
// replay in the engine's sequential order (deliveries, collision
// reports, silences, ascending id) with a per-observe ack, so no
// scheduling of the node goroutines can reorder protocol side effects.
// The coordinator therefore never injects ordering into outputs, and a
// lockstep run is observationally identical — transmitters, deliveries,
// collisions, metrics, hook traces, completion round — to the simulator
// backend on the same (graph, seed). The equivalence suite in
// lockstep_test.go pins exactly that, the same way FaultPlan-vs-Wrap
// (PR 4) and sharded-vs-unsharded (PR 8) are pinned.
package lockstep

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"radionet/internal/radio"
)

// actFanout caps the goroutines fanning out concurrent act polls when
// the protocol's bulk actor proves Act node-local (see Attach).
const actFanout = 8

// Transport runs an engine's nodes as goroutines behind links. The zero
// value is not usable; build instances through radio.NewTransport
// ("lockstep" or "lockstep-tcp") or New/NewTCP.
type Transport struct {
	name string
	tcp  bool

	links []*link // coordinator-side ends, indexed by node id
	wg    sync.WaitGroup
	once  sync.Once
}

// New returns the in-process pipe variant ("lockstep").
func New() *Transport { return &Transport{name: "lockstep"} }

// NewTCP returns the loopback-socket variant ("lockstep-tcp"): the same
// coordinator and codec, with every node behind its own TCP connection —
// the shape a multi-process deployment would use.
func NewTCP() *Transport { return &Transport{name: "lockstep-tcp", tcp: true} }

// Name implements radio.Transport.
func (tr *Transport) Name() string { return tr.name }

// Attach implements radio.Transport: it spawns one goroutine per engine
// node, connects each behind a link, and installs the coordinator as the
// engine's round-executor driver. Act polls fan out concurrently only
// when the protocol installed a radio.BulkRangeActor — the contract that
// Act touches no cross-node state — and the fan-out collects results by
// live-list position, so concurrency never reaches the transmit order.
// Sequential polling is always safe: the request/reply chain through
// each link serializes every node exchange behind the previous one.
func (tr *Transport) Attach(e *radio.Engine) {
	if tr.links != nil {
		panic("lockstep: Attach called twice")
	}
	_, parallel := e.Bulk.(radio.BulkRangeActor)
	n := len(e.Nodes)
	tr.links = make([]*link, n)
	nodeSide := make([]net.Conn, n)
	if tr.tcp {
		tr.dialTCP(nodeSide)
	} else {
		for i := range tr.links {
			coord, node := net.Pipe()
			tr.links[i] = &link{c: coord}
			nodeSide[i] = node
		}
	}
	tr.wg.Add(n)
	for i, nd := range e.Nodes {
		go nodeLoop(nd, &link{c: nodeSide[i]}, &tr.wg)
	}
	c := &coordinator{links: tr.links, fan: 1}
	if parallel {
		c.fan = actFanout
	}
	e.SetDriver(c)
}

// dialTCP connects every node over loopback TCP: one dial + accept per
// node, with a 4-byte node-id handshake on the accepted side so pairing
// never depends on accept-queue order. Socket setup failure is an
// environment catastrophe (loopback listen/dial), not a run outcome, so
// it panics like every other Attach misuse.
func (tr *Transport) dialTCP(nodeSide []net.Conn) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("lockstep: listen: %v", err))
	}
	defer ln.Close()
	for i := range tr.links {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			tr.closeLinks(nodeSide)
			panic(fmt.Sprintf("lockstep: dial node %d: %v", i, err))
		}
		var id [4]byte
		binary.BigEndian.PutUint32(id[:], uint32(i))
		if _, err := c.Write(id[:]); err != nil {
			c.Close()
			tr.closeLinks(nodeSide)
			panic(fmt.Sprintf("lockstep: handshake node %d: %v", i, err))
		}
		tr.links[i] = &link{c: c}
		s, err := ln.Accept()
		if err != nil {
			tr.closeLinks(nodeSide)
			panic(fmt.Sprintf("lockstep: accept node %d: %v", i, err))
		}
		var got [4]byte
		if _, err := io.ReadFull(s, got[:]); err != nil {
			s.Close()
			tr.closeLinks(nodeSide)
			panic(fmt.Sprintf("lockstep: handshake node %d: %v", i, err))
		}
		nodeSide[binary.BigEndian.Uint32(got[:])] = s
	}
}

// closeLinks releases everything dialed so far after a setup failure.
func (tr *Transport) closeLinks(nodeSide []net.Conn) {
	for _, l := range tr.links {
		if l != nil {
			l.c.Close()
		}
	}
	for _, c := range nodeSide {
		if c != nil {
			c.Close()
		}
	}
}

// Close implements radio.Transport: it closes the coordinator-side
// connections — unblocking every node loop's pending read — and waits
// for all node goroutines to exit. Idempotent, and independent of how
// the run ended: a budget-exhausted run closes exactly like a completed
// one, leaking neither goroutines nor sockets.
func (tr *Transport) Close() error {
	tr.once.Do(func() {
		for _, l := range tr.links {
			if l != nil {
				l.c.Close()
			}
		}
		tr.wg.Wait()
	})
	return nil
}

// nodeLoop serves one node state machine: answer act polls with intents
// and observe deliveries with acks until the link closes. The node's
// state is touched only here, on this goroutine — the coordinator sees
// it exclusively through frames.
func nodeLoop(nd radio.Node, l *link, wg *sync.WaitGroup) {
	defer wg.Done()
	defer l.c.Close()
	for {
		typ, p, err := l.recv()
		if err != nil {
			return // link closed: run over (completed or budget-exhausted)
		}
		switch typ {
		case frameAct:
			t := int64(binary.BigEndian.Uint64(p[0:8]))
			a := nd.Act(t)
			out := l.stage()
			if a.Transmit {
				out[0] = flagTransmit
				putMsg(out[1:], &a.Msg)
				err = l.send(frameIntent, 1+msgLen)
			} else {
				out[0] = 0
				err = l.send(frameIntent, 1)
			}
		case frameObserve:
			t := int64(binary.BigEndian.Uint64(p[0:8]))
			flags := p[8]
			var mp *radio.Message
			if flags&flagMsg != 0 {
				m := getMsg(p[9:])
				mp = &m
			}
			nd.Recv(t, mp, flags&flagCollided != 0)
			err = l.send(frameAck, 0)
		default:
			panic(fmt.Sprintf("lockstep: node received unexpected frame type %d", typ))
		}
		if err != nil {
			return
		}
	}
}

// coordinator implements radio.Driver over the links.
type coordinator struct {
	links []*link
	fan   int // act-poll goroutines; 1 = strictly sequential

	// intents is the parallel fan-out's result array, indexed by
	// live-list position so placement, not scheduling, decides order.
	intents []intent
}

type intent struct {
	transmit bool
	msg      radio.Message
}

// actOne runs one act request/reply exchange on l.
func actOne(l *link, t int64) intent {
	binary.BigEndian.PutUint64(l.stage()[0:8], uint64(t))
	if err := l.send(frameAct, 8); err != nil {
		panic(fmt.Sprintf("lockstep: act send: %v", err))
	}
	typ, p, err := l.recv()
	if err != nil || typ != frameIntent {
		panic(fmt.Sprintf("lockstep: act reply: type %d, %v", typ, err))
	}
	if p[0]&flagTransmit == 0 {
		return intent{}
	}
	return intent{transmit: true, msg: getMsg(p[1:])}
}

// ActAll implements radio.Driver: poll every live node and append the
// transmitters in ascending id order.
func (c *coordinator) ActAll(t int64, live []int32, tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	if c.fan > 1 && len(live) > 1 {
		return c.actParallel(t, live, tx, msgs)
	}
	for _, v := range live {
		if in := actOne(c.links[v], t); in.transmit {
			tx = append(tx, v)
			msgs = append(msgs, in.msg)
		}
	}
	return tx, msgs
}

// actParallel fans the act polls across worker goroutines walking an
// atomic cursor. Each result lands at its live-list index, and the
// append below runs after the join in ascending order, so the transmit
// list is byte-identical to the sequential poll at any scheduling.
func (c *coordinator) actParallel(t int64, live []int32, tx []int32, msgs []radio.Message) ([]int32, []radio.Message) {
	if cap(c.intents) < len(live) {
		c.intents = make([]intent, len(live))
	}
	res := c.intents[:len(live)]
	workers := c.fan
	if workers > len(live) {
		workers = len(live)
	}
	var cur atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cur.Add(1)) - 1
				if i >= len(live) {
					return
				}
				res[i] = actOne(c.links[live[i]], t)
			}
		}()
	}
	wg.Wait()
	for i, v := range live {
		if res[i].transmit {
			tx = append(tx, v)
			msgs = append(msgs, res[i].msg)
		}
	}
	return tx, msgs
}

// Observe implements radio.Driver: forward one listener outcome and wait
// for the ack, which orders the node's Recv side effects (Progress
// counters, protocol state) before the engine's next action.
func (c *coordinator) Observe(t int64, v int32, msg *radio.Message, collided bool) {
	l := c.links[v]
	p := l.stage()
	binary.BigEndian.PutUint64(p[0:8], uint64(t))
	var flags byte
	n := 9
	if msg != nil {
		flags |= flagMsg
		putMsg(p[9:], msg)
		n += msgLen
	}
	if collided {
		flags |= flagCollided
	}
	p[8] = flags
	if err := l.send(frameObserve, n); err != nil {
		panic(fmt.Sprintf("lockstep: observe send: %v", err))
	}
	typ, _, err := l.recv()
	if err != nil || typ != frameAck {
		panic(fmt.Sprintf("lockstep: observe ack: type %d, %v", typ, err))
	}
}

var (
	_ radio.Transport = (*Transport)(nil)
	_ radio.Driver    = (*coordinator)(nil)
)
