package lockstep

import "radionet/internal/radio"

func init() {
	radio.RegisterTransport("lockstep",
		"per-node goroutines exchanging length-prefixed round frames over in-process pipes with a lockstep coordinator",
		func() radio.Transport { return New() })
	radio.RegisterTransport("lockstep-tcp",
		"the lockstep coordinator and codec over loopback TCP sockets, one connection per node",
		func() radio.Transport { return NewTCP() })
}
