package radio

import (
	"testing"

	"radionet/internal/graph"
)

// collector records everything a node hears.
type collector struct {
	heard    []int64
	collided int
	silent   int
}

func (c *collector) Act(int64) Action { return Listen }
func (c *collector) Recv(_ int64, msg *Message, collided bool) {
	switch {
	case msg != nil:
		c.heard = append(c.heard, msg.A)
	case collided:
		c.collided++
	default:
		c.silent++
	}
}

// beacon transmits value v every round.
type beacon struct{ v int64 }

func (b *beacon) Act(int64) Action           { return Transmit(Message{A: b.v}) }
func (b *beacon) Recv(int64, *Message, bool) {}

func TestSingleTransmitterDelivers(t *testing.T) {
	g := graph.Star(4) // center 0
	c1, c2, c3 := &collector{}, &collector{}, &collector{}
	e := NewEngine(g, []Node{&beacon{v: 42}, c1, c2, c3})
	e.Step()
	for i, c := range []*collector{c1, c2, c3} {
		if len(c.heard) != 1 || c.heard[0] != 42 {
			t.Fatalf("leaf %d heard %v, want [42]", i+1, c.heard)
		}
	}
	if e.Metrics.Deliveries != 3 || e.Metrics.Transmissions != 1 {
		t.Fatalf("metrics %+v", e.Metrics)
	}
}

func TestCollisionIsSilenceWithoutCD(t *testing.T) {
	g := graph.Star(3) // two leaves transmit; the center hears nothing
	c := &collector{}
	e := NewEngine(g, []Node{c, &beacon{v: 1}, &beacon{v: 2}})
	e.Step()
	if len(c.heard) != 0 {
		t.Fatalf("center heard %v despite collision", c.heard)
	}
	if c.collided != 0 {
		t.Fatal("collision flagged without collision detection")
	}
	if c.silent != 1 {
		t.Fatalf("silent = %d, want 1", c.silent)
	}
	if e.Metrics.Collisions != 1 {
		t.Fatalf("collisions metric = %d, want 1", e.Metrics.Collisions)
	}
}

func TestCollisionDetectionFlag(t *testing.T) {
	g := graph.Star(3)
	c := &collector{}
	e := NewEngine(g, []Node{c, &beacon{v: 1}, &beacon{v: 2}})
	e.CollisionDetection = true
	e.Step()
	if c.collided != 1 {
		t.Fatalf("collided = %d, want 1 with collision detection", c.collided)
	}
}

func TestTransmitterCannotHear(t *testing.T) {
	g := graph.Path(2)
	c := &collector{}
	b := &beacon{v: 9}
	// Both transmit? No: node 0 is a beacon, node 1 collects but also
	// transmits via a FuncNode wrapper. A transmitting node must not Recv.
	recvCalled := false
	tx := &FuncNode{
		ActFn:  func(int64) Action { return Transmit(Message{A: 7}) },
		RecvFn: func(int64, *Message, bool) { recvCalled = true },
	}
	e := NewEngine(g, []Node{b, tx})
	e.Step()
	_ = c
	if recvCalled {
		t.Fatal("transmitting node received a message")
	}
}

func TestExactlyOneNeighborRule(t *testing.T) {
	// Path 0-1-2-3: 0 and 2 transmit. Node 1 has two transmitting
	// neighbors (collision); node 3 has exactly one (2) and receives.
	g := graph.Path(4)
	c1, c3 := &collector{}, &collector{}
	e := NewEngine(g, []Node{&beacon{v: 10}, c1, &beacon{v: 20}, c3})
	e.Step()
	if len(c1.heard) != 0 {
		t.Fatalf("node 1 heard %v, want collision silence", c1.heard)
	}
	if len(c3.heard) != 1 || c3.heard[0] != 20 {
		t.Fatalf("node 3 heard %v, want [20]", c3.heard)
	}
}

func TestSrcStamping(t *testing.T) {
	g := graph.Path(2)
	var src int32 = -1
	rx := &FuncNode{RecvFn: func(_ int64, msg *Message, _ bool) {
		if msg != nil {
			src = msg.Src
		}
	}}
	e := NewEngine(g, []Node{&beacon{v: 5}, rx})
	e.Step()
	if src != 0 {
		t.Fatalf("src = %d, want 0", src)
	}
}

func TestRunStopsOnPredicate(t *testing.T) {
	g := graph.Path(2)
	e := NewEngine(g, []Node{Silent{}, Silent{}})
	count := 0
	rounds, done := e.Run(100, func() bool { count++; return count > 5 })
	if !done || rounds != 5 {
		t.Fatalf("rounds = %d done = %v, want 5 true", rounds, done)
	}
	// Pre-satisfied predicate runs zero rounds.
	rounds, done = e.Run(100, func() bool { return true })
	if rounds != 0 || !done {
		t.Fatalf("pre-satisfied: rounds = %d done = %v", rounds, done)
	}
}

func TestRunMaxRounds(t *testing.T) {
	g := graph.Path(2)
	e := NewEngine(g, []Node{Silent{}, Silent{}})
	rounds, done := e.Run(7, func() bool { return false })
	if rounds != 7 || done {
		t.Fatalf("rounds = %d done = %v, want 7 false", rounds, done)
	}
	if e.Metrics.Rounds != 7 {
		t.Fatalf("metrics rounds = %d", e.Metrics.Rounds)
	}
}

func TestRunNilStopNeverDone(t *testing.T) {
	// A nil predicate can never be satisfied: Run must execute exactly
	// maxRounds and report done = false (the seed returned true here).
	g := graph.Path(2)
	e := NewEngine(g, []Node{Silent{}, Silent{}})
	rounds, done := e.Run(9, nil)
	if rounds != 9 || done {
		t.Fatalf("nil stop: rounds = %d done = %v, want 9 false", rounds, done)
	}
	// Zero-budget corner: no rounds, still not done.
	rounds, done = e.Run(0, nil)
	if rounds != 0 || done {
		t.Fatalf("nil stop, zero budget: rounds = %d done = %v, want 0 false", rounds, done)
	}
}

func TestProgressCounting(t *testing.T) {
	p := NewProgress(3)
	if p.Done() {
		t.Fatal("fresh Progress with target 3 reports done")
	}
	p.Add(2)
	if p.Done() || p.Count() != 2 || p.Target() != 3 {
		t.Fatalf("count=%d target=%d done=%v", p.Count(), p.Target(), p.Done())
	}
	p.Add(1)
	if !p.Done() {
		t.Fatal("Progress not done at target")
	}
	// Unreachable-target encoding (e.g. "no sources"): never done.
	never := NewProgress(5)
	never.Add(4)
	if never.Done() {
		t.Fatal("4/5 reports done")
	}
	// Zero value: vacuously done, like a full scan over zero nodes.
	var zero Progress
	if !zero.Done() {
		t.Fatal("zero-value Progress should be done")
	}
}

func TestRunUntilMatchesRun(t *testing.T) {
	// RunUntil over a Progress must stop at exactly the same round as Run
	// over an equivalent predicate, including the evaluate-before-first
	// and budget-exhausted cases.
	mk := func() (*Engine, *Progress) {
		g := graph.Path(2)
		p := NewProgress(4)
		tick := &FuncNode{ActFn: func(int64) Action { p.Add(1); return Listen }}
		return NewEngine(g, []Node{tick, Silent{}}), p
	}
	e, p := mk()
	rounds, done := e.RunUntil(100, p)
	if rounds != 4 || !done {
		t.Fatalf("RunUntil: rounds = %d done = %v, want 4 true", rounds, done)
	}
	// Already satisfied: zero rounds.
	rounds, done = e.RunUntil(100, p)
	if rounds != 0 || !done {
		t.Fatalf("satisfied RunUntil: rounds = %d done = %v, want 0 true", rounds, done)
	}
	// Budget exhausted first.
	e2, p2 := mk()
	rounds, done = e2.RunUntil(2, p2)
	if rounds != 2 || done {
		t.Fatalf("budget RunUntil: rounds = %d done = %v, want 2 false", rounds, done)
	}
}

// sleepyNode exercises the Sleeper fast path: dormant until first
// reception, then transmits its value every round.
type sleepyNode struct {
	awake bool
	acts  int
	v     int64
}

func (s *sleepyNode) Dormant() bool        { return !s.awake }
func (s *sleepyNode) IgnoresSilence() bool { return true }
func (s *sleepyNode) Act(int64) Action     { s.acts++; return Transmit(Message{A: s.v}) }
func (s *sleepyNode) Recv(_ int64, msg *Message, _ bool) {
	if msg != nil {
		s.awake = true
	}
}

func TestSleeperSkippedUntilReception(t *testing.T) {
	// Path 0-1-2: node 0 beacons, node 1 is a sleeper, node 2 sleeps
	// forever (never reached by a sole transmission once 1 wakes up —
	// 0 and 1 collide at 2... actually 2 hears 1 alone when 0's message
	// collides only at 1; verify wake-up and Act skipping instead).
	g := graph.Path(3)
	s1, s2 := &sleepyNode{v: 7}, &sleepyNode{v: 8}
	e := NewEngine(g, []Node{&beacon{v: 5}, s1, s2})
	e.Step() // round 0: 1 hears the beacon, wakes; 2 hears nothing
	if s1.acts != 0 {
		t.Fatalf("sleeper acted %d times while dormant", s1.acts)
	}
	if !s1.awake || s2.awake {
		t.Fatalf("awake flags: s1=%v s2=%v, want true false", s1.awake, s2.awake)
	}
	e.Step() // round 1: 1 transmits (awake), 2 hears it and wakes
	if s1.acts != 1 {
		t.Fatalf("woken sleeper acts = %d, want 1", s1.acts)
	}
	if !s2.awake {
		t.Fatal("s2 did not wake from the woken sleeper's transmission")
	}
	if e.Metrics.Deliveries != 2 {
		t.Fatalf("deliveries = %d, want 2", e.Metrics.Deliveries)
	}
}

// bulkBeacons is a BulkActor equivalent of installing beacon nodes at the
// given ids.
type bulkBeacons struct{ ids []int32 }

func (b *bulkBeacons) ActBulk(_ int64, tx []int32, msgs []Message) ([]int32, []Message) {
	for _, id := range b.ids {
		tx = append(tx, id)
		msgs = append(msgs, Message{A: int64(100 + id)})
	}
	return tx, msgs
}

func TestBulkActorMatchesPerNode(t *testing.T) {
	// The same transmission pattern driven per-node and via ActBulk must
	// produce identical deliveries, collisions and received values.
	g := graph.Grid(4, 4)
	run := func(bulk bool) ([]int64, Metrics) {
		heard := make([]int64, g.N())
		nodes := make([]Node, g.N())
		for i := range nodes {
			i := i
			nodes[i] = &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
				if m != nil {
					heard[i] += m.A
				}
			}}
		}
		tx := []int32{0, 5, 10}
		if !bulk {
			for _, id := range tx {
				id := id
				nodes[id] = &FuncNode{ActFn: func(int64) Action {
					return Transmit(Message{A: int64(100 + id)})
				}}
			}
		}
		e := NewEngine(g, nodes)
		if bulk {
			e.Bulk = &bulkBeacons{ids: tx}
		}
		for i := 0; i < 5; i++ {
			e.Step()
		}
		return heard, e.Metrics
	}
	h1, m1 := run(false)
	h2, m2 := run(true)
	if m1 != m2 {
		t.Fatalf("metrics differ: per-node %+v bulk %+v", m1, m2)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("node %d heard %d per-node vs %d bulk", i, h1[i], h2[i])
		}
	}
}

func TestTDMRoutesLanes(t *testing.T) {
	g := graph.Path(2)
	var laneARounds, laneBRounds []int64
	laneA := &FuncNode{ActFn: func(r int64) Action { laneARounds = append(laneARounds, r); return Listen }}
	laneB := &FuncNode{ActFn: func(r int64) Action { laneBRounds = append(laneBRounds, r); return Listen }}
	e := NewEngine(g, []Node{NewTDM(laneA, laneB), Silent{}})
	for i := 0; i < 6; i++ {
		e.Step()
	}
	for i, r := range laneARounds {
		if r != int64(i) {
			t.Fatalf("lane A rounds %v", laneARounds)
		}
	}
	if len(laneARounds) != 3 || len(laneBRounds) != 3 {
		t.Fatalf("lane calls %d/%d, want 3/3", len(laneARounds), len(laneBRounds))
	}
}

func TestTDMIsolatesTransmissions(t *testing.T) {
	// Lane 0 of node 0 transmits; the peer's lane 0 should hear it on even
	// global rounds and lane 1 should hear silence on odd ones.
	g := graph.Path(2)
	var lane0Heard, lane1Heard int
	tx := NewTDM(
		&FuncNode{ActFn: func(int64) Action { return Transmit(Message{A: 1}) }},
		Silent{},
	)
	rx := NewTDM(
		&FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
			if m != nil {
				lane0Heard++
			}
		}},
		&FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
			if m != nil {
				lane1Heard++
			}
		}},
	)
	e := NewEngine(g, []Node{tx, rx})
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if lane0Heard != 5 || lane1Heard != 0 {
		t.Fatalf("lane0 = %d lane1 = %d, want 5 0", lane0Heard, lane1Heard)
	}
}

func TestEnginePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(graph.Path(3), []Node{Silent{}})
}

func BenchmarkEngineRound(b *testing.B) {
	g := graph.Grid(64, 64)
	nodes := make([]Node, g.N())
	for i := range nodes {
		if i%7 == 0 {
			nodes[i] = &beacon{v: int64(i)}
		} else {
			nodes[i] = Silent{}
		}
	}
	e := NewEngine(g, nodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
