package radio

import (
	"testing"
	"testing/quick"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// scripted transmits according to a fixed per-round schedule and records
// everything it hears.
type scripted struct {
	plan  []bool
	val   int64
	heard []int64 // -1 silence, -2 collision-detected, else message value
}

func (s *scripted) Act(t int64) Action {
	if t < int64(len(s.plan)) && s.plan[t] {
		return Transmit(Message{A: s.val})
	}
	return Listen
}

func (s *scripted) Recv(_ int64, msg *Message, collided bool) {
	switch {
	case msg != nil:
		s.heard = append(s.heard, msg.A)
	case collided:
		s.heard = append(s.heard, -2)
	default:
		s.heard = append(s.heard, -1)
	}
}

// TestEngineMatchesBruteForce cross-checks the engine's word-parallel
// delivery kernel against a naive per-round reference on random graphs
// with random transmission schedules, in both model variants and at a
// random shard count (node counts reach several words so the shard split
// is real, and SetShards clamps it on tiny graphs).
func TestEngineMatchesBruteForce(t *testing.T) {
	master := rng.New(20240610)
	check := func(seed uint64, nRaw, rounds, shardRaw uint8, cd bool) bool {
		r := master.Fork(seed)
		n := int(nRaw)%180 + 2
		T := int(rounds%20) + 1
		k := int(shardRaw%4) + 1
		g := graph.Gnp(n, 0.3, r.Fork(1))
		nodes := make([]*scripted, n)
		rn := make([]Node, n)
		for v := 0; v < n; v++ {
			plan := make([]bool, T)
			for i := range plan {
				plan[i] = r.Bernoulli(0.4)
			}
			nodes[v] = &scripted{plan: plan, val: int64(v + 1)}
			rn[v] = nodes[v]
		}
		e := NewEngine(g, rn)
		e.CollisionDetection = cd
		if k > 1 {
			e.SetShards(k)
		}
		for i := 0; i < T; i++ {
			e.Step()
		}
		// Brute-force reference.
		for v := 0; v < n; v++ {
			got := nodes[v].heard
			gi := 0
			for round := 0; round < T; round++ {
				if nodes[v].plan[round] {
					continue // transmitters do not listen
				}
				txNeighbors := 0
				var txVal int64
				for _, w := range g.Neighbors(v) {
					if nodes[w].plan[round] {
						txNeighbors++
						txVal = nodes[w].val
					}
				}
				var want int64
				switch {
				case txNeighbors == 1:
					want = txVal
				case txNeighbors > 1 && cd:
					want = -2
				default:
					want = -1
				}
				if gi >= len(got) || got[gi] != want {
					t.Logf("node %d round %d: got %v want %d (cd=%v)", v, round, got, want, cd)
					return false
				}
				gi++
			}
			if gi != len(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsConsistency verifies the invariant deliveries + collisions
// <= listener-rounds and transmissions == sum of plans.
func TestMetricsConsistency(t *testing.T) {
	r := rng.New(7)
	g := graph.Gnp(30, 0.2, r)
	n := g.N()
	nodes := make([]Node, n)
	planned := int64(0)
	const T = 50
	for v := 0; v < n; v++ {
		plan := make([]bool, T)
		for i := range plan {
			plan[i] = r.Bernoulli(0.3)
			if plan[i] {
				planned++
			}
		}
		nodes[v] = &scripted{plan: plan, val: 1}
	}
	e := NewEngine(g, nodes)
	for i := 0; i < T; i++ {
		e.Step()
	}
	m := e.Metrics
	if m.Transmissions != planned {
		t.Fatalf("transmissions %d, want %d", m.Transmissions, planned)
	}
	listenerRounds := int64(n)*T - planned
	if m.Deliveries+m.Collisions > listenerRounds {
		t.Fatalf("deliveries %d + collisions %d exceed listener rounds %d",
			m.Deliveries, m.Collisions, listenerRounds)
	}
}
