// Package backends populates the transport registry with the full
// backend catalogue, the transport-seam analogue of
// internal/protocol/all: importing it (blank) is what decides which
// round executors a binary can run. Backend packages register themselves
// in their own register.go files and need no changes here beyond the one
// blank import per package.
package backends

import (
	// The in-process simulator ("sim") and the message-passing lockstep
	// coordinator ("lockstep" over pipes, "lockstep-tcp" over loopback
	// sockets).
	_ "radionet/internal/radio/lockstep"
	_ "radionet/internal/radio/simbackend"
)
