package radio

import (
	"strings"
	"testing"

	"radionet/internal/graph"
)

// loopDriver is an in-process Driver that drives the engine's own nodes
// directly — the minimal round executor. Running it must be
// observationally identical to no driver at all, which pins the driver
// branches of Step (live-list construction, Observe replay) against the
// per-node loops they mirror.
type loopDriver struct{ nodes []Node }

func (d *loopDriver) ActAll(t int64, live []int32, tx []int32, msgs []Message) ([]int32, []Message) {
	for _, v := range live {
		if a := d.nodes[v].Act(t); a.Transmit {
			tx = append(tx, v)
			msgs = append(msgs, a.Msg)
		}
	}
	return tx, msgs
}

func (d *loopDriver) Observe(t int64, v int32, msg *Message, collided bool) {
	d.nodes[v].Recv(t, msg, collided)
}

// TestDriverMatchesPerNodeLoop: beacon + listeners through a loopDriver
// reproduce the driverless run's metrics and hook trace.
func TestDriverMatchesPerNodeLoop(t *testing.T) {
	run := func(install bool) (Metrics, []int) {
		g := graph.Star(5)
		heard := 0
		nodes := []Node{
			&FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
				if m != nil {
					heard++
				}
			}},
			&beacon{v: 3}, Silent{}, Silent{}, Silent{},
		}
		e := NewEngine(g, nodes)
		var perRound []int
		e.Hook = func(_ int64, tx []int32, deliveries, _ int) {
			perRound = append(perRound, len(tx)*100+deliveries)
		}
		if install {
			e.SetDriver(&loopDriver{nodes: nodes})
		}
		for i := 0; i < 8; i++ {
			e.Step()
		}
		if heard != 8 {
			t.Fatalf("install=%v: center heard %d, want 8", install, heard)
		}
		return e.Metrics, perRound
	}
	mPlain, trPlain := run(false)
	mDriven, trDriven := run(true)
	if mPlain != mDriven {
		t.Errorf("metrics diverge: plain %+v, driven %+v", mPlain, mDriven)
	}
	for i := range trPlain {
		if trPlain[i] != trDriven[i] {
			t.Errorf("round %d hook trace diverges: %d vs %d", i, trPlain[i], trDriven[i])
		}
	}
}

// TestSetDriverMisusePanics pins the SetDriver contract: once only,
// before the first Step, never over Mortal wrapper nodes.
func TestSetDriverMisusePanics(t *testing.T) {
	mustPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %v, want mention of %q", name, r, want)
			}
		}()
		fn()
	}
	g := graph.Path(2)
	d := &loopDriver{}
	mustPanic("after Step", "before the first Step", func() {
		e := NewEngine(g, []Node{Silent{}, Silent{}})
		e.Step()
		e.SetDriver(d)
	})
	mustPanic("twice", "before the first Step", func() {
		e := NewEngine(g, []Node{Silent{}, Silent{}})
		e.SetDriver(d)
		e.SetDriver(d)
	})
	mustPanic("mortal nodes", "Mortal", func() {
		e := NewEngine(g, []Node{&CrashNode{Inner: Silent{}, CrashAt: 1}, Silent{}})
		e.SetDriver(d)
	})
}

// TestSetDriverClearsBulkPaths: installing a driver retires the
// Bulk/BulkRecv seams (their calls would bypass the driver's nodes).
func TestSetDriverClearsBulkPaths(t *testing.T) {
	g := graph.Path(2)
	nodes := []Node{Silent{}, Silent{}}
	e := NewEngine(g, nodes)
	e.Bulk = &bulkBeacons{ids: []int32{0}}
	e.SetDriver(&loopDriver{nodes: nodes})
	if e.Bulk != nil || e.BulkRecv != nil {
		t.Fatal("SetDriver left a bulk fast path installed")
	}
	if e.Driver() == nil {
		t.Fatal("Driver() lost the installed driver")
	}
}

// TestTransportRegistry: the built-in backends resolve by name, listings
// are sorted, and unknown names fail loudly with the known list.
func TestTransportRegistry(t *testing.T) {
	if KnownTransport("no-such-backend") {
		t.Fatal("KnownTransport accepted an unregistered name")
	}
	if _, err := NewTransport("no-such-backend"); err == nil || !strings.Contains(err.Error(), "unknown transport") {
		t.Fatalf("NewTransport(no-such-backend) = %v, want unknown-transport error", err)
	}
	ts := Transports()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Name >= ts[i].Name {
			t.Fatalf("Transports() unsorted at %d: %q >= %q", i, ts[i-1].Name, ts[i].Name)
		}
	}
}
