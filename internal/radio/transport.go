// The transport seam: the synchronous-round contract — advertise transmit
// intents, resolve interference, deliver singleton/collision/silence
// observations, advance the round barrier — split out of Engine.Step so
// the same Engine (and every protocol above it) can run over pluggable
// round executors. The in-process simulator (internal/radio/simbackend)
// is the identity backend: it attaches nothing and the engine runs
// exactly as before. A message-passing backend
// (internal/radio/lockstep) installs a Driver, after which the engine
// stops calling protocol code directly: transmit intents come back from
// Driver.ActAll and every listener outcome leaves through
// Driver.Observe, while all interference physics — marking, collision
// algebra, the FaultPlan overlay, sharding, metrics, hooks — stay on the
// engine side. That split is the determinism argument: protocol
// randomness is consumed node-locally in the same order as the in-process
// per-node loops, and everything order-sensitive runs on the engine's
// single goroutine, so the two realizations are observationally identical
// round-for-round.

package radio

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Driver is the engine side of a pluggable round executor. When one is
// installed (SetDriver), Engine.Step routes the two protocol-facing
// halves of a round through it instead of calling Node methods directly:
//
//   - ActAll replaces the per-node Act loop: the engine hands over the
//     live (non-crashed) node ids for the round and the driver returns
//     the transmit intents, exactly as if Act had been called on every
//     live node in ascending id order — same transmitters, same
//     messages, same per-node randomness consumed. Dormant Sleeper nodes
//     are polled too (they promise to Listen and consume no randomness),
//     so the driver needs no dormancy bookkeeping.
//   - Observe replaces every listener Recv call, in the engine's replay
//     order (deliveries, then collision reports, then silences, each in
//     ascending node id). msg follows the Recv aliasing contract: valid
//     only for the duration of the call, read-only.
//
// Interference resolution, fault overlays, metrics and hooks never cross
// the seam — they are engine physics, computed from the shared topology
// by whatever process hosts the engine (the lockstep coordinator's role).
type Driver interface {
	// ActAll appends the ids (ascending) and messages of this round's
	// transmitters among the live nodes to tx and msgs and returns the
	// extended slices. live is engine scratch, valid only for the
	// duration of the call.
	ActAll(round int64, live []int32, tx []int32, msgs []Message) ([]int32, []Message)
	// Observe reports one listener outcome to node v — the exact
	// arguments of the Recv call the in-process engine would have made.
	Observe(round int64, v int32, msg *Message, collided bool)
}

// SetDriver installs a round-executor driver (see Driver). It must be
// called before the first Step, at most once. Installing a driver clears
// the Bulk/BulkRecv fast paths (their contracts make them observationally
// identical to the per-node calls the driver now carries) and the
// dormancy skip-list (dormant nodes are polled through the driver; by the
// Sleeper contract the extra Act and silence calls are no-ops that
// consume no randomness), so a driven engine and an in-process engine
// produce identical transmitters, deliveries, collisions, metrics and
// hook traces. Engines holding Mortal wrapper nodes are rejected: the
// legacy polled-crash path reads node state from the engine goroutine,
// which a remote-node driver cannot allow — use the engine-side
// FaultPlan overlay instead.
func (e *Engine) SetDriver(d Driver) {
	if d == nil {
		return
	}
	if e.round != 0 || e.driver != nil {
		panic("radio: SetDriver must be called once, before the first Step")
	}
	if len(e.mortals) > 0 {
		panic("radio: SetDriver is incompatible with Mortal wrapper nodes; install an engine-side FaultPlan instead")
	}
	e.driver = d
	e.Bulk = nil
	e.BulkRecv = nil
	e.rangeBulk = nil
	for w := range e.dormw {
		e.dormw[w] = 0
	}
}

// Driver returns the installed round-executor driver (nil for the
// in-process simulator path).
func (e *Engine) Driver() Driver { return e.driver }

// Transport is a round-executor backend, the engine-level analogue of a
// protocol Descriptor: a named factory product that binds a constructed
// engine to an execution substrate. The simulator backend's Attach is a
// no-op (the engine already is the in-process executor); message-passing
// backends spawn their node loops over e.Nodes and install a Driver via
// e.SetDriver. Attach must be called after the protocol has finished
// configuring the engine (nodes, Bulk, faults, shards) and before the
// first Step; it panics on misuse, like SetShards/SetFaults. Close
// releases whatever the backend holds (goroutines, sockets); it must be
// idempotent and safe to call whether or not the run completed, so
// budget-exhausted runs shut down as cleanly as finished ones.
type Transport interface {
	// Name returns the backend's registered name.
	Name() string
	// Attach binds the backend to e (at most one engine per Transport).
	Attach(e *Engine)
	// Close shuts the backend down and waits for its resources.
	Close() error
}

// TransportInfo describes one registered backend for listings.
type TransportInfo struct {
	Name    string
	Summary string
}

// The transport registry mirrors the protocol registry: populated by
// backend-package init functions, read-only afterwards; the mutex exists
// for the registration phase and for tests.
var (
	transportMu  sync.RWMutex
	transportReg = map[string]transportEntry{}
)

type transportEntry struct {
	summary string
	factory func() Transport
}

// RegisterTransport adds a backend factory to the registry. It panics on
// invalid or duplicate registrations — registration happens at init
// time, and a broken registry is a programming error.
func RegisterTransport(name, summary string, factory func() Transport) {
	if name == "" || factory == nil {
		panic("radio: RegisterTransport needs a name and a factory")
	}
	transportMu.Lock()
	defer transportMu.Unlock()
	if _, dup := transportReg[name]; dup {
		panic(fmt.Sprintf("radio: duplicate transport registration %q", name))
	}
	transportReg[name] = transportEntry{summary: summary, factory: factory}
}

// NewTransport builds a fresh backend instance by registered name. A
// Transport is single-use: build one per engine and Close it when the
// run ends.
func NewTransport(name string) (Transport, error) {
	transportMu.RLock()
	ent, ok := transportReg[name]
	transportMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("radio: unknown transport %q (known: %s)", name, KnownTransports())
	}
	return ent.factory(), nil
}

// KnownTransport reports whether name is a registered backend.
func KnownTransport(name string) bool {
	transportMu.RLock()
	defer transportMu.RUnlock()
	_, ok := transportReg[name]
	return ok
}

// Transports returns the registered backends sorted by name.
func Transports() []TransportInfo {
	transportMu.RLock()
	defer transportMu.RUnlock()
	out := make([]TransportInfo, 0, len(transportReg))
	for name, ent := range transportReg {
		out = append(out, TransportInfo{Name: name, Summary: ent.summary})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// KnownTransports renders the registered backend names for error
// messages ("lockstep lockstep-tcp sim").
func KnownTransports() string {
	ts := Transports()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return strings.Join(names, " ")
}
