package radio

import "radionet/internal/rng"

// This file provides fault-injection wrappers used by the robustness
// tests: radio networks in the field lose nodes, suffer interference, and
// drop receptions, and the paper's algorithms should degrade gracefully
// (uninformed-but-connected survivors must still be reached). Each wrapper
// composes with any Node, including the TDM multiplexer.

// KindNoise tags transmissions that carry no protocol content (jamming).
// Protocols must ignore unknown kinds, so noise only causes collisions.
const KindNoise Kind = -1

// CrashNode runs Inner until round CrashAt, after which the node is dead:
// it never transmits and discards every reception.
type CrashNode struct {
	Inner   Node
	CrashAt int64
}

// Act implements Node.
func (c *CrashNode) Act(round int64) Action {
	if round >= c.CrashAt {
		return Listen
	}
	return c.Inner.Act(round)
}

// Recv implements Node.
func (c *CrashNode) Recv(round int64, msg *Message, collided bool) {
	if round >= c.CrashAt {
		return
	}
	c.Inner.Recv(round, msg, collided)
}

// Crashed reports whether the node is dead at the given round.
func (c *CrashNode) Crashed(round int64) bool { return round >= c.CrashAt }

// JamNode transmits noise with probability P each round and otherwise
// behaves as Inner (pass nil Inner for a pure jammer). Jamming models
// adversarial or environmental interference: neighbors of a jamming node
// experience collisions whenever anyone else speaks.
type JamNode struct {
	Inner Node
	P     float64
	Rnd   *rng.Rand
}

// Act implements Node.
func (j *JamNode) Act(round int64) Action {
	if j.Rnd.Bernoulli(j.P) {
		return Transmit(Message{Kind: KindNoise})
	}
	if j.Inner == nil {
		return Listen
	}
	return j.Inner.Act(round)
}

// Recv implements Node.
func (j *JamNode) Recv(round int64, msg *Message, collided bool) {
	if j.Inner != nil {
		j.Inner.Recv(round, msg, collided)
	}
}

// LossyNode drops each successful reception with probability P (receiver
// fade), passing silence to Inner instead.
type LossyNode struct {
	Inner Node
	P     float64
	Rnd   *rng.Rand
}

// Act implements Node.
func (l *LossyNode) Act(round int64) Action { return l.Inner.Act(round) }

// Recv implements Node.
func (l *LossyNode) Recv(round int64, msg *Message, collided bool) {
	if msg != nil && l.Rnd.Bernoulli(l.P) {
		l.Inner.Recv(round, nil, false)
		return
	}
	l.Inner.Recv(round, msg, collided)
}

var (
	_ Node = (*CrashNode)(nil)
	_ Node = (*JamNode)(nil)
	_ Node = (*LossyNode)(nil)
)
