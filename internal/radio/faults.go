package radio

import "radionet/internal/rng"

// This file provides fault-injection wrappers used by the robustness
// tests: radio networks in the field lose nodes, suffer interference, and
// drop receptions, and the paper's algorithms should degrade gracefully
// (uninformed-but-connected survivors must still be reached). Each wrapper
// composes with any Node, including the TDM multiplexer.
//
// Round basis: every wrapper interprets rounds in the basis its own
// Act/Recv calls arrive in. The supported composition is therefore fault
// wrapper OUTERMOST — CrashNode{Inner: NewTDM(...)} crashes at a global
// engine round, which is the semantics this package commits to (faults hit
// the radio, not one lane of a multiplexed protocol). Placing a wrapper
// inside a TDM lane would instead compare against the lane-local round
// (global/k), a footgun pinned by TestFaultWrapperRoundBasisIsGlobal.
//
// For whole-network fault scenarios prefer the engine-side FaultPlan
// overlay (faultplan.go): it composes with the BulkActor/BulkReceiver fast
// paths and keeps dead nodes off the engine's books entirely. The wrappers
// remain the per-node reference the overlay is verified against —
// FaultPlan.Wrap builds the equivalent wrapper chain.

// KindNoise tags transmissions that carry no protocol content (jamming).
// Protocols must ignore unknown kinds, so noise only causes collisions.
const KindNoise Kind = -1

// Mortal is an optional extension of Node for wrappers whose node can die
// permanently. The engine polls Crashed at the top of every round; once it
// reports true the node is dead for the rest of the run: its Act is no
// longer called, it drops out of both listener passes, and it stops
// counting toward Metrics.Deliveries/Collisions — a dead radio is not a
// listener, and before this seam existed a crashed node stayed a
// full-cost, delivery-counting listener forever. Crashed must be monotone
// in round (dead nodes do not resurrect); only the outermost node of a
// wrapper chain is consulted.
type Mortal interface {
	Node
	// Crashed reports whether the node is dead at the given round.
	Crashed(round int64) bool
}

// CrashNode runs Inner until round CrashAt, after which the node is dead:
// it never transmits and discards every reception. CrashAt is a round in
// the basis this node's Act/Recv receive — wrap the TDM, not a lane, so it
// is the global engine round (see the package comment above).
type CrashNode struct {
	Inner   Node
	CrashAt int64
}

// Act implements Node.
func (c *CrashNode) Act(round int64) Action {
	if round >= c.CrashAt {
		return Listen
	}
	return c.Inner.Act(round)
}

// Recv implements Node.
func (c *CrashNode) Recv(round int64, msg *Message, collided bool) {
	if round >= c.CrashAt {
		return
	}
	c.Inner.Recv(round, msg, collided)
}

// Crashed reports whether the node is dead at the given round. It also
// implements Mortal, letting the engine stop treating the dead node as a
// listener.
func (c *CrashNode) Crashed(round int64) bool { return round >= c.CrashAt }

// JamNode transmits noise with probability P each round and otherwise
// behaves as Inner (pass nil Inner for a pure jammer). Jamming models
// adversarial or environmental interference: neighbors of a jamming node
// experience collisions whenever anyone else speaks.
//
// The inner protocol machine steps every round even when the jam coin
// fires — the radio is hijacked for the round, but the state machine
// advances and consumes its randomness exactly as unjammed. This keeps the
// wrapper observationally identical to the engine-side FaultPlan jam
// overlay, whose bulk Act pass cannot suppress a single node's draws.
type JamNode struct {
	Inner Node
	P     float64
	Rnd   *rng.Rand
}

// Act implements Node.
func (j *JamNode) Act(round int64) Action {
	a := Listen
	if j.Inner != nil {
		a = j.Inner.Act(round)
	}
	if j.Rnd.Bernoulli(j.P) {
		return Transmit(Message{Kind: KindNoise})
	}
	return a
}

// Recv implements Node.
func (j *JamNode) Recv(round int64, msg *Message, collided bool) {
	if j.Inner != nil {
		j.Inner.Recv(round, msg, collided)
	}
}

// LossyNode drops each successful reception with probability P (receiver
// fade), passing silence to Inner instead.
type LossyNode struct {
	Inner Node
	P     float64
	Rnd   *rng.Rand
}

// Act implements Node.
func (l *LossyNode) Act(round int64) Action { return l.Inner.Act(round) }

// Recv implements Node.
func (l *LossyNode) Recv(round int64, msg *Message, collided bool) {
	if msg != nil && l.Rnd.Bernoulli(l.P) {
		l.Inner.Recv(round, nil, false)
		return
	}
	l.Inner.Recv(round, msg, collided)
}

var (
	_ Node   = (*CrashNode)(nil)
	_ Mortal = (*CrashNode)(nil)
	_ Node   = (*JamNode)(nil)
	_ Node   = (*LossyNode)(nil)
)
