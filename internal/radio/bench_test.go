package radio

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// Delivery-kernel microbenchmarks: the word-parallel bitset kernel against
// a reference per-edge scatter (the pre-bitset engine's stamp/hits
// algorithm), on a sparse random tree (CSR neighbor walks) and a dense
// Gnp graph (per-node adjacency bitmask rows). DESIGN.md §5 cites these
// numbers; regenerate with
//
//	go test ./internal/radio -bench StepDelivery -benchmem

// benchTxRounds precomputes R rounds of transmitter sets (ascending ids,
// ~density fraction of nodes) so neither kernel pays RNG costs inside the
// timed loop.
func benchTxRounds(n, rounds int, density float64, seed uint64) [][]int32 {
	r := rng.New(seed)
	out := make([][]int32, rounds)
	for i := range out {
		for v := 0; v < n; v++ {
			if r.Bernoulli(density) {
				out[i] = append(out[i], int32(v))
			}
		}
	}
	return out
}

// scatterKernel is the reference delivery algorithm the bitset kernel
// replaced: per transmitter, walk CSR neighbors and stamp a hit counter;
// then classify every node by its counter. Kept here (test-only) so the
// benchmark comparison survives the engine rewrite.
type scatterKernel struct {
	g     *graph.Graph
	stamp []int64
	hits  []int32
	isTx  []bool
	round int64
}

func newScatterKernel(g *graph.Graph) *scatterKernel {
	n := g.N()
	return &scatterKernel{g: g, stamp: make([]int64, n), hits: make([]int32, n), isTx: make([]bool, n)}
}

func (s *scatterKernel) run(tx []int32) (deliveries, collisions int) {
	s.round++
	for _, u := range tx {
		s.isTx[u] = true
	}
	for _, u := range tx {
		for _, v := range s.g.Neighbors(int(u)) {
			if s.stamp[v] != s.round {
				s.stamp[v] = s.round
				s.hits[v] = 0
			}
			s.hits[v]++
		}
	}
	for v := 0; v < s.g.N(); v++ {
		if s.stamp[v] != s.round || s.isTx[v] {
			continue
		}
		switch {
		case s.hits[v] == 1:
			deliveries++
		default:
			collisions++
		}
	}
	for _, u := range tx {
		s.isTx[u] = false
	}
	return deliveries, collisions
}

// benchEngine builds an engine whose nodes never act on their own (the
// benchmark drives transmit sets directly), mirroring the listener
// population of a Decay round: everything quiet, so the all-quiet
// dirty-word classify path runs.
func benchEngine(g *graph.Graph) *Engine {
	nodes := make([]Node, g.N())
	for v := range nodes {
		nodes[v] = Silent{}
	}
	return NewEngine(g, nodes)
}

// runBitsetKernel drives one mark+classify+clear cycle of the engine's
// delivery kernel for a fixed transmitter set, bypassing Act and replay —
// the same slice of work scatterKernel.run times.
func runBitsetKernel(e *Engine, tx []int32) (deliveries, collisions int) {
	for _, u := range e.transmit {
		e.txw[uint32(u)>>6] &^= 1 << (uint32(u) & 63)
	}
	e.transmit = append(e.transmit[:0], tx...)
	for _, u := range tx {
		e.txw[uint32(u)>>6] |= 1 << (uint32(u) & 63)
	}
	e.round++
	e.markAll()
	st := &e.sh[0]
	st.runClassify()
	deliveries, collisions = st.deliveries, st.collisions
	e.clearRound()
	return deliveries, collisions
}

func benchmarkDelivery(b *testing.B, g *graph.Graph, density float64, bitset bool) {
	const pre = 32
	txs := benchTxRounds(g.N(), pre, density, 42)
	var e *Engine
	var sk *scatterKernel
	if bitset {
		e = benchEngine(g)
	} else {
		sk = newScatterKernel(g)
	}
	// Agreement check before timing: both kernels must classify every
	// precomputed round identically.
	if bitset {
		ref := newScatterKernel(g)
		for _, tx := range txs {
			wd, wc := ref.run(tx)
			gd, gc := runBitsetKernel(e, tx)
			if gd != wd || gc != wc {
				b.Fatalf("kernel disagreement: bitset d=%d c=%d, scatter d=%d c=%d", gd, gc, wd, wc)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := txs[i%pre]
		if bitset {
			runBitsetKernel(e, tx)
		} else {
			sk.run(tx)
		}
	}
}

// BenchmarkStepDelivery compares the delivery kernels head-to-head.
// "sparse" is a 1e5-node random tree (all-CSR adjacency); "dense" is a
// 4096-node Gnp with mean degree ~80, above the dense-row threshold, so
// the bitset kernel ORs adjacency rows word-at-a-time.
func BenchmarkStepDelivery(b *testing.B) {
	sparse := graph.RandomTree(100000, rng.New(7))
	dense := graph.Gnp(4096, 0.02, rng.New(7))
	b.Run("bitset/sparse", func(b *testing.B) { benchmarkDelivery(b, sparse, 0.02, true) })
	b.Run("scatter/sparse", func(b *testing.B) { benchmarkDelivery(b, sparse, 0.02, false) })
	b.Run("bitset/dense", func(b *testing.B) { benchmarkDelivery(b, dense, 0.05, true) })
	b.Run("scatter/dense", func(b *testing.B) { benchmarkDelivery(b, dense, 0.05, false) })
}
