// Package simbackend registers the in-process simulator as the "sim"
// transport — the identity backend of the transport seam. The
// radio.Engine already is the in-process round executor, so Attach
// installs nothing: the engine keeps its per-node/Bulk Act loops, its
// bitset delivery kernels, SetShards sharding, the FaultPlan overlay and
// its hooks exactly as before the seam existed. The backend exists so
// "sim" resolves through the same registry, flags and matrix axis as
// every other transport, and so an unspecified transport costs zero
// indirection.
package simbackend

import "radionet/internal/radio"

// Transport is the "sim" backend: a stateless no-op binding.
type Transport struct{}

// Name implements radio.Transport.
func (Transport) Name() string { return "sim" }

// Attach implements radio.Transport: the engine is already the
// in-process executor, so there is nothing to install.
func (Transport) Attach(*radio.Engine) {}

// Close implements radio.Transport.
func (Transport) Close() error { return nil }

var _ radio.Transport = Transport{}
