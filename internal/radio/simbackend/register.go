package simbackend

import "radionet/internal/radio"

func init() {
	radio.RegisterTransport("sim",
		"in-process simulated rounds (the default): bitset kernels, sharding, zero per-round indirection",
		func() radio.Transport { return Transport{} })
}
