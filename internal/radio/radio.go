// Package radio implements the synchronous multi-hop radio network model
// of the paper: nodes operate in discrete synchronous rounds, and in each
// round a node either transmits a message to all of its neighbors at once
// or stays silent and listens. A listening node receives a message if and
// only if exactly one of its neighbors transmits; otherwise it hears
// nothing, and — in the default model without collision detection — cannot
// distinguish silence from collision. Spontaneous transmissions are
// allowed: any node may transmit in any round regardless of what it knows.
//
// Protocols are per-node state machines (the Node interface). The Engine
// advances all nodes in lock step, applies the collision semantics, and
// accounts rounds, transmissions, deliveries and collisions. A TDM
// multiplexer composes sub-protocols into interleaved "lanes", which is how
// the paper alternates its main and background processes.
package radio

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"radionet/internal/graph"
)

// Kind discriminates protocol message types. Values are assigned by the
// protocol packages; the engine never interprets them.
type Kind int16

// Message is the unit of transmission. The model does not restrict message
// size; most protocol messages fit the two integer payload fields, and the
// rare large payloads (e.g. a clustering sequence) ride in Payload.
type Message struct {
	Kind Kind
	Src  int32 // sender id, stamped by the engine
	A, B int64 // protocol-defined payload
	// Payload carries large protocol data. It must be treated as
	// immutable by receivers.
	Payload any
}

// Action is a node's choice for one round: transmit Msg, or listen.
type Action struct {
	Transmit bool
	Msg      Message
}

// Listen is the do-nothing action.
var Listen = Action{}

// Transmit returns a transmitting action carrying msg.
func Transmit(msg Message) Action { return Action{Transmit: true, Msg: msg} }

// Node is a protocol state machine for a single network node.
//
// In every round the engine first calls Act on every node to collect the
// round's actions, then applies collision semantics and calls Recv on
// every node that listened. A transmitting node never receives (a radio
// cannot listen while transmitting).
type Node interface {
	// Act returns the node's action for the given round.
	Act(round int64) Action
	// Recv reports the outcome of the round to a listening node.
	// msg is nil if the node heard nothing; the pointer is only valid for
	// the duration of the call and the Message must be treated as
	// read-only (listeners of one transmitter share the underlying
	// storage). collided is false in the model without collision
	// detection regardless of interference; with collision detection
	// enabled it reports that two or more neighbors transmitted.
	Recv(round int64, msg *Message, collided bool)
}

// Sleeper is an optional extension of Node for protocols with a dormant
// state, the second half of the hot-path contract alongside Progress. A
// node reporting Dormant() == true promises that, until it next receives a
// message (or a collision report when collision detection is enabled), it
// will always Listen, ignores silence reports, and consumes no randomness.
// The engine then skips the node's Act call entirely and skips the
// nothing-heard Recv call, so rounds cost O(active + on-air) node work
// instead of O(n). After delivering a reception to a dormant node the
// engine re-queries Dormant; a node that has reported itself non-dormant
// (at construction or after a wake-up) stays awake for the rest of the
// run — dormancy is exited at most once.
//
// Wrapped nodes (fault injection, TDM) do not implement Sleeper and are
// simply always awake; correctness never depends on the extension.
type Sleeper interface {
	Node
	// Dormant reports whether the node is in its dormant state.
	Dormant() bool
}

// SilenceOblivious is an optional marker extension of Node: a node whose
// IgnoresSilence returns true declares that its Recv is a no-op whenever
// msg == nil and collided == false, so the engine may skip nothing-heard
// Recv calls. When every node of an engine declares it, the per-round
// listener pass shrinks from O(n) to O(nodes with a transmitting
// neighbor). Every protocol node in this repository qualifies; test
// doubles and fault wrappers simply don't implement the marker and keep
// the full per-round Recv contract.
type SilenceOblivious interface {
	Node
	// IgnoresSilence reports whether Recv(t, nil, false) is a no-op for
	// the node's entire lifetime. Consulted once, at engine construction.
	IgnoresSilence() bool
}

// Silent is a Node that always listens and ignores everything.
type Silent struct{}

// Act implements Node.
func (Silent) Act(int64) Action { return Listen }

// Recv implements Node.
func (Silent) Recv(int64, *Message, bool) {}

// Dormant implements Sleeper: Silent is dormant forever.
func (Silent) Dormant() bool { return true }

// IgnoresSilence implements SilenceOblivious.
func (Silent) IgnoresSilence() bool { return true }

// Metrics accumulates engine counters over a run.
type Metrics struct {
	Rounds        int64 // rounds executed
	Transmissions int64 // node-rounds spent transmitting
	Deliveries    int64 // listener-rounds with a successful reception
	Collisions    int64 // listener-rounds with >= 2 transmitting neighbors
}

// RoundHook observes one executed round: the ids of transmitting nodes
// (the slice is reused between rounds — copy it to retain), and the
// round's delivery and collision counts.
type RoundHook func(round int64, transmitters []int32, deliveries, collisions int)

// ChainHooks composes round hooks: the returned hook invokes every
// non-nil argument in order, with identical arguments. Nil entries are
// dropped, so callers chain unconditionally ("ChainHooks(e.Hook, mine)");
// zero live hooks return nil and a single live hook is returned as-is, so
// chaining never adds a dispatch layer it doesn't need. This is how
// tracing, fault accounting and metrics collection share the engine's
// single Hook slot without clobbering each other.
func ChainHooks(hooks ...RoundHook) RoundHook {
	live := hooks[:0:0]
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(round int64, transmitters []int32, deliveries, collisions int) {
		for _, h := range live {
			h(round, transmitters, deliveries, collisions)
		}
	}
}

// AddHook appends h to the engine's hook chain, preserving any installed
// hook (the composing alternative to assigning Hook directly).
func (e *Engine) AddHook(h RoundHook) {
	e.Hook = ChainHooks(e.Hook, h)
}

// BulkActor is an optional protocol-side fast path for the Act half of a
// round: one call computes the whole round's transmissions, replacing n
// interface dispatches (and n Action returns) with a single call into a
// loop the protocol can run over its own contiguous node storage. The
// implementation MUST be observationally identical to calling Act on every
// node in increasing id order — same transmitters, same messages, same
// randomness consumed — it is an optimization seam, never a semantic one.
// Protocols install it via Engine.Bulk before the first Step; wrapped
// nodes (fault injection) cannot use it, so constructors leave Bulk nil
// whenever a Wrap hook is set.
type BulkActor interface {
	// ActBulk appends the ids (ascending) and messages of this round's
	// transmitters to tx and msgs and returns the extended slices.
	ActBulk(round int64, tx []int32, msgs []Message) ([]int32, []Message)
}

// BulkReceiver is the Recv-side counterpart of BulkActor: one call delivers
// the whole round's successful receptions, replacing per-listener interface
// dispatches with a loop the protocol runs over its own contiguous node
// storage. Only deliveries travel through the seam — collision reports
// (when collision detection is enabled) and nothing-heard reports (for
// nodes that do not ignore silence) stay on the per-node Recv path, so a
// node is handed to at most one of the two paths per round.
//
// The implementation MUST be observationally identical to calling
// Recv(round, &msgs[msgIdx[k]], false) on each listeners[k] in slice order;
// like the engine's sparse listener pass, the seam assumes per-listener
// effects are node-local (no protocol draws randomness or touches another
// node's state in Recv). A protocol installs it via Engine.BulkRecv only
// when it owns every engine node — wrapped/fault-injected nodes keep the
// existing per-node path, so constructors leave BulkRecv nil whenever a
// Wrap hook is set. The engine re-queries Sleeper dormancy for delivered
// nodes after the call, preserving the wake-up contract.
type BulkReceiver interface {
	// RecvBulk delivers this round's receptions: for each k, node
	// listeners[k] heard msgs[msgIdx[k]]. All three slices are engine
	// scratch, valid only for the duration of the call; messages are
	// shared between listeners and must be treated as read-only.
	RecvBulk(round int64, listeners, msgIdx []int32, msgs []Message)
}

// Engine executes a protocol on a graph under the radio collision model.
type Engine struct {
	G     *graph.Graph
	Nodes []Node
	// CollisionDetection selects the stronger model variant in which
	// listeners can distinguish collision from silence. The paper's model
	// (and all defaults) leave it false.
	CollisionDetection bool
	// Hook, if set, is invoked after every round (tracing/metrics).
	Hook RoundHook
	// Bulk, if non-nil, replaces the per-node Act loop (see BulkActor).
	Bulk BulkActor
	// BulkRecv, if non-nil, replaces per-node delivery Recv calls in both
	// listener passes (see BulkReceiver).
	BulkRecv BulkReceiver
	// ShardHook, if set alongside SetShards(k > 1), receives per-shard
	// busy-time telemetry after each round (see ShardHook).
	ShardHook ShardHook

	Metrics Metrics

	round    int64
	words    int    // ceil(n/64): length of every per-node bitset below
	tailMask uint64 // valid bits of the last word (all-ones when n%64 == 0)

	// Per-round bitsets, one bit per node (see kernel.go for the delivery
	// kernel algebra). onair/collided are cleared through the dirty
	// summary after every round; txw is cleared differentially through
	// the transmit list; deadw/dormw/quietw persist across rounds.
	onair    []uint64 // >= 1 transmitting neighbor this round
	collided []uint64 // >= 2 transmitting neighbors (subset of onair)
	txw      []uint64 // transmitted this round
	deadw    []uint64 // crashed (overlay schedule or Mortal wrapper)
	dormw    []uint64 // dormant Sleeper nodes
	quietw   []uint64 // SilenceOblivious nodes
	dirty    []uint64 // summary: bit w set iff onair word w was touched

	inbox    []int32   // txmsg index heard on first touch (unsharded CSR marking)
	instamp  []int64   // round stamp validating inbox
	txidx    []int32   // node -> transmit-list index (valid while its txw bit is set)
	txmsg    []Message // scratch: messages of transmitting nodes, parallel to transmit
	transmit []int32   // scratch: ids of transmitting nodes
	rcvID    []int32   // scratch: shard-concatenated bulk-delivery listeners
	rcvIdx   []int32   // scratch: txmsg index heard by each bulk listener
	sleeper  []Sleeper // nil for nodes without the Sleeper extension
	allQuiet bool      // every node ignores silence: classify touched words only
	dense    *graph.AdjBits

	// Intra-round sharding (see SetShards): sh[0] is always present and
	// runs on the caller's goroutine; rangeBulk caches the per-round
	// BulkRangeActor assertion on Bulk. workerCmds are the resident wave
	// workers' command channels (nil when unsharded or after Close — see
	// workers.go); workerCleanup is the GC fallback that closes them if
	// the engine is dropped without Close.
	shards        int
	sh            []shardState
	wg            sync.WaitGroup
	rangeBulk     BulkRangeActor
	workerCmds    []chan uint8
	workerCleanup runtime.Cleanup

	// Round-executor driver (see SetDriver): when non-nil the Act and
	// Recv halves of Step route through it instead of touching e.Nodes;
	// live is the reused per-round scratch of pollable node ids.
	driver Driver
	live   []int32

	// Fault state: deadw is the union of the overlay's crash schedule and
	// the Mortal wrappers' reports; a dead node is off the air and out of
	// the listener pass. anyDead gates the per-node Act check so unfaulted
	// runs pay one predictable branch.
	fault      *FaultPlan
	hasLoss    bool
	anyDead    bool
	crashSched []crashEvent
	crashCur   int
	mortals    []mortalRef
}

// crashEvent is one overlay crash, sorted by round for the Step cursor.
type crashEvent struct {
	round int64
	node  int32
}

// mortalRef pairs a Mortal wrapper with its node id for the per-round poll.
type mortalRef struct {
	id int32
	nd Mortal
}

// NewEngine returns an engine running nodes on g. len(nodes) must equal
// g.N().
func NewEngine(g *graph.Graph, nodes []Node) *Engine {
	if len(nodes) != g.N() {
		panic(fmt.Sprintf("radio: %d nodes for graph with %d vertices", len(nodes), g.N()))
	}
	n := g.N()
	words := (n + 63) / 64
	e := &Engine{
		G:        g,
		Nodes:    nodes,
		words:    words,
		onair:    make([]uint64, words),
		collided: make([]uint64, words),
		txw:      make([]uint64, words),
		deadw:    make([]uint64, words),
		dormw:    make([]uint64, words),
		quietw:   make([]uint64, words),
		dirty:    make([]uint64, (words+63)/64),
		inbox:    make([]int32, n),
		instamp:  make([]int64, n),
		txidx:    make([]int32, n),
		txmsg:    make([]Message, 0, n),
		transmit: make([]int32, 0, n),
		// rcvID/rcvIdx (bulk-delivery scratch) grow on first use: most
		// engines never install BulkRecv and should not carry the buffers.
		sleeper:  make([]Sleeper, n),
		allQuiet: true,
		dense:    g.DenseAdj(),
	}
	if n > 0 {
		e.tailMask = ^uint64(0)
		if r := n & 63; r != 0 {
			e.tailMask = uint64(1)<<uint(r) - 1
		}
	}
	for i, nd := range nodes {
		w := i >> 6
		b := uint64(1) << (uint(i) & 63)
		if s, ok := nd.(Sleeper); ok {
			e.sleeper[i] = s
			if s.Dormant() {
				e.dormw[w] |= b
			}
		}
		if q, ok := nd.(SilenceOblivious); ok && q.IgnoresSilence() {
			e.quietw[w] |= b
		} else {
			e.allQuiet = false
		}
		if m, ok := nd.(Mortal); ok {
			e.mortals = append(e.mortals, mortalRef{id: int32(i), nd: m})
		}
	}
	// Shard state 0 always exists and aliases the engine bitsets: the
	// unsharded engine runs the very same classify+replay path as any
	// sharded one, so shard-count invariance has no second code path to
	// drift from.
	e.shards = 1
	e.sh = make([]shardState, 1)
	e.sh[0] = shardState{
		eng: e, w1: words, hi: int32(n),
		onair: e.onair, collided: e.collided, dirty: e.dirty,
	}
	return e
}

// SetFaults installs the engine-side fault overlay (see FaultPlan). It
// must be called before the first Step, at most once, with a plan built
// for this engine's node count; the plan is consumed by the run (its coin
// streams advance) and must not be reused.
func (e *Engine) SetFaults(p *FaultPlan) {
	if p == nil {
		return
	}
	if p.n != len(e.Nodes) {
		panic(fmt.Sprintf("radio: fault plan for %d nodes installed in %d-node engine", p.n, len(e.Nodes)))
	}
	if e.round != 0 || e.fault != nil {
		panic("radio: SetFaults must be called once, before the first Step")
	}
	e.fault = p
	e.hasLoss = p.hasLoss
	for v, r := range p.crashAt {
		if r != NoCrash {
			e.crashSched = append(e.crashSched, crashEvent{round: r, node: int32(v)})
		}
	}
	// Ascending by round; node order within a round is irrelevant (the
	// whole prefix with round <= t is applied before anything else runs).
	slices.SortFunc(e.crashSched, func(a, b crashEvent) int {
		if a.round != b.round {
			return cmp.Compare(a.round, b.round)
		}
		return cmp.Compare(a.node, b.node)
	})
}

// Round returns the index of the next round to execute.
func (e *Engine) Round() int64 { return e.round }

// Step executes exactly one synchronous round: Act (per-node, bulk, or
// sharded bulk), jam overlay, transmit-marking into the onair/collided
// bitsets, word-parallel listener classification, and a sequential replay
// of the classified Recv calls. The classify accumulators bucket every
// listener before any protocol code runs, so the replay order is
// deliveries, then collision reports, then silence reports, each in
// ascending node id — per-listener effects are node-local (no protocol
// draws randomness or touches another node's state in Recv; loss coins
// come from per-node streams), so this order is observationally
// equivalent to the seed's interleaved pass and, crucially, independent
// of the shard count.
//
//radionet:hotpath
func (e *Engine) Step() {
	t := e.round
	e.round++
	e.Metrics.Rounds++
	if e.fault != nil {
		for e.crashCur < len(e.crashSched) && e.crashSched[e.crashCur].round <= t {
			v := e.crashSched[e.crashCur].node
			e.deadw[v>>6] |= 1 << (uint(v) & 63)
			e.anyDead = true
			e.crashCur++
		}
	}
	for _, m := range e.mortals {
		w := m.id >> 6
		b := uint64(1) << (uint(m.id) & 63)
		if e.deadw[w]&b == 0 && m.nd.Crashed(t) {
			e.deadw[w] |= b
			e.anyDead = true
		}
	}
	// txw is maintained differentially: the bits set last round are
	// exactly last round's transmit list.
	for _, u := range e.transmit {
		e.txw[u>>6] &^= 1 << (uint(u) & 63)
	}
	e.transmit = e.transmit[:0]
	e.txmsg = e.txmsg[:0]
	if e.driver != nil {
		// Driver path: the live list mirrors the per-node loop's skip of
		// dead nodes (dormant nodes are polled — the Sleeper contract
		// makes that free and silent), and the driver's ActAll contract
		// pins its output to the per-node loop's, so the two realizations
		// of the Act half cannot diverge.
		e.live = e.live[:0]
		for i := range e.Nodes {
			if e.anyDead && e.deadw[i>>6]&(1<<(uint(i)&63)) != 0 {
				continue // dead nodes are off the air
			}
			e.live = append(e.live, int32(i))
		}
		e.transmit, e.txmsg = e.driver.ActAll(t, e.live, e.transmit, e.txmsg)
		for _, u := range e.transmit {
			e.txw[u>>6] |= 1 << (uint(u) & 63)
		}
	} else if e.Bulk != nil {
		if e.shards > 1 {
			if rb, ok := e.Bulk.(BulkRangeActor); ok {
				e.rangeBulk = rb
				e.actWave()
			} else {
				e.transmit, e.txmsg = e.Bulk.ActBulk(t, e.transmit, e.txmsg)
			}
		} else {
			e.transmit, e.txmsg = e.Bulk.ActBulk(t, e.transmit, e.txmsg)
		}
		if e.anyDead {
			// Dead nodes drop off the air: the bulk path computes the whole
			// round protocol-side, so the engine masks their transmissions.
			w := 0
			for j, u := range e.transmit {
				if e.deadw[u>>6]&(1<<(uint(u)&63)) != 0 {
					continue
				}
				e.transmit[w] = u
				e.txmsg[w] = e.txmsg[j]
				w++
			}
			e.transmit = e.transmit[:w]
			e.txmsg = e.txmsg[:w]
		}
		for _, u := range e.transmit {
			e.txw[u>>6] |= 1 << (uint(u) & 63)
		}
	} else {
		for i, nd := range e.Nodes {
			w := i >> 6
			b := uint64(1) << (uint(i) & 63)
			if e.anyDead && e.deadw[w]&b != 0 {
				continue // dead nodes are off the air
			}
			if e.dormw[w]&b != 0 {
				continue // dormant nodes promise to listen
			}
			a := nd.Act(t)
			if a.Transmit {
				e.txw[w] |= b
				e.transmit = append(e.transmit, int32(i))
				e.txmsg = append(e.txmsg, a.Msg)
			}
		}
	}
	if e.fault != nil && len(e.fault.jammers) > 0 {
		e.applyJam()
	}
	e.Metrics.Transmissions += int64(len(e.transmit))
	// Stamp sender ids and the transmit-list index map before marking:
	// txidx[u] is how singleton resolution recovers the heard message on
	// paths that bypass the inbox (dense rows, sharded marking).
	for j, u := range e.transmit {
		e.txmsg[j].Src = u
		e.txidx[u] = int32(j)
	}
	if e.shards > 1 {
		e.markWave()
		e.classifyWave()
	} else {
		e.markAll()
		e.sh[0].runClassify()
	}
	// Sequential replay in shard (= ascending node) order; no protocol
	// code ran before this point.
	deliveries, collisions := 0, 0
	bulkRecv := e.BulkRecv != nil
	var rid, ridx []int32
	if bulkRecv && e.shards > 1 {
		e.rcvID = e.rcvID[:0]
		e.rcvIdx = e.rcvIdx[:0]
	}
	for s := range e.sh {
		st := &e.sh[s]
		deliveries += st.deliveries
		collisions += st.collisions
		switch {
		case e.driver != nil:
			// The driver owns the nodes (they may live on other
			// goroutines); no dormancy recheck is owed because SetDriver
			// retired the dormancy skip-list.
			for k, v := range st.rcvID {
				e.driver.Observe(t, v, &e.txmsg[st.rcvIdx[k]], false)
			}
		case !bulkRecv:
			for k, v := range st.rcvID {
				e.Nodes[v].Recv(t, &e.txmsg[st.rcvIdx[k]], false)
				e.recheckDormant(v)
			}
		case e.shards > 1:
			e.rcvID = append(e.rcvID, st.rcvID...)
			e.rcvIdx = append(e.rcvIdx, st.rcvIdx...)
		default:
			rid, ridx = st.rcvID, st.rcvIdx
		}
	}
	if bulkRecv && e.shards > 1 {
		rid, ridx = e.rcvID, e.rcvIdx
	}
	if e.CollisionDetection {
		for s := range e.sh {
			for _, v := range e.sh[s].coll {
				if e.driver != nil {
					e.driver.Observe(t, v, nil, true)
					continue
				}
				e.Nodes[v].Recv(t, nil, true)
				e.recheckDormant(v)
			}
		}
	}
	for s := range e.sh {
		// Silence reports never reach dormant or quiet nodes (classify
		// masked them out), so no dormancy recheck is owed here. (Under a
		// driver the dormancy mask is retired, so dormant non-quiet nodes
		// do get the report — a no-op by their Sleeper promise.)
		for _, v := range e.sh[s].silent {
			if e.driver != nil {
				e.driver.Observe(t, v, nil, false)
				continue
			}
			e.Nodes[v].Recv(t, nil, false)
		}
	}
	if bulkRecv && len(rid) > 0 {
		e.BulkRecv.RecvBulk(t, rid, ridx, e.txmsg)
		for _, v := range rid {
			e.recheckDormant(v)
		}
	}
	e.clearRound()
	e.Metrics.Deliveries += int64(deliveries)
	e.Metrics.Collisions += int64(collisions)
	if e.ShardHook != nil {
		e.flushShardBusy()
	}
	if e.Hook != nil {
		e.Hook(t, e.transmit, deliveries, collisions)
	}
}

// applyJam draws each live jammer's noise coin and, when it fires,
// replaces the node's action for the round with a KindNoise transmission
// (overriding a protocol transmission in place, or putting a listener on
// the air). Jammers are visited in ascending id order and each live jammer
// draws exactly one coin per round, matching JamNode's wrapper semantics
// coin for coin.
//
//radionet:hotpath
func (e *Engine) applyJam() {
	p := e.fault
	for _, v := range p.jammers {
		w := v >> 6
		b := uint64(1) << (uint(v) & 63)
		if e.deadw[w]&b != 0 {
			continue
		}
		if !p.jamRnd[v].Bernoulli(p.jamP[v]) {
			continue
		}
		if e.txw[w]&b != 0 {
			for j, u := range e.transmit {
				if u == v {
					e.txmsg[j] = Message{Kind: KindNoise}
					break
				}
			}
			continue
		}
		e.txw[w] |= b
		e.transmit = append(e.transmit, v)
		e.txmsg = append(e.txmsg, Message{Kind: KindNoise})
	}
}

// Run executes rounds until stop returns true or maxRounds rounds have
// been executed in this call, whichever comes first. stop is evaluated
// after each round (and once before the first, so an already-satisfied
// predicate costs zero rounds). It returns the number of rounds executed
// by this call and whether stop was satisfied; with a nil stop the
// predicate is never satisfied, so done is always false and exactly
// maxRounds rounds execute.
func (e *Engine) Run(maxRounds int64, stop func() bool) (rounds int64, done bool) {
	if stop != nil && stop() {
		return 0, true
	}
	for rounds = 0; rounds < maxRounds; {
		e.Step()
		rounds++
		if stop != nil && stop() {
			return rounds, true
		}
	}
	return rounds, false
}

// Progress is the engine-side convention for O(1) termination checking on
// the simulation hot path. A protocol that knows its completion target up
// front (typically "all n nodes reached some state") holds one Progress,
// shares a pointer to it with its per-node state machines, and calls Add
// from inside Recv (or wherever the tracked state transition happens) —
// never from a scan. Done then costs a single counter comparison per
// round instead of the O(n) full scan a stop predicate would need.
//
// The counting discipline that keeps Done equivalent to a full scan:
// call Add(1) exactly when a node crosses the tracked threshold for the
// first time, count nodes that start beyond the threshold at construction
// time, and never decrement. A target the protocol can prove unreachable
// (e.g. "no source was supplied") may be encoded as target = n+1, which
// pins Done at false forever. The zero value (target 0, count 0) reports
// Done immediately, matching the vacuous full scan over zero nodes.
type Progress struct {
	target int64
	count  int64
}

// NewProgress returns a Progress that completes after target Add units.
func NewProgress(target int64) *Progress { return &Progress{target: target} }

// Add records d units of completion (d may be 0; negative d is a caller
// bug and will desynchronize Done from the protocol state).
func (p *Progress) Add(d int64) { p.count += d }

// Count returns the units recorded so far.
func (p *Progress) Count() int64 { return p.count }

// Target returns the completion target.
func (p *Progress) Target() int64 { return p.target }

// Done reports whether the target has been reached. O(1).
func (p *Progress) Done() bool { return p.count >= p.target }

// RunUntil executes rounds until p.Done() or maxRounds rounds have been
// executed in this call, whichever comes first, with the same evaluation
// points as Run (once before the first round, then after every round).
// It is the fast path for protocols that track completion incrementally:
// no predicate closure is allocated and the per-round check is a counter
// comparison.
func (e *Engine) RunUntil(maxRounds int64, p *Progress) (rounds int64, done bool) {
	if p.Done() {
		return 0, true
	}
	for rounds = 0; rounds < maxRounds; {
		e.Step()
		rounds++
		if p.Done() {
			return rounds, true
		}
	}
	return rounds, false
}

// TDM interleaves k sub-protocols in time-division lanes: global round t
// is lane t mod k, executing sub-round t / k of that lane. This is exactly
// how the paper runs its main and background processes "concurrently,
// alternating between steps of each".
type TDM struct {
	Lanes []Node
}

// NewTDM returns a TDM node over the given lanes.
func NewTDM(lanes ...Node) *TDM { return &TDM{Lanes: lanes} }

// Act implements Node.
func (m *TDM) Act(round int64) Action {
	k := int64(len(m.Lanes))
	return m.Lanes[round%k].Act(round / k)
}

// Recv implements Node.
func (m *TDM) Recv(round int64, msg *Message, collided bool) {
	k := int64(len(m.Lanes))
	m.Lanes[round%k].Recv(round/k, msg, collided)
}

// FuncNode adapts plain functions to the Node interface; handy in tests.
type FuncNode struct {
	ActFn  func(round int64) Action
	RecvFn func(round int64, msg *Message, collided bool)
}

// Act implements Node.
func (f *FuncNode) Act(round int64) Action {
	if f.ActFn == nil {
		return Listen
	}
	return f.ActFn(round)
}

// Recv implements Node.
func (f *FuncNode) Recv(round int64, msg *Message, collided bool) {
	if f.RecvFn != nil {
		f.RecvFn(round, msg, collided)
	}
}

var (
	_ Node = Silent{}
	_ Node = (*TDM)(nil)
	_ Node = (*FuncNode)(nil)
)
