// Package radio implements the synchronous multi-hop radio network model
// of the paper: nodes operate in discrete synchronous rounds, and in each
// round a node either transmits a message to all of its neighbors at once
// or stays silent and listens. A listening node receives a message if and
// only if exactly one of its neighbors transmits; otherwise it hears
// nothing, and — in the default model without collision detection — cannot
// distinguish silence from collision. Spontaneous transmissions are
// allowed: any node may transmit in any round regardless of what it knows.
//
// Protocols are per-node state machines (the Node interface). The Engine
// advances all nodes in lock step, applies the collision semantics, and
// accounts rounds, transmissions, deliveries and collisions. A TDM
// multiplexer composes sub-protocols into interleaved "lanes", which is how
// the paper alternates its main and background processes.
package radio

import (
	"fmt"

	"radionet/internal/graph"
)

// Kind discriminates protocol message types. Values are assigned by the
// protocol packages; the engine never interprets them.
type Kind int16

// Message is the unit of transmission. The model does not restrict message
// size; most protocol messages fit the two integer payload fields, and the
// rare large payloads (e.g. a clustering sequence) ride in Payload.
type Message struct {
	Kind Kind
	Src  int32 // sender id, stamped by the engine
	A, B int64 // protocol-defined payload
	// Payload carries large protocol data. It must be treated as
	// immutable by receivers.
	Payload any
}

// Action is a node's choice for one round: transmit Msg, or listen.
type Action struct {
	Transmit bool
	Msg      Message
}

// Listen is the do-nothing action.
var Listen = Action{}

// Transmit returns a transmitting action carrying msg.
func Transmit(msg Message) Action { return Action{Transmit: true, Msg: msg} }

// Node is a protocol state machine for a single network node.
//
// In every round the engine first calls Act on every node to collect the
// round's actions, then applies collision semantics and calls Recv on
// every node that listened. A transmitting node never receives (a radio
// cannot listen while transmitting).
type Node interface {
	// Act returns the node's action for the given round.
	Act(round int64) Action
	// Recv reports the outcome of the round to a listening node.
	// msg is nil if the node heard nothing; the pointer is only valid for
	// the duration of the call. collided is false in the model without
	// collision detection regardless of interference; with collision
	// detection enabled it reports that two or more neighbors transmitted.
	Recv(round int64, msg *Message, collided bool)
}

// Silent is a Node that always listens and ignores everything.
type Silent struct{}

// Act implements Node.
func (Silent) Act(int64) Action { return Listen }

// Recv implements Node.
func (Silent) Recv(int64, *Message, bool) {}

// Metrics accumulates engine counters over a run.
type Metrics struct {
	Rounds        int64 // rounds executed
	Transmissions int64 // node-rounds spent transmitting
	Deliveries    int64 // listener-rounds with a successful reception
	Collisions    int64 // listener-rounds with >= 2 transmitting neighbors
}

// RoundHook observes one executed round: the ids of transmitting nodes
// (the slice is reused between rounds — copy it to retain), and the
// round's delivery and collision counts.
type RoundHook func(round int64, transmitters []int32, deliveries, collisions int)

// Engine executes a protocol on a graph under the radio collision model.
type Engine struct {
	G     *graph.Graph
	Nodes []Node
	// CollisionDetection selects the stronger model variant in which
	// listeners can distinguish collision from silence. The paper's model
	// (and all defaults) leave it false.
	CollisionDetection bool
	// Hook, if set, is invoked after every round (tracing/metrics).
	Hook RoundHook

	Metrics Metrics

	round    int64
	hits     []int32   // number of transmitting neighbors this round
	stamp    []int64   // round stamp for lazy reset of hits
	inbox    []Message // last message heard per node (valid when hits==1)
	actions  []Action
	transmit []int32 // scratch: ids of transmitting nodes
}

// NewEngine returns an engine running nodes on g. len(nodes) must equal
// g.N().
func NewEngine(g *graph.Graph, nodes []Node) *Engine {
	if len(nodes) != g.N() {
		panic(fmt.Sprintf("radio: %d nodes for graph with %d vertices", len(nodes), g.N()))
	}
	n := g.N()
	return &Engine{
		G:        g,
		Nodes:    nodes,
		hits:     make([]int32, n),
		stamp:    make([]int64, n),
		inbox:    make([]Message, n),
		actions:  make([]Action, n),
		transmit: make([]int32, 0, n),
	}
}

// Round returns the index of the next round to execute.
func (e *Engine) Round() int64 { return e.round }

// Step executes exactly one synchronous round.
func (e *Engine) Step() {
	t := e.round
	e.round++
	e.Metrics.Rounds++
	e.transmit = e.transmit[:0]
	for i, nd := range e.Nodes {
		a := nd.Act(t)
		e.actions[i] = a
		if a.Transmit {
			e.transmit = append(e.transmit, int32(i))
		}
	}
	e.Metrics.Transmissions += int64(len(e.transmit))
	// Mark reception counts lazily: stamp arrays avoid an O(n) clear.
	cur := t + 1 // stamps are 1-based so the zero value never matches
	for _, u := range e.transmit {
		msg := e.actions[u].Msg
		msg.Src = u
		for _, v := range e.G.Neighbors(int(u)) {
			if e.stamp[v] != cur {
				e.stamp[v] = cur
				e.hits[v] = 1
				e.inbox[v] = msg
			} else {
				e.hits[v]++
			}
		}
	}
	deliveries, collisions := 0, 0
	for i, nd := range e.Nodes {
		if e.actions[i].Transmit {
			continue // transmitters cannot listen
		}
		switch {
		case e.stamp[i] == cur && e.hits[i] == 1:
			deliveries++
			nd.Recv(t, &e.inbox[i], false)
		case e.stamp[i] == cur && e.hits[i] > 1:
			collisions++
			nd.Recv(t, nil, e.CollisionDetection)
		default:
			nd.Recv(t, nil, false)
		}
	}
	e.Metrics.Deliveries += int64(deliveries)
	e.Metrics.Collisions += int64(collisions)
	if e.Hook != nil {
		e.Hook(t, e.transmit, deliveries, collisions)
	}
}

// Run executes rounds until stop returns true or maxRounds rounds have
// been executed in this call, whichever comes first. stop is evaluated
// after each round (and once before the first, so an already-satisfied
// predicate costs zero rounds). It returns the number of rounds executed
// by this call and whether stop was satisfied.
func (e *Engine) Run(maxRounds int64, stop func() bool) (rounds int64, done bool) {
	if stop != nil && stop() {
		return 0, true
	}
	for rounds = 0; rounds < maxRounds; {
		e.Step()
		rounds++
		if stop != nil && stop() {
			return rounds, true
		}
	}
	return rounds, stop == nil
}

// TDM interleaves k sub-protocols in time-division lanes: global round t
// is lane t mod k, executing sub-round t / k of that lane. This is exactly
// how the paper runs its main and background processes "concurrently,
// alternating between steps of each".
type TDM struct {
	Lanes []Node
}

// NewTDM returns a TDM node over the given lanes.
func NewTDM(lanes ...Node) *TDM { return &TDM{Lanes: lanes} }

// Act implements Node.
func (m *TDM) Act(round int64) Action {
	k := int64(len(m.Lanes))
	return m.Lanes[round%k].Act(round / k)
}

// Recv implements Node.
func (m *TDM) Recv(round int64, msg *Message, collided bool) {
	k := int64(len(m.Lanes))
	m.Lanes[round%k].Recv(round/k, msg, collided)
}

// FuncNode adapts plain functions to the Node interface; handy in tests.
type FuncNode struct {
	ActFn  func(round int64) Action
	RecvFn func(round int64, msg *Message, collided bool)
}

// Act implements Node.
func (f *FuncNode) Act(round int64) Action {
	if f.ActFn == nil {
		return Listen
	}
	return f.ActFn(round)
}

// Recv implements Node.
func (f *FuncNode) Recv(round int64, msg *Message, collided bool) {
	if f.RecvFn != nil {
		f.RecvFn(round, msg, collided)
	}
}

var (
	_ Node = Silent{}
	_ Node = (*TDM)(nil)
	_ Node = (*FuncNode)(nil)
)
