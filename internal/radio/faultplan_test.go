package radio

import (
	"fmt"
	"slices"
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// TestOverlayCrashMasksTransmitter: a crashed beacon goes off the air at
// its crash round even though the per-node Act (or a bulk pass) would have
// transmitted.
func TestOverlayCrashMasksTransmitter(t *testing.T) {
	g := graph.Path(2)
	heard := 0
	rx := &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
		if m != nil {
			heard++
		}
	}}
	p := NewFaultPlan(2, 1)
	p.Crash(0, 4)
	e := NewEngine(g, []Node{&beacon{v: 5}, rx})
	e.SetFaults(p)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if heard != 4 {
		t.Fatalf("receiver heard %d transmissions, want 4", heard)
	}
	if e.Metrics.Transmissions != 4 {
		t.Fatalf("Transmissions = %d, want 4", e.Metrics.Transmissions)
	}
}

// TestCrashedListenerStopsCounting is the satellite-1 regression: a
// crashed node must stop counting toward Deliveries/Collisions, on both
// the wrapper path (CrashNode via the Mortal seam) and the overlay path.
// Before the fix a crashed node stayed a delivery-counting listener for
// the rest of the run.
func TestCrashedListenerStopsCounting(t *testing.T) {
	run := func(build func(listener Node) (*Engine, func())) Metrics {
		e, _ := build(Silent{})
		for i := 0; i < 10; i++ {
			e.Step()
		}
		return e.Metrics
	}
	// Baseline: a healthy listener next to a beacon hears all 10 rounds.
	base := run(func(l Node) (*Engine, func()) {
		return NewEngine(graph.Path(2), []Node{&beacon{v: 9}, l}), nil
	})
	if base.Deliveries != 10 {
		t.Fatalf("baseline deliveries = %d, want 10", base.Deliveries)
	}
	wrapper := run(func(l Node) (*Engine, func()) {
		return NewEngine(graph.Path(2), []Node{&beacon{v: 9}, &CrashNode{Inner: l, CrashAt: 6}}), nil
	})
	overlay := run(func(l Node) (*Engine, func()) {
		p := NewFaultPlan(2, 1)
		p.Crash(1, 6)
		e := NewEngine(graph.Path(2), []Node{&beacon{v: 9}, l})
		e.SetFaults(p)
		return e, nil
	})
	for name, m := range map[string]Metrics{"wrapper": wrapper, "overlay": overlay} {
		if m.Deliveries != 6 {
			t.Errorf("%s: deliveries = %d, want 6 (dead listeners must not count)", name, m.Deliveries)
		}
	}
}

// TestCrashedListenerStopsCountingCollisions: same regression for the
// collision counter (two beacons collide at a third node forever).
func TestCrashedListenerStopsCountingCollisions(t *testing.T) {
	g := graph.Star(3) // center 0 hears both leaves
	e := NewEngine(g, []Node{&CrashNode{Inner: Silent{}, CrashAt: 3}, &beacon{v: 1}, &beacon{v: 2}})
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if e.Metrics.Collisions != 3 {
		t.Fatalf("collisions = %d, want 3 (crashed center must stop counting)", e.Metrics.Collisions)
	}
}

// TestOverlayJamCausesCollisions mirrors TestJamNodeCausesCollisions on
// the overlay path: a constant jammer leaf blanks out the star center.
func TestOverlayJamCausesCollisions(t *testing.T) {
	g := graph.Star(3)
	heard := 0
	rx := &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
		if m != nil {
			heard++
		}
	}}
	p := NewFaultPlan(3, 7)
	p.Jam(2, 1)
	e := NewEngine(g, []Node{rx, &beacon{v: 5}, Silent{}})
	e.SetFaults(p)
	for i := 0; i < 20; i++ {
		e.Step()
	}
	if heard != 0 {
		t.Fatalf("center heard %d messages through a constant jammer", heard)
	}
	if e.Metrics.Collisions != 20 {
		t.Fatalf("collisions = %d, want 20", e.Metrics.Collisions)
	}
}

// TestOverlayLossDropsReceptions mirrors TestLossyNodeDropsReceptions on
// the overlay path; faded receptions still count as engine deliveries
// (the message was on the air), matching the wrapper path's accounting.
func TestOverlayLossDropsReceptions(t *testing.T) {
	g := graph.Path(2)
	heard := 0
	rx := &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
		if m != nil {
			heard++
		}
	}}
	p := NewFaultPlan(2, 3)
	p.Loss(0, 0.5)
	e := NewEngine(g, []Node{rx, &beacon{v: 5}})
	e.SetFaults(p)
	for i := 0; i < 400; i++ {
		e.Step()
	}
	if frac := float64(heard) / 400; frac < 0.35 || frac > 0.65 {
		t.Fatalf("delivery fraction %.2f, want ~0.5", frac)
	}
	if e.Metrics.Deliveries != 400 {
		t.Fatalf("Deliveries = %d, want 400 (fades count as on-air deliveries)", e.Metrics.Deliveries)
	}
}

// chatter is a minimal randomized protocol for the overlay-vs-wrapper
// equivalence test: transmits its best known value with probability 0.3
// every round and adopts any higher value it hears.
type chatter struct {
	rnd  rng.Rand
	best int64
}

func (c *chatter) Act(int64) Action {
	if c.rnd.Bernoulli(0.3) {
		return Transmit(Message{Kind: 1, A: c.best})
	}
	return Listen
}

func (c *chatter) Recv(_ int64, m *Message, _ bool) {
	if m != nil && m.Kind == 1 && m.A > c.best {
		c.best = m.A
	}
}

// TestOverlayMatchesWrappers: the engine-side FaultPlan overlay and the
// plan's Wrap chain (CrashNode/JamNode/LossyNode with identically derived
// coin streams) produce the same on-air trajectory round for round — same
// transmitter sets, same live-node states, same metrics.
func TestOverlayMatchesWrappers(t *testing.T) {
	g := graph.Grid(4, 5)
	n := g.N()
	const faultSeed = 99
	mkPlan := func() *FaultPlan {
		p := NewFaultPlan(n, faultSeed)
		p.Crash(3, 25)
		p.Crash(7, 0)
		p.Crash(12, 60)
		p.Jam(5, 0.3)
		p.Jam(9, 0.15)
		for v := 0; v < n; v += 2 {
			p.Loss(v, 0.2)
		}
		return p
	}
	mkNodes := func() []*chatter {
		nodes := make([]*chatter, n)
		master := rng.New(42)
		for v := range nodes {
			nodes[v] = &chatter{rnd: *master.Fork(uint64(v)), best: int64(v)}
		}
		return nodes
	}
	record := func(e *Engine) func() []string {
		var rounds []string
		e.Hook = func(_ int64, tx []int32, deliveries, collisions int) {
			ids := slices.Clone(tx)
			slices.Sort(ids)
			rounds = append(rounds, fmt.Sprintf("%v d%d c%d", ids, deliveries, collisions))
		}
		return func() []string { return rounds }
	}

	overlayNodes := mkNodes()
	rnA := make([]Node, n)
	for v := range rnA {
		rnA[v] = overlayNodes[v]
	}
	eA := NewEngine(g, rnA)
	eA.SetFaults(mkPlan())
	logA := record(eA)

	wrapPlan := mkPlan()
	wrapNodes := mkNodes()
	rnB := make([]Node, n)
	for v := range rnB {
		rnB[v] = wrapPlan.Wrap(v, wrapNodes[v])
	}
	eB := NewEngine(g, rnB)
	logB := record(eB)

	dead := mkPlan()
	for i := 0; i < 200; i++ {
		eA.Step()
		eB.Step()
	}
	a, b := logA(), logB()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d diverged:\noverlay: %s\nwrapper: %s", i, a[i], b[i])
		}
	}
	for v := 0; v < n; v++ {
		if !dead.Alive(v) {
			continue // dead nodes' private state may legally differ
		}
		if overlayNodes[v].best != wrapNodes[v].best {
			t.Errorf("node %d state diverged: overlay %d, wrapper %d", v, overlayNodes[v].best, wrapNodes[v].best)
		}
	}
	if eA.Metrics != eB.Metrics {
		t.Errorf("metrics diverged:\noverlay: %+v\nwrapper: %+v", eA.Metrics, eB.Metrics)
	}
}

// TestSetFaultsValidation: wrong plan size and post-Step installs panic.
func TestSetFaultsValidation(t *testing.T) {
	g := graph.Path(2)
	e := NewEngine(g, []Node{Silent{}, Silent{}})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("size mismatch", func() { e.SetFaults(NewFaultPlan(3, 1)) })
	e.Step()
	mustPanic("after Step", func() { e.SetFaults(NewFaultPlan(2, 1)) })
	// nil install is a no-op at any time.
	e.SetFaults(nil)
}

// TestCountedTargetMaxHolderScoping pins the multi-source completion
// scoping: the BFS roots at the surviving maximum-holding sources only —
// a survivor component that holds just lower-valued sources can never
// learn the maximum, so it must not be awaited.
func TestCountedTargetMaxHolderScoping(t *testing.T) {
	// Path 0-1-2-3-4-5; sources at both ends, max at node 5; crashing
	// node 2 splits the survivor graph into {0,1} and {3,4,5}.
	g := graph.Path(6)
	plan := NewFaultPlan(6, 1)
	plan.Crash(2, 50)
	counted, target := plan.CountedTarget(g, map[int]int64{0: 1, 5: 9})
	if target != 3 {
		t.Fatalf("target = %d, want 3 (the max-holder's component)", target)
	}
	for v, want := range []bool{false, false, false, true, true, true} {
		if counted[v] != want {
			t.Fatalf("counted[%d] = %v, want %v (mask %v)", v, counted[v], want, counted)
		}
	}
	// No surviving max-holder: every surviving source roots the BFS.
	plan2 := NewFaultPlan(6, 1)
	plan2.Crash(2, 50)
	plan2.Crash(5, 50)
	counted2, target2 := plan2.CountedTarget(g, map[int]int64{0: 1, 5: 9})
	if target2 != 2 || !counted2[0] || !counted2[1] {
		t.Fatalf("fallback scoping: target %d mask %v, want 2 over {0,1}", target2, counted2)
	}
}

// TestCountedTargetNoSurvivingSourcePins is the instant-Done regression:
// with every source crashed the target must be pinned out of reach
// (n+1), never 0 — a zero target would satisfy Progress before round 0
// and report a dead broadcast complete.
func TestCountedTargetNoSurvivingSourcePins(t *testing.T) {
	g := graph.Path(4)
	plan := NewFaultPlan(4, 1)
	plan.Crash(0, 1000) // even a far-future crash round marks a non-survivor
	counted, target := plan.CountedTarget(g, map[int]int64{0: 9})
	if target != 5 {
		t.Fatalf("target = %d, want n+1 = 5 (unreachable pin)", target)
	}
	for v, c := range counted {
		if c {
			t.Fatalf("counted[%d] = true, want all false", v)
		}
	}
}
