package radio

import (
	"fmt"
	"slices"
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// shardProto is the determinism-matrix protocol: every node transmits its
// id when id % 5 == t % 5 and logs everything it hears (value, collision
// report, silence report) as a per-node event string. Node decisions are
// node-local, so the bulk seam may legally implement BulkRangeActor and
// ride the sharded act wave.
type shardProto struct {
	n     int
	quiet []bool
	log   [][]string
}

type shardProtoNode struct {
	p  *shardProto
	id int32
}

func (nd *shardProtoNode) Act(t int64) Action {
	if int64(nd.id)%5 == t%5 {
		return Transmit(Message{Kind: 1, A: int64(nd.id)})
	}
	return Listen
}

func (nd *shardProtoNode) Recv(t int64, msg *Message, collided bool) {
	switch {
	case msg != nil:
		nd.p.log[nd.id] = append(nd.p.log[nd.id], fmt.Sprintf("%d:msg%d", t, msg.A))
	case collided:
		nd.p.log[nd.id] = append(nd.p.log[nd.id], fmt.Sprintf("%d:coll", t))
	case !nd.p.quiet[nd.id]:
		nd.p.log[nd.id] = append(nd.p.log[nd.id], fmt.Sprintf("%d:sil", t))
	}
}

func (nd *shardProtoNode) IgnoresSilence() bool { return nd.p.quiet[nd.id] }

func (p *shardProto) ActBulk(t int64, tx []int32, msgs []Message) ([]int32, []Message) {
	return p.ActBulkRange(t, 0, int32(p.n), tx, msgs)
}

func (p *shardProto) ActBulkRange(t int64, lo, hi int32, tx []int32, msgs []Message) ([]int32, []Message) {
	for v := lo; v < hi; v++ {
		if int64(v)%5 == t%5 {
			tx = append(tx, v)
			msgs = append(msgs, Message{Kind: 1, A: int64(v)})
		}
	}
	return tx, msgs
}

func (p *shardProto) RecvBulk(t int64, listeners, msgIdx []int32, msgs []Message) {
	for k, vi := range listeners {
		p.log[vi] = append(p.log[vi], fmt.Sprintf("%d:msg%d", t, msgs[msgIdx[k]].A))
	}
}

var _ BulkRangeActor = (*shardProto)(nil)
var _ BulkReceiver = (*shardProto)(nil)

// shardRun is one cell of the determinism matrix: the engine's Metrics,
// the per-round hook trace, and the per-node event logs.
type shardRun struct {
	metrics Metrics
	trace   []string
	logs    [][]string
}

// mkShardPlan realizes the matrix's faulted scenario: a few crashes at
// staggered rounds, two jammers, loss on every third node.
func mkShardPlan(n int) *FaultPlan {
	p := NewFaultPlan(n, 77)
	p.Crash(3, 20)
	p.Crash(n/2, 0)
	p.Crash(n-2, 45)
	p.Jam(5, 0.25)
	p.Jam(n/3, 0.1)
	for v := 0; v < n; v += 3 {
		p.Loss(v, 0.2)
	}
	return p
}

func runShardCase(g *graph.Graph, shards int, faulted, cd, bulk bool, rounds int64) shardRun {
	n := g.N()
	p := &shardProto{n: n, quiet: make([]bool, n), log: make([][]string, n)}
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		// A mixed quiet/loud population exercises both the all-quiet
		// dirty-word classify and the full-range silence pass.
		p.quiet[v] = v%7 != 0
		nodes[v] = &shardProtoNode{p: p, id: int32(v)}
	}
	e := NewEngine(g, nodes)
	e.CollisionDetection = cd
	if bulk {
		e.Bulk = p
		e.BulkRecv = p
	}
	if faulted {
		e.SetFaults(mkShardPlan(n))
	}
	if shards > 1 {
		e.SetShards(shards)
	}
	var trace []string
	e.Hook = func(t int64, tx []int32, deliveries, collisions int) {
		ids := slices.Clone(tx)
		slices.Sort(ids)
		trace = append(trace, fmt.Sprintf("%d:%v d%d c%d", t, ids, deliveries, collisions))
	}
	e.Run(rounds, nil)
	return shardRun{metrics: e.Metrics, trace: trace, logs: p.log}
}

// TestShardDeterminismMatrix pins the tentpole invariant: every shard
// count produces byte-identical Metrics, per-round traces, and per-node
// event logs, across fault scenarios, both collision-detection variants,
// and both the per-node and bulk seams.
func TestShardDeterminismMatrix(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Grid(13, 17), // 221 nodes, 4 words
		graph.Gnp(300, 0.03, rng.New(9)),
	}
	const rounds = 60
	for _, g := range graphs {
		for _, faulted := range []bool{false, true} {
			for _, cd := range []bool{false, true} {
				for _, bulk := range []bool{false, true} {
					ref := runShardCase(g, 1, faulted, cd, bulk, rounds)
					for _, k := range []int{2, 3, 8} {
						got := runShardCase(g, k, faulted, cd, bulk, rounds)
						name := fmt.Sprintf("%s faulted=%v cd=%v bulk=%v k=%d", g, faulted, cd, bulk, k)
						if got.metrics != ref.metrics {
							t.Fatalf("%s: metrics diverged:\nk=1: %+v\nk=%d: %+v", name, ref.metrics, k, got.metrics)
						}
						if !slices.Equal(got.trace, ref.trace) {
							for i := range ref.trace {
								if i >= len(got.trace) || got.trace[i] != ref.trace[i] {
									t.Fatalf("%s: trace diverged at round %d:\nk=1: %s\nk=%d: %s", name, i, ref.trace[i], k, got.trace[i])
								}
							}
							t.Fatalf("%s: trace length %d vs %d", name, len(ref.trace), len(got.trace))
						}
						for v := range ref.logs {
							if !slices.Equal(got.logs[v], ref.logs[v]) {
								t.Fatalf("%s: node %d log diverged:\nk=1: %v\nk=%d: %v", name, v, ref.logs[v], k, got.logs[v])
							}
						}
					}
				}
			}
		}
	}
}

// TestSetShardsValidation pins the setup contract: shard counts clamp to
// the word count, k < 1 and mid-run installs panic, and Shards reports
// the resolved value.
func TestSetShardsValidation(t *testing.T) {
	g := graph.Path(100) // 2 words
	mk := func() *Engine {
		nodes := make([]Node, 100)
		for v := range nodes {
			nodes[v] = &shardProtoNode{p: &shardProto{n: 100, quiet: make([]bool, 100), log: make([][]string, 100)}, id: int32(v)}
		}
		return NewEngine(g, nodes)
	}
	e := mk()
	e.SetShards(8)
	if got := e.Shards(); got != 2 {
		t.Fatalf("Shards() = %d after SetShards(8) on a 2-word engine, want 2", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetShards(0) did not panic")
			}
		}()
		mk().SetShards(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mid-run SetShards did not panic")
			}
		}()
		e := mk()
		e.Step()
		e.SetShards(2)
	}()
}

// TestShardHookReportsBusyTime checks the telemetry seam: with a hook
// installed and k > 1, every shard reports at least one non-negative busy
// sample per run, and installing the hook changes no output.
func TestShardHookReportsBusyTime(t *testing.T) {
	g := graph.Gnp(300, 0.03, rng.New(9))
	ref := runShardCase(g, 3, false, false, true, 40)

	n := g.N()
	p := &shardProto{n: n, quiet: make([]bool, n), log: make([][]string, n)}
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		p.quiet[v] = v%7 != 0
		nodes[v] = &shardProtoNode{p: p, id: int32(v)}
	}
	e := NewEngine(g, nodes)
	e.Bulk = p
	e.BulkRecv = p
	e.SetShards(3)
	seen := make(map[int]int)
	e.ShardHook = func(shard int, busyNanos int64) {
		if busyNanos < 0 {
			t.Errorf("shard %d reported negative busy time %d", shard, busyNanos)
		}
		seen[shard]++
	}
	e.Run(40, nil)
	if e.Metrics != ref.metrics {
		t.Fatalf("ShardHook changed output: %+v vs %+v", e.Metrics, ref.metrics)
	}
	for s := 0; s < e.Shards(); s++ {
		if seen[s] == 0 {
			t.Errorf("shard %d never reported busy time", s)
		}
	}
}
