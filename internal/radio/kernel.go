// Word-parallel delivery kernels and intra-round sharding for Engine.Step.
//
// The round state that the seed engine kept in per-node arrays (hits,
// stamp, isTx, dead, dormant, quiet) lives here as bitsets — one bit per
// node, 64 nodes per word — so the listener pass classifies a whole word
// of nodes with a handful of ALU ops:
//
//	live = ^(txw | deadw) & tail     nodes that can listen this round
//	on   = onair & live              listeners with >= 1 transmitting neighbor
//	sing = on &^ collided            ... with exactly one  -> delivery
//	coll = on &  collided            ... with two or more  -> collision
//
// collided is maintained as a subset of onair by the marking kernels: a
// CSR transmitter sets collided where onair was already set before OR-ing
// its own bit in; a dense transmitter (degree above the graph.AdjBits
// threshold) does the same word-at-a-time with its adjacency row. A dirty
// summary bitset (one bit per engine word) records which words were
// touched, so sparse rounds scan and clear O(touched) words, not O(n/64).
//
// Sharding splits the marking pass over contiguous chunks of the transmit
// list and the classify pass over contiguous word ranges, across k
// goroutines with the round barrier as the only sync point. Shards never
// call into protocol code: they classify into private accumulators
// (counts, delivery/collision/silence lists) that the sequential replay
// step drains in shard order. Because shard ranges partition the node
// space in ascending order and every per-listener effect is node-local
// (see BulkReceiver's contract; loss coins come from per-node streams),
// Metrics, RecvBulk call contents and all protocol state are bit-exact at
// any shard count — k == 1 runs the very same classify+replay code, so
// there is no second semantics to drift from.
package radio

import (
	"fmt"
	"math/bits"
	"time"
)

// BulkRangeActor extends BulkActor with a node-range restricted variant so
// the Act half of a round can run sharded. ActBulkRange(t, lo, hi, ...)
// must append exactly the transmitters of ActBulk(t, ...) whose ids fall
// in [lo, hi), in ascending order, consuming the same per-node randomness
// — the engine concatenates the per-shard outputs in range order and the
// result must be byte-identical to the unsharded call. Protocols whose Act
// touches any cross-node state (a shared lane clock, a global counter)
// must not implement the extension; the engine then falls back to the
// sequential ActBulk even when sharding is enabled.
type BulkRangeActor interface {
	BulkActor
	// ActBulkRange appends the ids (ascending) and messages of this
	// round's transmitters with lo <= id < hi to tx and msgs.
	ActBulkRange(round int64, lo, hi int32, tx []int32, msgs []Message) ([]int32, []Message)
}

// ShardHook observes per-shard busy time when intra-round sharding is
// enabled: after each round the engine reports, for every shard that did
// work, the nanoseconds it spent inside the parallel waves. Purely
// observational (telemetry must never steer the simulation); the engine
// reads the wall clock only while a hook is installed.
type ShardHook func(shard int, busyNanos int64)

// shardState is one shard's arena: private marking bitsets (shard 0
// aliases the engine's), classify accumulators, and scratch for the
// sharded Act wave. All slices are allocated once and reused every round.
type shardState struct {
	eng *Engine
	idx int

	w0, w1 int   // classify: engine word range [w0, w1)
	lo, hi int32 // act: node range [lo, hi)
	t0, t1 int   // mark: transmit-list chunk [t0, t1), set per round

	onair    []uint64 // private marking target; aliases engine arrays for shard 0
	collided []uint64
	dirty    []uint64

	tx   []int32 // act-wave scratch
	msgs []Message

	rcvID  []int32 // classify output: delivery listeners (ascending)
	rcvIdx []int32 // txmsg index heard by each delivery listener
	coll   []int32 // collision-report listeners (collision detection only)
	silent []int32 // nothing-heard listeners owed a Recv(t, nil, false)

	deliveries int
	collisions int
	busy       int64 // accumulated busy nanos, flushed to ShardHook
}

// maxShards caps SetShards: beyond it the per-wave barrier overhead
// dwarfs any win and the shard arenas (and resident workers) waste
// memory.
const maxShards = 256

// Shards returns the configured intra-round shard count (>= 1).
func (e *Engine) Shards() int { return e.shards }

// SetShards partitions the transmit-marking and listener-classify passes
// of every subsequent Step across k goroutines: k-1 resident workers
// spawned here and parked on command channels between waves (see
// workers.go), one wave on the caller. It must be called before the first
// Step. Output is bit-exact at any k — see the package comment for the
// argument — so the knob is pure mechanical sympathy: worth it from
// roughly n >= 3*10^4 on otherwise idle cores, a small constant overhead
// below that. k is capped at the engine's word count (extra shards would
// own empty ranges) and at maxShards. The workers are released by
// Engine.Close or, failing that, by a GC cleanup once the engine is
// unreachable.
func (e *Engine) SetShards(k int) {
	if e.round != 0 {
		panic("radio: SetShards must be called before the first Step")
	}
	if k < 1 {
		panic(fmt.Sprintf("radio: shard count %d, want >= 1", k))
	}
	if k > e.words && e.words > 0 {
		k = e.words
	}
	if k > maxShards {
		k = maxShards
	}
	e.Close() // re-call: release any previous pool before resizing
	e.shards = k
	e.sh = make([]shardState, k)
	base, rem := 0, 0
	if k > 0 {
		base, rem = e.words/k, e.words%k
	}
	w := 0
	for s := range e.sh {
		st := &e.sh[s]
		st.eng = e
		st.idx = s
		span := base
		if s < rem {
			span++
		}
		st.w0, st.w1 = w, w+span
		w += span
		st.lo = int32(st.w0 << 6)
		hi := st.w1 << 6
		if hi > len(e.Nodes) {
			hi = len(e.Nodes)
		}
		st.hi = int32(hi)
		if s == 0 {
			// Shard 0 marks straight into the engine bitsets; only the
			// spawned shards need private arenas to merge from.
			st.onair, st.collided, st.dirty = e.onair, e.collided, e.dirty
		} else {
			st.onair = make([]uint64, e.words)
			st.collided = make([]uint64, e.words)
			st.dirty = make([]uint64, len(e.dirty))
		}
	}
	if k > 1 {
		e.spawnWorkers(k)
	}
}

// markAll is the unsharded marking pass: scatter every transmitter's
// neighborhood into the onair/collided bitsets, recording the heard
// message index for first-touch (CSR-marked) listeners so singleton
// resolution is O(1) on the common path.
//
//radionet:hotpath
func (e *Engine) markAll() {
	cur := e.round // Step already advanced it: cur = t+1, never zero
	st := &e.sh[0] // aliases e.onair/e.collided/e.dirty
	for j, u := range e.transmit {
		ui := int(u)
		if row := e.dense.Row(ui); row != nil {
			st.orRow(row)
			continue
		}
		for _, v := range e.G.Neighbors(ui) {
			w := int(v) >> 6
			b := uint64(1) << (uint(v) & 63)
			if st.onair[w]&b == 0 {
				st.onair[w] |= b
				st.dirty[w>>6] |= 1 << (uint(w) & 63)
				e.inbox[v] = int32(j)
				e.instamp[v] = cur
			} else {
				st.collided[w] |= b
			}
		}
	}
}

// orRow folds one dense transmitter's adjacency row into the shard's
// marking bitsets, word-at-a-time: bits already on the air collide.
//
//radionet:hotpath
func (st *shardState) orRow(row []uint64) {
	onair, collided := st.onair, st.collided
	for w, rw := range row {
		if rw == 0 {
			continue
		}
		collided[w] |= onair[w] & rw
		onair[w] |= rw
		st.dirty[w>>6] |= 1 << (uint(w) & 63)
	}
}

// runMark is the sharded marking pass over one chunk of the transmit
// list. It never fills inbox/instamp (listeners are touched by multiple
// shards); sharded singleton resolution goes through Engine.resolve.
//
//radionet:hotpath
func (st *shardState) runMark() {
	e := st.eng
	for _, u := range e.transmit[st.t0:st.t1] {
		ui := int(u)
		if row := e.dense.Row(ui); row != nil {
			st.orRow(row)
			continue
		}
		for _, v := range e.G.Neighbors(ui) {
			w := int(v) >> 6
			b := uint64(1) << (uint(v) & 63)
			st.collided[w] |= st.onair[w] & b
			st.onair[w] |= b
			st.dirty[w>>6] |= 1 << (uint(w) & 63)
		}
	}
}

// mergeMarks folds the spawned shards' private marking bitsets into the
// engine's: a node on the air in two chunks collided even if neither
// chunk saw a second transmitter. The fold is iterated over each shard's
// dirty summary, which also zeroes the private arenas for the next round.
// Merge order is fixed (ascending shard) and immaterial — union and
// pairwise-overlap accumulation commute.
//
//radionet:hotpath
func (e *Engine) mergeMarks() {
	for s := 1; s < e.shards; s++ {
		st := &e.sh[s]
		for ws, sm := range st.dirty {
			if sm == 0 {
				continue
			}
			e.dirty[ws] |= sm
			for ; sm != 0; sm &= sm - 1 {
				w := ws<<6 + bits.TrailingZeros64(sm)
				e.collided[w] |= st.collided[w] | (e.onair[w] & st.onair[w])
				e.onair[w] |= st.onair[w]
				st.onair[w] = 0
				st.collided[w] = 0
			}
			st.dirty[ws] = 0
		}
	}
}

// runClassify scans the shard's word range and buckets every listener
// into the delivery / collision-report / silence-report accumulators. No
// protocol code runs here (replay is sequential); the only mutation
// outside the shard is the per-node loss stream draw, and the word ranges
// partition nodes so no stream is shared. When every node ignores silence
// only touched (dirty) words can owe a call; otherwise the full range is
// scanned for silence reports, which is what the seed's dense pass paid
// per node.
//
//radionet:hotpath
func (st *shardState) runClassify() {
	e := st.eng
	st.deliveries, st.collisions = 0, 0
	st.rcvID = st.rcvID[:0]
	st.rcvIdx = st.rcvIdx[:0]
	st.coll = st.coll[:0]
	st.silent = st.silent[:0]
	lo, hi := st.w0, st.w1
	if lo >= hi {
		return
	}
	if e.allQuiet {
		first, last := lo>>6, (hi-1)>>6
		for ws := first; ws <= last; ws++ {
			m := e.dirty[ws]
			if ws == first {
				m &= ^uint64(0) << (uint(lo) & 63)
			}
			if ws == last && hi&63 != 0 {
				m &= uint64(1)<<(uint(hi)&63) - 1
			}
			for ; m != 0; m &= m - 1 {
				st.classifyWord(ws<<6 + bits.TrailingZeros64(m))
			}
		}
		return
	}
	for w := lo; w < hi; w++ {
		st.classifyWord(w)
	}
}

// classifyWord applies the delivery kernel to one 64-node word.
//
//radionet:hotpath
func (st *shardState) classifyWord(w int) {
	e := st.eng
	mask := ^uint64(0)
	if w == e.words-1 {
		mask = e.tailMask
	}
	ow := e.onair[w]
	live := ^(e.txw[w] | e.deadw[w]) & mask
	on := ow & live
	cw := e.collided[w]
	sing := on &^ cw
	coll := on & cw
	st.deliveries += bits.OnesCount64(sing)
	st.collisions += bits.OnesCount64(coll)
	base := int32(w << 6)
	for s := sing; s != 0; s &= s - 1 {
		v := base + int32(bits.TrailingZeros64(s))
		if e.hasLoss && e.fault.dropRecv(int(v)) {
			continue // reception faded: on the air, never delivered
		}
		st.rcvID = append(st.rcvID, v)
		st.rcvIdx = append(st.rcvIdx, e.resolve(v))
	}
	qd := e.quietw[w] | e.dormw[w]
	var silw uint64
	if e.CollisionDetection {
		// A collision report can wake a dormant node and is never a
		// silence, so every collided listener gets a Recv — quiet and
		// dormant included.
		for c := coll; c != 0; c &= c - 1 {
			st.coll = append(st.coll, base+int32(bits.TrailingZeros64(c)))
		}
	} else {
		// Without collision detection a collision IS silence: the call is
		// Recv(t, nil, false), a no-op for quiet and dormant listeners by
		// their SilenceOblivious/Sleeper promises, so only the rest fold
		// into the silence list.
		silw = coll &^ qd
	}
	if !e.allQuiet {
		silw |= live &^ ow &^ qd
	}
	for s := silw; s != 0; s &= s - 1 {
		st.silent = append(st.silent, base+int32(bits.TrailingZeros64(s)))
	}
}

// resolve returns the txmsg index of singleton listener v's unique
// transmitting neighbor. The unsharded CSR marking pass recorded it in
// inbox; otherwise (dense-marked or sharded rounds) the transmitter is
// recovered by intersecting v's neighborhood with the txw bitset — the
// first hit is the only one, and txidx maps it back to the same message
// index the inbox path would have stored.
//
//radionet:hotpath
func (e *Engine) resolve(v int32) int32 {
	if e.instamp[v] == e.round {
		return e.inbox[v]
	}
	vi := int(v)
	if row := e.dense.Row(vi); row != nil {
		for w, rw := range row {
			if h := rw & e.txw[w]; h != 0 {
				return e.txidx[w<<6+bits.TrailingZeros64(h)]
			}
		}
	}
	for _, u := range e.G.Neighbors(vi) {
		if e.txw[u>>6]&(1<<(uint(u)&63)) != 0 {
			return e.txidx[u]
		}
	}
	panic("radio: singleton listener with no transmitting neighbor") //lint:alloc unreachable invariant-violation panic, never taken on the hot path
}

// clearRound zeroes the touched marking words via the dirty summary, so
// sparse rounds clear O(touched) words instead of O(n/64).
//
//radionet:hotpath
func (e *Engine) clearRound() {
	for ws, sm := range e.dirty {
		if sm == 0 {
			continue
		}
		for ; sm != 0; sm &= sm - 1 {
			w := ws<<6 + bits.TrailingZeros64(sm)
			e.onair[w] = 0
			e.collided[w] = 0
		}
		e.dirty[ws] = 0
	}
}

// recheckDormant re-queries a dormant node's Sleeper state after a
// delivered message or collision report, clearing its dormancy bit on
// wake-up (dormancy is exited at most once).
//
//radionet:hotpath
func (e *Engine) recheckDormant(v int32) {
	w := int(v) >> 6
	b := uint64(1) << (uint(v) & 63)
	if e.dormw[w]&b != 0 && !e.sleeper[v].Dormant() {
		e.dormw[w] &^= b
	}
}

// runAct is the sharded Act wave: the shard's node range through the
// protocol's BulkRangeActor into private scratch, concatenated by the
// caller in shard order.
//
//radionet:hotpath
func (st *shardState) runAct() {
	e := st.eng
	st.tx = st.tx[:0]
	st.msgs = st.msgs[:0]
	st.tx, st.msgs = e.rangeBulk.ActBulkRange(e.round-1, st.lo, st.hi, st.tx, st.msgs)
}

// Timed wrappers: wall-clock reads are telemetry-only side channels,
// taken solely while a ShardHook is installed and pinned output-neutral
// (the hook cannot steer the engine).

func (st *shardState) timedAct() {
	if st.eng.ShardHook == nil {
		st.runAct()
		return
	}
	t0 := time.Now() //lint:wallclock shard busy telemetry, gated on ShardHook and output-neutral
	st.runAct()
	st.busy += time.Since(t0).Nanoseconds() //lint:wallclock shard busy telemetry, gated on ShardHook and output-neutral
}

func (st *shardState) timedMark() {
	if st.eng.ShardHook == nil {
		st.runMark()
		return
	}
	t0 := time.Now() //lint:wallclock shard busy telemetry, gated on ShardHook and output-neutral
	st.runMark()
	st.busy += time.Since(t0).Nanoseconds() //lint:wallclock shard busy telemetry, gated on ShardHook and output-neutral
}

func (st *shardState) timedClassify() {
	if st.eng.ShardHook == nil {
		st.runClassify()
		return
	}
	t0 := time.Now() //lint:wallclock shard busy telemetry, gated on ShardHook and output-neutral
	st.runClassify()
	st.busy += time.Since(t0).Nanoseconds() //lint:wallclock shard busy telemetry, gated on ShardHook and output-neutral
}

// Wave commands for the resident shard workers (see Engine.wave and
// shardWorker in workers.go).
const (
	cmdAct uint8 = iota
	cmdMark
	cmdClassify
)

// run dispatches one wave command on this shard.
//
//radionet:hotpath
func (st *shardState) run(cmd uint8) {
	switch cmd {
	case cmdAct:
		st.timedAct()
	case cmdMark:
		st.timedMark()
	default:
		st.timedClassify()
	}
}

// wave runs one command on every shard: shards 1..k-1 on the resident
// workers (one channel send each — the workers were spawned at SetShards
// and park between rounds, replacing the former 3·(k-1) goroutine spawns
// per round), shard 0 inline on the caller, then the WaitGroup barrier.
// A closed engine (or one whose worker pool never started) degrades to
// running every shard inline, sequentially — the identical per-shard code,
// so output cannot differ.
//
//radionet:hotpath
func (e *Engine) wave(cmd uint8) {
	if e.workerCmds == nil {
		for s := 1; s < e.shards; s++ {
			e.sh[s].run(cmd)
		}
		e.sh[0].run(cmd)
		return
	}
	e.wg.Add(e.shards - 1)
	for _, ch := range e.workerCmds {
		ch <- cmd
	}
	e.sh[0].run(cmd)
	e.wg.Wait()
}

// actWave runs the sharded Act phase and concatenates the per-shard
// transmit lists in shard (= ascending id) order.
//
//radionet:hotpath
func (e *Engine) actWave() {
	e.wave(cmdAct)
	for s := range e.sh {
		st := &e.sh[s]
		e.transmit = append(e.transmit, st.tx...)
		e.txmsg = append(e.txmsg, st.msgs...)
	}
}

// markWave runs the sharded marking phase: the transmit list is split
// into contiguous chunks, each shard scatters its chunk into its private
// bitsets (shard 0 into the engine's), and the spawned shards are merged
// sequentially afterwards.
//
//radionet:hotpath
func (e *Engine) markWave() {
	k := e.shards
	n := len(e.transmit)
	base, rem := n/k, n%k
	at := 0
	for s := 0; s < k; s++ {
		span := base
		if s < rem {
			span++
		}
		e.sh[s].t0, e.sh[s].t1 = at, at+span
		at += span
	}
	e.wave(cmdMark)
	e.mergeMarks()
}

// classifyWave runs the sharded listener-classify phase.
//
//radionet:hotpath
func (e *Engine) classifyWave() {
	e.wave(cmdClassify)
}

// flushShardBusy reports and resets the accumulated per-shard busy time.
func (e *Engine) flushShardBusy() {
	for s := range e.sh {
		if b := e.sh[s].busy; b != 0 {
			e.ShardHook(s, b)
			e.sh[s].busy = 0
		}
	}
}
