package radio

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

func TestCrashNodeStopsActingAndReceiving(t *testing.T) {
	acts, recvs := 0, 0
	inner := &FuncNode{
		ActFn:  func(int64) Action { acts++; return Transmit(Message{A: 1}) },
		RecvFn: func(int64, *Message, bool) { recvs++ },
	}
	c := &CrashNode{Inner: inner, CrashAt: 3}
	g := graph.Path(2)
	e := NewEngine(g, []Node{c, &beacon{v: 9}})
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if acts != 3 {
		t.Fatalf("inner acted %d times, want 3", acts)
	}
	if recvs != 0 {
		// Node transmits while alive so it cannot receive; after crash it
		// must not receive either.
		t.Fatalf("inner received %d times, want 0", recvs)
	}
	if !c.Crashed(3) || c.Crashed(2) {
		t.Fatal("Crashed() boundary wrong")
	}
}

func TestCrashedNodeIsSilentOnAir(t *testing.T) {
	g := graph.Path(2)
	heard := 0
	rx := &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
		if m != nil {
			heard++
		}
	}}
	tx := &CrashNode{Inner: &beacon{v: 5}, CrashAt: 4}
	e := NewEngine(g, []Node{tx, rx})
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if heard != 4 {
		t.Fatalf("receiver heard %d transmissions, want 4", heard)
	}
}

func TestJamNodeCausesCollisions(t *testing.T) {
	// Star center listens; one leaf beacons, the other jams always.
	g := graph.Star(3)
	heard, silent := 0, 0
	rx := &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
		if m != nil {
			heard++
		} else {
			silent++
		}
	}}
	jam := &JamNode{P: 1, Rnd: rng.New(1)}
	e := NewEngine(g, []Node{rx, &beacon{v: 5}, jam})
	for i := 0; i < 20; i++ {
		e.Step()
	}
	if heard != 0 {
		t.Fatalf("center heard %d messages through a constant jammer", heard)
	}
	if e.Metrics.Collisions != 20 {
		t.Fatalf("collisions = %d, want 20", e.Metrics.Collisions)
	}
}

func TestJamNodePassThrough(t *testing.T) {
	// With P=0 the wrapper is transparent.
	acts := 0
	inner := &FuncNode{ActFn: func(int64) Action { acts++; return Listen }}
	j := &JamNode{Inner: inner, P: 0, Rnd: rng.New(2)}
	g := graph.Path(2)
	e := NewEngine(g, []Node{j, Silent{}})
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if acts != 5 {
		t.Fatalf("inner acted %d times, want 5", acts)
	}
}

func TestLossyNodeDropsReceptions(t *testing.T) {
	g := graph.Path(2)
	heard, silent := 0, 0
	inner := &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
		if m != nil {
			heard++
		} else {
			silent++
		}
	}}
	l := &LossyNode{Inner: inner, P: 0.5, Rnd: rng.New(3)}
	e := NewEngine(g, []Node{l, &beacon{v: 5}})
	for i := 0; i < 400; i++ {
		e.Step()
	}
	if heard == 0 || silent == 0 {
		t.Fatalf("lossy node heard=%d silent=%d, want both nonzero", heard, silent)
	}
	frac := float64(heard) / 400
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("delivery fraction %.2f, want ~0.5", frac)
	}
}
