package radio

import (
	"testing"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

func TestCrashNodeStopsActingAndReceiving(t *testing.T) {
	acts, recvs := 0, 0
	inner := &FuncNode{
		ActFn:  func(int64) Action { acts++; return Transmit(Message{A: 1}) },
		RecvFn: func(int64, *Message, bool) { recvs++ },
	}
	c := &CrashNode{Inner: inner, CrashAt: 3}
	g := graph.Path(2)
	e := NewEngine(g, []Node{c, &beacon{v: 9}})
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if acts != 3 {
		t.Fatalf("inner acted %d times, want 3", acts)
	}
	if recvs != 0 {
		// Node transmits while alive so it cannot receive; after crash it
		// must not receive either.
		t.Fatalf("inner received %d times, want 0", recvs)
	}
	if !c.Crashed(3) || c.Crashed(2) {
		t.Fatal("Crashed() boundary wrong")
	}
}

func TestCrashedNodeIsSilentOnAir(t *testing.T) {
	g := graph.Path(2)
	heard := 0
	rx := &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
		if m != nil {
			heard++
		}
	}}
	tx := &CrashNode{Inner: &beacon{v: 5}, CrashAt: 4}
	e := NewEngine(g, []Node{tx, rx})
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if heard != 4 {
		t.Fatalf("receiver heard %d transmissions, want 4", heard)
	}
}

// TestFaultWrapperRoundBasisIsGlobal pins the satellite round-basis
// convention: fault wrappers interpret rounds in the basis their Act/Recv
// calls arrive in, so the supported composition — wrapper outermost,
// wrapping the TDM — crashes at the GLOBAL engine round. The inverted
// nesting (wrapper inside a lane) would compare lane-local rounds and fire
// k times later; this test is the documentation's teeth.
func TestFaultWrapperRoundBasisIsGlobal(t *testing.T) {
	countingLanes := func() (*TDM, *int) {
		acts := 0
		lane := func() Node {
			return &FuncNode{ActFn: func(int64) Action { acts++; return Listen }}
		}
		return NewTDM(lane(), lane()), &acts
	}

	// Supported: CrashNode wraps the TDM. CrashAt 5 is a global round, so
	// the two lanes execute exactly 5 lane rounds in total.
	tdm, acts := countingLanes()
	e := NewEngine(graph.Path(2), []Node{&CrashNode{Inner: tdm, CrashAt: 5}, Silent{}})
	for i := 0; i < 12; i++ {
		e.Step()
	}
	if *acts != 5 {
		t.Fatalf("outermost CrashNode: %d lane acts, want 5 (global rounds)", *acts)
	}

	// Footgun: the same CrashAt inside one TDM lane is lane-local — that
	// lane sees rounds 0, 1, 2, ... at half speed and crashes at global
	// round 10, not 5.
	acts2 := 0
	inner := &FuncNode{ActFn: func(int64) Action { acts2++; return Listen }}
	tdm2 := NewTDM(&CrashNode{Inner: inner, CrashAt: 5}, Silent{})
	e2 := NewEngine(graph.Path(2), []Node{tdm2, Silent{}})
	for i := 0; i < 20; i++ {
		e2.Step()
	}
	if acts2 != 5 {
		// 5 acts happen over 10 GLOBAL rounds here — twice the intended
		// lifetime. The count is the same but the wall-clock isn't; the
		// assertion documents that the lane-local basis stretches time.
		t.Fatalf("lane-nested CrashNode: %d lane acts, want 5", acts2)
	}
}

// TestJamNodeStepsInnerEveryRound pins the jam-wrapper contract the
// engine overlay relies on: the inner protocol machine advances (and
// consumes its randomness) even in rounds where the jam coin fires.
func TestJamNodeStepsInnerEveryRound(t *testing.T) {
	acts := 0
	inner := &FuncNode{ActFn: func(int64) Action { acts++; return Listen }}
	j := &JamNode{Inner: inner, P: 1, Rnd: rng.New(8)}
	e := NewEngine(graph.Path(2), []Node{j, Silent{}})
	for i := 0; i < 6; i++ {
		e.Step()
	}
	if acts != 6 {
		t.Fatalf("inner acted %d times under constant jamming, want 6", acts)
	}
	if e.Metrics.Transmissions != 6 {
		t.Fatalf("transmissions = %d, want 6 (all noise)", e.Metrics.Transmissions)
	}
}

func TestJamNodeCausesCollisions(t *testing.T) {
	// Star center listens; one leaf beacons, the other jams always.
	g := graph.Star(3)
	heard, silent := 0, 0
	rx := &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
		if m != nil {
			heard++
		} else {
			silent++
		}
	}}
	jam := &JamNode{P: 1, Rnd: rng.New(1)}
	e := NewEngine(g, []Node{rx, &beacon{v: 5}, jam})
	for i := 0; i < 20; i++ {
		e.Step()
	}
	if heard != 0 {
		t.Fatalf("center heard %d messages through a constant jammer", heard)
	}
	if e.Metrics.Collisions != 20 {
		t.Fatalf("collisions = %d, want 20", e.Metrics.Collisions)
	}
}

func TestJamNodePassThrough(t *testing.T) {
	// With P=0 the wrapper is transparent.
	acts := 0
	inner := &FuncNode{ActFn: func(int64) Action { acts++; return Listen }}
	j := &JamNode{Inner: inner, P: 0, Rnd: rng.New(2)}
	g := graph.Path(2)
	e := NewEngine(g, []Node{j, Silent{}})
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if acts != 5 {
		t.Fatalf("inner acted %d times, want 5", acts)
	}
}

func TestLossyNodeDropsReceptions(t *testing.T) {
	g := graph.Path(2)
	heard, silent := 0, 0
	inner := &FuncNode{RecvFn: func(_ int64, m *Message, _ bool) {
		if m != nil {
			heard++
		} else {
			silent++
		}
	}}
	l := &LossyNode{Inner: inner, P: 0.5, Rnd: rng.New(3)}
	e := NewEngine(g, []Node{l, &beacon{v: 5}})
	for i := 0; i < 400; i++ {
		e.Step()
	}
	if heard == 0 || silent == 0 {
		t.Fatalf("lossy node heard=%d silent=%d, want both nonzero", heard, silent)
	}
	frac := float64(heard) / 400
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("delivery fraction %.2f, want ~0.5", frac)
	}
}
