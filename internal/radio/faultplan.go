package radio

import (
	"fmt"
	"math"
	"slices"

	"radionet/internal/graph"
	"radionet/internal/rng"
)

// NoCrash is the CrashRound value of a node that never crashes.
const NoCrash = int64(math.MaxInt64)

// Stream-derivation tags for the plan's per-node fault coins. Wrap and the
// engine overlay derive the same streams from the same (seed, node) pair,
// which is what makes the two realizations of a plan observationally
// identical.
const (
	jamStreamTag  = 0x4a6d_0000_0000_0000
	lossStreamTag = 0x1055_0000_0000_0000
)

// FaultPlan is the engine-side fault overlay: a whole-network fault
// scenario — per-node crash rounds, a jammer set with per-round noise
// probability, and per-node reception-loss probability — that the engine
// applies inside Step as masks over the transmit list and the delivery
// pass. Unlike per-node fault wrappers (CrashNode et al.), the overlay
// composes with the BulkActor/BulkReceiver fast paths: the protocol
// computes its round obliviously and the engine masks dead transmitters,
// injects noise, and fades receptions afterwards, so faulted runs keep the
// bulk-path speed.
//
// Semantics, round by round (all rounds are global engine rounds):
//
//   - A node with crash round R is dead in every round t >= R: it never
//     transmits (bulk-computed transmissions are masked off the air), is
//     skipped by both listener passes, and stops counting toward
//     Metrics.Deliveries/Collisions. Its protocol machine may keep
//     drawing from its private randomness stream on the bulk path; the
//     draws are unobservable because nothing the node does reaches the
//     network.
//   - A live jammer draws one noise coin per round; when it fires, the
//     node transmits KindNoise this round regardless of what its protocol
//     chose (the protocol machine still stepped — see JamNode, which
//     mirrors this).
//   - A lossy node draws one fade coin per successful reception; a faded
//     reception still counts as an engine delivery (the message was on the
//     air) but never reaches the protocol. The overlay skips the Recv call
//     outright, which is equivalent to LossyNode's silence hand-off for
//     every protocol in this repository (all are silence-oblivious).
//
// A plan is single-use: its jam/loss coin streams advance as the run
// executes. Build one plan per engine (or per Wrap-based construction).
type FaultPlan struct {
	n    int
	base rng.Rand // fault-coin stream root, derived from the plan seed

	crashAt []int64 // nil, or per-node crash round (NoCrash = never)
	jamP    []float64
	lossP   []float64
	jamRnd  []rng.Rand
	lossRnd []rng.Rand

	jammers []int32 // ascending ids with jamP > 0
	crashes int
	hasLoss bool
}

// NewFaultPlan returns an empty plan for an n-node network. seed derives
// every fault coin (jam and loss streams); fault sites are chosen by the
// caller via Crash/Jam/Loss.
func NewFaultPlan(n int, seed uint64) *FaultPlan {
	return &FaultPlan{n: n, base: *rng.New(seed)}
}

// N returns the network size the plan was built for.
func (p *FaultPlan) N() int { return p.n }

func (p *FaultPlan) check(v int) {
	if v < 0 || v >= p.n {
		panic(fmt.Sprintf("radio: fault site %d out of range [0, %d)", v, p.n))
	}
}

// Crash schedules node v to die at the given global round (dead in every
// round >= round; values <= 0 mean dead from the start). Re-crashing a
// node keeps the earlier round.
func (p *FaultPlan) Crash(v int, round int64) {
	p.check(v)
	if round < 0 {
		round = 0
	}
	if p.crashAt == nil {
		p.crashAt = make([]int64, p.n)
		for i := range p.crashAt {
			p.crashAt[i] = NoCrash
		}
	}
	if p.crashAt[v] == NoCrash {
		p.crashes++
	}
	if round < p.crashAt[v] {
		p.crashAt[v] = round
	}
}

// Jam makes node v transmit noise with probability prob each round it is
// alive.
func (p *FaultPlan) Jam(v int, prob float64) {
	p.check(v)
	if prob <= 0 {
		return
	}
	if p.jamP == nil {
		p.jamP = make([]float64, p.n)
		p.jamRnd = make([]rng.Rand, p.n)
	}
	if p.jamP[v] == 0 {
		i, _ := slices.BinarySearch(p.jammers, int32(v))
		p.jammers = slices.Insert(p.jammers, i, int32(v))
		p.jamRnd[v] = *p.base.Fork(jamStreamTag | uint64(v))
	}
	p.jamP[v] = prob
}

// Loss makes node v drop each successful reception with probability prob.
func (p *FaultPlan) Loss(v int, prob float64) {
	p.check(v)
	if prob <= 0 {
		return
	}
	if p.lossP == nil {
		p.lossP = make([]float64, p.n)
		p.lossRnd = make([]rng.Rand, p.n)
	}
	if p.lossP[v] == 0 {
		p.lossRnd[v] = *p.base.Fork(lossStreamTag | uint64(v))
	}
	p.lossP[v] = prob
	p.hasLoss = true
}

// CrashRound returns the round node v dies at, or NoCrash.
func (p *FaultPlan) CrashRound(v int) int64 {
	if p.crashAt == nil {
		return NoCrash
	}
	return p.crashAt[v]
}

// Alive reports whether node v never crashes under the plan.
func (p *FaultPlan) Alive(v int) bool { return p.CrashRound(v) == NoCrash }

// Survivors returns the number of nodes that never crash.
func (p *FaultPlan) Survivors() int { return p.n - p.crashes }

// SurvivorMask returns the per-node never-crashes mask.
func (p *FaultPlan) SurvivorMask() []bool {
	alive := make([]bool, p.n)
	for v := range alive {
		alive[v] = p.Alive(v)
	}
	return alive
}

// CountedTarget computes the survivor-scoped completion mask and target
// for a protocol propagating the highest source message from sources on
// g: the nodes reachable from the surviving *maximum-holding* sources
// through never-crashing nodes, found by BFS over the crash schedule's
// survivor graph. Protocols install the mask on their Progress counting
// (only masked nodes count a threshold crossing) and use the target as
// the Progress goal, which is what lets faulted runs terminate instead of
// waiting forever on the dead.
//
// Rooting the BFS at the max-holders matters for multi-source runs
// (Compete(S), the leader elections): completion means reaching the
// *highest* message, and a survivor component that only contains
// lower-valued sources can never get there once crashes disconnect it —
// counting it would pin Done at false forever. For a single-source
// broadcast the source is trivially the max-holder, so the scoping is
// unchanged. When no max-holder survives (a fault plan that did not
// protect the would-be winner), every surviving source roots the BFS;
// when no source survives at all, the target is pinned out of reach
// (n+1, the same convention decay uses for an empty source map): the
// run then honestly exhausts its budget with Done == false rather than
// declare instant completion on an empty target.
func (p *FaultPlan) CountedTarget(g *graph.Graph, sources map[int]int64) (counted []bool, target int64) {
	alive := p.SurvivorMask()
	max, first := int64(0), true
	//lint:ordered max reduction over the values; order cannot change the maximum
	for _, v := range sources {
		if first || v > max {
			max, first = v, false
		}
	}
	roots := make([]int, 0, len(sources))
	//lint:ordered roots form a set; multi-root BFS reachability is root-order independent
	for s, v := range sources {
		if alive[s] && v == max {
			roots = append(roots, s)
		}
	}
	if len(roots) == 0 {
		//lint:ordered roots form a set; multi-root BFS reachability is root-order independent
		for s := range sources {
			if alive[s] {
				roots = append(roots, s)
			}
		}
	}
	counted = make([]bool, p.n)
	if len(roots) == 0 {
		return counted, int64(p.n) + 1
	}
	for v, dv := range g.MultiBFSAlive(roots, alive) {
		if dv != graph.Unreached {
			counted[v] = true
			target++
		}
	}
	return counted, target
}

// Wrap builds the per-node wrapper chain realizing the plan for node v —
// CrashNode outermost, then JamNode, then LossyNode around inner — with
// coin streams derived exactly as the engine overlay derives them, so a
// Wrap-based run and an overlay run of equal plans are observationally
// identical round for round (the equivalence the fault tests pin). The
// wrappers draw from freshly forked streams, leaving the plan's own
// streams untouched; still, do not both install a plan in an engine and
// Wrap with the same plan instance — use two plans built with equal
// parameters.
func (p *FaultPlan) Wrap(v int, inner Node) Node {
	p.check(v)
	nd := inner
	if p.lossP != nil && p.lossP[v] > 0 {
		nd = &LossyNode{Inner: nd, P: p.lossP[v], Rnd: p.base.Fork(lossStreamTag | uint64(v))}
	}
	if p.jamP != nil && p.jamP[v] > 0 {
		nd = &JamNode{Inner: nd, P: p.jamP[v], Rnd: p.base.Fork(jamStreamTag | uint64(v))}
	}
	if r := p.CrashRound(v); r != NoCrash {
		nd = &CrashNode{Inner: nd, CrashAt: r}
	}
	return nd
}

// dropRecv draws node v's fade coin for a delivery and reports whether the
// reception is lost. Only lossy nodes consume randomness, mirroring
// LossyNode's msg != nil gate.
func (p *FaultPlan) dropRecv(v int) bool {
	return p.lossP != nil && p.lossP[v] > 0 && p.lossRnd[v].Bernoulli(p.lossP[v])
}
