package schedule

import (
	"math"
	"testing"

	"radionet/internal/cluster"
	"radionet/internal/graph"
	"radionet/internal/rng"
)

func TestLadder(t *testing.T) {
	tests := []struct{ cont, want int }{
		{0, 1}, {1, 2}, {2, 3}, {3, 3}, {4, 4}, {7, 4}, {8, 5}, {100, 8},
	}
	for _, tc := range tests {
		if got := ladder(tc.cont); got != tc.want {
			t.Errorf("ladder(%d) = %d, want %d", tc.cont, got, tc.want)
		}
	}
}

func TestProbSweep(t *testing.T) {
	// Ladder of 3 sweeps 1/2, 1/4, 1/8 and repeats.
	want := []float64{0.5, 0.25, 0.125, 0.5, 0.25}
	for i, w := range want {
		if got := Prob(3, int64(i)); got != w {
			t.Errorf("Prob(3,%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBuildOnFamilies(t *testing.T) {
	r := rng.New(2)
	for _, g := range []*graph.Graph{
		graph.Path(40),
		graph.PathOfCliques(5, 8),
		graph.Grid(8, 8),
		graph.Gnp(80, 0.06, r.Fork(1)),
	} {
		part := cluster.Partition(g, 0.2, r.Fork(7))
		s := Build(g, part)
		if err := s.Validate(); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if s.MaxLevel < 1 {
			t.Fatalf("%v: MaxLevel %d", g, s.MaxLevel)
		}
	}
}

func TestLaddersReflectContention(t *testing.T) {
	// On a path, in-cluster contention is at most 2, so every ladder is
	// tiny regardless of n; on a clique it is cluster-size bound.
	r := rng.New(3)
	p := graph.Path(200)
	s := Build(p, cluster.Partition(p, 0.05, r.Fork(1)))
	if s.MaxLevel > ladder(2) {
		t.Fatalf("path ladder %d, want <= %d", s.MaxLevel, ladder(2))
	}
	k := graph.Complete(64)
	s2 := Build(k, cluster.Partition(k, 0.01, r.Fork(2)))
	// With such small beta the whole clique is usually one cluster with
	// contention 63 -> ladder 7.
	if s2.MaxLevel < 3 {
		t.Fatalf("clique ladder %d suspiciously small", s2.MaxLevel)
	}
}

func TestDecayLadderDeliveryProbability(t *testing.T) {
	// Core property behind the Lemma 2.3 substitute: with k participants
	// all sweeping a ladder of length >= log2(k)+1, a receiver adjacent to
	// all of them hears a message within one sweep with constant
	// probability.
	master := rng.New(99)
	for _, k := range []int{1, 2, 5, 17, 60} {
		L := ladder(k)
		const trials = 3000
		ok := 0
		for trial := 0; trial < trials; trial++ {
			r := master.Fork(uint64(k*10007 + trial))
			for s := int64(0); s < int64(L); s++ {
				tx := 0
				for i := 0; i < k; i++ {
					if r.Bernoulli(Prob(int32(L), s)) {
						tx++
					}
				}
				if tx == 1 {
					ok++
					break
				}
			}
		}
		p := float64(ok) / trials
		if p < 0.3 {
			t.Errorf("k=%d: sweep success probability %.3f < 0.3", k, p)
		}
	}
}

func TestPrecomputeCharge(t *testing.T) {
	if PrecomputeCharge(1024, 100) <= 0 {
		t.Fatal("non-positive charge")
	}
	// Charge grows linearly in D for fixed n.
	c1 := PrecomputeCharge(4096, 100)
	c2 := PrecomputeCharge(4096, 200)
	if c2 <= c1 {
		t.Fatal("charge not increasing in D")
	}
	ratio := float64(c2-c1) / float64(c1)
	if math.IsNaN(ratio) {
		t.Fatal("bad ratio")
	}
}
