// Package schedule builds the intra-cluster transmission schedules that
// the paper imports from Ghaffari–Haeupler–Khabbazian via Lemma 2.3: after
// a precomputation phase, cluster members can move messages to and from
// their cluster center over distance ℓ in O(ℓ + polylog n) rounds, despite
// radio collisions inside the cluster.
//
// Substitution (documented in DESIGN.md §3): instead of the GHK15
// deterministic schedule construction, the precomputation oracle equips
// every cluster with a contention-calibrated Decay ladder. For a cluster C
// let cont(x) = |N(x) ∩ C| be the number of in-cluster neighbors of a
// member x (its worst-case intra-cluster contention), and let
//
//	L(C) = ceil(log2(max_{x∈C} cont(x) + 1)) + 1.
//
// During intra-cluster propagation every participating member of C sweeps
// transmission probabilities 2^-1, 2^-2, …, 2^-L(C) in lockstep (the sweep
// index is shared because members of a cluster share slot timing). By the
// standard Decay argument, any member with at least one participating
// in-cluster neighbor receives the cluster's message with constant
// probability per sweep, so one hop of progress costs O(L(C)) rounds —
// O(log local contention) instead of the oblivious O(log n) that Decay
// pays in unknown topology, and O(1) on the bounded-degree families the
// benchmarks use. This preserves Lemma 2.3's contract (distance ℓ in
// O(ℓ·polylog-local + polylog) rounds after precomputation paid once) and
// keeps all cross-cluster collisions physically real; only intra-cluster
// coordination knowledge is precomputed, which is exactly what a schedule
// is.
package schedule

import (
	"fmt"
	"math/bits"

	"radionet/internal/cluster"
	"radionet/internal/graph"
)

// Schedule is the per-clustering coordination data handed to every node by
// the precomputation phase.
type Schedule struct {
	// Part is the clustering this schedule serves.
	Part *cluster.Result
	// Levels[v] is the Decay-ladder length shared by v's cluster.
	Levels []int32
	// MaxLevel is the largest ladder in any cluster.
	MaxLevel int
}

// Build computes the schedule for a clustering of g.
func Build(g *graph.Graph, part *cluster.Result) *Schedule {
	return BuildScratch(g, part, nil)
}

// BuildScratch is Build with a reusable contention buffer of len >= g.N()
// (its contents are ignored and overwritten); pass nil to allocate. The
// result is identical for every buffer — the scratch only recycles memory.
func BuildScratch(g *graph.Graph, part *cluster.Result, maxCont []int32) *Schedule {
	n := g.N()
	if len(maxCont) < n {
		maxCont = make([]int32, n)
	} else {
		clear(maxCont[:n])
	}
	// Worst in-cluster contention per cluster, indexed by center id.
	for x := 0; x < n; x++ {
		cx := part.Center[x]
		cont := int32(0)
		for _, w := range g.Neighbors(x) {
			if part.Center[w] == cx {
				cont++
			}
		}
		if cont > maxCont[cx] {
			maxCont[cx] = cont
		}
	}
	levels := make([]int32, n)
	maxLevel := 1
	for v := 0; v < n; v++ {
		l := ladder(int(maxCont[part.Center[v]]))
		levels[v] = int32(l)
		if l > maxLevel {
			maxLevel = l
		}
	}
	return &Schedule{Part: part, Levels: levels, MaxLevel: maxLevel}
}

// ladder returns the sweep length for worst contention c: ceil(log2(c+1))+1,
// at least 1.
func ladder(c int) int {
	if c <= 0 {
		return 1
	}
	return bits.Len(uint(c)) + 1
}

// Prob returns the transmission probability for a node with ladder length
// level at lane-local round t: the sweep 2^-1 … 2^-level.
func Prob(level int32, t int64) float64 {
	step := t % int64(level)
	return 1 / float64(int64(2)<<uint(step))
}

// Validate checks schedule invariants against the underlying clustering.
func (s *Schedule) Validate() error {
	for v, l := range s.Levels {
		if l < 1 {
			return fmt.Errorf("node %d has ladder %d < 1", v, l)
		}
		if c := s.Part.Center[v]; s.Levels[c] != l {
			return fmt.Errorf("node %d ladder %d differs from its center's %d", v, l, s.Levels[c])
		}
	}
	return nil
}

// PrecomputeCharge returns the number of rounds the precomputation oracle
// charges for building one schedule, following Lemma 2.3's
// O(D·polylog n) preprocessing bound (constants documented in DESIGN.md).
func PrecomputeCharge(n, d int) int64 {
	logn := int64(bits.Len(uint(n)))
	return int64(d)*logn + logn*logn*logn
}
