// Package radionet is a simulator and algorithm library for multi-hop
// radio networks, built as a full reproduction of:
//
//	Artur Czumaj and Peter Davies. "Exploiting Spontaneous Transmissions
//	for Broadcasting and Leader Election in Radio Networks." PODC 2017.
//
// The model: an unknown-topology, undirected, connected radio network of
// n nodes with diameter D, synchronous rounds, no collision detection,
// spontaneous transmissions allowed. A listening node receives a message
// iff exactly one of its neighbors transmits.
//
// The package exposes:
//
//   - topology generators and a packet-level radio simulator,
//   - the paper's Compete/Broadcast/LeaderElection algorithms
//     (O(D·log n/log D + polylog n) rounds whp),
//   - the prior-work baselines they are compared against (Decay/BGI,
//     truncated Decay, Haeupler–Wajc mode, binary-search and
//     max-broadcast leader election), and
//   - the Miller–Peng–Xu Partition(β) clustering in centralized and
//     distributed forms.
//
// Quick start:
//
//	g := radionet.Grid(16, 64)
//	net := radionet.NewNetwork(g)
//	res, err := net.Broadcast(0, 42, radionet.BroadcastOptions{Seed: 1})
//	// res.Rounds is the number of radio rounds until every node knew 42.
//
// The experiment harness behind DESIGN.md §6 and EXPERIMENTS.md is in
// cmd/experiments; cmd/campaign runs declarative topology × algorithm ×
// seed matrices on the internal/campaign worker pool; runnable scenarios
// are under examples/.
package radionet

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"radionet/internal/cluster"
	"radionet/internal/compete"
	"radionet/internal/graph"
	"radionet/internal/obs"
	"radionet/internal/protocol"
	"radionet/internal/radio"
	"radionet/internal/rng"

	// Populate the protocol registry: the facade resolves every
	// algorithm through it, so newly registered algorithms are callable
	// here (and from cmd/radiosim) without facade changes.
	_ "radionet/internal/protocol/all"
)

// Graph is an immutable undirected network topology.
type Graph = graph.Graph

// GraphBuilder accumulates edges into a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a named graph on n nodes.
func NewGraphBuilder(name string, n int) *GraphBuilder { return graph.NewBuilder(name, n) }

// Topology generators (see internal/graph for the full catalogue).
var (
	// Path returns the path graph on n nodes.
	Path = graph.Path
	// Cycle returns the cycle on n >= 3 nodes.
	Cycle = graph.Cycle
	// Grid returns the rows x cols grid.
	Grid = graph.Grid
	// Star returns the star on n nodes with center 0.
	Star = graph.Star
	// Complete returns the complete graph on n nodes.
	Complete = graph.Complete
	// Hypercube returns the dim-dimensional hypercube.
	Hypercube = graph.Hypercube
	// BalancedTree returns the complete arity-ary tree of the given depth.
	BalancedTree = graph.BalancedTree
	// PathOfCliques returns k cliques of size s chained by bridge edges.
	PathOfCliques = graph.PathOfCliques
	// Caterpillar returns a spine path with pendant legs.
	Caterpillar = graph.Caterpillar
	// Dumbbell returns two cliques joined by a path.
	Dumbbell = graph.Dumbbell
)

// RandomGeometric returns a connected unit-disk graph of n nodes with the
// given radius, the classic ad-hoc wireless deployment model.
func RandomGeometric(n int, radius float64, seed uint64) *Graph {
	return graph.RandomGeometric(n, radius, rng.New(seed))
}

// Gnp returns a connected Erdős–Rényi graph (a random spanning tree plus
// G(n, p) edges).
func Gnp(n int, p float64, seed uint64) *Graph {
	return graph.Gnp(n, p, rng.New(seed))
}

// RandomTree returns a uniform random recursive tree on n nodes.
func RandomTree(n int, seed uint64) *Graph {
	return graph.RandomTree(n, rng.New(seed))
}

// Algorithm selects a broadcasting algorithm.
type Algorithm string

// Broadcasting algorithms.
const (
	// CD17 is the paper's algorithm: Compete over random fine clusterings
	// with Theorem 2.2 curtailment. O(D·log n/log D + polylog n) whp.
	CD17 Algorithm = "cd17"
	// HW16 is the Haeupler–Wajc PODC'16 comparison mode: the same
	// pipeline with their O(log log n)-longer intra-cluster schedules.
	HW16 Algorithm = "hw16"
	// BGI is the classical Decay broadcast of Bar-Yehuda–Goldreich–Itai,
	// O((D+log n)·log n); no spontaneous transmissions.
	BGI Algorithm = "bgi"
	// TruncatedDecay is the Czumaj–Rytter/Kowalski–Pelc-flavored
	// surrogate, O(D·log(n/D) + log²n)-style truncated Decay phases.
	TruncatedDecay Algorithm = "truncated-decay"
)

// Config re-exports the paper algorithm's tunable constants.
type Config = compete.Config

// Network wraps a topology with its (estimated) diameter, the two
// parameters the model assumes nodes know. Repeated runs on one Network
// reuse each algorithm's seed-independent precomputation (e.g. the CD17
// clustering parameter grid) where the registry marks it shareable —
// a pure setup-time saving that never changes a run's results.
type Network struct {
	G *Graph
	// Diameter is the hop diameter D. NewNetwork fills it with an
	// iterated double-sweep estimate (exact on the provided structured
	// families); set it explicitly when known.
	Diameter int

	// scratchMu guards scratches, the per-network memo of shareable
	// descriptor precomputation, keyed by (ScratchKey, diameter) so an
	// explicit Diameter change never serves a stale product.
	scratchMu sync.Mutex
	scratches map[scratchMemoKey]any
}

// scratchMemoKey identifies one memoized precompute product on a Network:
// the descriptor's declared sharing key and the diameter it was built at
// (the graph is fixed per Network).
type scratchMemoKey struct {
	key string
	d   int
}

// scratchFor returns the network's memoized seed-independent
// precomputation for desc, building it on first use. Only default-tuned
// runs share — a custom Config changes the product — and descriptors
// without a declared ScratchKey opt out of reuse entirely (their scratch
// is rebuilt inside Build per run, exactly as before). Sharing is
// output-neutral by the ScratchKey contract (protocol.Descriptor).
func (n *Network) scratchFor(desc *protocol.Descriptor, tun any) any {
	if tun != nil || desc.NewScratch == nil || desc.ScratchKey == "" {
		return nil
	}
	k := scratchMemoKey{key: desc.ScratchKey, d: n.Diameter}
	n.scratchMu.Lock()
	defer n.scratchMu.Unlock()
	if v, ok := n.scratches[k]; ok {
		return v
	}
	if n.scratches == nil {
		n.scratches = make(map[scratchMemoKey]any)
	}
	v := desc.NewScratch(n.G, n.Diameter, nil)
	n.scratches[k] = v
	return v
}

// NewNetwork returns a Network for g with an estimated diameter. It
// panics if g is empty or disconnected (the model requires connectivity).
func NewNetwork(g *Graph) *Network {
	if g.N() == 0 {
		panic("radionet: empty graph")
	}
	if !g.IsConnected() {
		panic("radionet: disconnected graph")
	}
	return &Network{G: g, Diameter: g.DiameterEstimate()}
}

// Result reports a protocol run.
type Result struct {
	// Rounds is the number of propagation rounds executed until the
	// completion condition held (or the budget ran out).
	Rounds int64
	// PrecomputeRounds is the charged cost of the precomputation phase
	// for the clustering algorithms (0 for the oblivious baselines); see
	// DESIGN.md §3.
	PrecomputeRounds int64
	// Done reports whether the task completed within budget.
	Done bool
	// Reached/ReachTarget report broadcast completion accounting:
	// ReachTarget is n for a fault-free run and the survivor-reachable
	// set size under a fault plan; Reached is how many of those nodes
	// know the message (== ReachTarget exactly when Done).
	Reached, ReachTarget int
}

// FaultPlan is a whole-network fault scenario — per-node crash rounds, a
// jammer set, per-node reception loss — applied engine-side so faulted
// runs keep the bulk-path speed. Completion under a plan is
// survivor-scoped: the run is Done when every node reachable from the
// surviving sources through never-crashing nodes knows the message. See
// DESIGN.md §7.
type FaultPlan = radio.FaultPlan

// NewFaultPlan returns an empty fault plan for an n-node network; seed
// derives the jam/loss coin streams. Populate it with Crash/Jam/Loss. A
// plan is single-use: build one per run.
func NewFaultPlan(n int, seed uint64) *FaultPlan { return radio.NewFaultPlan(n, seed) }

// RoundHook observes every executed round (tracing/metrics); see
// internal/trace for a ready-made recorder.
type RoundHook = radio.RoundHook

// ChainHooks composes round hooks left to right, skipping nils — the way
// to observe a run with both a trace recorder and a metrics collector.
var ChainHooks = radio.ChainHooks

// MetricsRegistry is a snapshotable collection of run metrics (atomic
// counters, gauges and histograms; see internal/obs). Point
// BroadcastOptions.Metrics or LeaderOptions.Metrics at one to accumulate
// engine counters — rounds, transmissions, deliveries, collisions —
// across any number of runs, then read them with Snapshot. Purely
// observational: enabling it never changes a run's results.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// BroadcastOptions configure Broadcast and Compete.
type BroadcastOptions struct {
	// Algorithm defaults to CD17.
	Algorithm Algorithm
	// Seed makes the run reproducible; equal seeds give identical runs.
	Seed uint64
	// MaxRounds caps the run; 0 selects a whp-sufficient budget.
	MaxRounds int64
	// Config tunes the CD17/HW16 pipeline (zero value = defaults).
	Config Config
	// Hook, if set, observes every round of the run.
	Hook RoundHook
	// Metrics, if set, accumulates the run's engine counters into the
	// registry (composed with Hook; see MetricsRegistry).
	Metrics *MetricsRegistry
	// Faults, if set, injects the fault scenario and survivor-scopes
	// completion (see FaultPlan).
	Faults *FaultPlan
	// EngineShards, if > 1, splits each engine round's delivery work across
	// that many goroutines (see radio.Engine.SetShards). Output is
	// byte-identical at any value; 0 and 1 both mean unsharded.
	EngineShards int
	// Transport names the round-executor backend the run executes on:
	// "" and "sim" mean the in-process simulator, any other registered
	// backend ("lockstep", "lockstep-tcp"; see radio.Transports) runs each
	// node as its own goroutine behind the engine's round barrier.
	// Results are identical across backends; transport-capable algorithms
	// only.
	Transport string
}

// Broadcast delivers value from node src to every node and returns the
// round count (Theorem 5.1 for the CD17 algorithm).
func (n *Network) Broadcast(src int, value int64, o BroadcastOptions) (Result, error) {
	if src < 0 || src >= n.G.N() {
		return Result{}, fmt.Errorf("radionet: source %d out of range", src)
	}
	if value < 0 {
		return Result{}, errors.New("radionet: message values must be non-negative")
	}
	return n.Compete(map[int]int64{src: value}, o)
}

// tuning converts the facade's typed Config into a BuildParams.Tuning
// value: nil for the zero value (every algorithm's defaults), the Config
// itself otherwise. Descriptors that don't take a compete.Config reject a
// non-zero one loudly instead of silently ignoring it. The zero test
// needs reflect.DeepEqual because Config carries a func field (Wrap),
// which rules out ==; DeepEqual treats funcs as equal only when both are
// nil, which is exactly the zero-value semantics wanted here.
func tuning(cfg Config) any {
	if reflect.DeepEqual(cfg, Config{}) {
		return nil
	}
	return cfg
}

// resolveTransport maps an options-level transport name to a backend
// instance: nil for the in-process simulator ("" or "sim" — the engine's
// native loops are the simulator), a fresh radio.Transport otherwise.
// Non-simulator backends require the descriptor's transport capability.
func resolveTransport(name string, desc *protocol.Descriptor) (radio.Transport, error) {
	if name == "" || name == "sim" {
		return nil, nil
	}
	if !desc.Caps.Transport {
		return nil, fmt.Errorf("radionet: algorithm %q does not support transport backends", desc.Name)
	}
	return radio.NewTransport(name)
}

// closeTransport tears a run's backend down (joining its node goroutines
// and closing its sockets); reading results only after it returns is what
// makes them race-free. nil-safe for the simulator.
func closeTransport(tr radio.Transport) {
	if tr != nil {
		tr.Close()
	}
}

// Compete runs the paper's generalized primitive: every source in sources
// holds a message, and on completion all nodes know the highest one
// (Theorem 4.1). The oblivious baselines run their multi-source
// extensions. Algorithms resolve through the protocol registry
// (internal/protocol), so every registered broadcast descriptor — run
// `cmd/radiosim -list` for the catalogue — is accepted.
func (n *Network) Compete(sources map[int]int64, o BroadcastOptions) (Result, error) {
	for s, v := range sources {
		if v < 0 {
			return Result{}, fmt.Errorf("radionet: source %d has negative message %d", s, v)
		}
	}
	name := string(o.Algorithm)
	if name == "" {
		name = string(CD17)
	}
	desc, ok := protocol.Lookup(protocol.Broadcast, name)
	if !ok {
		return Result{}, fmt.Errorf("radionet: unknown algorithm %q", o.Algorithm)
	}
	if o.Faults != nil && !desc.Caps.Faults {
		return Result{}, fmt.Errorf("radionet: algorithm %q does not support fault injection", name)
	}
	tr, err := resolveTransport(o.Transport, desc)
	if err != nil {
		return Result{}, err
	}
	// Sharded engines park resident workers; close them when the run
	// ends rather than leaving the teardown to GC.
	var engines radio.EngineSet
	defer engines.Close()
	tun := tuning(o.Config)
	r, err := desc.Build(protocol.BuildParams{
		G: n.G, D: n.Diameter, Seed: o.Seed,
		Sources: sources, Faults: o.Faults, Tuning: tun,
		Scratch:   n.scratchFor(desc, tun),
		Hook:      radio.ChainHooks(o.Hook, obs.NewEngineCollector(o.Metrics).Hook()),
		Shards:    o.EngineShards,
		Transport: tr,
		Engines:   &engines,
	})
	if err != nil {
		closeTransport(tr)
		return Result{}, err
	}
	res := r.Run(o.MaxRounds)
	closeTransport(tr)
	return Result{
		Rounds: res.Rounds, PrecomputeRounds: res.Precompute, Done: res.Done,
		Reached: res.Reached, ReachTarget: res.ReachTarget,
	}, nil
}

// LeaderAlgorithm selects a leader election algorithm.
type LeaderAlgorithm string

// Leader election algorithms.
const (
	// CD17Leader is Algorithm 6 of the paper: O(log n) random candidates
	// compete; O(D·log n/log D + polylog n) whp (Theorem 5.2).
	CD17Leader LeaderAlgorithm = "cd17"
	// BinarySearchLeader is the classical [2] reduction: a network-wide
	// binary search over the ID space, O(T_BC · log n).
	BinarySearchLeader LeaderAlgorithm = "binary-search"
	// MaxBroadcastLeader elects via one multi-source max-propagating
	// Decay broadcast, the expected-O(T_BC) approach of [8].
	MaxBroadcastLeader LeaderAlgorithm = "max-broadcast"
	// GH13Leader is the Ghaffari–Haeupler SODA'13-style elimination
	// tournament (internal/ghle): Θ(log log n) geometric knockout
	// broadcasts plus one full agreement broadcast, < 2·T_BC total.
	GH13Leader LeaderAlgorithm = "gh13"
)

// LeaderOptions configure LeaderElection.
type LeaderOptions struct {
	// Algorithm defaults to CD17Leader.
	Algorithm LeaderAlgorithm
	// Seed makes the run reproducible.
	Seed uint64
	// MaxRounds caps the run; 0 selects a whp-sufficient budget.
	MaxRounds int64
	// Config tunes the CD17 pipeline.
	Config Config
	// Hook, if set, observes every round of the run (single-engine
	// algorithms; composite multi-engine runners may ignore it).
	Hook RoundHook
	// Metrics, if set, accumulates the run's engine counters into the
	// registry (composed with Hook; see MetricsRegistry).
	Metrics *MetricsRegistry
	// Faults, if set, injects the fault scenario and survivor-scopes
	// completion (fault-capable leader algorithms only; the plan should
	// protect the would-be winner — see DESIGN.md §8).
	Faults *FaultPlan
	// EngineShards, if > 1, splits each engine round's delivery work across
	// that many goroutines (see radio.Engine.SetShards). Output is
	// byte-identical at any value; 0 and 1 both mean unsharded.
	EngineShards int
	// Transport names the round-executor backend (see
	// BroadcastOptions.Transport).
	Transport string
}

// LeaderResult reports a leader election run.
type LeaderResult struct {
	Result
	// Leader is the elected node (-1 if the run did not complete).
	Leader int
	// LeaderID is the agreed-upon winning ID.
	LeaderID int64
	// Candidates is the sampled candidate set (node -> ID).
	Candidates map[int]int64
}

// LeaderElection elects a single leader known to all nodes. Algorithms
// resolve through the protocol registry, so every registered leader
// descriptor — including ones added after this facade was written, like
// the Ghaffari–Haeupler-style "gh13" — is accepted. Done additionally
// requires the algorithm's postcondition check (protocol.Result.Verify)
// to pass where one is registered.
func (n *Network) LeaderElection(o LeaderOptions) (LeaderResult, error) {
	name := string(o.Algorithm)
	if name == "" {
		name = string(CD17Leader)
	}
	desc, ok := protocol.Lookup(protocol.Leader, name)
	if !ok {
		return LeaderResult{}, fmt.Errorf("radionet: unknown leader algorithm %q", o.Algorithm)
	}
	if o.Faults != nil && !desc.Caps.Faults {
		return LeaderResult{}, fmt.Errorf("radionet: leader algorithm %q does not support fault injection", name)
	}
	tr, err := resolveTransport(o.Transport, desc)
	if err != nil {
		return LeaderResult{}, err
	}
	// See Compete: deterministic resident-worker teardown.
	var engines radio.EngineSet
	defer engines.Close()
	tun := tuning(o.Config)
	r, err := desc.Build(protocol.BuildParams{
		G: n.G, D: n.Diameter, Seed: o.Seed,
		Faults: o.Faults, Tuning: tun,
		Scratch:   n.scratchFor(desc, tun),
		Hook:      radio.ChainHooks(o.Hook, obs.NewEngineCollector(o.Metrics).Hook()),
		Shards:    o.EngineShards,
		Transport: tr,
		Engines:   &engines,
	})
	if err != nil {
		closeTransport(tr)
		return LeaderResult{}, err
	}
	res := r.Run(o.MaxRounds)
	closeTransport(tr)
	done := res.Done
	if done && res.Verify != nil && res.Verify() != nil {
		done = false
	}
	out := LeaderResult{
		Result: Result{
			Rounds: res.Rounds, PrecomputeRounds: res.Precompute, Done: done,
			Reached: res.Reached, ReachTarget: res.ReachTarget,
		},
		Leader: -1,
	}
	if lr, ok := r.(protocol.LeaderRunner); ok {
		out.Candidates = lr.Candidates()
		out.Leader = lr.Leader()
		if done {
			out.LeaderID = lr.LeaderID()
		}
	}
	return out, nil
}

// BroadcastCD broadcasts value from src under the *stronger* model variant
// with collision detection (Section 1.1 of the paper), using the
// deterministic beep-wave pipeline: ecc(src) + 3·bits + O(1) rounds. It
// exists to quantify the model separation the paper discusses; all other
// methods use the no-collision-detection model. It is sugar for the
// registered "cd-beep" broadcast descriptor.
func (n *Network) BroadcastCD(src int, value int64) (Result, error) {
	return n.Broadcast(src, value, BroadcastOptions{Algorithm: "cd-beep"})
}

// Clustering re-exports the Miller–Peng–Xu Partition(β) result type.
type Clustering = cluster.Result

// PartitionGraph runs the centralized Partition(β) of Lemma 2.1 on g.
func PartitionGraph(g *Graph, beta float64, seed uint64) *Clustering {
	return cluster.Partition(g, beta, rng.New(seed))
}
