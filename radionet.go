// Package radionet is a simulator and algorithm library for multi-hop
// radio networks, built as a full reproduction of:
//
//	Artur Czumaj and Peter Davies. "Exploiting Spontaneous Transmissions
//	for Broadcasting and Leader Election in Radio Networks." PODC 2017.
//
// The model: an unknown-topology, undirected, connected radio network of
// n nodes with diameter D, synchronous rounds, no collision detection,
// spontaneous transmissions allowed. A listening node receives a message
// iff exactly one of its neighbors transmits.
//
// The package exposes:
//
//   - topology generators and a packet-level radio simulator,
//   - the paper's Compete/Broadcast/LeaderElection algorithms
//     (O(D·log n/log D + polylog n) rounds whp),
//   - the prior-work baselines they are compared against (Decay/BGI,
//     truncated Decay, Haeupler–Wajc mode, binary-search and
//     max-broadcast leader election), and
//   - the Miller–Peng–Xu Partition(β) clustering in centralized and
//     distributed forms.
//
// Quick start:
//
//	g := radionet.Grid(16, 64)
//	net := radionet.NewNetwork(g)
//	res, err := net.Broadcast(0, 42, radionet.BroadcastOptions{Seed: 1})
//	// res.Rounds is the number of radio rounds until every node knew 42.
//
// The experiment harness behind DESIGN.md §6 and EXPERIMENTS.md is in
// cmd/experiments; cmd/campaign runs declarative topology × algorithm ×
// seed matrices on the internal/campaign worker pool; runnable scenarios
// are under examples/.
package radionet

import (
	"errors"
	"fmt"

	"radionet/internal/baseline"
	"radionet/internal/cd"
	"radionet/internal/cluster"
	"radionet/internal/compete"
	"radionet/internal/decay"
	"radionet/internal/graph"
	"radionet/internal/radio"
	"radionet/internal/rng"
)

// Graph is an immutable undirected network topology.
type Graph = graph.Graph

// GraphBuilder accumulates edges into a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a named graph on n nodes.
func NewGraphBuilder(name string, n int) *GraphBuilder { return graph.NewBuilder(name, n) }

// Topology generators (see internal/graph for the full catalogue).
var (
	// Path returns the path graph on n nodes.
	Path = graph.Path
	// Cycle returns the cycle on n >= 3 nodes.
	Cycle = graph.Cycle
	// Grid returns the rows x cols grid.
	Grid = graph.Grid
	// Star returns the star on n nodes with center 0.
	Star = graph.Star
	// Complete returns the complete graph on n nodes.
	Complete = graph.Complete
	// Hypercube returns the dim-dimensional hypercube.
	Hypercube = graph.Hypercube
	// BalancedTree returns the complete arity-ary tree of the given depth.
	BalancedTree = graph.BalancedTree
	// PathOfCliques returns k cliques of size s chained by bridge edges.
	PathOfCliques = graph.PathOfCliques
	// Caterpillar returns a spine path with pendant legs.
	Caterpillar = graph.Caterpillar
	// Dumbbell returns two cliques joined by a path.
	Dumbbell = graph.Dumbbell
)

// RandomGeometric returns a connected unit-disk graph of n nodes with the
// given radius, the classic ad-hoc wireless deployment model.
func RandomGeometric(n int, radius float64, seed uint64) *Graph {
	return graph.RandomGeometric(n, radius, rng.New(seed))
}

// Gnp returns a connected Erdős–Rényi graph (a random spanning tree plus
// G(n, p) edges).
func Gnp(n int, p float64, seed uint64) *Graph {
	return graph.Gnp(n, p, rng.New(seed))
}

// RandomTree returns a uniform random recursive tree on n nodes.
func RandomTree(n int, seed uint64) *Graph {
	return graph.RandomTree(n, rng.New(seed))
}

// Algorithm selects a broadcasting algorithm.
type Algorithm string

// Broadcasting algorithms.
const (
	// CD17 is the paper's algorithm: Compete over random fine clusterings
	// with Theorem 2.2 curtailment. O(D·log n/log D + polylog n) whp.
	CD17 Algorithm = "cd17"
	// HW16 is the Haeupler–Wajc PODC'16 comparison mode: the same
	// pipeline with their O(log log n)-longer intra-cluster schedules.
	HW16 Algorithm = "hw16"
	// BGI is the classical Decay broadcast of Bar-Yehuda–Goldreich–Itai,
	// O((D+log n)·log n); no spontaneous transmissions.
	BGI Algorithm = "bgi"
	// TruncatedDecay is the Czumaj–Rytter/Kowalski–Pelc-flavored
	// surrogate, O(D·log(n/D) + log²n)-style truncated Decay phases.
	TruncatedDecay Algorithm = "truncated-decay"
)

// Config re-exports the paper algorithm's tunable constants.
type Config = compete.Config

// Network wraps a topology with its (estimated) diameter, the two
// parameters the model assumes nodes know.
type Network struct {
	G *Graph
	// Diameter is the hop diameter D. NewNetwork fills it with an
	// iterated double-sweep estimate (exact on the provided structured
	// families); set it explicitly when known.
	Diameter int
}

// NewNetwork returns a Network for g with an estimated diameter. It
// panics if g is empty or disconnected (the model requires connectivity).
func NewNetwork(g *Graph) *Network {
	if g.N() == 0 {
		panic("radionet: empty graph")
	}
	if !g.IsConnected() {
		panic("radionet: disconnected graph")
	}
	return &Network{G: g, Diameter: g.DiameterEstimate()}
}

// Result reports a protocol run.
type Result struct {
	// Rounds is the number of propagation rounds executed until the
	// completion condition held (or the budget ran out).
	Rounds int64
	// PrecomputeRounds is the charged cost of the precomputation phase
	// for the clustering algorithms (0 for the oblivious baselines); see
	// DESIGN.md §3.
	PrecomputeRounds int64
	// Done reports whether the task completed within budget.
	Done bool
	// Reached/ReachTarget report broadcast completion accounting:
	// ReachTarget is n for a fault-free run and the survivor-reachable
	// set size under a fault plan; Reached is how many of those nodes
	// know the message (== ReachTarget exactly when Done).
	Reached, ReachTarget int
}

// FaultPlan is a whole-network fault scenario — per-node crash rounds, a
// jammer set, per-node reception loss — applied engine-side so faulted
// runs keep the bulk-path speed. Completion under a plan is
// survivor-scoped: the run is Done when every node reachable from the
// surviving sources through never-crashing nodes knows the message. See
// DESIGN.md §7.
type FaultPlan = radio.FaultPlan

// NewFaultPlan returns an empty fault plan for an n-node network; seed
// derives the jam/loss coin streams. Populate it with Crash/Jam/Loss. A
// plan is single-use: build one per run.
func NewFaultPlan(n int, seed uint64) *FaultPlan { return radio.NewFaultPlan(n, seed) }

// RoundHook observes every executed round (tracing/metrics); see
// internal/trace for a ready-made recorder.
type RoundHook = radio.RoundHook

// BroadcastOptions configure Broadcast and Compete.
type BroadcastOptions struct {
	// Algorithm defaults to CD17.
	Algorithm Algorithm
	// Seed makes the run reproducible; equal seeds give identical runs.
	Seed uint64
	// MaxRounds caps the run; 0 selects a whp-sufficient budget.
	MaxRounds int64
	// Config tunes the CD17/HW16 pipeline (zero value = defaults).
	Config Config
	// Hook, if set, observes every round of the run.
	Hook RoundHook
	// Faults, if set, injects the fault scenario and survivor-scopes
	// completion (see FaultPlan).
	Faults *FaultPlan
}

// Broadcast delivers value from node src to every node and returns the
// round count (Theorem 5.1 for the CD17 algorithm).
func (n *Network) Broadcast(src int, value int64, o BroadcastOptions) (Result, error) {
	if src < 0 || src >= n.G.N() {
		return Result{}, fmt.Errorf("radionet: source %d out of range", src)
	}
	if value < 0 {
		return Result{}, errors.New("radionet: message values must be non-negative")
	}
	return n.Compete(map[int]int64{src: value}, o)
}

// Compete runs the paper's generalized primitive: every source in sources
// holds a message, and on completion all nodes know the highest one
// (Theorem 4.1). The oblivious baselines run their multi-source
// extensions.
func (n *Network) Compete(sources map[int]int64, o BroadcastOptions) (Result, error) {
	for s, v := range sources {
		if v < 0 {
			return Result{}, fmt.Errorf("radionet: source %d has negative message %d", s, v)
		}
	}
	switch o.Algorithm {
	case "", CD17, HW16:
		cfg := o.Config
		if o.Algorithm == HW16 {
			cfg.CurtailLogLog = true
		}
		c, err := compete.NewWithPreFaults(compete.NewPre(n.G, n.Diameter, cfg), o.Seed, sources, o.Faults)
		if err != nil {
			return Result{}, err
		}
		c.Engine.Hook = o.Hook
		rounds, done := c.Run(o.MaxRounds)
		return Result{
			Rounds: rounds, PrecomputeRounds: c.PrecomputeRounds, Done: done,
			Reached: c.Reached(), ReachTarget: c.ReachTarget(),
		}, nil
	case BGI, TruncatedDecay:
		dcfg := decay.Config{Faults: o.Faults}
		if o.Algorithm == TruncatedDecay {
			dcfg.Levels = baseline.TruncatedDecayLevels(n.G.N(), n.Diameter)
		}
		bc := decay.NewBroadcast(n.G, dcfg, o.Seed, sources)
		bc.Engine.Hook = o.Hook
		budget := o.MaxRounds
		if budget <= 0 {
			l := int64(decay.Levels(n.G.N()))
			budget = 20 * (int64(n.Diameter) + l) * l
		}
		rounds, done := bc.Run(budget)
		return Result{Rounds: rounds, Done: done, Reached: bc.Reached(), ReachTarget: bc.ReachTarget()}, nil
	default:
		return Result{}, fmt.Errorf("radionet: unknown algorithm %q", o.Algorithm)
	}
}

// LeaderAlgorithm selects a leader election algorithm.
type LeaderAlgorithm string

// Leader election algorithms.
const (
	// CD17Leader is Algorithm 6 of the paper: O(log n) random candidates
	// compete; O(D·log n/log D + polylog n) whp (Theorem 5.2).
	CD17Leader LeaderAlgorithm = "cd17"
	// BinarySearchLeader is the classical [2] reduction: a network-wide
	// binary search over the ID space, O(T_BC · log n).
	BinarySearchLeader LeaderAlgorithm = "binary-search"
	// MaxBroadcastLeader elects via one multi-source max-propagating
	// Decay broadcast, the expected-O(T_BC) approach of [8].
	MaxBroadcastLeader LeaderAlgorithm = "max-broadcast"
)

// LeaderOptions configure LeaderElection.
type LeaderOptions struct {
	// Algorithm defaults to CD17Leader.
	Algorithm LeaderAlgorithm
	// Seed makes the run reproducible.
	Seed uint64
	// MaxRounds caps the run; 0 selects a whp-sufficient budget.
	MaxRounds int64
	// Config tunes the CD17 pipeline.
	Config Config
}

// LeaderResult reports a leader election run.
type LeaderResult struct {
	Result
	// Leader is the elected node (-1 if the run did not complete).
	Leader int
	// LeaderID is the agreed-upon winning ID.
	LeaderID int64
	// Candidates is the sampled candidate set (node -> ID).
	Candidates map[int]int64
}

// LeaderElection elects a single leader known to all nodes.
func (n *Network) LeaderElection(o LeaderOptions) (LeaderResult, error) {
	switch o.Algorithm {
	case "", CD17Leader:
		le, err := compete.NewLeaderElection(n.G, n.Diameter, compete.LeaderConfig{Config: o.Config}, o.Seed)
		if err != nil {
			return LeaderResult{}, err
		}
		rounds, done := le.Run(o.MaxRounds)
		res := LeaderResult{
			Result:     Result{Rounds: rounds, PrecomputeRounds: le.PrecomputeRounds, Done: done},
			Leader:     le.Leader(),
			Candidates: le.Candidates,
		}
		if done {
			res.LeaderID = le.TrueMax()
		}
		return res, nil
	case BinarySearchLeader:
		le, err := baseline.NewBinarySearchLE(n.G, n.Diameter, o.Seed, 0, 0, 0)
		if err != nil {
			return LeaderResult{}, err
		}
		r := le.Run()
		return LeaderResult{
			Result:     Result{Rounds: r.Rounds, Done: r.Done},
			Leader:     r.Leader,
			LeaderID:   r.LeaderID,
			Candidates: le.Candidates(),
		}, nil
	case MaxBroadcastLeader:
		le, err := baseline.NewMaxBroadcastLE(n.G, n.Diameter, o.Seed, 0, 0, o.MaxRounds)
		if err != nil {
			return LeaderResult{}, err
		}
		r := le.Run()
		return LeaderResult{
			Result:     Result{Rounds: r.Rounds, Done: r.Done},
			Leader:     r.Leader,
			LeaderID:   r.LeaderID,
			Candidates: le.Candidates(),
		}, nil
	default:
		return LeaderResult{}, fmt.Errorf("radionet: unknown leader algorithm %q", o.Algorithm)
	}
}

// BroadcastCD broadcasts value from src under the *stronger* model variant
// with collision detection (Section 1.1 of the paper), using the
// deterministic beep-wave pipeline: ecc(src) + 3·bits + O(1) rounds. It
// exists to quantify the model separation the paper discusses; all other
// methods use the no-collision-detection model.
func (n *Network) BroadcastCD(src int, value int64) (Result, error) {
	b, err := cd.NewBroadcast(n.G, src, value)
	if err != nil {
		return Result{}, err
	}
	rounds, done := b.Run(b.RoundsNeeded(n.Diameter) + 16)
	return Result{Rounds: rounds, Done: done}, nil
}

// Clustering re-exports the Miller–Peng–Xu Partition(β) result type.
type Clustering = cluster.Result

// PartitionGraph runs the centralized Partition(β) of Lemma 2.1 on g.
func PartitionGraph(g *Graph, beta float64, seed uint64) *Clustering {
	return cluster.Partition(g, beta, rng.New(seed))
}
