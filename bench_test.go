package radionet

// One benchmark per evaluation artifact (DESIGN.md §6): each Benchmark<ID>
// regenerates the corresponding claim table at quick scale; run
// cmd/experiments for the full-scale version recorded in EXPERIMENTS.md.
// Micro-benchmarks for the substrates follow.

import (
	"io"
	"testing"

	"radionet/internal/cluster"
	"radionet/internal/decay"
	"radionet/internal/exp"
	"radionet/internal/rng"
)

// benchExperiment runs one registered experiment per iteration and reports
// its row count so regressions in coverage are visible.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		tbl, err := exp.Run(id, exp.Options{Seed: 1, Quick: true, Seeds: 1})
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tbl.Rows)
		if err := tbl.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkT1Decay(b *testing.B)                { benchExperiment(b, "T1") }
func BenchmarkT2StrongDiameter(b *testing.B)       { benchExperiment(b, "T2") }
func BenchmarkT3EdgeCut(b *testing.B)              { benchExperiment(b, "T3") }
func BenchmarkT4DistToCenter(b *testing.B)         { benchExperiment(b, "T4") }
func BenchmarkT5Boundaries(b *testing.B)           { benchExperiment(b, "T5") }
func BenchmarkT6BadSubpaths(b *testing.B)          { benchExperiment(b, "T6") }
func BenchmarkT7DistributedPartition(b *testing.B) { benchExperiment(b, "T7") }
func BenchmarkT8MultiMessage(b *testing.B)         { benchExperiment(b, "T8") }
func BenchmarkF1BroadcastVsD(b *testing.B)         { benchExperiment(b, "F1") }
func BenchmarkF2BroadcastVsN(b *testing.B)         { benchExperiment(b, "F2") }
func BenchmarkF3LeaderElection(b *testing.B)       { benchExperiment(b, "F3") }
func BenchmarkF4CompeteSources(b *testing.B)       { benchExperiment(b, "F4") }
func BenchmarkF5Optimality(b *testing.B)           { benchExperiment(b, "F5") }
func BenchmarkF6Ablations(b *testing.B)            { benchExperiment(b, "F6") }
func BenchmarkF7Energy(b *testing.B)               { benchExperiment(b, "F7") }

// --- substrate micro-benchmarks ---

func BenchmarkBroadcastCD17Grid(b *testing.B) {
	net := NewNetwork(Grid(8, 32))
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := net.Broadcast(0, 9, BroadcastOptions{Seed: uint64(i)})
		if err != nil || !res.Done {
			b.Fatalf("broadcast failed: %v %+v", err, res)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "radio-rounds")
}

func BenchmarkBroadcastBGIGrid(b *testing.B) {
	net := NewNetwork(Grid(8, 32))
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := net.Broadcast(0, 9, BroadcastOptions{Algorithm: BGI, Seed: uint64(i)})
		if err != nil || !res.Done {
			b.Fatalf("broadcast failed: %v %+v", err, res)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "radio-rounds")
}

func BenchmarkLeaderElectionCD17(b *testing.B) {
	net := NewNetwork(Grid(8, 16))
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := net.LeaderElection(LeaderOptions{Seed: uint64(i)})
		if err != nil || !res.Done {
			b.Fatalf("election failed: %v %+v", err, res.Result)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "radio-rounds")
}

func BenchmarkPartitionCentralized(b *testing.B) {
	g := Grid(64, 64)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Partition(g, 0.1, r.Fork(uint64(i)))
	}
}

func BenchmarkPartitionDistributed(b *testing.B) {
	g := Grid(12, 12)
	for i := 0; i < b.N; i++ {
		d := cluster.NewDistributed(g, cluster.DistConfig{Beta: 0.3}, uint64(i))
		if _, done := d.Run(); !done {
			b.Fatal("distributed partition incomplete")
		}
	}
}

func BenchmarkDecayPhase(b *testing.B) {
	g := Star(256)
	bc := decay.NewBroadcast(g, decay.Config{}, 1, map[int]int64{0: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Engine.Step()
	}
}

func BenchmarkGraphBFS(b *testing.B) {
	g := Grid(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}
