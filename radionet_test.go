package radionet

import (
	"testing"

	"radionet/internal/compete"
)

func TestNetworkBroadcastAllAlgorithms(t *testing.T) {
	net := NewNetwork(Grid(6, 10))
	for _, algo := range []Algorithm{CD17, HW16, BGI, TruncatedDecay} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			res, err := net.Broadcast(0, 42, BroadcastOptions{Algorithm: algo, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done {
				t.Fatalf("%s broadcast incomplete after %d rounds", algo, res.Rounds)
			}
			if res.Rounds <= 0 {
				t.Fatalf("%s reported %d rounds", algo, res.Rounds)
			}
		})
	}
}

func TestNetworkBroadcastValidation(t *testing.T) {
	net := NewNetwork(Path(10))
	if _, err := net.Broadcast(-1, 1, BroadcastOptions{}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := net.Broadcast(0, -1, BroadcastOptions{}); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := net.Broadcast(0, 1, BroadcastOptions{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNetworkCompete(t *testing.T) {
	net := NewNetwork(PathOfCliques(5, 4))
	res, err := net.Compete(map[int]int64{0: 5, 19: 9}, BroadcastOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("compete incomplete")
	}
	if res.PrecomputeRounds <= 0 {
		t.Fatal("CD17 should charge precompute rounds")
	}
}

func TestNetworkLeaderElectionAllAlgorithms(t *testing.T) {
	net := NewNetwork(Grid(6, 6))
	for _, algo := range []LeaderAlgorithm{CD17Leader, BinarySearchLeader, MaxBroadcastLeader, GH13Leader} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			res, err := net.LeaderElection(LeaderOptions{Algorithm: algo, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done || res.Leader < 0 {
				t.Fatalf("%s election failed: %+v", algo, res.Result)
			}
			if got := res.Candidates[res.Leader]; got != res.LeaderID {
				t.Fatalf("%s: leader's ID %d != winner %d", algo, got, res.LeaderID)
			}
		})
	}
	if _, err := net.LeaderElection(LeaderOptions{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown leader algorithm accepted")
	}
}

// TestNetworkLeaderElectionFaults exercises the facade's fault threading
// for leader elections: fault-capable algorithms run survivor-scoped
// (with the would-be winner protected, the election still completes and
// verifies); fault-incapable ones reject the plan loudly.
func TestNetworkLeaderElectionFaults(t *testing.T) {
	net := NewNetwork(Grid(6, 6))
	// Protect the would-be winner: derive it from the same candidate draw
	// the election performs (compete.SampleCandidates is pure in the seed).
	const seed = 5
	cands, err := compete.SampleCandidates(net.G.N(), compete.LeaderConfig{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	winner, bestID := -1, int64(-1)
	for v, id := range cands {
		if id > bestID {
			winner, bestID = v, id
		}
	}
	plan := NewFaultPlan(net.G.N(), seed)
	for v := 0; v < 8; v++ {
		if v != winner {
			plan.Crash(v, 10)
		}
	}
	res, err := net.LeaderElection(LeaderOptions{Algorithm: CD17Leader, Seed: seed, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Leader != winner {
		t.Fatalf("faulted election failed: %+v (want leader %d)", res, winner)
	}
	if res.Reached != res.ReachTarget || res.ReachTarget <= 0 {
		t.Fatalf("faulted election reach %d/%d", res.Reached, res.ReachTarget)
	}
	bad := NewFaultPlan(net.G.N(), seed)
	bad.Crash(1, 10)
	if _, err := net.LeaderElection(LeaderOptions{Algorithm: BinarySearchLeader, Seed: seed, Faults: bad}); err == nil {
		t.Fatal("fault-incapable leader algorithm accepted a plan")
	}
}

func TestNewNetworkPanics(t *testing.T) {
	for name, g := range map[string]*Graph{
		"empty":        NewGraphBuilder("e", 0).Build(),
		"disconnected": NewGraphBuilder("d", 2).Build(),
	} {
		g := g
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewNetwork(g)
		})
	}
}

func TestBroadcastCDFacade(t *testing.T) {
	net := NewNetwork(Grid(6, 10))
	res, err := net.BroadcastCD(0, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("CD broadcast incomplete: %+v", res)
	}
	// With collision detection the beep-wave run is far below any no-CD
	// algorithm's cost on this graph.
	if res.Rounds > 200 {
		t.Fatalf("CD broadcast took %d rounds, expected ~D+3B", res.Rounds)
	}
	if _, err := net.BroadcastCD(-1, 1); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestPartitionGraphFacade(t *testing.T) {
	p := PartitionGraph(Grid(8, 8), 0.3, 11)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumClusters() < 2 {
		t.Fatalf("suspicious cluster count %d", p.NumClusters())
	}
}

func TestGeneratorsFacade(t *testing.T) {
	for _, g := range []*Graph{
		Path(5), Cycle(5), Grid(2, 3), Star(4), Complete(4), Hypercube(3),
		BalancedTree(2, 2), PathOfCliques(2, 3), Caterpillar(3, 1), Dumbbell(3, 1),
		RandomGeometric(50, 0.25, 1), Gnp(50, 0.05, 2), RandomTree(50, 3),
	} {
		if g.N() == 0 || !g.IsConnected() {
			t.Fatalf("facade generator produced bad graph %v", g)
		}
	}
}

func TestDeterministicFacadeRuns(t *testing.T) {
	net := NewNetwork(Path(40))
	a, err := net.Broadcast(0, 1, BroadcastOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Broadcast(0, 1, BroadcastOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("same seed different rounds: %d vs %d", a.Rounds, b.Rounds)
	}
}

// TestFacadeMetrics checks the BroadcastOptions/LeaderOptions Metrics
// seam: attaching a registry collects engine counters without changing
// the run, and a user Hook composes with the collector instead of being
// displaced by it.
func TestFacadeMetrics(t *testing.T) {
	net := NewNetwork(Grid(6, 6))
	bare, err := net.Broadcast(0, 7, BroadcastOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	hookRounds := 0
	res, err := net.Broadcast(0, 7, BroadcastOptions{
		Seed:    11,
		Metrics: reg,
		Hook:    func(int64, []int32, int, int) { hookRounds++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != bare.Rounds || res.Done != bare.Done {
		t.Fatalf("metrics perturbed the run: %+v vs %+v", res, bare)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["engine.rounds"]; got != int64(res.Rounds) {
		t.Fatalf("engine.rounds = %d, want %d", got, res.Rounds)
	}
	if snap.Counters["engine.transmissions"] <= 0 {
		t.Fatal("engine.transmissions not collected")
	}
	if hookRounds != int(res.Rounds) {
		t.Fatalf("user hook saw %d rounds, want %d", hookRounds, res.Rounds)
	}

	lreg := NewMetricsRegistry()
	lres, err := net.LeaderElection(LeaderOptions{Seed: 5, Metrics: lreg})
	if err != nil {
		t.Fatal(err)
	}
	if got := lreg.Snapshot().Counters["engine.rounds"]; got <= 0 || !lres.Done {
		t.Fatalf("leader metrics missing: rounds=%d done=%v", got, lres.Done)
	}
}
